// Copyright 2026 The ConsensusDB Authors

#include "tools/cli_lib.h"

#include <algorithm>
#include <cstdlib>

#include "common/hash.h"
#include "common/rng.h"
#include "core/aggregates.h"
#include "core/hardness.h"
#include "core/jaccard.h"
#include "core/ranking_baselines.h"
#include "core/set_consensus.h"
#include "core/topk_metrics.h"
#include "core/topk_symdiff.h"
#include "engine/engine.h"
#include "io/request_protocol.h"
#include "io/table_io.h"
#include "io/tree_text.h"
#include "model/builders.h"
#include "model/flat_tree.h"
#include "model/possible_worlds.h"
#include "obs/clock.h"
#include "service/catalog_snapshot.h"
#include "service/query_scheduler.h"
#include "service/sharded_scheduler.h"
#include "service/tree_catalog.h"

namespace cpdb {

namespace {

struct CliOptions {
  std::string command;
  std::string input_path;
  std::string format = "tree";  // tree | bid
  std::string metric = "symdiff";
  std::string answer = "mean";  // mean | median
  int k = 5;
  int count = 5;
  size_t max_worlds = 4096;
  uint64_t seed = 1;
  int threads = 1;
  bool cache = true;       // serve: memo caches on/off
  bool cache_set = false;  // --cache given (only serve accepts it)
  int64_t cache_budget = kUnboundedCacheBytes;  // serve: cache byte budget
  bool cache_budget_set = false;  // --cache-budget given (serve only)
  bool stream = false;     // serve: flush one response per request
  int shards = 0;          // serve: 0 = single scheduler, N >= 1 = sharded
  bool shards_set = false;  // --shards given (serve only)
  std::string catalog_path;       // serve: snapshot to load at startup
  std::string save_catalog_path;  // serve: snapshot to write at shutdown
  bool mmap = false;  // serve: load --catalog via mmap instead of read
  bool metrics = true;      // serve: instruments + op=metrics on/off
  bool metrics_set = false;  // --metrics given (serve only)
  int64_t slow_query_ms = 0;      // serve: slow-query log threshold
  bool slow_query_set = false;    // --slow-query-ms given (serve only)
  std::string method = "escore";  // baseline: ranking semantics
  bool method_set = false;        // --method given (baseline only)
};

// The evaluation engine configured by --threads. Results are independent of
// the thread count (see engine/engine.h), so parallelism is safe to expose
// as a plain performance knob.
Engine MakeEngine(const CliOptions& opts) {
  EngineOptions eopts;
  eopts.num_threads = opts.threads;
  return Engine(eopts);
}

// Strict base-10 integer parse for --flag values; shares the single strict
// parser with the serve protocol's integer fields (io/request_protocol.h):
// rejects empty strings, trailing garbage, and out-of-range magnitudes
// instead of silently taking whatever atoi salvages (a typo'd "--k=1o"
// must not become k=1).
Result<long long> ParseIntFlag(const std::string& name,
                               const std::string& value) {
  return ParseStrictInt("--" + name, value);
}

// Parses "--name=value" flags; positional arguments fill command then input.
Result<CliOptions> ParseArgs(const std::vector<std::string>& args) {
  CliOptions opts;
  std::vector<std::string> positional;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) != 0) {
      positional.push_back(a);
      continue;
    }
    size_t eq = a.find('=');
    std::string name = a.substr(2, eq == std::string::npos ? a.npos : eq - 2);
    std::string value = eq == std::string::npos ? "" : a.substr(eq + 1);
    if (name == "format") {
      opts.format = value;
    } else if (name == "metric") {
      opts.metric = value;
    } else if (name == "answer") {
      opts.answer = value;
    } else if (name == "method") {
      // Strict enum parse, same convention as --cache: a typo'd value must
      // not silently fall back to the default semantics. The value set is
      // the serve protocol's op=baseline method field, verbatim.
      if (value != "escore" && value != "erank" && value != "global" &&
          value != "prf") {
        return Status::InvalidArgument(
            "--method expects escore, erank, global or prf, got '" + value +
            "'");
      }
      opts.method = value;
      opts.method_set = true;
    } else if (name == "k") {
      // Out-of-range values error rather than clamp: a clamped k would
      // silently answer a different query. (Range checks like k >= 1 stay
      // with the commands, which know their semantics.)
      CPDB_ASSIGN_OR_RETURN(long long k, ParseIntFlag(name, value));
      if (k < 0 || k > (1 << 20)) {
        return Status::InvalidArgument("--k out of range, got '" + value +
                                       "'");
      }
      opts.k = static_cast<int>(k);
    } else if (name == "count") {
      CPDB_ASSIGN_OR_RETURN(long long count, ParseIntFlag(name, value));
      if (count < 0 || count > (1 << 30)) {
        return Status::InvalidArgument("--count out of range, got '" + value +
                                       "'");
      }
      opts.count = static_cast<int>(count);
    } else if (name == "max-worlds") {
      CPDB_ASSIGN_OR_RETURN(long long max_worlds, ParseIntFlag(name, value));
      if (max_worlds < 0) {
        return Status::InvalidArgument("--max-worlds must be >= 0, got '" +
                                       value + "'");
      }
      opts.max_worlds = static_cast<size_t>(max_worlds);
    } else if (name == "seed") {
      CPDB_ASSIGN_OR_RETURN(long long seed, ParseIntFlag(name, value));
      opts.seed = static_cast<uint64_t>(seed);
    } else if (name == "threads") {
      // A typo'd value must not silently become 0, which is the valid
      // "all hardware cores" setting.
      CPDB_ASSIGN_OR_RETURN(long long threads, ParseIntFlag(name, value));
      // Clamp before narrowing; the pool caps the count anyway.
      opts.threads = static_cast<int>(
          std::min<long long>(std::max<long long>(threads, -1), 1 << 20));
    } else if (name == "cache") {
      // Strict enum parse, like the integer flags: a typo'd value must not
      // silently leave the cache in its default state.
      if (value == "on") {
        opts.cache = true;
      } else if (value == "off") {
        opts.cache = false;
      } else {
        return Status::InvalidArgument("--cache expects on or off, got '" +
                                       value + "'");
      }
      opts.cache_set = true;
    } else if (name == "cache-budget") {
      CPDB_ASSIGN_OR_RETURN(long long budget, ParseIntFlag(name, value));
      if (budget < 0) {
        return Status::InvalidArgument(
            "--cache-budget must be >= 0 bytes, got '" + value + "'");
      }
      opts.cache_budget = budget;
      opts.cache_budget_set = true;
    } else if (name == "shards") {
      CPDB_ASSIGN_OR_RETURN(long long shards, ParseIntFlag(name, value));
      if (shards < 1 || shards > 1024) {
        return Status::InvalidArgument(
            "--shards must be between 1 and 1024, got '" + value + "'");
      }
      opts.shards = static_cast<int>(shards);
      opts.shards_set = true;
    } else if (name == "catalog") {
      // A pathless --catalog must not silently mean "cold start": the whole
      // point of the flag is that a warm restart either happens or errors.
      if (value.empty()) {
        return Status::InvalidArgument("--catalog requires a file path");
      }
      opts.catalog_path = value;
    } else if (name == "save-catalog") {
      if (value.empty()) {
        return Status::InvalidArgument("--save-catalog requires a file path");
      }
      opts.save_catalog_path = value;
    } else if (name == "mmap") {
      // A boolean presence flag, same convention as --stream.
      if (eq != std::string::npos) {
        return Status::InvalidArgument("--mmap takes no value, got '" + value +
                                       "'");
      }
      opts.mmap = true;
    } else if (name == "metrics") {
      // Strict enum parse, same convention as --cache.
      if (value == "on") {
        opts.metrics = true;
      } else if (value == "off") {
        opts.metrics = false;
      } else {
        return Status::InvalidArgument("--metrics expects on or off, got '" +
                                       value + "'");
      }
      opts.metrics_set = true;
    } else if (name == "slow-query-ms") {
      CPDB_ASSIGN_OR_RETURN(long long threshold, ParseIntFlag(name, value));
      if (threshold < 0) {
        return Status::InvalidArgument(
            "--slow-query-ms must be >= 0, got '" + value + "'");
      }
      opts.slow_query_ms = threshold;
      opts.slow_query_set = true;
    } else if (name == "stream") {
      // A boolean presence flag: "--stream=off" would invite the
      // silently-misread failure mode the strict parses exist to prevent.
      if (eq != std::string::npos) {
        return Status::InvalidArgument("--stream takes no value, got '" +
                                       value + "'");
      }
      opts.stream = true;
    } else {
      return Status::InvalidArgument("unknown flag --" + name);
    }
  }
  if (positional.empty()) {
    return Status::InvalidArgument("missing command");
  }
  opts.command = positional[0];
  // The serve-only flags configure the serve scheduler and nothing else;
  // accepting them elsewhere would be the silently-ignored-flag failure
  // mode the strict value parses exist to prevent.
  if (opts.cache_set && opts.command != "serve") {
    return Status::InvalidArgument("--cache applies only to serve");
  }
  if (opts.cache_budget_set && opts.command != "serve") {
    return Status::InvalidArgument("--cache-budget applies only to serve");
  }
  if (opts.stream && opts.command != "serve") {
    return Status::InvalidArgument("--stream applies only to serve");
  }
  if (opts.shards_set && opts.command != "serve") {
    return Status::InvalidArgument("--shards applies only to serve");
  }
  if (!opts.catalog_path.empty() && opts.command != "serve") {
    return Status::InvalidArgument("--catalog applies only to serve");
  }
  if (!opts.save_catalog_path.empty() && opts.command != "serve") {
    return Status::InvalidArgument("--save-catalog applies only to serve");
  }
  if (opts.mmap && opts.command != "serve") {
    return Status::InvalidArgument("--mmap applies only to serve");
  }
  if (opts.mmap && opts.catalog_path.empty()) {
    return Status::InvalidArgument("--mmap requires --catalog");
  }
  if (opts.metrics_set && opts.command != "serve") {
    return Status::InvalidArgument("--metrics applies only to serve");
  }
  if (opts.slow_query_set && opts.command != "serve") {
    return Status::InvalidArgument("--slow-query-ms applies only to serve");
  }
  if (opts.slow_query_set && !opts.metrics) {
    // The slow-query log reads the per-request timings the instruments
    // produce; asking for it with metrics off would silently log nothing.
    return Status::InvalidArgument("--slow-query-ms requires --metrics=on");
  }
  if (opts.method_set && opts.command != "baseline") {
    return Status::InvalidArgument("--method applies only to baseline");
  }
  if (positional.size() > 1) opts.input_path = positional[1];
  if (positional.size() > 2) {
    return Status::InvalidArgument("unexpected argument: " + positional[2]);
  }
  return opts;
}

Result<AndXorTree> LoadTree(const CliOptions& opts) {
  if (opts.input_path.empty()) {
    return Status::InvalidArgument("missing input file");
  }
  CPDB_ASSIGN_OR_RETURN(std::string content,
                        ReadFileToString(opts.input_path));
  if (opts.format == "tree") {
    return ParseTree(content);
  }
  if (opts.format == "bid") {
    CPDB_ASSIGN_OR_RETURN(std::vector<Block> blocks, ParseBidTable(content));
    return MakeBlockIndependent(blocks);
  }
  return Status::InvalidArgument("unknown --format=" + opts.format +
                                 " (expected tree or bid)");
}

void PrintWorld(const AndXorTree& tree, const std::vector<NodeId>& leaf_ids,
                std::FILE* out) {
  std::fprintf(out, "{");
  bool first = true;
  for (const TupleAlternative& t : WorldTuples(tree, leaf_ids)) {
    std::fprintf(out, "%s(%d:%g)", first ? "" : " ", t.key, t.score);
    first = false;
  }
  std::fprintf(out, "}");
}

int CmdValidate(const CliOptions& opts, std::FILE* out, std::FILE* err) {
  auto tree = LoadTree(opts);
  if (!tree.ok()) {
    std::fprintf(err, "INVALID: %s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::fprintf(out, "OK: %d leaves, %zu keys, %d nodes\n", tree->NumLeaves(),
               tree->Keys().size(), tree->NumNodes());
  return 0;
}

int CmdDumpFlat(const CliOptions& opts, std::FILE* out, std::FILE* err) {
  auto tree = LoadTree(opts);
  if (!tree.ok()) {
    std::fprintf(err, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  // The compiled record table: op stream (kind, slots, originating node,
  // precomputed XOR weights) followed by the leaf table (key, score, node,
  // marginal). This is the exact program the hot fold executes, so the dump
  // is the ground truth for debugging slot recycling and leaf
  // classification.
  std::fprintf(out, "%s", FlatTree::Compile(*tree).ToString().c_str());
  return 0;
}

int CmdDumpCanon(const CliOptions& opts, std::FILE* out, std::FILE* err) {
  auto tree = LoadTree(opts);
  if (!tree.ok()) {
    std::fprintf(err, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  // The two-level identity, exactly as the serving catalog derives it:
  // content_fp hashes the wire-normalized input orientation (the identity a
  // client sees on responses), struct_key hashes the canonical orientation
  // (the identity the caches, fold compiler, and shard router key on). Two
  // inputs differing only by commutative child order print different
  // content lines but the same struct_key and canonical lines.
  auto identity = TreeCatalog::ComputeIdentity(std::move(*tree));
  if (!identity.ok()) {
    std::fprintf(err, "%s\n", identity.status().ToString().c_str());
    return 1;
  }
  std::fprintf(out, "content_fp %s\n", HashToHex(identity->content_fp).c_str());
  std::fprintf(out, "struct_key %s\n", HashToHex(identity->struct_key).c_str());
  std::fprintf(out, "content %s\n", identity->content_bytes.c_str());
  std::fprintf(out, "canonical %s\n", identity->canonical_bytes.c_str());
  return 0;
}

int CmdMarginals(const CliOptions& opts, std::FILE* out, std::FILE* err) {
  auto tree = LoadTree(opts);
  if (!tree.ok()) {
    std::fprintf(err, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::fprintf(out, "key presence_probability\n");
  // Shortest round-trip formatting (shared with the serve wire): strtod of
  // the printed value reproduces the computed double bitwise, where "%.6f"
  // silently truncated it.
  for (KeyId key : tree->Keys()) {
    std::fprintf(out, "%d %s\n", key,
                 FormatRoundTripDouble(tree->KeyMarginal(key)).c_str());
  }
  return 0;
}

int CmdWorlds(const CliOptions& opts, std::FILE* out, std::FILE* err) {
  auto tree = LoadTree(opts);
  if (!tree.ok()) {
    std::fprintf(err, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  auto worlds = EnumerateWorlds(*tree, opts.max_worlds);
  if (!worlds.ok()) {
    std::fprintf(err, "%s\n", worlds.status().ToString().c_str());
    return 1;
  }
  std::sort(worlds->begin(), worlds->end(),
            [](const World& a, const World& b) { return a.prob > b.prob; });
  for (const World& w : *worlds) {
    std::fprintf(out, "%s ", FormatRoundTripDouble(w.prob).c_str());
    PrintWorld(*tree, w.leaf_ids, out);
    std::fprintf(out, "\n");
  }
  return 0;
}

int CmdSample(const CliOptions& opts, std::FILE* out, std::FILE* err) {
  auto tree = LoadTree(opts);
  if (!tree.ok()) {
    std::fprintf(err, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  Rng rng(opts.seed);
  for (int i = 0; i < opts.count; ++i) {
    PrintWorld(*tree, SampleWorld(*tree, &rng), out);
    std::fprintf(out, "\n");
  }
  return 0;
}

int CmdConsensusWorld(const CliOptions& opts, std::FILE* out, std::FILE* err) {
  auto tree = LoadTree(opts);
  if (!tree.ok()) {
    std::fprintf(err, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  if (opts.threads < 0) {
    std::fprintf(err, "--threads must be >= 0 (0 = all hardware cores)\n");
    return 1;
  }
  std::vector<NodeId> world;
  double expected = 0.0;
  if (opts.metric == "symdiff") {
    // Through the engine: the per-leaf marginal folds honor --threads
    // (results are thread-count independent, like every engine path). One
    // marginal pass serves both the answer and its expected distance.
    Engine engine = MakeEngine(opts);
    std::vector<double> marginal = engine.LeafMarginals(*tree);
    world = opts.answer == "median"
                ? MedianWorldSymDiffFromMarginals(*tree, marginal)
                : MeanWorldSymDiffFromMarginals(*tree, marginal);
    expected = ExpectedSymDiffDistanceFromMarginals(*tree, marginal, world);
  } else if (opts.metric == "jaccard") {
    Result<std::vector<NodeId>> result =
        opts.answer == "median" && IsBlockIndependent(*tree) &&
                !IsTupleIndependent(*tree)
            ? MedianWorldJaccardBid(*tree)
            : MeanWorldJaccard(*tree);
    if (!result.ok()) {
      std::fprintf(err, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    world = *result;
    expected = ExpectedJaccardDistance(*tree, world);
  } else {
    std::fprintf(err, "unknown --metric=%s (expected symdiff or jaccard)\n",
                 opts.metric.c_str());
    return 1;
  }
  std::fprintf(out, "%s world under %s, E[distance] = %s:\n",
               opts.answer.c_str(), opts.metric.c_str(),
               FormatRoundTripDouble(expected).c_str());
  PrintWorld(*tree, world, out);
  std::fprintf(out, "\n");
  return 0;
}

int CmdTopK(const CliOptions& opts, std::FILE* out, std::FILE* err) {
  auto tree = LoadTree(opts);
  if (!tree.ok()) {
    std::fprintf(err, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  if (opts.k < 1) {
    std::fprintf(err, "--k must be >= 1\n");
    return 1;
  }
  if (opts.threads < 0) {
    std::fprintf(err, "--threads must be >= 0 (0 = all hardware cores)\n");
    return 1;
  }
  if (opts.metric == "all") {
    // All four metrics (mean answers) over the same tree, submitted as one
    // Engine::EvaluateConsensusBatch call: the rank distribution, strata,
    // columns, and q-matrix units of all queries share the pool.
    const TopKMetric kMetrics[] = {
        TopKMetric::kSymDiff,
        TopKMetric::kIntersection,
        TopKMetric::kFootrule,
        TopKMetric::kKendall,
    };
    Engine engine = MakeEngine(opts);
    std::vector<Engine::ConsensusQuery> queries;
    for (TopKMetric m : kMetrics) {
      queries.push_back({&*tree, opts.k, m, TopKAnswer::kMean});
    }
    std::vector<Result<TopKResult>> results =
        engine.EvaluateConsensusBatch(queries);
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        std::fprintf(err, "%s: %s\n", TopKMetricName(kMetrics[i]),
                     results[i].status().ToString().c_str());
        return 1;
      }
      std::fprintf(out, "top-%d (%s, mean): [", opts.k,
                   TopKMetricName(kMetrics[i]));
      for (KeyId key : results[i]->keys) std::fprintf(out, " %d", key);
      std::fprintf(out, " ]  E[distance] = %s\n",
                   FormatRoundTripDouble(results[i]->expected_distance).c_str());
    }
    return 0;
  }
  Result<TopKMetric> metric = ParseTopKMetricName(opts.metric);
  if (!metric.ok()) {
    std::fprintf(err,
                 "unknown --metric=%s (expected symdiff, intersection, "
                 "footrule or kendall)\n",
                 opts.metric.c_str());
    return 1;
  }
  // Historical flag behavior: --answer values that don't apply to the
  // chosen metric fall back to the mean answer rather than erroring.
  TopKAnswer answer = TopKAnswer::kMean;
  if (opts.answer == "median" && opts.metric == "symdiff") {
    answer = TopKAnswer::kMedian;
  } else if (opts.answer == "any-size" && opts.metric == "symdiff") {
    answer = TopKAnswer::kMeanUnrestricted;
  } else if (opts.answer == "approx" && opts.metric == "intersection") {
    answer = TopKAnswer::kMeanApprox;
  }
  Engine engine = MakeEngine(opts);
  Result<TopKResult> result = engine.ConsensusTopK(*tree, opts.k, *metric,
                                                   answer);
  if (!result.ok()) {
    std::fprintf(err, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::fprintf(out, "top-%d (%s, %s): [", opts.k, opts.metric.c_str(),
               opts.answer.c_str());
  for (KeyId key : result->keys) std::fprintf(out, " %d", key);
  std::fprintf(out, " ]  E[distance] = %s\n",
               FormatRoundTripDouble(result->expected_distance).c_str());
  return 0;
}

// Reads one input line (up to '\n' or EOF, newline not included). Returns
// false at end of input. Incremental on purpose: the streaming serve mode
// must not read request N+1 before answering request N.
bool ReadLine(std::FILE* in, std::string* line) {
  line->clear();
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') return true;
    line->push_back(static_cast<char>(c));
  }
  return !line->empty();
}

// The serve command: reads one request per line (the protocol of
// io/request_protocol.h) and answers through a QueryScheduler — or, with
// --shards=N, through a ShardedScheduler that partitions requests across N
// (engine, catalog, cache) contexts by tree fingerprint, splitting
// --threads evenly across the shard engines. Answers are bitwise identical
// in every configuration; only throughput and the stats breakdown change.
// Two execution modes:
//
//   batch (default)  — the whole input is one scheduler batch: catalog
//       loads apply first (queries may reference trees loaded later in the
//       input), shared folds are deduplicated through the caches, and one
//       response line per request is written at the end, in input order.
//   --stream         — each request executes as it is read and its
//       response line is flushed before the next line is read, so a client
//       on a pipe sees answer N while composing request N+1. Requests
//       execute strictly in input order: a query may only reference trees
//       loaded earlier, and op=stats reports counters as of its line.
//
// In both modes request-level garbage produces an in-band error line for
// that request only; the command keeps serving the rest.
int CmdServe(const CliOptions& opts, std::FILE* out, std::FILE* err) {
  if (opts.threads < 0) {
    std::fprintf(err, "--threads must be >= 0 (0 = all hardware cores)\n");
    return 1;
  }
  std::FILE* in = stdin;
  std::FILE* owned_in = nullptr;
  if (!opts.input_path.empty() && opts.input_path != "-") {
    owned_in = std::fopen(opts.input_path.c_str(), "r");
    if (owned_in == nullptr) {
      std::fprintf(err, "IO error: cannot open '%s'\n",
                   opts.input_path.c_str());
      return 1;
    }
    in = owned_in;
  }

  SchedulerOptions scheduler_options;
  scheduler_options.use_cache = opts.cache;
  scheduler_options.cache_budget_bytes = opts.cache_budget;
  scheduler_options.enable_metrics = opts.metrics;

  // One of the two back ends; the batch and streaming paths below
  // dispatch on which pointer is set. The plain QueryScheduler is the
  // default (wire output unchanged from before sharding existed);
  // --shards=N builds the ShardedScheduler (N >= 1, so the one-shard
  // configuration exercises the same front-end the differential tests
  // compare against).
  std::unique_ptr<Engine> engine;
  std::unique_ptr<TreeCatalog> catalog;
  std::unique_ptr<QueryScheduler> scheduler;
  std::unique_ptr<ShardedScheduler> sharded;
  if (opts.shards >= 1) {
    EngineOptions engine_options;
    engine_options.num_threads =
        ShardedScheduler::ThreadsPerShard(opts.threads, opts.shards);
    sharded = std::make_unique<ShardedScheduler>(opts.shards, engine_options,
                                                 scheduler_options);
  } else {
    EngineOptions engine_options;
    engine_options.num_threads = opts.threads;
    engine = std::make_unique<Engine>(engine_options);
    catalog = std::make_unique<TreeCatalog>();
    scheduler = std::make_unique<QueryScheduler>(engine.get(), catalog.get(),
                                                 scheduler_options);
  }

  // Warm restart: install the snapshot before reading any request. A
  // missing, unreadable, or corrupt snapshot is a *startup error* — the
  // operator asked for a warm catalog, so silently serving cold (and
  // answering every query with "no catalog tree named ...") would be the
  // silently-misread failure mode the strict flag parses exist to prevent.
  if (!opts.catalog_path.empty()) {
    Result<CatalogSnapshot> snapshot =
        opts.mmap ? MmapCatalogSnapshotFile(opts.catalog_path)
                  : ReadCatalogSnapshotFile(opts.catalog_path);
    Status installed =
        snapshot.ok()
            ? (sharded != nullptr
                   ? sharded->InstallSnapshot(*snapshot)
                   : InstallCatalogSnapshot(*snapshot, catalog.get(),
                                            scheduler.get()))
            : snapshot.status();
    if (!installed.ok()) {
      std::fprintf(err, "catalog error: cannot load '%s': %s\n",
                   opts.catalog_path.c_str(), installed.ToString().c_str());
      if (owned_in != nullptr) std::fclose(owned_in);
      return 1;
    }
  }

  // The transport's own instrumentation: parse and format stages record
  // into the scheduler's registry (shard 0's when sharded — the same place
  // every other front-end record lands), and the slow-query log reads the
  // side-band timing off each answered response. All of it is inert when
  // metrics are off.
  ServeInstruments* instruments = sharded != nullptr
                                      ? sharded->frontend_instruments()
                                      : scheduler->instruments();
  const Clock* clk = instruments != nullptr
                         ? (sharded != nullptr ? sharded->clock()
                                               : scheduler->clock())
                         : nullptr;
  const int64_t slow_nanos =
      opts.slow_query_set ? opts.slow_query_ms * 1000000 : -1;
  // Logs one stderr line for an answered request that ran longer than the
  // threshold: line number, total and per-stage times, and the raw request
  // echoed through EscapeFieldValue (a hostile request must not be able to
  // forge log lines). Strictly side-band — stdout bytes never change.
  auto maybe_log_slow = [&](size_t request_line_number,
                            const std::string& raw_request,
                            const ServiceResponse& response) {
    if (slow_nanos < 0 || response.timing.total_ns <= slow_nanos) return;
    std::fprintf(err, "%s\n",
                 FormatSlowQueryLine(static_cast<int64_t>(request_line_number),
                                     raw_request, response.timing)
                     .c_str());
  };

  int failed = 0;
  size_t line_number = 0;
  if (opts.stream) {
    // Streaming: the scheduler pulls requests through `next` — which
    // parses lines, reporting garbage in-band without surfacing a request
    // — and every response is written and flushed by `emit` before the
    // next line is read. `line_number` always names the line of the
    // request currently in flight, so emit's error lines attribute
    // correctly.
    std::string current_raw;  // the in-flight request's text, for the log
    auto next = [&](ServiceRequest* request) -> bool {
      std::string text;
      while (ReadLine(in, &text)) {
        ++line_number;
        Stopwatch parse_watch(clk);
        Result<RequestLine> line = ParseRequestLine(text);
        if (line.ok() && line->fields.empty()) continue;
        Result<ServiceRequest> mapped =
            line.ok() ? ServiceRequestFromLine(*line)
                      : Result<ServiceRequest>(line.status());
        if (instruments != nullptr) {
          instruments->stage_parse->Record(parse_watch.ElapsedNanos());
        }
        if (!mapped.ok()) {
          std::fprintf(out, "%s",
                       FormatErrorLine(line_number, mapped.status()).c_str());
          std::fflush(out);
          ++failed;
          continue;
        }
        current_raw = text;
        *request = *std::move(mapped);
        return true;
      }
      return false;
    };
    auto emit = [&](const Result<ServiceResponse>& response) {
      if (!response.ok()) {
        std::fprintf(out, "%s",
                     FormatErrorLine(line_number, response.status()).c_str());
        ++failed;
      } else {
        Stopwatch format_watch(clk);
        const std::string rendered =
            FormatResponseLine(ResponseToFields(*response));
        if (instruments != nullptr) {
          instruments->stage_format->Record(format_watch.ElapsedNanos());
        }
        std::fprintf(out, "%s", rendered.c_str());
        maybe_log_slow(line_number, current_raw, *response);
      }
      std::fflush(out);
    };
    // Both back ends share the scheduler-level interleaving contract;
    // dispatch to whichever owns this serve.
    if (sharded != nullptr) {
      sharded->ExecuteStreaming(next, emit);
    } else {
      scheduler->ExecuteStreaming(next, emit);
    }
  } else {
    // Batch: tokenize and type every line up front; comment lines produce
    // no response. Slots keep their input line number for error reporting.
    std::vector<size_t> line_numbers;
    std::vector<Result<ServiceRequest>> parsed;
    std::vector<std::string> raw_lines;
    std::string text;
    while (ReadLine(in, &text)) {
      ++line_number;
      Stopwatch parse_watch(clk);
      Result<RequestLine> line = ParseRequestLine(text);
      if (line.ok() && line->fields.empty()) continue;
      line_numbers.push_back(line_number);
      raw_lines.push_back(text);
      parsed.push_back(line.ok() ? ServiceRequestFromLine(*line)
                                 : Result<ServiceRequest>(line.status()));
      if (instruments != nullptr) {
        instruments->stage_parse->Record(parse_watch.ElapsedNanos());
      }
    }

    std::vector<ServiceRequest> batch;
    for (const Result<ServiceRequest>& request : parsed) {
      if (request.ok()) batch.push_back(*request);
    }
    std::vector<Result<ServiceResponse>> results =
        sharded != nullptr ? sharded->ExecuteBatch(batch)
                           : scheduler->ExecuteBatch(batch);

    size_t cursor = 0;
    for (size_t i = 0; i < parsed.size(); ++i) {
      if (!parsed[i].ok()) {
        std::fprintf(
            out, "%s",
            FormatErrorLine(line_numbers[i], parsed[i].status()).c_str());
        ++failed;
        continue;
      }
      const Result<ServiceResponse>& result = results[cursor++];
      if (!result.ok()) {
        std::fprintf(out, "%s",
                     FormatErrorLine(line_numbers[i], result.status()).c_str());
        ++failed;
        continue;
      }
      Stopwatch format_watch(clk);
      const std::string rendered = FormatResponseLine(ResponseToFields(*result));
      if (instruments != nullptr) {
        instruments->stage_format->Record(format_watch.ElapsedNanos());
      }
      std::fprintf(out, "%s", rendered.c_str());
      maybe_log_slow(line_numbers[i], raw_lines[i], *result);
    }
  }
  if (owned_in != nullptr) std::fclose(owned_in);

  // Persist the live catalog (and the retained rank distributions, so the
  // next process's first batch hits warm) after all requests are answered.
  // A failed save is a failed serve: the operator asked for durability.
  if (!opts.save_catalog_path.empty()) {
    CatalogSnapshot snapshot =
        sharded != nullptr
            ? sharded->BuildSnapshot(/*include_distributions=*/true)
            : BuildCatalogSnapshot(*catalog, scheduler.get());
    Status saved = WriteCatalogSnapshotFile(opts.save_catalog_path, snapshot);
    if (!saved.ok()) {
      std::fprintf(err, "catalog error: cannot save '%s': %s\n",
                   opts.save_catalog_path.c_str(), saved.ToString().c_str());
      return 1;
    }
  }
  return failed == 0 ? 0 : 1;
}

int CmdAggregate(const CliOptions& opts, std::FILE* out, std::FILE* err) {
  auto tree = LoadTree(opts);
  if (!tree.ok()) {
    std::fprintf(err, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  // The group-by matrix build is shared with serve's op=aggregate
  // (core/aggregates.h), so both surfaces agree on the instance — and on
  // the missing-label error text, printed here without the status-code
  // prefix the pre-refactor inline build never had.
  auto instance = GroupByInstanceFromTree(*tree, tree->LeafMarginals());
  if (!instance.ok()) {
    std::fprintf(err, "%s\n", instance.status().message().c_str());
    return 1;
  }
  std::vector<double> mean = MeanAggregate(*instance);
  auto median = ClosestPossibleAggregate(*instance);
  if (!median.ok()) {
    std::fprintf(err, "%s\n", median.status().ToString().c_str());
    return 1;
  }
  std::fprintf(out, "group mean_count median_count\n");
  for (size_t j = 0; j < mean.size(); ++j) {
    std::fprintf(out, "%zu %s %lld\n", j, FormatRoundTripDouble(mean[j]).c_str(),
                 static_cast<long long>((*median)[j]));
  }
  return 0;
}

// The offline twin of serve's op=baseline: the four heuristic ranking
// semantics of core/ranking_baselines.h over one tree. The printed keys csv
// is byte-identical to the serve response's keys field for the same
// canonical-content tree: escore is a deterministic fold, erank's serve-side
// parallel Engine::ExpectedRanks is bitwise identical to the sequential core
// form used here, and the distribution-backed methods (global, prf) read the
// same schedule-deterministic ComputeRankDistribution the serve cache
// memoizes.
int CmdBaseline(const CliOptions& opts, std::FILE* out, std::FILE* err) {
  auto tree = LoadTree(opts);
  if (!tree.ok()) {
    std::fprintf(err, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  if (opts.k < 1) {
    std::fprintf(err, "--k must be >= 1\n");
    return 1;
  }
  if (opts.threads < 0) {
    std::fprintf(err, "--threads must be >= 0 (0 = all hardware cores)\n");
    return 1;
  }
  std::vector<KeyId> keys;
  if (opts.method == "escore") {
    keys = TopKByExpectedScore(*tree, opts.k);
  } else if (opts.method == "erank") {
    keys = TopKByExpectedRank(*tree, opts.k);
  } else {
    Engine engine = MakeEngine(opts);
    RankDistribution dist = engine.ComputeRankDistribution(*tree, opts.k);
    keys = opts.method == "global"
               ? GlobalTopK(dist)
               : TopKByPRF(dist, PrfUpsilonHWeights(opts.k));
  }
  std::fprintf(out, "baseline %s k=%d keys=", opts.method.c_str(), opts.k);
  for (size_t i = 0; i < keys.size(); ++i) {
    std::fprintf(out, "%s%d", i == 0 ? "" : ",", keys[i]);
  }
  std::fprintf(out, "\n");
  return 0;
}

// The offline twin of serve's op=hardness: the structural statistics behind
// the paper's tractability frontier, one `name value` line per field, names
// matching the serve response fields byte for byte.
int CmdHardness(const CliOptions& opts, std::FILE* out, std::FILE* err) {
  auto tree = LoadTree(opts);
  if (!tree.ok()) {
    std::fprintf(err, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  TreeHardness h = ComputeTreeHardness(*tree);
  std::fprintf(out, "nodes %lld\n", static_cast<long long>(h.nodes));
  std::fprintf(out, "leaves %lld\n", static_cast<long long>(h.leaves));
  std::fprintf(out, "keys %lld\n", static_cast<long long>(h.keys));
  std::fprintf(out, "dup_keys %lld\n",
               static_cast<long long>(h.duplicated_keys));
  std::fprintf(out, "max_leaves_per_key %lld\n",
               static_cast<long long>(h.max_leaves_per_key));
  std::fprintf(out, "tuple_independent %d\n", h.tuple_independent ? 1 : 0);
  std::fprintf(out, "block_independent %d\n", h.block_independent ? 1 : 0);
  return 0;
}

}  // namespace

std::string CliUsage() {
  return
      "usage: cpdb_cli <command> <input-file> [flags]\n"
      "\n"
      "commands:\n"
      "  validate         check the input against the model constraints\n"
      "  dump-flat        print the compiled FlatTree record table (the\n"
      "                   instruction stream and leaf table the hot\n"
      "                   generating-function fold executes)\n"
      "  dump-canon       print the tree's two-level identity: content_fp\n"
      "                   (hash of the wire-normalized input), struct_key\n"
      "                   (hash of the canonical orientation), and both\n"
      "                   orientations' one-line forms\n"
      "  marginals        per-key presence probabilities\n"
      "  worlds           enumerate possible worlds (most likely first)\n"
      "  sample           draw random worlds (--count, --seed)\n"
      "  consensus-world  --metric=symdiff|jaccard --answer=mean|median\n"
      "  topk             --k=K --metric=symdiff|intersection|footrule|kendall\n"
      "                   (--metric=all batches every metric's mean answer\n"
      "                   through the engine in one submission)\n"
      "                   --answer=mean|median|approx|any-size\n"
      "  aggregate        consensus group-by COUNT over the label attribute\n"
      "  baseline         --k=K --method=escore|erank|global|prf: the\n"
      "                   heuristic ranking semantics the consensus answers\n"
      "                   are compared against (expected score, expected\n"
      "                   rank, global top-k, PRF-upsilon with harmonic\n"
      "                   weights)\n"
      "  hardness         structural hardness statistics: node/leaf/key\n"
      "                   counts, key duplication (the signal behind the\n"
      "                   paper's tractability frontier), independence\n"
      "                   shape flags\n"
      "  serve            answer requests read from the input file (or\n"
      "                   stdin when omitted or '-'), one request per line:\n"
      "                     op=load name=T file=PATH [format=tree|bid]\n"
      "                     op=topk tree=T k=K [metric=...] [answer=...]\n"
      "                     op=world tree=T [answer=mean|median]\n"
      "                     op=stats\n"
      "                     op=metrics [format=kv|prom]\n"
      "                     op=marginals tree=T\n"
      "                     op=aggregate tree=T\n"
      "                     op=baseline tree=T k=K [method=escore|erank|\n"
      "                       global|prf]\n"
      "                     op=hardness tree=T\n"
      "                   any request may add trace=on to receive side-band\n"
      "                   trace_*_ns timing fields on its response line\n"
      "                   (answer fields are bitwise identical either way);\n"
      "                   one tab-separated response line per request; rank\n"
      "                   distributions are cached by (structural key, k)\n"
      "                   and leaf marginals by structural key across\n"
      "                   requests, so trees differing only by commutative\n"
      "                   child order share cache entries.\n"
      "                   Default is batch mode (the whole input is one\n"
      "                   scheduler batch; loads apply before queries);\n"
      "                   --stream answers each request as it is read.\n"
      "                   Exits 0 when every request succeeded, 1 otherwise\n"
      "                   (failures are reported in-band as error lines).\n"
      "  help             print this message\n"
      "\n"
      "flags:\n"
      "  --format=tree|bid   input format (default tree: s-expression;\n"
      "                      bid: 'key prob score [label]' lines)\n"
      "  --max-worlds=N      enumeration guard for `worlds` (default 4096)\n"
      "  (integer flags are parsed strictly: '--k=1o' is an error, not 1)\n"
      "  --threads=N         evaluation threads for topk, consensus-world,\n"
      "                      baseline and serve (default 1; 0 = all\n"
      "                      hardware cores; results are independent of N)\n"
      "  --method=M          baseline only: escore (expected score), erank\n"
      "                      (expected rank), global (global top-k) or prf\n"
      "                      (PRF-upsilon with harmonic weights; default\n"
      "                      escore)\n"
      "  --cache=on|off      serve only: the rank-distribution and\n"
      "                      marginals caches (default on; answers are\n"
      "                      bitwise identical either way — off exists for\n"
      "                      benchmarking)\n"
      "  --cache-budget=B    serve only: byte budget per cache; retained\n"
      "                      entries are LRU-evicted to fit (default\n"
      "                      unbounded; 0 retains nothing; answers are\n"
      "                      bitwise independent of the budget)\n"
      "  --stream            serve only: flush one response line per\n"
      "                      request instead of batching the whole input;\n"
      "                      queries see only trees loaded earlier in the\n"
      "                      stream\n"
      "  --shards=N          serve only: partition requests across N\n"
      "                      engine shards by structural key (each\n"
      "                      shard engine gets max(1, threads/N) threads,\n"
      "                      so N > threads raises the total to N; a\n"
      "                      --cache-budget applies to each shard's\n"
      "                      caches, so retained bytes scale with N;\n"
      "                      answers are bitwise identical for any N;\n"
      "                      op=stats adds per-shard breakdown fields)\n"
      "  --catalog=FILE      serve only: load a catalog snapshot (written\n"
      "                      by --save-catalog) before reading requests —\n"
      "                      the warm-restart path. A missing or corrupt\n"
      "                      snapshot is a startup error, never a silent\n"
      "                      cold start. Answers are bitwise identical to\n"
      "                      loading the same trees via op=load lines\n"
      "  --save-catalog=FILE serve only: after answering all requests,\n"
      "                      write the catalog (and the retained rank\n"
      "                      distributions, so the next process's first\n"
      "                      batch hits warm) as a checksummed snapshot\n"
      "  --mmap              serve only, requires --catalog: map the\n"
      "                      snapshot read-only instead of streaming it\n"
      "                      into memory; same validation, same answers\n"
      "  --metrics=on|off    serve only: the metrics registry behind\n"
      "                      op=metrics (default on; off disables all\n"
      "                      timing reads and makes op=metrics an error;\n"
      "                      answers are bitwise identical either way)\n"
      "  --slow-query-ms=T   serve only, requires --metrics=on: log every\n"
      "                      answered request slower than T milliseconds\n"
      "                      to stderr with its per-stage timing and the\n"
      "                      escaped request text (T=0 logs every request;\n"
      "                      stdout bytes never change)\n";
}

int RunCli(const std::vector<std::string>& args, std::FILE* out,
           std::FILE* err) {
  auto opts = ParseArgs(args);
  if (!opts.ok()) {
    std::fprintf(err, "%s\n%s", opts.status().ToString().c_str(),
                 CliUsage().c_str());
    return 2;
  }
  const std::string& cmd = opts->command;
  if (cmd == "help") {
    std::fprintf(out, "%s", CliUsage().c_str());
    return 0;
  }
  if (cmd == "validate") return CmdValidate(*opts, out, err);
  if (cmd == "dump-flat") return CmdDumpFlat(*opts, out, err);
  if (cmd == "dump-canon") return CmdDumpCanon(*opts, out, err);
  if (cmd == "marginals") return CmdMarginals(*opts, out, err);
  if (cmd == "worlds") return CmdWorlds(*opts, out, err);
  if (cmd == "sample") return CmdSample(*opts, out, err);
  if (cmd == "consensus-world") return CmdConsensusWorld(*opts, out, err);
  if (cmd == "topk") return CmdTopK(*opts, out, err);
  if (cmd == "serve") return CmdServe(*opts, out, err);
  if (cmd == "aggregate") return CmdAggregate(*opts, out, err);
  if (cmd == "baseline") return CmdBaseline(*opts, out, err);
  if (cmd == "hardness") return CmdHardness(*opts, out, err);
  std::fprintf(err, "unknown command '%s'\n%s", cmd.c_str(),
               CliUsage().c_str());
  return 2;
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// The consensusdb command-line tool, as a library so tests can drive it
// in-process. Supported commands (see Usage() for the full synopsis):
//
//   validate         check a tree / BID file against the model constraints
//   marginals        per-key presence probabilities
//   worlds           enumerate possible worlds with probabilities
//   sample           draw random worlds
//   consensus-world  mean/median world under symmetric difference / Jaccard
//   topk             consensus Top-k answers under the Section 5 metrics
//   aggregate        mean + median group-by COUNT vectors (BID label input)
//   serve            request protocol through the serving layer
//                    (service/query_scheduler.h): catalog loads, Top-k and
//                    set-consensus queries with cross-query caching of rank
//                    distributions and leaf marginals (byte-budgeted LRU,
//                    --cache-budget), one request/response per line, batched
//                    by default or flushed per request with --stream
//
// Input files are either and/xor trees in the s-expression format
// (io/tree_text.h) or BID tables (io/table_io.h) selected with --format.

#ifndef CPDB_TOOLS_CLI_LIB_H_
#define CPDB_TOOLS_CLI_LIB_H_

#include <cstdio>
#include <string>
#include <vector>

namespace cpdb {

/// \brief Runs the CLI with the given arguments (argv[0] is the program
/// name). Output goes to `out`, diagnostics to `err`. Returns the process
/// exit code (0 on success).
int RunCli(const std::vector<std::string>& args, std::FILE* out,
           std::FILE* err);

/// \brief The usage text printed for `help` and argument errors.
std::string CliUsage();

}  // namespace cpdb

#endif  // CPDB_TOOLS_CLI_LIB_H_

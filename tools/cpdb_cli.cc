// Copyright 2026 The ConsensusDB Authors
//
// Entry point for the consensusdb command line tool; all logic lives in
// cli_lib so the test suite can exercise it in-process.

#include "tools/cli_lib.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  return cpdb::RunCli(args, stdout, stderr);
}

#!/bin/sh
# Key-hygiene lint: no raw uint64_t identity values in serving-layer headers.
#
# The serving layer carries two distinct identities — ContentFp (the
# wire-visible hash of the input orientation) and StructKey (the canonical-
# orientation hash the caches, fold compiler, and shard router key on). Both
# are strong types (src/common/hash.h) precisely so the compiler rejects
# passing one where the other is expected. A raw `uint64_t fingerprint`
# (or struct_key / content_fp) parameter or member in a src/service/ header
# reopens that hole — this script fails the build when one appears.
# Implementation files and tests may hash to uint64_t freely; the lint
# guards the layer's public seams.
#
# Usage: tools/check_key_hygiene.sh [repo-root]

set -eu

root="${1:-$(dirname "$0")/..}"
cd "$root"

pattern='uint64_t[[:space:]]+[A-Za-z_]*(fingerprint|finger_print|struct_key|content_fp)'

violations=$(grep -RnE "$pattern" src/service \
  --include='*.h' || true)

if [ -n "$violations" ]; then
  echo "key-hygiene lint FAILED: raw uint64_t identity values in src/service/ headers." >&2
  echo "Use the strong key types ContentFp / StructKey (src/common/hash.h) instead:" >&2
  echo "$violations" >&2
  exit 1
fi

echo "key hygiene OK: service headers carry identities as ContentFp/StructKey."

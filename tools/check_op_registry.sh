#!/bin/sh
# Op-registry coverage lint: every op in the table is documented and tested.
#
# The OpRegistry (src/service/op_registry.cc) is the single source of truth
# for the serve protocol's op set — the parser, both schedulers, the
# instruments, and the unknown-op error all walk it. This script closes the
# loop on the two things a table entry cannot enforce about itself:
#
#   * the op appears in the ARCHITECTURE.md protocol grammar ("op=<name>"),
#     so the wire surface cannot grow undocumented;
#   * the op appears in at least one test under tests/ ("op=<name>"), so it
#     cannot ship without protocol-level coverage.
#
# Usage: tools/check_op_registry.sh [repo-root]

set -eu

root="${1:-$(dirname "$0")/..}"
cd "$root"

registry="src/service/op_registry.cc"
if [ ! -f "$registry" ]; then
  echo "op-registry lint FAILED: $registry not found." >&2
  exit 1
fi

# The wire names, straight from the table entries (spec.name = "...").
names=$(sed -n 's/.*spec\.name = "\([a-z_]*\)".*/\1/p' "$registry")
if [ -z "$names" ]; then
  echo "op-registry lint FAILED: no 'spec.name = \"...\"' entries found in $registry." >&2
  exit 1
fi

violations=""
for name in $names; do
  if ! grep -q "op=$name" docs/ARCHITECTURE.md; then
    violations="$violations
  op '$name' is not documented in docs/ARCHITECTURE.md (no 'op=$name')"
  fi
  if ! grep -rq "op=$name" tests/; then
    violations="$violations
  op '$name' appears in no test under tests/ (no 'op=$name')"
  fi
done

if [ -n "$violations" ]; then
  echo "op-registry lint FAILED: registry ops missing docs or tests.$violations" >&2
  exit 1
fi

count=$(echo "$names" | wc -l | tr -d ' ')
echo "op registry OK: all $count ops are documented in docs/ARCHITECTURE.md and covered under tests/."

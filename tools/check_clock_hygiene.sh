#!/bin/sh
# Clock-hygiene lint: no std::chrono clock reads outside src/obs/.
#
# Every timing read on the serve path must go through the injectable
# cpdb::Clock (src/obs/clock.h) so tests can pin histograms, trace fields,
# and the slow-query log with a FakeClock. A direct
# std::chrono::*_clock::now() call anywhere else is an untestable timing
# source — this script fails the build when one appears in production code
# (src/ and tools/). Tests and benchmarks may read wall clocks freely.
#
# Usage: tools/check_clock_hygiene.sh [repo-root]

set -eu

root="${1:-$(dirname "$0")/..}"
cd "$root"

pattern='(steady_clock|system_clock|high_resolution_clock)[[:space:]]*::[[:space:]]*now'

violations=$(grep -RnE "$pattern" src tools \
  --include='*.h' --include='*.cc' \
  | grep -v '^src/obs/' || true)

if [ -n "$violations" ]; then
  echo "clock-hygiene lint FAILED: direct std::chrono clock reads outside src/obs/." >&2
  echo "Route timing through cpdb::Clock (src/obs/clock.h) instead:" >&2
  echo "$violations" >&2
  exit 1
fi

echo "clock hygiene OK: all std::chrono clock reads are inside src/obs/."

// Copyright 2026 The ConsensusDB Authors
//
// Experiment E3: Jaccard-distance consensus (Lemmas 1-2). Times a single
// Lemma 1 evaluation (O(n^3)) and the full prefix-scan mean-world search
// (O(n^4)), and reports how the mean world's size tracks the probability
// profile.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.h"
#include "core/jaccard.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

void BM_ExpectedJaccardSingleEval(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(3);
  auto tree = RandomTupleIndependent(n, &rng);
  std::vector<NodeId> world(tree->LeafIds().begin(),
                            tree->LeafIds().begin() + n / 2);
  for (auto _ : state) {
    double d = ExpectedJaccardDistance(*tree, world);
    benchmark::DoNotOptimize(d);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ExpectedJaccardSingleEval)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->Complexity(benchmark::oNCubed);

void BM_MeanWorldJaccard(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(5);
  auto tree = RandomTupleIndependent(n, &rng);
  for (auto _ : state) {
    auto world = MeanWorldJaccard(*tree);
    benchmark::DoNotOptimize(world);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MeanWorldJaccard)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_MedianWorldJaccardBid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 3;
  auto tree = RandomBid(opts, &rng);
  for (auto _ : state) {
    auto world = MedianWorldJaccardBid(*tree);
    benchmark::DoNotOptimize(world);
  }
}
BENCHMARK(BM_MedianWorldJaccardBid)->RangeMultiplier(2)->Range(8, 64);

void PrintQualityTable() {
  std::printf("\n## E3: Jaccard mean world composition\n\n");
  std::printf("| n | mean-world size | E[d_J] of mean world | E[d_J] of "
              "empty world | E[d_J] of full set |\n");
  std::printf("|---|---|---|---|---|\n");
  for (int n : {8, 16, 32, 64}) {
    Rng rng(5);
    auto tree = RandomTupleIndependent(n, &rng);
    auto mean = MeanWorldJaccard(*tree);
    std::vector<NodeId> all = tree->LeafIds();
    std::printf("| %d | %zu | %.4f | %.4f | %.4f |\n", n, mean->size(),
                ExpectedJaccardDistance(*tree, *mean),
                ExpectedJaccardDistance(*tree, {}),
                ExpectedJaccardDistance(*tree, all));
  }
  std::printf("\n");
}

}  // namespace
}  // namespace cpdb

int main(int argc, char** argv) {
  cpdb::PrintQualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

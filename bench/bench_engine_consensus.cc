// Copyright 2026 The ConsensusDB Authors
//
// Thread scaling of the engine's newly parallelized consensus paths: the
// MedianTopKSymDiff stratum search, the footrule / intersection Hungarian
// cost-column builds, set consensus with chunked marginal folds, and the
// batched query API. Every path is schedule-deterministic, so these runs
// double as a determinism smoke check: thread count changes wall-clock only
// (on multi-core hosts; a 1-core container shows flat curves).

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

AndXorTree MakeDeepTree(int num_keys) {
  Rng rng(29);
  RandomTreeOptions opts;
  opts.num_keys = num_keys;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  return *RandomAndXorTree(opts, &rng);
}

Engine MakeEngine(int threads) {
  EngineOptions opts;
  opts.num_threads = threads;
  opts.use_fast_bid_path = false;
  return Engine(opts);
}

// The stratum-parallel Theorem 4 search (one DP per distinct score).
void BM_EngineMedianSymDiff(benchmark::State& state) {
  AndXorTree tree = MakeDeepTree(static_cast<int>(state.range(0)));
  Engine engine = MakeEngine(static_cast<int>(state.range(1)));
  const int k = 8;
  for (auto _ : state) {
    auto result = engine.ConsensusTopK(tree, k, TopKMetric::kSymDiff,
                                       TopKAnswer::kMedian);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EngineMedianSymDiff)
    ->Args({40, 1})
    ->Args({40, 2})
    ->Args({40, 4})
    ->Args({40, 8});

// Per-candidate cost columns + Hungarian solve.
void BM_EngineFootrule(benchmark::State& state) {
  AndXorTree tree = MakeDeepTree(static_cast<int>(state.range(0)));
  Engine engine = MakeEngine(static_cast<int>(state.range(1)));
  const int k = 10;
  for (auto _ : state) {
    auto result = engine.ConsensusTopK(tree, k, TopKMetric::kFootrule);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EngineFootrule)
    ->Args({60, 1})
    ->Args({60, 2})
    ->Args({60, 4})
    ->Args({60, 8});

// Pairwise q matrix + footrule columns + d_K re-score.
void BM_EngineKendall(benchmark::State& state) {
  AndXorTree tree = MakeDeepTree(20);
  Engine engine = MakeEngine(static_cast<int>(state.range(0)));
  const int k = 5;
  for (auto _ : state) {
    auto result = engine.ConsensusTopK(tree, k, TopKMetric::kKendall);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EngineKendall)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Chunked per-leaf marginal folds feeding the sequential min-cost DP.
void BM_EngineSetConsensus(benchmark::State& state) {
  AndXorTree tree = MakeDeepTree(200);
  Engine engine = MakeEngine(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::vector<NodeId> world = engine.MedianWorldSymDiff(tree);
    benchmark::DoNotOptimize(world);
  }
}
BENCHMARK(BM_EngineSetConsensus)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Whole-query fan-out: all four metrics x several k in one submission.
void BM_EngineConsensusBatch(benchmark::State& state) {
  AndXorTree tree = MakeDeepTree(30);
  Engine engine = MakeEngine(static_cast<int>(state.range(0)));
  std::vector<Engine::ConsensusQuery> queries;
  for (int k : {2, 4, 8}) {
    for (TopKMetric metric :
         {TopKMetric::kSymDiff, TopKMetric::kIntersection,
          TopKMetric::kFootrule, TopKMetric::kKendall}) {
      queries.push_back({&tree, k, metric, TopKAnswer::kMean});
    }
  }
  for (auto _ : state) {
    auto results = engine.EvaluateConsensusBatch(queries);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_EngineConsensusBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace cpdb

BENCHMARK_MAIN();

// Copyright 2026 The ConsensusDB Authors
//
// Experiment E2: mean/median worlds under symmetric difference (Theorem 2 /
// Corollary 1) are near-linear after marginal computation, on all model
// classes; the quality table confirms median == mean away from ties and
// reports both expected distances.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.h"
#include "core/set_consensus.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

void BM_MeanWorldBid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(11);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 3;
  auto tree = RandomBid(opts, &rng);
  for (auto _ : state) {
    auto world = MeanWorldSymDiff(*tree);
    benchmark::DoNotOptimize(world);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MeanWorldBid)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_MedianWorldBid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(11);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 3;
  auto tree = RandomBid(opts, &rng);
  for (auto _ : state) {
    auto world = MedianWorldSymDiff(*tree);
    benchmark::DoNotOptimize(world);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MedianWorldBid)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_MedianWorldDeepAndXor(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(13);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_depth = 5;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  state.counters["leaves"] = tree->NumLeaves();
  for (auto _ : state) {
    auto world = MedianWorldSymDiff(*tree);
    benchmark::DoNotOptimize(world);
  }
}
BENCHMARK(BM_MedianWorldDeepAndXor)->RangeMultiplier(4)->Range(16, 1024);

void PrintQualityTable() {
  std::printf("\n## E2: mean vs median world under d_Delta\n\n");
  std::printf(
      "| model | n | E[d] mean world | E[d] median world | identical? |\n");
  std::printf("|---|---|---|---|---|\n");
  for (int n : {64, 256, 1024}) {
    Rng rng(11);
    RandomTreeOptions opts;
    opts.num_keys = n;
    opts.max_alternatives = 3;
    auto tree = RandomBid(opts, &rng);
    auto mean = MeanWorldSymDiff(*tree);
    auto median = MedianWorldSymDiff(*tree);
    std::printf("| BID | %d | %.4f | %.4f | %s |\n", n,
                ExpectedSymDiffDistance(*tree, mean),
                ExpectedSymDiffDistance(*tree, median),
                mean == median ? "yes" : "no");
  }
  for (int n : {32, 128, 512}) {
    Rng rng(13);
    RandomTreeOptions opts;
    opts.num_keys = n;
    opts.max_depth = 5;
    opts.max_alternatives = 2;
    auto tree = RandomAndXorTree(opts, &rng);
    auto mean = MeanWorldSymDiff(*tree);
    auto median = MedianWorldSymDiff(*tree);
    std::printf("| deep and/xor | %d | %.4f | %.4f | %s |\n", n,
                ExpectedSymDiffDistance(*tree, mean),
                ExpectedSymDiffDistance(*tree, median),
                mean == median ? "yes" : "no");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace cpdb

int main(int argc, char** argv) {
  cpdb::PrintQualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

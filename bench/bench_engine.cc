// Copyright 2026 The ConsensusDB Authors
//
// Scaling of the parallel evaluation engine: rank distributions and chunked
// Monte-Carlo estimation at 1/2/4/8 threads, against the sequential core
// functions as the 1-thread baseline. Because every engine path is
// schedule-deterministic, these runs also double as a determinism smoke
// check: all thread counts produce the same answers, only the wall-clock
// changes (on multi-core hosts; a 1-core container shows flat curves).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/monte_carlo.h"
#include "core/rank_distribution.h"
#include "engine/engine.h"
#include "model/possible_worlds.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

AndXorTree MakeTree(int num_keys) {
  Rng rng(17);
  RandomTreeOptions opts;
  opts.num_keys = num_keys;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  return *RandomAndXorTree(opts, &rng);
}

void BM_CoreRankDist(benchmark::State& state) {
  AndXorTree tree = MakeTree(static_cast<int>(state.range(0)));
  const int k = 10;
  for (auto _ : state) {
    RankDistribution dist = ComputeRankDistribution(tree, k);
    benchmark::DoNotOptimize(dist);
  }
}
BENCHMARK(BM_CoreRankDist)->Arg(40)->Arg(80);

void BM_EngineRankDist(benchmark::State& state) {
  AndXorTree tree = MakeTree(static_cast<int>(state.range(0)));
  const int k = 10;
  EngineOptions opts;
  opts.num_threads = static_cast<int>(state.range(1));
  opts.use_fast_bid_path = false;
  Engine engine(opts);
  for (auto _ : state) {
    RankDistribution dist = engine.ComputeRankDistribution(tree, k);
    benchmark::DoNotOptimize(dist);
  }
}
BENCHMARK(BM_EngineRankDist)
    ->Args({40, 1})
    ->Args({40, 2})
    ->Args({40, 4})
    ->Args({40, 8})
    ->Args({80, 1})
    ->Args({80, 2})
    ->Args({80, 4})
    ->Args({80, 8});

void BM_CoreMonteCarlo(benchmark::State& state) {
  AndXorTree tree = MakeTree(60);
  const int samples = static_cast<int>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    McEstimate e = EstimateOverWorlds(
        tree, samples, &rng, [](const std::vector<NodeId>& world) {
          return static_cast<double>(world.size());
        });
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_CoreMonteCarlo)->Arg(10000);

void BM_EngineMonteCarlo(benchmark::State& state) {
  AndXorTree tree = MakeTree(60);
  const int samples = static_cast<int>(state.range(0));
  EngineOptions opts;
  opts.num_threads = static_cast<int>(state.range(1));
  Engine engine(opts);
  for (auto _ : state) {
    McEstimate e = engine.EstimateOverWorlds(
        tree, samples, 5, [](const std::vector<NodeId>& world) {
          return static_cast<double>(world.size());
        });
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_EngineMonteCarlo)
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({10000, 8});

void BM_EnginePairwiseOrder(benchmark::State& state) {
  AndXorTree tree = MakeTree(24);
  std::vector<KeyId> keys = tree.Keys();
  EngineOptions opts;
  opts.num_threads = static_cast<int>(state.range(0));
  Engine engine(opts);
  for (auto _ : state) {
    auto p = engine.PairwiseOrderProbabilities(tree, keys);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_EnginePairwiseOrder)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace cpdb

BENCHMARK_MAIN();

// Copyright 2026 The ConsensusDB Authors
//
// Experiment E1: the generating-function method (Theorem 1) is polynomial.
// Times the world-size PGF on tuple-independent tables, BID tables and deep
// and/xor trees across n, with truncated and full coefficient ranges, and
// checks the retained mass (sanity: the PGF of a probability distribution
// sums to 1 when untruncated).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.h"
#include "model/generating_function.h"
#include "poly/poly1.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

Poly1 SizeGf(const AndXorTree& tree, int max_degree) {
  auto leaf_poly = [&](NodeId) { return Poly1::Monomial(max_degree, 1, 1.0); };
  auto make_const = [&](double c) { return Poly1::Constant(max_degree, c); };
  return EvalGeneratingFunction<Poly1>(tree, leaf_poly, make_const);
}

void BM_SizeGfTupleIndependentFull(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(42);
  auto tree = RandomTupleIndependent(n, &rng);
  for (auto _ : state) {
    Poly1 f = SizeGf(*tree, n);
    benchmark::DoNotOptimize(f);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SizeGfTupleIndependentFull)
    ->RangeMultiplier(2)
    ->Range(64, 4096)
    ->Complexity(benchmark::oNSquared);

void BM_SizeGfTupleIndependentTruncated(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  const int k = 32;  // output-sensitive truncation
  Rng rng(42);
  auto tree = RandomTupleIndependent(n, &rng);
  for (auto _ : state) {
    Poly1 f = SizeGf(*tree, k);
    benchmark::DoNotOptimize(f);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SizeGfTupleIndependentTruncated)
    ->RangeMultiplier(2)
    ->Range(64, 4096)
    ->Complexity(benchmark::oN);

void BM_SizeGfBid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 3;
  auto tree = RandomBid(opts, &rng);
  for (auto _ : state) {
    Poly1 f = SizeGf(*tree, 32);
    benchmark::DoNotOptimize(f);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SizeGfBid)->RangeMultiplier(2)->Range(64, 2048)->Complexity();

void BM_SizeGfDeepAndXor(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(9);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_depth = 5;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  state.counters["leaves"] = tree->NumLeaves();
  for (auto _ : state) {
    Poly1 f = SizeGf(*tree, 32);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_SizeGfDeepAndXor)->RangeMultiplier(2)->Range(16, 256);

void PrintMassSanityTable() {
  std::printf("\n## E1: generating-function mass sanity"
              " (untruncated PGF must sum to 1)\n\n");
  std::printf("| model | n | leaves | sum of coefficients |\n");
  std::printf("|---|---|---|---|\n");
  for (int n : {64, 256, 1024}) {
    Rng rng(42);
    auto tree = RandomTupleIndependent(n, &rng);
    Poly1 f = SizeGf(*tree, n);
    std::printf("| tuple-independent | %d | %d | %.12f |\n", n,
                tree->NumLeaves(), f.SumCoeffs());
  }
  for (int n : {32, 128}) {
    Rng rng(9);
    RandomTreeOptions opts;
    opts.num_keys = n;
    opts.max_depth = 5;
    opts.max_alternatives = 2;
    auto tree = RandomAndXorTree(opts, &rng);
    Poly1 f = SizeGf(*tree, tree->NumLeaves());
    std::printf("| deep and/xor | %d | %d | %.12f |\n", n, tree->NumLeaves(),
                f.SumCoeffs());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace cpdb

int main(int argc, char** argv) {
  cpdb::PrintMassSanityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Copyright 2026 The ConsensusDB Authors
//
// Experiment E1: the generating-function method (Theorem 1) is polynomial.
// Times the world-size PGF on tuple-independent tables, BID tables and deep
// and/xor trees across n, with truncated and full coefficient ranges, and
// checks the retained mass (sanity: the PGF of a probability distribution
// sums to 1 when untruncated).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "model/flat_tree.h"
#include "model/generating_function.h"
#include "poly/poly1.h"
#include "poly/poly_arena.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

Poly1 SizeGf(const AndXorTree& tree, int max_degree) {
  auto leaf_poly = [&](NodeId) { return Poly1::Monomial(max_degree, 1, 1.0); };
  auto make_const = [&](double c) { return Poly1::Constant(max_degree, c); };
  return EvalGeneratingFunction<Poly1>(tree, leaf_poly, make_const);
}

// The flat-path equivalent of SizeGf: every leaf tagged x, dy = 0. The
// FlatTree is compiled once outside the timed loop (matching how the engine
// amortizes compilation across leaves) and the arena is reused so the
// steady state allocates nothing.
void SizeGfFlat(const FlatTree& flat, int max_degree, double* out,
                PolyArena* arena) {
  flat.EvalGeneratingFunction(
      max_degree, 0, [](int, double* row) { row[1] = 1.0; }, out, arena);
}

void BM_SizeGfTupleIndependentFull(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(42);
  auto tree = RandomTupleIndependent(n, &rng);
  for (auto _ : state) {
    Poly1 f = SizeGf(*tree, n);
    benchmark::DoNotOptimize(f);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SizeGfTupleIndependentFull)
    ->RangeMultiplier(2)
    ->Range(64, 4096)
    ->Complexity(benchmark::oNSquared);

void BM_SizeGfTupleIndependentTruncated(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  const int k = 32;  // output-sensitive truncation
  Rng rng(42);
  auto tree = RandomTupleIndependent(n, &rng);
  for (auto _ : state) {
    Poly1 f = SizeGf(*tree, k);
    benchmark::DoNotOptimize(f);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SizeGfTupleIndependentTruncated)
    ->RangeMultiplier(2)
    ->Range(64, 4096)
    ->Complexity(benchmark::oN);

void BM_SizeGfBid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 3;
  auto tree = RandomBid(opts, &rng);
  for (auto _ : state) {
    Poly1 f = SizeGf(*tree, 32);
    benchmark::DoNotOptimize(f);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SizeGfBid)->RangeMultiplier(2)->Range(64, 2048)->Complexity();

// Flat-vs-pointer ablation (tentpole measurement): the same truncated size
// PGF through the compiled FlatTree + arena + vectorized kernels. Compare
// against BM_SizeGfTupleIndependentTruncated / BM_SizeGfBid at equal n.
void BM_SizeGfFlatTupleIndependentTruncated(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  const int k = 32;
  Rng rng(42);
  auto tree = RandomTupleIndependent(n, &rng);
  const FlatTree flat = FlatTree::Compile(*tree);
  std::vector<double> out(static_cast<size_t>(k) + 1);
  PolyArena arena;
  for (auto _ : state) {
    SizeGfFlat(flat, k, out.data(), &arena);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SizeGfFlatTupleIndependentTruncated)
    ->RangeMultiplier(2)
    ->Range(64, 4096)
    ->Complexity(benchmark::oN);

void BM_SizeGfFlatBid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 3;
  auto tree = RandomBid(opts, &rng);
  const FlatTree flat = FlatTree::Compile(*tree);
  std::vector<double> out(33);
  PolyArena arena;
  for (auto _ : state) {
    SizeGfFlat(flat, 32, out.data(), &arena);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SizeGfFlatBid)->RangeMultiplier(2)->Range(64, 2048)->Complexity();

// Compile cost in isolation, so the amortized numbers above can be read
// honestly: one Compile is one O(N) pass plus slot bookkeeping.
void BM_FlatTreeCompile(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 3;
  auto tree = RandomBid(opts, &rng);
  for (auto _ : state) {
    FlatTree flat = FlatTree::Compile(*tree);
    benchmark::DoNotOptimize(flat);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_FlatTreeCompile)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity(benchmark::oN);

void BM_SizeGfDeepAndXor(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(9);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_depth = 5;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  state.counters["leaves"] = tree->NumLeaves();
  for (auto _ : state) {
    Poly1 f = SizeGf(*tree, 32);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_SizeGfDeepAndXor)->RangeMultiplier(2)->Range(16, 256);

void BM_SizeGfFlatDeepAndXor(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(9);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_depth = 5;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  state.counters["leaves"] = tree->NumLeaves();
  const FlatTree flat = FlatTree::Compile(*tree);
  std::vector<double> out(33);
  PolyArena arena;
  for (auto _ : state) {
    SizeGfFlat(flat, 32, out.data(), &arena);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SizeGfFlatDeepAndXor)->RangeMultiplier(2)->Range(16, 256);

void PrintMassSanityTable() {
  std::printf("\n## E1: generating-function mass sanity"
              " (untruncated PGF must sum to 1)\n\n");
  std::printf("| model | n | leaves | sum of coefficients |\n");
  std::printf("|---|---|---|---|\n");
  for (int n : {64, 256, 1024}) {
    Rng rng(42);
    auto tree = RandomTupleIndependent(n, &rng);
    Poly1 f = SizeGf(*tree, n);
    std::printf("| tuple-independent | %d | %d | %.12f |\n", n,
                tree->NumLeaves(), f.SumCoeffs());
  }
  for (int n : {32, 128}) {
    Rng rng(9);
    RandomTreeOptions opts;
    opts.num_keys = n;
    opts.max_depth = 5;
    opts.max_alternatives = 2;
    auto tree = RandomAndXorTree(opts, &rng);
    Poly1 f = SizeGf(*tree, tree->NumLeaves());
    std::printf("| deep and/xor | %d | %d | %.12f |\n", n, tree->NumLeaves(),
                f.SumCoeffs());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace cpdb

int main(int argc, char** argv) {
  cpdb::PrintMassSanityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

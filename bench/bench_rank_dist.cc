// Copyright 2026 The ConsensusDB Authors
//
// Experiment E4: the rank-distribution engine (Example 3 machinery) that
// powers every Section 5 algorithm: O(n^2 k) scaling over n and k, on BID
// and deep and/xor inputs, plus the pairwise order statistics for Kendall.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/rank_distribution.h"
#include "core/rank_distribution_fast.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

void BM_RankDistBid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  Rng rng(17);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  for (auto _ : state) {
    RankDistribution dist = ComputeRankDistribution(*tree, k);
    benchmark::DoNotOptimize(dist);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RankDistBid)
    ->ArgsProduct({{32, 64, 128, 256, 512}, {10}})
    ->ArgsProduct({{128}, {5, 10, 20, 40}})
    ->Complexity(benchmark::oNSquared);

// Pointer-tree reference for BM_RankDistBid (identical inputs, identical
// bits out): the per-leaf EvalGeneratingFunction walk that allocates one
// Poly2 per node visit. The gap between the two at large n is the
// flatten+arena+vectorize win persisted in BENCH_fold_flatten.json.
void BM_RankDistBidPointer(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  Rng rng(17);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  for (auto _ : state) {
    RankDistribution dist = ComputeRankDistributionPointer(*tree, k);
    benchmark::DoNotOptimize(dist);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RankDistBidPointer)
    ->ArgsProduct({{32, 64, 128, 256, 512}, {10}})
    ->ArgsProduct({{128}, {5, 10, 20, 40}})
    ->Complexity(benchmark::oNSquared);

void BM_RankDistDeepAndXor(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  Rng rng(19);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_depth = 4;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  state.counters["leaves"] = tree->NumLeaves();
  for (auto _ : state) {
    RankDistribution dist = ComputeRankDistribution(*tree, k);
    benchmark::DoNotOptimize(dist);
  }
}
BENCHMARK(BM_RankDistDeepAndXor)->ArgsProduct({{16, 32, 64, 128}, {10}});

// E4b ablation: the segment-tree fast path (O(L k^2 log n)) vs the generic
// generating-function engine (O(L^2 k)) on the same BID inputs. Expected
// shape: the fast path wins by a growing factor as n rises.
void BM_RankDistBidFast(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  Rng rng(17);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  for (auto _ : state) {
    auto dist = ComputeRankDistributionFast(*tree, k);
    benchmark::DoNotOptimize(dist);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RankDistBidFast)
    ->ArgsProduct({{32, 64, 128, 256, 512, 1024, 2048}, {10}})
    ->ArgsProduct({{128}, {5, 10, 20, 40}})
    ->Complexity(benchmark::oNLogN);

void BM_PairwiseOrderProbabilities(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(23);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  std::vector<KeyId> keys = tree->Keys();
  for (auto _ : state) {
    auto p = PairwiseOrderProbabilities(*tree, keys);
    benchmark::DoNotOptimize(p);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_PairwiseOrderProbabilities)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity();

// Pointer-tree reference for the pairwise matrix: what the code did before
// the satellite fix — re-walk the pointer tree for every (u, v) cell
// instead of compiling the FlatTree once for all n^2 cells.
void BM_PairwiseOrderProbabilitiesPointer(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(23);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  std::vector<KeyId> keys = tree->Keys();
  for (auto _ : state) {
    std::vector<std::vector<double>> p(
        keys.size(), std::vector<double>(keys.size(), 0.0));
    for (size_t i = 0; i < keys.size(); ++i) {
      for (size_t j = 0; j < keys.size(); ++j) {
        if (i == j) continue;
        p[i][j] = PrRanksBeforePointer(*tree, keys[i], keys[j]);
      }
    }
    benchmark::DoNotOptimize(p);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_PairwiseOrderProbabilitiesPointer)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity();

}  // namespace
}  // namespace cpdb

BENCHMARK_MAIN();

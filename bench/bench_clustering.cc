// Copyright 2026 The ConsensusDB Authors
//
// Experiment E11: consensus clustering (Section 6.2). Times the w_ij
// precomputation (closed-form on BID vs generating functions on correlated
// trees) and the pivot algorithm, and compares pivot / pivot+local-search /
// best-of-sampled-worlds against the exact optimum on small instances.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "core/clustering.h"
#include "model/builders.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

Result<AndXorTree> LabeledInstance(int n, int labels, Rng* rng) {
  std::vector<std::vector<double>> probs(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(labels), 0.0));
  for (auto& row : probs) {
    double mass = rng->Uniform(0.6, 1.0);
    int support = static_cast<int>(rng->UniformInt(1, std::min(3, labels)));
    for (int s = 0; s < support; ++s) {
      row[static_cast<size_t>(rng->UniformInt(0, labels - 1))] += mass / support;
    }
  }
  return MakeAttributeUncertain(probs);
}

void BM_CoClusterClosedForm(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(83);
  auto tree = LabeledInstance(n, 8, &rng);
  for (auto _ : state) {
    auto problem = ClusteringProblem::FromTree(*tree);
    benchmark::DoNotOptimize(problem);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_CoClusterClosedForm)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity();

void BM_CoClusterGeneratingFunction(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(89);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  for (auto _ : state) {
    auto problem = ClusteringProblem::FromTree(*tree);
    benchmark::DoNotOptimize(problem);
  }
}
BENCHMARK(BM_CoClusterGeneratingFunction)->RangeMultiplier(2)->Range(8, 64);

void BM_PivotClustering(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(97);
  auto tree = LabeledInstance(n, 8, &rng);
  auto problem = ClusteringProblem::FromTree(*tree);
  for (auto _ : state) {
    ClusteringAnswer answer = PivotClustering(*problem, &rng);
    benchmark::DoNotOptimize(answer);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_PivotClustering)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void PrintQualityTable() {
  std::printf("\n## E11: clustering objective across algorithms\n\n");
  std::printf("| seed | n | exact | pivot | pivot+LS | best-of-64-worlds |\n");
  std::printf("|---|---|---|---|---|---|\n");
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 101 + 5);
    int n = 8;
    auto tree = LabeledInstance(n, 4, &rng);
    auto problem = ClusteringProblem::FromTree(*tree);
    auto exact = ExactClustering(*problem);
    ClusteringAnswer pivot = PivotClustering(*problem, &rng);
    ClusteringAnswer ls = LocalSearchClustering(*problem, pivot);
    ClusteringAnswer worlds = BestOfWorldsClustering(*tree, *problem, 64, &rng);
    std::printf("| %d | %d | %.4f | %.4f | %.4f | %.4f |\n", seed, n,
                problem->Expected(*exact), problem->Expected(pivot),
                problem->Expected(ls), problem->Expected(worlds));
  }
  std::printf("\n## E11b: larger instances (no exact baseline)\n\n");
  std::printf("| n | pivot | pivot+LS | best-of-128-worlds |\n");
  std::printf("|---|---|---|---|\n");
  for (int n : {32, 128, 512}) {
    Rng rng(107);
    auto tree = LabeledInstance(n, 8, &rng);
    auto problem = ClusteringProblem::FromTree(*tree);
    ClusteringAnswer pivot = PivotClustering(*problem, &rng);
    ClusteringAnswer ls = LocalSearchClustering(*problem, pivot);
    ClusteringAnswer worlds =
        BestOfWorldsClustering(*tree, *problem, 128, &rng);
    std::printf("| %d | %.1f | %.1f | %.1f |\n", n, problem->Expected(pivot),
                problem->Expected(ls), problem->Expected(worlds));
  }
  std::printf("\n");
}

}  // namespace
}  // namespace cpdb

int main(int argc, char** argv) {
  cpdb::PrintQualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

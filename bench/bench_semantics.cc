// Copyright 2026 The ConsensusDB Authors
//
// Experiment E12: the paper's motivating claim — the consensus framework is
// a yardstick for comparing Top-k semantics. Every baseline semantics
// (expected score, expected rank, U-Top-k, PT-k/Global Top-k, Upsilon_H)
// is scored under the three consensus objectives E[d_Delta], E[d_I],
// E[d_F^(k+1)]. Expected shape: each consensus answer wins its own metric
// (by construction, Theorem 3 / Section 5.3 / Section 5.4), Global Top-k
// ties the d_Delta mean (they are the same answer), and score/rank-based
// semantics trail.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/ranking_baselines.h"
#include "core/topk_footrule.h"
#include "core/topk_intersection.h"
#include "core/topk_symdiff.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

struct Contender {
  std::string name;
  std::vector<KeyId> answer;
};

void RunComparison(const char* title, const AndXorTree& tree, int k,
                   Rng* rng) {
  RankDistribution dist = ComputeRankDistribution(tree, k);

  std::vector<Contender> contenders;
  contenders.push_back({"mean d_Delta (= Global Top-k / PT-k)",
                        MeanTopKSymDiff(dist).keys});
  contenders.push_back({"mean d_Delta (any size)",
                        MeanTopKSymDiffUnrestricted(dist).keys});
  auto median = MedianTopKSymDiff(tree, dist);
  if (median.ok()) contenders.push_back({"median d_Delta", median->keys});
  auto inter = MeanTopKIntersectionExact(dist);
  if (inter.ok()) contenders.push_back({"mean d_I (assignment)", inter->keys});
  contenders.push_back({"Upsilon_H (PRF)", MeanTopKIntersectionApprox(dist).keys});
  auto foot = MeanTopKFootrule(dist);
  if (foot.ok()) contenders.push_back({"mean d_F (assignment)", foot->keys});
  contenders.push_back({"expected score", TopKByExpectedScore(tree, k)});
  contenders.push_back({"expected rank", TopKByExpectedRank(tree, k)});
  contenders.push_back({"U-Top-k (sampled)", UTopKSampled(tree, k, 4000, rng)});

  std::printf("\n### %s (k = %d, %d tuples)\n\n", title, k,
              static_cast<int>(dist.keys().size()));
  std::printf("| semantics | E[d_Delta] | E[d_I] | E[d_F] |\n");
  std::printf("|---|---|---|---|\n");
  double best_delta = 1e100, best_i = 1e100, best_f = 1e100;
  for (const Contender& c : contenders) {
    best_delta = std::min(best_delta, ExpectedTopKSymDiff(dist, c.answer));
    best_i = std::min(best_i, ExpectedTopKIntersection(dist, c.answer));
    best_f = std::min(best_f, ExpectedTopKFootrule(dist, c.answer));
  }
  for (const Contender& c : contenders) {
    double d = ExpectedTopKSymDiff(dist, c.answer);
    double i = ExpectedTopKIntersection(dist, c.answer);
    double f = ExpectedTopKFootrule(dist, c.answer);
    std::printf("| %s | %.4f%s | %.4f%s | %.3f%s |\n", c.name.c_str(), d,
                d <= best_delta + 1e-9 ? " *" : "", i,
                i <= best_i + 1e-9 ? " *" : "", f,
                f <= best_f + 1e-9 ? " *" : "");
  }
}

void PrintComparisons() {
  std::printf("## E12: Top-k semantics scored under the consensus "
              "objectives (* = best per column)\n");
  {
    Rng rng(113);
    RandomTreeOptions opts;
    opts.num_keys = 40;
    opts.max_alternatives = 3;
    auto tree = RandomBid(opts, &rng);
    RunComparison("BID workload", *tree, 10, &rng);
  }
  {
    Rng rng(127);
    auto tree = RandomTupleIndependent(40, &rng);
    RunComparison("tuple-independent workload", *tree, 10, &rng);
  }
  {
    Rng rng(131);
    RandomTreeOptions opts;
    opts.num_keys = 16;
    opts.max_depth = 4;
    opts.max_alternatives = 2;
    auto tree = RandomAndXorTree(opts, &rng);
    RunComparison("correlated and/xor workload", *tree, 5, &rng);
  }
  std::printf("\n");
}

void BM_FullConsensusSuite(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(113);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  for (auto _ : state) {
    RankDistribution dist = ComputeRankDistribution(*tree, 10);
    auto a = MeanTopKSymDiff(dist);
    auto b = MeanTopKIntersectionExact(dist);
    auto c = MeanTopKFootrule(dist);
    benchmark::DoNotOptimize(a);
    benchmark::DoNotOptimize(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_FullConsensusSuite)->RangeMultiplier(2)->Range(32, 512);

}  // namespace
}  // namespace cpdb

int main(int argc, char** argv) {
  cpdb::PrintComparisons();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

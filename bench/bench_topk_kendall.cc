// Copyright 2026 The ConsensusDB Authors
//
// Experiment E9: Kendall-tau consensus Top-k. Exact optimization is NP-hard;
// the paper offers constant-factor approximations. We measure the footrule
// and pivot aggregations against exact brute force on small instances (the
// ratios should sit far below the proven factor 2) and time the pairwise
// statistic precomputation that drives everything.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "core/topk_kendall.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

void BM_KendallEvaluatorPrecompute(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(59);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  for (auto _ : state) {
    KendallEvaluator evaluator(*tree, 5);
    benchmark::DoNotOptimize(evaluator);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_KendallEvaluatorPrecompute)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity();

void BM_KendallPivot(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(61);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  KendallEvaluator evaluator(*tree, 5);
  auto order_probs = PairwiseOrderProbabilities(*tree, evaluator.keys());
  for (auto _ : state) {
    auto pivot = MeanTopKKendallPivot(evaluator, order_probs, &rng);
    benchmark::DoNotOptimize(pivot);
  }
}
BENCHMARK(BM_KendallPivot)->RangeMultiplier(2)->Range(8, 64);

void PrintQualityTable() {
  std::printf("\n## E9: Kendall-tau approximation ratios vs exact"
              " (small instances, k = 2)\n\n");
  std::printf("| seed | E[d_K] exact | footrule 2-approx | pivot | footrule "
              "ratio | pivot ratio |\n");
  std::printf("|---|---|---|---|---|---|\n");
  double worst_footrule = 0.0, worst_pivot = 0.0;
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 997 + 71);
    RandomTreeOptions opts;
    opts.num_keys = 6;
    opts.max_depth = 2;
    opts.max_alternatives = 2;
    auto tree = RandomAndXorTree(opts, &rng);
    const int k = 2;
    RankDistribution dist = ComputeRankDistribution(*tree, k);
    if (static_cast<int>(dist.keys().size()) < k) continue;
    KendallEvaluator evaluator(*tree, k);
    auto exact = MeanTopKKendallExact(evaluator, dist, /*max_candidates=*/8);
    if (!exact.ok()) continue;
    auto footrule = MeanTopKKendallViaFootrule(evaluator, dist);
    auto order_probs = PairwiseOrderProbabilities(*tree, evaluator.keys());
    auto pivot = MeanTopKKendallPivot(evaluator, order_probs, &rng);
    double fr = exact->expected_distance > 1e-9
                    ? footrule->expected_distance / exact->expected_distance
                    : 1.0;
    double pr = exact->expected_distance > 1e-9
                    ? pivot->expected_distance / exact->expected_distance
                    : 1.0;
    worst_footrule = std::max(worst_footrule, fr);
    worst_pivot = std::max(worst_pivot, pr);
    std::printf("| %d | %.4f | %.4f | %.4f | %.3f | %.3f |\n", seed,
                exact->expected_distance, footrule->expected_distance,
                pivot->expected_distance, fr, pr);
  }
  std::printf("\nWorst measured ratios: footrule %.3f (bound 2.0), pivot "
              "%.3f.\n\n",
              worst_footrule, worst_pivot);

  // E9b: the subset DP pushes the exact baseline to mid-size instances.
  std::printf("## E9b: approximation ratios vs the subset-DP exact optimum"
              " (n = 14, k = 4)\n\n");
  std::printf("| seed | E[d_K] exact (DP) | footrule | pivot | footrule "
              "ratio | pivot ratio |\n");
  std::printf("|---|---|---|---|---|---|\n");
  for (int seed = 0; seed < 5; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 1009 + 3);
    RandomTreeOptions opts;
    opts.num_keys = 14;
    opts.max_alternatives = 2;
    auto tree = RandomBid(opts, &rng);
    const int k = 4;
    RankDistribution dist = ComputeRankDistribution(*tree, k);
    KendallEvaluator evaluator(*tree, k);
    auto exact = MeanTopKKendallExactDp(evaluator, dist);
    if (!exact.ok()) continue;
    auto footrule = MeanTopKKendallViaFootrule(evaluator, dist);
    auto order_probs = PairwiseOrderProbabilities(*tree, evaluator.keys());
    auto pivot = MeanTopKKendallPivot(evaluator, order_probs, &rng);
    double fr = footrule->expected_distance / exact->expected_distance;
    double pr = pivot->expected_distance / exact->expected_distance;
    std::printf("| %d | %.4f | %.4f | %.4f | %.3f | %.3f |\n", seed,
                exact->expected_distance, footrule->expected_distance,
                pivot->expected_distance, fr, pr);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace cpdb

int main(int argc, char** argv) {
  cpdb::PrintQualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Copyright 2026 The ConsensusDB Authors
//
// Experiment E7: intersection-metric mean answers — exact assignment
// (Hungarian) vs the Upsilon_H approximation. The paper proves an H_k bound
// on the profit objective; the measured E[d_I] ratio should be far closer
// to 1 (who wins: exact, but by a hair; crossover: the approximation is the
// right choice once assignment time dominates).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/math_utils.h"
#include "common/rng.h"
#include "core/topk_intersection.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

void BM_IntersectionExact(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  Rng rng(41);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  RankDistribution dist = ComputeRankDistribution(*tree, k);
  for (auto _ : state) {
    auto exact = MeanTopKIntersectionExact(dist);
    benchmark::DoNotOptimize(exact);
  }
}
BENCHMARK(BM_IntersectionExact)
    ->ArgsProduct({{64, 256, 1024}, {10}})
    ->ArgsProduct({{256}, {5, 10, 20, 40}});

void BM_IntersectionApprox(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  Rng rng(41);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  RankDistribution dist = ComputeRankDistribution(*tree, k);
  for (auto _ : state) {
    TopKResult approx = MeanTopKIntersectionApprox(dist);
    benchmark::DoNotOptimize(approx);
  }
}
BENCHMARK(BM_IntersectionApprox)
    ->ArgsProduct({{64, 256, 1024}, {10}})
    ->ArgsProduct({{256}, {5, 10, 20, 40}});

void PrintQualityTable() {
  std::printf("\n## E7: Upsilon_H approximation quality vs exact assignment"
              " (intersection metric)\n\n");
  std::printf("| n | k | E[d_I] exact | E[d_I] approx | distance ratio | "
              "profit ratio | H_k bound |\n");
  std::printf("|---|---|---|---|---|---|---|\n");
  for (int n : {32, 128, 512}) {
    for (int k : {5, 10}) {
      Rng rng(43);
      RandomTreeOptions opts;
      opts.num_keys = n;
      opts.max_alternatives = 2;
      auto tree = RandomBid(opts, &rng);
      RankDistribution dist = ComputeRankDistribution(*tree, k);
      auto exact = MeanTopKIntersectionExact(dist);
      TopKResult approx = MeanTopKIntersectionApprox(dist);
      auto profit = [&](const std::vector<KeyId>& answer) {
        double total = 0.0;
        for (size_t j = 0; j < answer.size(); ++j) {
          total += IntersectionPositionProfit(dist, answer[j],
                                              static_cast<int>(j) + 1);
        }
        return total;
      };
      double ratio_d = approx.expected_distance / exact->expected_distance;
      double ratio_a = profit(exact->keys) / profit(approx.keys);
      std::printf("| %d | %d | %.4f | %.4f | %.4f | %.4f | %.4f |\n", n, k,
                  exact->expected_distance, approx.expected_distance, ratio_d,
                  ratio_a, HarmonicNumber(k));
    }
  }
  std::printf("\n(The paper guarantees profit ratio <= H_k; measured ratios"
              " are expected to be near 1.)\n\n");
}

}  // namespace
}  // namespace cpdb

int main(int argc, char** argv) {
  cpdb::PrintQualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Copyright 2026 The ConsensusDB Authors
//
// Experiment E8: the footrule-optimal mean Top-k answer via assignment
// (Section 5.4). The quality table pits the footrule optimum against
// order-oblivious answers (the d_Delta mean in Pr order and in reversed
// order) under E[F^(k+1)] — ordering must matter, and the assignment answer
// must win.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "core/topk_footrule.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

void BM_FootruleAssignment(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  Rng rng(47);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  RankDistribution dist = ComputeRankDistribution(*tree, k);
  for (auto _ : state) {
    auto mean = MeanTopKFootrule(dist);
    benchmark::DoNotOptimize(mean);
  }
}
BENCHMARK(BM_FootruleAssignment)
    ->ArgsProduct({{64, 256, 1024}, {10}})
    ->ArgsProduct({{256}, {5, 10, 20, 40}});

void BM_FootruleEndToEnd(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  const int k = 10;
  Rng rng(47);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  for (auto _ : state) {
    RankDistribution dist = ComputeRankDistribution(*tree, k);
    auto mean = MeanTopKFootrule(dist);
    benchmark::DoNotOptimize(mean);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_FootruleEndToEnd)
    ->RangeMultiplier(2)
    ->Range(32, 512)
    ->Complexity();

void PrintQualityTable() {
  std::printf("\n## E8: footrule-optimal answer vs heuristic orderings"
              " (k = 10)\n\n");
  std::printf("| n | E[d_F] assignment | E[d_F] PrTopK order | E[d_F] "
              "reversed | assignment wins? |\n");
  std::printf("|---|---|---|---|---|\n");
  for (int n : {32, 128, 512}) {
    Rng rng(53);
    RandomTreeOptions opts;
    opts.num_keys = n;
    opts.max_alternatives = 2;
    auto tree = RandomBid(opts, &rng);
    const int k = 10;
    RankDistribution dist = ComputeRankDistribution(*tree, k);
    auto assignment = MeanTopKFootrule(dist);

    // Heuristic: the k most probable Top-k members ordered by PrTopK.
    std::vector<KeyId> by_prob = dist.keys();
    std::stable_sort(by_prob.begin(), by_prob.end(), [&](KeyId a, KeyId b) {
      return dist.PrTopK(a) > dist.PrTopK(b);
    });
    by_prob.resize(static_cast<size_t>(k));
    std::vector<KeyId> reversed(by_prob.rbegin(), by_prob.rend());

    double e_heur = ExpectedTopKFootrule(dist, by_prob);
    double e_rev = ExpectedTopKFootrule(dist, reversed);
    bool wins = assignment->expected_distance <= e_heur + 1e-9 &&
                assignment->expected_distance <= e_rev + 1e-9;
    std::printf("| %d | %.3f | %.3f | %.3f | %s |\n", n,
                assignment->expected_distance, e_heur, e_rev,
                wins ? "yes" : "NO (bug)");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace cpdb

int main(int argc, char** argv) {
  cpdb::PrintQualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

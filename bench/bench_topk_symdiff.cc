// Copyright 2026 The ConsensusDB Authors
//
// Experiments E5 and E6: mean Top-k (Theorem 3; PT-k with calibrated
// threshold) and the median Top-k threshold DP (Theorem 4) under d_Delta.
// The quality table compares the mean and median expected distances — the
// median pays a premium for realizability, which shrinks as correlations
// weaken.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.h"
#include "core/topk_symdiff.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

void BM_MeanTopKGivenRankDist(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(29);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  RankDistribution dist = ComputeRankDistribution(*tree, 10);
  for (auto _ : state) {
    TopKResult mean = MeanTopKSymDiff(dist);
    benchmark::DoNotOptimize(mean);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MeanTopKGivenRankDist)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity();

void BM_MeanTopKEndToEnd(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  Rng rng(29);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  for (auto _ : state) {
    RankDistribution dist = ComputeRankDistribution(*tree, k);
    TopKResult mean = MeanTopKSymDiff(dist);
    benchmark::DoNotOptimize(mean);
  }
}
BENCHMARK(BM_MeanTopKEndToEnd)->ArgsProduct({{64, 128, 256}, {5, 10, 20}});

void BM_MedianTopKDp(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  Rng rng(31);
  RandomTreeOptions opts;
  opts.num_keys = n;
  opts.max_depth = 4;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  RankDistribution dist = ComputeRankDistribution(*tree, k);
  state.counters["leaves"] = tree->NumLeaves();
  for (auto _ : state) {
    auto median = MedianTopKSymDiff(*tree, dist);
    benchmark::DoNotOptimize(median);
  }
}
BENCHMARK(BM_MedianTopKDp)
    ->ArgsProduct({{16, 32, 64, 128}, {5}})
    ->ArgsProduct({{64}, {2, 5, 10, 20}});

void PrintQualityTable() {
  std::printf("\n## E5/E6: Top-k answer quality under d_Delta (k = 5)\n\n");
  std::printf("| model | n | E[d] mean (size k, Thm 3) | E[d] mean (any size) "
              "| |mean any size| | E[d] median | median realizability "
              "premium |\n");
  std::printf("|---|---|---|---|---|---|---|\n");
  auto row = [](const char* model, int n, const AndXorTree& tree) {
    RankDistribution dist = ComputeRankDistribution(tree, 5);
    TopKResult mean_k = MeanTopKSymDiff(dist);
    TopKResult mean_any = MeanTopKSymDiffUnrestricted(dist);
    auto median = MedianTopKSymDiff(tree, dist);
    double premium = median->expected_distance - mean_any.expected_distance;
    std::printf("| %s | %d | %.4f | %.4f | %zu | %.4f | %.4f |\n", model, n,
                mean_k.expected_distance, mean_any.expected_distance,
                mean_any.keys.size(), median->expected_distance, premium);
  };
  for (int n : {16, 32, 64}) {
    Rng rng(31);
    RandomTreeOptions opts;
    opts.num_keys = n;
    opts.max_depth = 4;
    opts.max_alternatives = 2;
    auto tree = RandomAndXorTree(opts, &rng);
    row("deep and/xor", n, *tree);
  }
  for (int n : {32, 128}) {
    Rng rng(37);
    RandomTreeOptions opts;
    opts.num_keys = n;
    opts.max_alternatives = 3;
    auto tree = RandomBid(opts, &rng);
    row("BID", n, *tree);
  }
  std::printf("\n(The \"any size\" mean is the Theorem-2-style set "
              "{t : Pr(r(t)<=k) > 1/2}; the median premium is the cost of "
              "realizability relative to it.)\n\n");
}

}  // namespace
}  // namespace cpdb

int main(int argc, char** argv) {
  cpdb::PrintQualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

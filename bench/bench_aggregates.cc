// Copyright 2026 The ConsensusDB Authors
//
// Experiment E10: group-by COUNT consensus (Section 6.1). Times the
// min-cost-flow closest-possible-vector construction (Lemma 3 / Theorem 5)
// across n and m, and measures the realized approximation ratio of
// Corollary 2 against the exact median on small instances — the bound is 4,
// the measured ratio should hug 1.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "core/aggregates.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

void BM_MeanAggregate(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(67);
  GroupByInstance instance{RandomGroupByMatrix(n, 32, 0.8, 0.2, &rng)};
  for (auto _ : state) {
    auto mean = MeanAggregate(instance);
    benchmark::DoNotOptimize(mean);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MeanAggregate)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_ClosestPossibleFlow(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int m = static_cast<int>(state.range(1));
  Rng rng(71);
  GroupByInstance instance{RandomGroupByMatrix(n, m, 0.8, 0.2, &rng)};
  for (auto _ : state) {
    // The flow object is single-shot; rebuild inside the loop (the build is
    // part of the algorithm's cost anyway).
    auto answer = ClosestPossibleAggregate(instance);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_ClosestPossibleFlow)
    ->ArgsProduct({{64, 256, 1024}, {16}})
    ->ArgsProduct({{256}, {4, 16, 64}});

void PrintQualityTable() {
  std::printf("\n## E10: aggregate median approximation ratio"
              " (Corollary 2 bound: 4)\n\n");
  std::printf("| seed | n | m | E[d] flow answer | E[d] exact median | "
              "ratio |\n");
  std::printf("|---|---|---|---|---|---|\n");
  double worst = 0.0;
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 13 + 73);
    int n = 5 + seed % 3;
    int m = 3;
    GroupByInstance instance{RandomGroupByMatrix(n, m, 0.7, 0.25, &rng)};
    auto flow = ClosestPossibleAggregate(instance);
    auto exact = ExactMedianAggregate(instance);
    if (!flow.ok() || !exact.ok()) continue;
    std::vector<double> flow_d(flow->begin(), flow->end());
    std::vector<double> exact_d(exact->begin(), exact->end());
    double e_flow = ExpectedSquaredDistance(instance, flow_d);
    double e_exact = ExpectedSquaredDistance(instance, exact_d);
    double ratio = e_exact > 1e-12 ? e_flow / e_exact : 1.0;
    worst = std::max(worst, ratio);
    std::printf("| %d | %d | %d | %.4f | %.4f | %.4f |\n", seed, n, m, e_flow,
                e_exact, ratio);
  }
  std::printf("\nWorst measured ratio %.4f (proved bound 4.0).\n\n", worst);

  std::printf("## E10b: how far the median sits from the mean\n\n");
  std::printf("| n | m | ||r* - r_bar||^2 | E[d] mean (lower bound) | E[d] "
              "r* |\n");
  std::printf("|---|---|---|---|---|\n");
  for (int n : {64, 256, 1024}) {
    Rng rng(79);
    int m = 16;
    GroupByInstance instance{RandomGroupByMatrix(n, m, 0.8, 0.2, &rng)};
    auto flow = ClosestPossibleAggregate(instance);
    std::vector<double> mean = MeanAggregate(instance);
    std::vector<double> flow_d(flow->begin(), flow->end());
    double gap = 0.0;
    for (size_t j = 0; j < mean.size(); ++j) {
      double diff = flow_d[j] - mean[j];
      gap += diff * diff;
    }
    std::printf("| %d | %d | %.4f | %.4f | %.4f |\n", n, m, gap,
                ExpectedSquaredDistance(instance, mean),
                ExpectedSquaredDistance(instance, flow_d));
  }
  std::printf("\n");
}

}  // namespace
}  // namespace cpdb

int main(int argc, char** argv) {
  cpdb::PrintQualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Copyright 2026 The ConsensusDB Authors
//
// Serving-layer benchmarks: what the cross-query rank-distribution cache
// buys on batches that share (tree fingerprint, k). The acceptance scenario
// is a batch of 8+ queries against one catalog tree with one k — with the
// cache on, the O(L^2 k) fold runs once per (tree, k) instead of once per
// query. Three points on the curve:
//
//   BM_ServeBatchUncached — cache disabled: every query pays the fold.
//   BM_ServeBatchColdCache — fresh scheduler per iteration: the first
//       query of each (tree, k) pays, the rest hit (the within-batch win).
//   BM_ServeBatchWarmCache — one long-lived scheduler: all queries hit
//       (the steady-state serving win).
//
// Answers are bitwise identical in all three modes (tests/service_test.cc);
// only the fold count changes.
//
// Plus the long-lived-server scenarios the eviction PR added:
//
//   BM_ServeChurnBudgeted — a churn workload (requests cycling through many
//       distinct (tree, k) keys) against a byte budget, from tiny to
//       unbounded. The cache_bytes counter reports the retained footprint:
//       bounded by the budget under churn (tests/cache_eviction_test.cc
//       pins bytes <= budget in *every* snapshot, and warm-hit answers
//       bitwise identical to uncached), while the unbounded arm shows the
//       memory an immortal cache would accrete. evictions counts the churn.
//   BM_ServeStreamingChurn — the same request stream through
//       ExecuteStreaming (the serve --stream execution path): per-request
//       emission, caches still shared across the stream. The first
//       response is emitted before the second request is even pulled —
//       streaming latency is per-request, not per-input.
//
// And the sharding PR's scaling scenario:
//
//   BM_ServeSharded — a shard-disjoint batch (32 distinct trees, so the
//       fingerprint partition spreads requests across every shard) through
//       a ShardedScheduler of 1/2/4/8 single-threaded shards, caches off so
//       every iteration pays its folds. Throughput should scale near-
//       linearly with the shard count: the shards share no state at all,
//       which is the whole premise of partitioning by fingerprint. Answers
//       are bitwise identical at every point on the curve
//       (tests/sharded_service_test.cc).
//
// And the two-level-identity PR's dedup scenario:
//
//   BM_ServeDedupedCatalog — the BM_ServeTraceReplay request mix against a
//       catalog of 8·D names holding commutative shuffles of 8 shapes.
//       Structural keys collapse the duplicates to one compiled fold and
//       one retained distribution per shape, so throughput stays flat as
//       D grows (BENCH_serve_dedup.json).

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "io/tree_text.h"
#include "model/and_xor_tree.h"
#include "service/catalog_snapshot.h"
#include "service/query_scheduler.h"
#include "service/sharded_scheduler.h"
#include "service/tree_catalog.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

constexpr int kK = 5;

AndXorTree MakeServingTree(int num_keys) {
  Rng rng(31);
  RandomTreeOptions opts;
  opts.num_keys = num_keys;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  return *RandomAndXorTree(opts, &rng);
}

ServiceRequest TopKRequest(TopKMetric metric,
                           TopKAnswer answer = TopKAnswer::kMean) {
  ServiceRequest request;
  request.op = ServiceRequest::Op::kTopK;
  request.tree_name = "serving";
  request.k = kK;
  request.metric = metric;
  request.answer = answer;
  return request;
}

// A batch of 8 queries sharing one (tree, k) whose cost is dominated by the
// rank-distribution fold — symdiff, footrule, and intersection mean answers
// plus repeats, the shape a ranking dashboard sends per refresh. This is
// the acceptance scenario: with the cache, the fold runs once instead of 8
// times, so cached throughput approaches 8x the uncached path.
std::vector<ServiceRequest> SharedBatch() {
  return {
      TopKRequest(TopKMetric::kSymDiff),
      TopKRequest(TopKMetric::kSymDiff, TopKAnswer::kMeanUnrestricted),
      TopKRequest(TopKMetric::kIntersection),
      TopKRequest(TopKMetric::kIntersection, TopKAnswer::kMeanApprox),
      TopKRequest(TopKMetric::kFootrule),
      TopKRequest(TopKMetric::kSymDiff),       // repeats, as real traffic has
      TopKRequest(TopKMetric::kFootrule),
      TopKRequest(TopKMetric::kIntersection),
  };
}

// The same 8 plus a kendall mean and a symdiff median: those two carry
// per-query tails (the O(n^2) q-matrix folds, the per-score stratum DPs)
// that no rank-distribution cache can elide, so the speedup shrinks toward
// the tail cost. Kept as the honest upper-bound-of-traffic contrast.
std::vector<ServiceRequest> HeavyTailBatch() {
  std::vector<ServiceRequest> batch = SharedBatch();
  batch.push_back(TopKRequest(TopKMetric::kKendall));
  batch.push_back(TopKRequest(TopKMetric::kSymDiff, TopKAnswer::kMedian));
  return batch;
}

struct ServiceFixture {
  explicit ServiceFixture(int num_keys, int threads) {
    EngineOptions engine_options;
    engine_options.num_threads = threads;
    engine_options.use_fast_bid_path = false;
    engine = std::make_unique<Engine>(engine_options);
    catalog.Insert("serving", MakeServingTree(num_keys)).ValueOrDie();
  }
  std::unique_ptr<Engine> engine;
  TreeCatalog catalog;
};

void BM_ServeBatchUncached(benchmark::State& state) {
  ServiceFixture fixture(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(1)));
  SchedulerOptions options;
  options.use_cache = false;
  QueryScheduler scheduler(fixture.engine.get(), &fixture.catalog, options);
  std::vector<ServiceRequest> batch = SharedBatch();
  for (auto _ : state) {
    auto results = scheduler.ExecuteBatch(batch);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_ServeBatchUncached)->Args({40, 1})->Args({40, 4})->Args({80, 4});

void BM_ServeBatchColdCache(benchmark::State& state) {
  ServiceFixture fixture(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(1)));
  std::vector<ServiceRequest> batch = SharedBatch();
  for (auto _ : state) {
    // A fresh scheduler per iteration: only within-batch sharing counts.
    QueryScheduler scheduler(fixture.engine.get(), &fixture.catalog);
    auto results = scheduler.ExecuteBatch(batch);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_ServeBatchColdCache)->Args({40, 1})->Args({40, 4})->Args({80, 4});

void BM_ServeBatchWarmCache(benchmark::State& state) {
  ServiceFixture fixture(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(1)));
  QueryScheduler scheduler(fixture.engine.get(), &fixture.catalog);
  std::vector<ServiceRequest> batch = SharedBatch();
  scheduler.ExecuteBatch(batch);  // warm the (tree, k) entry
  for (auto _ : state) {
    auto results = scheduler.ExecuteBatch(batch);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_ServeBatchWarmCache)->Args({40, 1})->Args({40, 4})->Args({80, 4});

// A catalog of many distinct small trees plus a request stream that cycles
// through (tree, k) combinations — the key-churn traffic shape a long-lived
// server sees, where an immortal cache grows without bound.
struct ChurnFixture {
  static constexpr int kTrees = 24;

  explicit ChurnFixture(int threads) {
    EngineOptions engine_options;
    engine_options.num_threads = threads;
    engine_options.use_fast_bid_path = false;
    engine = std::make_unique<Engine>(engine_options);
    Rng rng(97);
    for (int i = 0; i < kTrees; ++i) {
      RandomTreeOptions opts;
      opts.num_keys = 24;
      opts.max_depth = 3;
      opts.max_alternatives = 2;
      catalog.Insert("churn" + std::to_string(i), *RandomAndXorTree(opts, &rng))
          .ValueOrDie();
    }
  }

  std::vector<ServiceRequest> Stream() const {
    std::vector<ServiceRequest> requests;
    // 48 distinct (tree, k) keys over 72 requests: every key recurs a round
    // later, so a cache large enough to span a round's working set turns
    // the third round warm, while a tiny budget keeps evicting the keys it
    // is about to need — the honest worst case for LRU under churn.
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < kTrees; ++i) {
        ServiceRequest request;
        request.op = ServiceRequest::Op::kTopK;
        request.tree_name = "churn" + std::to_string(i);
        request.k = 3 + (i + round) % 2;
        request.metric = TopKMetric::kSymDiff;
        requests.push_back(request);
      }
    }
    return requests;
  }

  std::unique_ptr<Engine> engine;
  TreeCatalog catalog;
};

void BM_ServeChurnBudgeted(benchmark::State& state) {
  ChurnFixture fixture(/*threads=*/4);
  SchedulerOptions options;
  options.cache_budget_bytes = state.range(0);
  QueryScheduler scheduler(fixture.engine.get(), &fixture.catalog, options);
  std::vector<ServiceRequest> stream = fixture.Stream();
  for (auto _ : state) {
    auto results = scheduler.ExecuteBatch(stream);
    benchmark::DoNotOptimize(results);
  }
  CacheStats stats = scheduler.cache_stats();
  state.counters["cache_bytes"] =
      static_cast<double>(stats.bytes + scheduler.marginals_stats().bytes);
  state.counters["evictions"] = static_cast<double>(stats.evictions);
  state.counters["hit_rate"] =
      stats.hits + stats.misses == 0
          ? 0.0
          : static_cast<double>(stats.hits) /
                static_cast<double>(stats.hits + stats.misses);
}
// 16 KiB holds a handful of the ~2 KiB entries (heavy eviction); 256 KiB
// holds the whole working set (eviction-free steady state); -1 is the
// immortal-cache contrast.
BENCHMARK(BM_ServeChurnBudgeted)
    ->Arg(16 << 10)
    ->Arg(256 << 10)
    ->Arg(kUnboundedCacheBytes);

void BM_ServeStreamingChurn(benchmark::State& state) {
  ChurnFixture fixture(/*threads=*/4);
  SchedulerOptions options;
  options.cache_budget_bytes = state.range(0);
  QueryScheduler scheduler(fixture.engine.get(), &fixture.catalog, options);
  std::vector<ServiceRequest> stream = fixture.Stream();
  int64_t emitted = 0;
  for (auto _ : state) {
    size_t cursor = 0;
    scheduler.ExecuteStreaming(
        [&](ServiceRequest* request) {
          if (cursor == stream.size()) return false;
          *request = stream[cursor++];
          return true;
        },
        [&](const Result<ServiceResponse>& response) {
          ++emitted;
          benchmark::DoNotOptimize(response);
        });
  }
  // Per-iteration, not accumulated: the value must describe the workload
  // (72 responses per stream) regardless of how many iterations ran.
  state.counters["responses"] = benchmark::Counter(
      static_cast<double>(emitted), benchmark::Counter::kAvgIterations);
  state.counters["cache_bytes"] =
      static_cast<double>(scheduler.cache_stats().bytes);
}
BENCHMARK(BM_ServeStreamingChurn)->Arg(16 << 10)->Arg(kUnboundedCacheBytes);

// Shard scaling on shard-disjoint traffic: one Top-k request per distinct
// tree, caches disabled so each iteration measures fold throughput, one
// thread per shard engine so parallelism comes only from the shard fan-out.
void BM_ServeSharded(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  constexpr int kTrees = 32;
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.use_fast_bid_path = false;
  SchedulerOptions options;
  options.use_cache = false;
  ShardedScheduler sharded(shards, engine_options, options);

  Rng rng(53);
  std::vector<ServiceRequest> batch;
  for (int i = 0; i < kTrees; ++i) {
    RandomTreeOptions tree_options;
    tree_options.num_keys = 32;
    tree_options.max_depth = 3;
    tree_options.max_alternatives = 2;
    std::string name = "disjoint" + std::to_string(i);
    sharded.Insert(name, *RandomAndXorTree(tree_options, &rng)).ValueOrDie();
    ServiceRequest request;
    request.op = ServiceRequest::Op::kTopK;
    request.tree_name = name;
    request.k = kK;
    request.metric = TopKMetric::kSymDiff;
    batch.push_back(request);
  }

  for (auto _ : state) {
    auto results = sharded.ExecuteBatch(batch);
    benchmark::DoNotOptimize(results);
  }
  // Real time, not CPU time: the work happens on the shard helper threads,
  // so the main thread's CPU clock under-reports by design. Requests/sec
  // then scales with min(shards, cores) — near-linear wherever the
  // hardware has the cores to back the shard count.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_ServeSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->MeasureProcessCPUTime();

void BM_ServeHeavyTailUncached(benchmark::State& state) {
  ServiceFixture fixture(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(1)));
  SchedulerOptions options;
  options.use_cache = false;
  QueryScheduler scheduler(fixture.engine.get(), &fixture.catalog, options);
  std::vector<ServiceRequest> batch = HeavyTailBatch();
  for (auto _ : state) {
    auto results = scheduler.ExecuteBatch(batch);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_ServeHeavyTailUncached)->Args({40, 4});

void BM_ServeHeavyTailWarmCache(benchmark::State& state) {
  ServiceFixture fixture(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(1)));
  QueryScheduler scheduler(fixture.engine.get(), &fixture.catalog);
  std::vector<ServiceRequest> batch = HeavyTailBatch();
  scheduler.ExecuteBatch(batch);
  for (auto _ : state) {
    auto results = scheduler.ExecuteBatch(batch);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_ServeHeavyTailWarmCache)->Args({40, 4});

// Warm restart (the snapshot PR's trajectory): how fast a restarted
// replica reaches its first served response, three ways.
//
//   arm 0 (cold)       — parse every catalog tree from text and insert it
//                        line-by-line, then serve; the first batch pays
//                        every rank-distribution fold.
//   arm 1 (snap)       — decode + install a trees-only snapshot (one
//                        contiguous buffer instead of N files); the first
//                        batch still pays its folds.
//   arm 2 (snap+dists) — decode + install a snapshot carrying the saved
//                        rank distributions; the first batch hits the
//                        seeded cache and re-folds nothing.
//
// Each iteration is a full restart: fresh catalog + scheduler, load, then
// the first batch. The time_to_first_response counter isolates
// startup + first answer — the latency a load balancer waits before
// routing traffic to the replica. Answers are bitwise identical across all
// three arms (tests/catalog_warm_restart_test.cc).
void BM_ServeWarmRestart(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  constexpr int kTrees = 16;
  EngineOptions engine_options;
  engine_options.num_threads = 4;
  engine_options.use_fast_bid_path = false;
  Engine engine(engine_options);

  // The catalog source of truth, as serve sees it: canonical text.
  Rng rng(67);
  std::vector<std::string> names;
  std::vector<std::string> texts;
  std::vector<ServiceRequest> batch;
  for (int i = 0; i < kTrees; ++i) {
    RandomTreeOptions opts;
    opts.num_keys = 40;
    opts.max_depth = 3;
    opts.max_alternatives = 2;
    names.push_back("restart" + std::to_string(i));
    texts.push_back(FormatTree(*RandomAndXorTree(opts, &rng), false));
    ServiceRequest request;
    request.op = ServiceRequest::Op::kTopK;
    request.tree_name = names.back();
    request.k = kK;
    request.metric = TopKMetric::kSymDiff;
    batch.push_back(request);
  }

  // Produce both snapshot flavors from a reference replica warmed on the
  // exact batch the restarted replica will serve.
  std::string snapshot_bytes;
  {
    TreeCatalog catalog;
    QueryScheduler scheduler(&engine, &catalog);
    for (int i = 0; i < kTrees; ++i) {
      catalog.Insert(names[i], *ParseTree(texts[i])).ValueOrDie();
    }
    scheduler.ExecuteBatch(batch);
    snapshot_bytes = EncodeCatalogSnapshot(BuildCatalogSnapshot(
        catalog, mode == 2 ? &scheduler : nullptr));
  }

  double first_response_seconds = 0.0;
  for (auto _ : state) {
    TreeCatalog catalog;
    QueryScheduler scheduler(&engine, &catalog);
    const auto start = std::chrono::steady_clock::now();
    if (mode == 0) {
      for (int i = 0; i < kTrees; ++i) {
        catalog.Insert(names[i], *ParseTree(texts[i])).ValueOrDie();
      }
    } else {
      CatalogSnapshot snapshot =
          DecodeCatalogSnapshot(snapshot_bytes.data(), snapshot_bytes.size())
              .ValueOrDie();
      if (!InstallCatalogSnapshot(snapshot, &catalog, &scheduler).ok()) {
        state.SkipWithError("snapshot install failed");
        return;
      }
    }
    auto first = scheduler.ExecuteOne(batch[0]);
    first_response_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    benchmark::DoNotOptimize(first);
    auto results = scheduler.ExecuteBatch(batch);
    benchmark::DoNotOptimize(results);
  }
  state.counters["time_to_first_response"] = benchmark::Counter(
      first_response_seconds, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ServeWarmRestart)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The observability acceptance benchmark: a deterministic mixed request
// trace — Top-k across metrics and answers, worlds, periodic stats probes,
// cycling over 8 trees — replayed through one long-lived scheduler.
// Args: {metrics, trace}. (0,0) is the uninstrumented baseline (zero clock
// reads on the serve path); (1,0) is production serving with the registry
// recording every request; (1,1) additionally asks for trace=on output on
// every request. The contract (BENCH_serve_trace.json): instruments cost
// under 2% of per-request throughput — recording is a handful of relaxed
// atomics and two steady-clock reads per span, nothing allocated, nothing
// locked.
std::vector<ServiceRequest> MixedTrace(int num_trees, bool traced) {
  std::vector<ServiceRequest> trace;
  constexpr TopKMetric kMetricCycle[] = {TopKMetric::kSymDiff,
                                         TopKMetric::kIntersection,
                                         TopKMetric::kFootrule};
  // The registry's analytics ops ride the production mix at roughly the
  // rate sidecar analytics ride real traffic: of every 16 requests, one
  // is marginals, one aggregate, one baseline, and every 32nd a hardness
  // probe — the rest stays the historical topk/world/stats blend, so
  // per-request numbers remain comparable with pre-registry baselines
  // modulo the (reported) mix change.
  constexpr const char* kBaselineCycle[] = {"escore", "erank", "global",
                                            "prf"};
  for (int i = 0; i < 64; ++i) {
    ServiceRequest request;
    if (i % 16 == 15) {
      request.op = ServiceRequest::Op::kStats;
    } else if (i % 16 == 1) {
      request.op = ServiceRequest::Op::kMarginals;
      request.tree_name = "trace" + std::to_string(i % num_trees);
    } else if (i % 16 == 2) {
      request.op = ServiceRequest::Op::kAggregate;
      request.tree_name = "trace" + std::to_string(i % num_trees);
    } else if (i % 16 == 5) {
      request.op = ServiceRequest::Op::kBaseline;
      request.tree_name = "trace" + std::to_string(i % num_trees);
      request.k = 5 + (i % 3);
      request.baseline_method = kBaselineCycle[(i / 16) % 4];
    } else if (i % 32 == 10) {
      request.op = ServiceRequest::Op::kHardness;
      request.tree_name = "trace" + std::to_string(i % num_trees);
    } else if (i % 4 == 3) {
      request.op = ServiceRequest::Op::kWorld;
      request.tree_name = "trace" + std::to_string(i % num_trees);
      request.median_world = (i % 8) == 3;
    } else {
      request.op = ServiceRequest::Op::kTopK;
      request.tree_name = "trace" + std::to_string(i % num_trees);
      request.k = 5 + (i % 3);
      request.metric = kMetricCycle[i % 3];
      request.answer =
          (i % 12) == 6 ? TopKAnswer::kMeanUnrestricted : TopKAnswer::kMean;
    }
    request.trace = traced;
    trace.push_back(request);
  }
  return trace;
}

void BM_ServeTraceReplay(benchmark::State& state) {
  const bool metrics_on = state.range(0) != 0;
  const bool traced = state.range(1) != 0;
  constexpr int kTraceTrees = 8;

  // One engine thread: the comparison is instrumented vs uninstrumented
  // serving, and thread-pool scheduling noise (especially on small CI
  // machines) would otherwise swamp the sub-2% effect being measured.
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.use_fast_bid_path = false;
  Engine engine(engine_options);
  TreeCatalog catalog;
  // Serving-sized trees: per-request work must dwarf the instruments'
  // constant cost (a few hundred ns of atomics and clock reads) the way
  // it does in production, or the comparison measures nothing real.
  Rng rng(77);
  RandomTreeOptions tree_options;
  tree_options.num_keys = 48;
  tree_options.max_depth = 3;
  tree_options.max_alternatives = 2;
  for (int t = 0; t < kTraceTrees; ++t) {
    catalog
        .Insert("trace" + std::to_string(t),
                *RandomAndXorTree(tree_options, &rng))
        .ValueOrDie();
  }

  SchedulerOptions options;
  options.enable_metrics = metrics_on;
  QueryScheduler scheduler(&engine, &catalog, options);
  const std::vector<ServiceRequest> trace = MixedTrace(kTraceTrees, traced);
  scheduler.ExecuteBatch(trace);  // warm the caches: steady-state serving

  for (auto _ : state) {
    auto results = scheduler.ExecuteBatch(trace);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_ServeTraceReplay)
    ->Args({0, 0})->Args({1, 0})->Args({1, 1})
    ->UseRealTime();

// The analytics-serving acceptance benchmark: op=marginals replayed
// against a long-lived scheduler. Arg is use_cache — with the marginals
// cache on, steady state pays only the per-key summation over the cached
// leaf-marginal vector (the same vector op=world and op=aggregate read);
// off, every request re-folds the tree. Answers are bitwise identical in
// both arms (tests/op_registry_test.cc pins them against the offline
// `marginals` command).
void BM_ServeMarginalsCached(benchmark::State& state) {
  constexpr int kTrees = 8;
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.use_fast_bid_path = false;
  Engine engine(engine_options);

  // The BM_ServeTraceReplay shapes (same generator seed): serving-sized
  // trees, so the fold-vs-sum gap is the production one.
  Rng rng(77);
  RandomTreeOptions tree_options;
  tree_options.num_keys = 48;
  tree_options.max_depth = 3;
  tree_options.max_alternatives = 2;
  TreeCatalog catalog;
  for (int t = 0; t < kTrees; ++t) {
    catalog
        .Insert("trace" + std::to_string(t),
                *RandomAndXorTree(tree_options, &rng))
        .ValueOrDie();
  }

  SchedulerOptions options;
  options.use_cache = state.range(0) != 0;
  QueryScheduler scheduler(&engine, &catalog, options);
  std::vector<ServiceRequest> batch;
  for (int i = 0; i < 32; ++i) {
    ServiceRequest request;
    request.op = ServiceRequest::Op::kMarginals;
    request.tree_name = "trace" + std::to_string(i % kTrees);
    batch.push_back(request);
  }
  scheduler.ExecuteBatch(batch);  // warm: steady-state serving

  for (auto _ : state) {
    auto results = scheduler.ExecuteBatch(batch);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
  state.counters["marg_entries"] =
      static_cast<double>(scheduler.marginals_stats().entries);
}
BENCHMARK(BM_ServeMarginalsCached)->Arg(1)->Arg(0)->UseRealTime();

// Rebuilds `id`'s subtree with every inner node's children in a random
// order — a commutative shuffle: a different wire identity, the same
// structural key.
NodeId RebuildShuffledNode(const AndXorTree& in, NodeId id, Rng* rng,
                           AndXorTree* out) {
  const TreeNode& n = in.node(id);
  if (n.kind == NodeKind::kLeaf) return out->AddLeaf(n.leaf);
  std::vector<size_t> order(n.children.size());
  std::iota(order.begin(), order.end(), 0u);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng->Next() % i]);
  }
  std::vector<NodeId> children;
  std::vector<double> probs;
  children.reserve(order.size());
  for (size_t idx : order) {
    children.push_back(RebuildShuffledNode(in, n.children[idx], rng, out));
    if (n.kind == NodeKind::kXor) probs.push_back(n.edge_probs[idx]);
  }
  return n.kind == NodeKind::kAnd
             ? out->AddAnd(std::move(children))
             : out->AddXor(std::move(children), std::move(probs));
}

AndXorTree ShuffledCopy(const AndXorTree& tree, Rng* rng) {
  AndXorTree out;
  out.SetRoot(RebuildShuffledNode(tree, tree.root(), rng, &out));
  return out;
}

// The two-level-identity acceptance benchmark: the mixed trace above,
// replayed against a catalog of shuffled duplicates. Arg is the duplicate
// factor D — the catalog binds 8·D names, where name i holds a random
// commutative shuffle of shape i mod 8, and the 64-request trace cycles
// over all 8·D names. Structural canonicalization keys every fold, cache
// line, and compiled FlatTree by *shape*, so the counters pin the dedup
// (shapes=8 and fold_compiles=8 at every D) and per-request throughput
// stays flat as duplicates multiply: D=4 serves 32 names for the cost of 8
// (BENCH_serve_dedup.json). Without the structural level every duplicate
// would pay its own fold and its own retained distribution.
void BM_ServeDedupedCatalog(benchmark::State& state) {
  const int dups = static_cast<int>(state.range(0));
  constexpr int kShapes = 8;

  EngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.use_fast_bid_path = false;
  Engine engine(engine_options);

  // The same serving-sized shapes as BM_ServeTraceReplay (same generator
  // seed), so the two benchmarks' per-request numbers are comparable.
  Rng rng(77);
  RandomTreeOptions tree_options;
  tree_options.num_keys = 48;
  tree_options.max_depth = 3;
  tree_options.max_alternatives = 2;
  std::vector<AndXorTree> shapes;
  shapes.reserve(kShapes);
  for (int t = 0; t < kShapes; ++t) {
    shapes.push_back(*RandomAndXorTree(tree_options, &rng));
  }

  TreeCatalog catalog;
  Rng shuffle_rng(123);
  const int num_names = kShapes * dups;
  for (int i = 0; i < num_names; ++i) {
    AndXorTree tree = dups == 1
                          ? shapes[static_cast<size_t>(i % kShapes)]
                          : ShuffledCopy(shapes[static_cast<size_t>(i % kShapes)],
                                         &shuffle_rng);
    catalog.Insert("trace" + std::to_string(i), std::move(tree)).ValueOrDie();
  }

  QueryScheduler scheduler(&engine, &catalog);
  const std::vector<ServiceRequest> trace = MixedTrace(num_names, false);
  scheduler.ExecuteBatch(trace);  // warm: steady-state serving

  for (auto _ : state) {
    auto results = scheduler.ExecuteBatch(trace);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.size()));
  const CatalogCounts counts = catalog.Counts();
  state.counters["names"] = static_cast<double>(counts.names);
  state.counters["shapes"] = static_cast<double>(counts.shapes);
  state.counters["fold_compiles"] = static_cast<double>(catalog.fold_compiles());
  state.counters["rankdist_entries"] =
      static_cast<double>(scheduler.cache_stats().entries);
}
BENCHMARK(BM_ServeDedupedCatalog)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace
}  // namespace cpdb

BENCHMARK_MAIN();

// Copyright 2026 The ConsensusDB Authors
//
// Fast rank distributions for block-independent (BID / x-tuple /
// tuple-independent) databases. The paper claims O(n k log^2 n)-style
// evaluation for its Upsilon_H ranking function via generating functions;
// this module implements the corresponding idea for the whole rank
// distribution:
//
//   * process tuple alternatives in decreasing score order, so each block's
//     per-threshold factor F_j(x) = (1 - q_j(s)) + q_j(s) x (with q_j(s) the
//     probability the block produces an alternative scoring above s)
//     changes only when the scan crosses one of its alternatives;
//   * maintain the product of all block factors, truncated at degree k, in a
//     segment tree of polynomials: each factor update costs O(k^2 log n)
//     instead of an O(n k) full re-multiplication;
//   * the target's own block is masked to 1 for the duration of its query.
//
// Total cost O(L k^2 log n) for L alternatives versus the generic engine's
// O(L^2 k); the crossover is measured in bench_rank_dist (E4b ablation).

#ifndef CPDB_CORE_RANK_DISTRIBUTION_FAST_H_
#define CPDB_CORE_RANK_DISTRIBUTION_FAST_H_

#include "common/result.h"
#include "core/rank_distribution.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief Computes the same result as ComputeRankDistribution but restricted
/// to block-independent trees (IsBlockIndependent must hold); returns
/// InvalidArgument otherwise. Exact up to FP rounding.
Result<RankDistribution> ComputeRankDistributionFast(const AndXorTree& tree,
                                                     int k);

}  // namespace cpdb

#endif  // CPDB_CORE_RANK_DISTRIBUTION_FAST_H_

// Copyright 2026 The ConsensusDB Authors

#include "core/topk_symdiff.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "common/math_utils.h"

namespace cpdb {

double ExpectedTopKSymDiff(const RankDistribution& dist,
                           const std::vector<KeyId>& answer) {
  double sum_all = 0.0;
  for (KeyId key : dist.keys()) sum_all += dist.PrTopK(key);
  double sum_answer = 0.0;
  for (KeyId key : answer) sum_answer += dist.PrTopK(key);
  return (static_cast<double>(answer.size()) + sum_all - 2.0 * sum_answer) /
         (2.0 * dist.k());
}

TopKResult MeanTopKSymDiff(const RankDistribution& dist) {
  std::vector<KeyId> keys = dist.keys();
  std::stable_sort(keys.begin(), keys.end(), [&](KeyId a, KeyId b) {
    return dist.PrTopK(a) > dist.PrTopK(b);
  });
  TopKResult result;
  size_t take = std::min<size_t>(keys.size(), static_cast<size_t>(dist.k()));
  result.keys.assign(keys.begin(), keys.begin() + take);
  result.expected_distance = ExpectedTopKSymDiff(dist, result.keys);
  return result;
}

TopKResult MeanTopKSymDiffUnrestricted(const RankDistribution& dist) {
  // E[d_Delta] = (|tau| + sum_t P(t) - 2 sum_{t in tau} P(t)) / 2k, so a
  // tuple helps exactly when P(t) > 1/2; no size constraint applies.
  std::vector<KeyId> keys;
  for (KeyId key : dist.keys()) {
    if (dist.PrTopK(key) > 0.5) keys.push_back(key);
  }
  std::stable_sort(keys.begin(), keys.end(), [&](KeyId a, KeyId b) {
    return dist.PrTopK(a) > dist.PrTopK(b);
  });
  TopKResult result;
  result.keys = std::move(keys);
  result.expected_distance = ExpectedTopKSymDiff(dist, result.keys);
  return result;
}

namespace {

constexpr double kValueEps = 1e-9;

// Size-indexed max-value DP over a (possibly score-pruned) and/xor tree.
// val[s] is the maximum sum of per-leaf values over the positive-probability
// worlds of the subtree with exactly s surviving leaves; kNegInf marks
// infeasible sizes.
struct NodeDp {
  std::vector<double> val;
  // XOR: per size, the chosen child index (-1 = the empty outcome).
  std::vector<int> xor_choice;
  // AND: prefix[i] is the max-plus convolution of children[0..i]'s vals,
  // kept for split reconstruction.
  std::vector<std::vector<double>> and_prefix;
};

class SizeValueDp {
 public:
  // leaf_value[leaf_id] is the DP value of an active leaf; inactive leaves
  // (score below the threshold) are treated as absent from the pruned tree.
  SizeValueDp(const AndXorTree& tree, const std::vector<double>& leaf_value,
              const std::vector<bool>& leaf_active, int max_size)
      : tree_(tree),
        leaf_value_(leaf_value),
        leaf_active_(leaf_active),
        cap_(max_size) {
    Run();
  }

  // Max value over worlds with exactly `size` active leaves (kNegInf if no
  // such world exists).
  double ValueAt(int size) const {
    return dp_[static_cast<size_t>(tree_.root())].val[static_cast<size_t>(size)];
  }

  // The active leaves of one world achieving ValueAt(size).
  std::vector<NodeId> Reconstruct(int size) const {
    std::vector<NodeId> leaves;
    Collect(tree_.root(), size, &leaves);
    std::sort(leaves.begin(), leaves.end());
    return leaves;
  }

 private:
  void Run() {
    dp_.assign(static_cast<size_t>(tree_.NumNodes()), NodeDp{});
    std::vector<std::pair<NodeId, bool>> stack = {{tree_.root(), false}};
    while (!stack.empty()) {
      auto [id, expanded] = stack.back();
      stack.pop_back();
      const TreeNode& n = tree_.node(id);
      if (!expanded) {
        stack.push_back({id, true});
        for (NodeId c : n.children) stack.push_back({c, false});
        continue;
      }
      NodeDp& e = dp_[static_cast<size_t>(id)];
      switch (n.kind) {
        case NodeKind::kLeaf: {
          e.val.assign(static_cast<size_t>(cap_) + 1, kNegInf);
          if (leaf_active_[static_cast<size_t>(id)]) {
            if (cap_ >= 1) e.val[1] = leaf_value_[static_cast<size_t>(id)];
          } else {
            e.val[0] = 0.0;  // pruned leaf: contributes nothing
          }
          break;
        }
        case NodeKind::kAnd: {
          e.and_prefix.reserve(n.children.size());
          std::vector<double> acc =
              dp_[static_cast<size_t>(n.children[0])].val;
          e.and_prefix.push_back(acc);
          for (size_t i = 1; i < n.children.size(); ++i) {
            acc = MaxPlusConvolve(
                acc, dp_[static_cast<size_t>(n.children[i])].val,
                static_cast<size_t>(cap_));
            acc.resize(static_cast<size_t>(cap_) + 1, kNegInf);
            e.and_prefix.push_back(acc);
          }
          e.val = acc;
          break;
        }
        case NodeKind::kXor: {
          e.val.assign(static_cast<size_t>(cap_) + 1, kNegInf);
          e.xor_choice.assign(static_cast<size_t>(cap_) + 1, -2);
          double leftover = 1.0;
          for (double p : n.edge_probs) leftover -= p;
          if (leftover > 0.0) {
            e.val[0] = 0.0;
            e.xor_choice[0] = -1;
          }
          for (size_t i = 0; i < n.children.size(); ++i) {
            if (n.edge_probs[i] <= 0.0) continue;
            const NodeDp& child = dp_[static_cast<size_t>(n.children[i])];
            for (int s = 0; s <= cap_; ++s) {
              double v = child.val[static_cast<size_t>(s)];
              if (v > e.val[static_cast<size_t>(s)]) {
                e.val[static_cast<size_t>(s)] = v;
                e.xor_choice[static_cast<size_t>(s)] = static_cast<int>(i);
              }
            }
          }
          break;
        }
      }
    }
  }

  void Collect(NodeId id, int size, std::vector<NodeId>* leaves) const {
    const TreeNode& n = tree_.node(id);
    const NodeDp& e = dp_[static_cast<size_t>(id)];
    switch (n.kind) {
      case NodeKind::kLeaf:
        if (size == 1) leaves->push_back(id);
        return;
      case NodeKind::kXor: {
        int choice = e.xor_choice[static_cast<size_t>(size)];
        if (choice >= 0) {
          Collect(n.children[static_cast<size_t>(choice)], size, leaves);
        }
        return;
      }
      case NodeKind::kAnd: {
        int remaining = size;
        for (size_t i = n.children.size(); i-- > 1;) {
          const std::vector<double>& child_val =
              dp_[static_cast<size_t>(n.children[i])].val;
          const std::vector<double>& prev = e.and_prefix[i - 1];
          double target = e.and_prefix[i][static_cast<size_t>(remaining)];
          // Find the split (remaining - q from the prefix, q from child i).
          for (int q = 0; q <= remaining; ++q) {
            double a = prev[static_cast<size_t>(remaining - q)];
            double b = child_val[static_cast<size_t>(q)];
            if (a == kNegInf || b == kNegInf) continue;
            if (std::fabs(a + b - target) <= kValueEps) {
              Collect(n.children[i], q, leaves);
              remaining -= q;
              break;
            }
          }
        }
        Collect(n.children[0], remaining, leaves);
        return;
      }
    }
  }

  const AndXorTree& tree_;
  const std::vector<double>& leaf_value_;
  const std::vector<bool>& leaf_active_;
  int cap_;
  std::vector<NodeDp> dp_;
};

}  // namespace

MedianSymDiffContext BuildMedianSymDiffContext(const AndXorTree& tree,
                                               const RankDistribution& dist) {
  MedianSymDiffContext context;
  context.k = dist.k();
  // Distinct leaf scores ascending: the Theorem 4 thresholds, in the order
  // the sequential scan (a std::set walk) considered them historically.
  std::set<double> scores;
  for (NodeId l : tree.LeafIds()) scores.insert(tree.node(l).leaf.score);
  context.thresholds.assign(scores.begin(), scores.end());
  context.value_p.assign(static_cast<size_t>(tree.NumNodes()), 0.0);
  context.value_centered.assign(static_cast<size_t>(tree.NumNodes()), 0.0);
  for (NodeId l : tree.LeafIds()) {
    double p = dist.PrTopK(tree.node(l).leaf.key);
    context.value_p[static_cast<size_t>(l)] = p;
    context.value_centered[static_cast<size_t>(l)] = p - 0.5;
  }
  return context;
}

int NumMedianSymDiffStrata(const MedianSymDiffContext& context) {
  return static_cast<int>(context.thresholds.size()) + 1;
}

std::vector<SymDiffMedianCandidate> EvalMedianSymDiffStratum(
    const AndXorTree& tree, const MedianSymDiffContext& context, int stratum) {
  const int k = context.k;
  std::vector<SymDiffMedianCandidate> candidates;
  if (tree.NumLeaves() == 0 || k < 1) return candidates;
  if (stratum < 0 || stratum > static_cast<int>(context.thresholds.size())) {
    return candidates;
  }

  if (stratum < static_cast<int>(context.thresholds.size())) {
    // Candidates of size exactly k above this score threshold (Theorem 4):
    // a size-k world of the pruned tree is exactly the Top-k of a
    // realizable full world. DP values are P(t) = Pr(r(t) <= k).
    const double threshold = context.thresholds[static_cast<size_t>(stratum)];
    std::vector<bool> active(static_cast<size_t>(tree.NumNodes()), false);
    int num_active = 0;
    for (NodeId l : tree.LeafIds()) {
      if (tree.node(l).leaf.score >= threshold) {
        active[static_cast<size_t>(l)] = true;
        ++num_active;
      }
    }
    if (num_active < k) return candidates;
    SizeValueDp dp(tree, context.value_p, active, k);
    double v = dp.ValueAt(k);
    if (v == kNegInf) return candidates;
    candidates.push_back({v - 0.5 * k, dp.Reconstruct(k)});
    return candidates;
  }

  // Final stratum: whole worlds with fewer than k tuples (their Top-k answer
  // is the world itself), over the unpruned tree with centered values
  // P(t) - 1/2 so sizes compare on the uniform objective.
  std::vector<bool> all_active(static_cast<size_t>(tree.NumNodes()), false);
  for (NodeId l : tree.LeafIds()) {
    all_active[static_cast<size_t>(l)] = true;
  }
  SizeValueDp dp(tree, context.value_centered, all_active, k - 1);
  for (int size = 0; size < k; ++size) {
    double v = dp.ValueAt(size);
    if (v == kNegInf) continue;
    candidates.push_back({v, dp.Reconstruct(size)});
  }
  return candidates;
}

Result<TopKResult> PickMedianSymDiffCandidate(
    const AndXorTree& tree, const RankDistribution& dist,
    const std::vector<std::vector<SymDiffMedianCandidate>>& per_stratum) {
  // First-improvement merge in stratum order — the exact comparison sequence
  // of the historical sequential scan, so parallel stratum evaluation cannot
  // change which candidate wins.
  double best_v = kNegInf;
  const std::vector<NodeId>* best = nullptr;
  for (const std::vector<SymDiffMedianCandidate>& stratum : per_stratum) {
    for (const SymDiffMedianCandidate& c : stratum) {
      if (c.centered_value > best_v + kValueEps) {
        best_v = c.centered_value;
        best = &c.leaves;
      }
    }
  }
  if (best == nullptr) {
    return Status::Infeasible("no candidate Top-k answer found");
  }

  // Order the answer by score descending (its rank order in the witnessing
  // world) and convert leaves to keys.
  std::vector<NodeId> best_leaves = *best;
  std::sort(best_leaves.begin(), best_leaves.end(), [&](NodeId a, NodeId b) {
    return tree.node(a).leaf.score > tree.node(b).leaf.score;
  });
  TopKResult result;
  for (NodeId l : best_leaves) result.keys.push_back(tree.node(l).leaf.key);
  result.expected_distance = ExpectedTopKSymDiff(dist, result.keys);
  return result;
}

Result<TopKResult> MedianTopKSymDiff(const AndXorTree& tree,
                                     const RankDistribution& dist) {
  if (tree.NumLeaves() == 0) return Status::InvalidArgument("empty tree");
  const MedianSymDiffContext context = BuildMedianSymDiffContext(tree, dist);
  const int num_strata = NumMedianSymDiffStrata(context);
  std::vector<std::vector<SymDiffMedianCandidate>> per_stratum(
      static_cast<size_t>(num_strata));
  for (int s = 0; s < num_strata; ++s) {
    per_stratum[static_cast<size_t>(s)] =
        EvalMedianSymDiffStratum(tree, context, s);
  }
  return PickMedianSymDiffCandidate(tree, dist, per_stratum);
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "core/jaccard.h"

#include <algorithm>
#include <set>

#include "model/generating_function.h"
#include "poly/poly2.h"

namespace cpdb {

double JaccardDistance(const std::vector<NodeId>& s1,
                       const std::vector<NodeId>& s2) {
  size_t inter = 0;
  size_t i = 0, j = 0;
  while (i < s1.size() && j < s2.size()) {
    if (s1[i] == s2[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (s1[i] < s2[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = s1.size() + s2.size() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(uni - inter) / static_cast<double>(uni);
}

double ExpectedJaccardDistance(const AndXorTree& tree,
                               const std::vector<NodeId>& world) {
  std::set<NodeId> in_world(world.begin(), world.end());
  int w = static_cast<int>(world.size());
  int out = tree.NumLeaves() - w;
  // x tags leaves of W, y tags the rest; the coefficient of x^i y^j is the
  // probability that |pw ∩ W| = i and |pw \ W| = j, hence
  // d_J = (|W| - i + j) / (|W| + j).
  auto leaf_poly = [&](NodeId id) {
    if (in_world.count(id) > 0) return Poly2::Monomial(w, out, 1, 0, 1.0);
    return Poly2::Monomial(w, out, 0, 1, 1.0);
  };
  auto make_const = [&](double c) { return Poly2::Constant(w, out, c); };
  Poly2 f = EvalGeneratingFunction<Poly2>(tree, leaf_poly, make_const);
  double expected = 0.0;
  for (int i = 0; i <= w; ++i) {
    for (int j = 0; j <= out; ++j) {
      double c = f.Coeff(i, j);
      if (c == 0.0) continue;
      double uni = static_cast<double>(w + j);
      if (uni == 0.0) continue;  // W = pw = empty set: distance 0
      expected += c * static_cast<double>(w - i + j) / uni;
    }
  }
  return expected;
}

namespace {

// Shape check shared by IsTupleIndependent / IsBlockIndependent. Each block
// must be a XOR of leaves; `single_leaf_blocks` additionally requires one
// alternative per block.
bool HasBlockShape(const AndXorTree& tree, bool single_leaf_blocks) {
  const TreeNode& root = tree.node(tree.root());
  std::vector<NodeId> blocks;
  if (root.kind == NodeKind::kXor) {
    blocks = {tree.root()};
  } else if (root.kind == NodeKind::kAnd) {
    blocks = root.children;
  } else {
    return false;
  }
  for (NodeId b : blocks) {
    const TreeNode& block = tree.node(b);
    if (block.kind != NodeKind::kXor) return false;
    if (single_leaf_blocks && block.children.size() != 1) return false;
    KeyId key = 0;
    bool first = true;
    for (NodeId c : block.children) {
      const TreeNode& child = tree.node(c);
      if (child.kind != NodeKind::kLeaf) return false;
      if (single_leaf_blocks) {
        if (!first && child.leaf.key != key) return false;
        key = child.leaf.key;
        first = false;
      }
    }
  }
  return true;
}

// Returns the prefix (by the given leaf order) minimizing the expected
// Jaccard distance, including the empty prefix.
std::vector<NodeId> BestPrefix(const AndXorTree& tree,
                               const std::vector<NodeId>& order) {
  std::vector<NodeId> best;
  double best_cost = ExpectedJaccardDistance(tree, {});
  std::vector<NodeId> prefix;
  for (NodeId id : order) {
    prefix.push_back(id);
    std::vector<NodeId> sorted = prefix;
    std::sort(sorted.begin(), sorted.end());
    double cost = ExpectedJaccardDistance(tree, sorted);
    if (cost < best_cost) {
      best_cost = cost;
      best = sorted;
    }
  }
  return best;
}

}  // namespace

bool IsTupleIndependent(const AndXorTree& tree) {
  return HasBlockShape(tree, /*single_leaf_blocks=*/true);
}

bool IsBlockIndependent(const AndXorTree& tree) {
  return HasBlockShape(tree, /*single_leaf_blocks=*/false);
}

Result<std::vector<NodeId>> MeanWorldJaccard(const AndXorTree& tree) {
  if (!IsTupleIndependent(tree)) {
    return Status::InvalidArgument(
        "MeanWorldJaccard requires a tuple-independent database (Lemma 2)");
  }
  std::vector<double> marginal = tree.LeafMarginals();
  std::vector<NodeId> order = tree.LeafIds();
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return marginal[static_cast<size_t>(a)] > marginal[static_cast<size_t>(b)];
  });
  return BestPrefix(tree, order);
}

Result<std::vector<NodeId>> MedianWorldJaccardBid(const AndXorTree& tree) {
  if (!IsBlockIndependent(tree)) {
    return Status::InvalidArgument(
        "MedianWorldJaccardBid requires a block-independent database");
  }
  // Highest-probability alternative per block, then the Lemma 2 prefix scan
  // over blocks sorted by that probability.
  std::vector<double> marginal = tree.LeafMarginals();
  const TreeNode& root = tree.node(tree.root());
  std::vector<NodeId> blocks =
      root.kind == NodeKind::kXor ? std::vector<NodeId>{tree.root()} : root.children;
  std::vector<NodeId> representatives;
  for (NodeId b : blocks) {
    const TreeNode& block = tree.node(b);
    NodeId best_leaf = kInvalidNode;
    double best_p = 0.0;
    for (NodeId c : block.children) {
      double p = marginal[static_cast<size_t>(c)];
      if (p > best_p) {
        best_p = p;
        best_leaf = c;
      }
    }
    if (best_leaf != kInvalidNode) representatives.push_back(best_leaf);
  }
  std::sort(representatives.begin(), representatives.end(),
            [&](NodeId a, NodeId b) {
              return marginal[static_cast<size_t>(a)] >
                     marginal[static_cast<size_t>(b)];
            });
  return BestPrefix(tree, representatives);
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Monte-Carlo estimation of the expected-distance objectives, with standard
// errors and normal-approximation confidence intervals. Enumeration
// (core/evaluation.h) is exact but exponential; the estimators here scale to
// arbitrary instances and are used by tests as an independent ground truth
// and by users when a quick unbiased estimate suffices.

#ifndef CPDB_CORE_MONTE_CARLO_H_
#define CPDB_CORE_MONTE_CARLO_H_

#include <functional>

#include "common/rng.h"
#include "common/welford.h"
#include "core/clustering.h"
#include "core/evaluation.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief A Monte-Carlo estimate with uncertainty.
struct McEstimate {
  double mean = 0.0;
  double std_error = 0.0;
  int samples = 0;
  /// The chunk size the producing estimator decomposed the sample stream
  /// into — the engine's chunked-parallel paths record the value they used
  /// (fixed or adaptively resolved), so any run is reproducible bitwise by
  /// pinning EngineOptions::mc_chunk_size to it. 0 for the sequential
  /// estimators in this header, whose single Rng stream has no chunks.
  int chunk_size = 0;

  double ci95_low() const { return mean - 1.96 * std_error; }
  double ci95_high() const { return mean + 1.96 * std_error; }

  /// \brief True iff `value` lies inside the central interval of
  /// `z` standard errors.
  bool Covers(double value, double z = 3.0) const {
    return value >= mean - z * std_error && value <= mean + z * std_error;
  }
};

/// \brief Converts an accumulated Welford state into an McEstimate
/// (std_error = sqrt(m2 / ((n - 1) n)); 0 for fewer than two samples).
/// The single home of the uncertainty math, shared with the engine's
/// chunked parallel estimators.
McEstimate FinishEstimate(const Welford& acc);

/// \brief Estimates E[f(pw)] by sampling worlds; `f` maps a sampled world's
/// sorted leaf ids to a real value. Uses Welford's online variance.
McEstimate EstimateOverWorlds(
    const AndXorTree& tree, int num_samples, Rng* rng,
    const std::function<double(const std::vector<NodeId>&)>& f);

/// \brief Adaptive variant: samples in batches of `batch` until the standard
/// error drops below `target_std_error` or `max_samples` is reached.
McEstimate EstimateOverWorldsAdaptive(
    const AndXorTree& tree, double target_std_error, int max_samples,
    Rng* rng, const std::function<double(const std::vector<NodeId>&)>& f,
    int batch = 256);

/// \brief E[d(answer, topk(pw))] with uncertainty.
McEstimate McExpectedTopKDistance(const AndXorTree& tree,
                                  const std::vector<KeyId>& answer, int k,
                                  TopKMetric metric, int num_samples,
                                  Rng* rng);

/// \brief E[d(world, pw)] with uncertainty, over leaf-id sets.
McEstimate McExpectedSetDistance(const AndXorTree& tree,
                                 const std::vector<NodeId>& world,
                                 SetMetric metric, int num_samples, Rng* rng);

/// \brief E[d(answer, clustering(pw))] with uncertainty.
McEstimate McExpectedClusteringDistance(const AndXorTree& tree,
                                        const ClusteringAnswer& answer,
                                        int num_samples, Rng* rng);

}  // namespace cpdb

#endif  // CPDB_CORE_MONTE_CARLO_H_

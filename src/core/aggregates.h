// Copyright 2026 The ConsensusDB Authors
//
// Consensus answers for group-by COUNT aggregate queries (Section 6.1 of the
// paper). An instance is n independent tuples with attribute-level
// uncertainty: tuple i takes group j with probability P[i][j] (rows may sum
// to less than 1; the leftover is absence). A deterministic answer is the
// m-vector of group counts; the distance is squared L2.
//
//  * Mean answer: the expectation vector r_bar = 1P (linearity); it
//    minimizes E[||r - x||^2] over all real vectors x.
//  * Median answer: must be a possible answer. The paper's Lemma 3 /
//    Theorem 5 find the possible vector closest to r_bar with a min-cost
//    flow; Corollary 2 shows it is a 4-approximation of the true median.
//    We model the per-group quadratic cost exactly with convex unit-edge
//    chains, so the returned vector is the exact closest possible vector.

#ifndef CPDB_CORE_AGGREGATES_H_
#define CPDB_CORE_AGGREGATES_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief A group-by COUNT instance: probs[i][j] = Pr(tuple i takes group j).
/// Row sums must be <= 1 (leftover = tuple absent).
struct GroupByInstance {
  std::vector<std::vector<double>> probs;

  int num_tuples() const { return static_cast<int>(probs.size()); }
  int num_groups() const {
    return probs.empty() ? 0 : static_cast<int>(probs[0].size());
  }
};

/// \brief Validates shape and probability constraints.
Status ValidateGroupBy(const GroupByInstance& instance);

/// \brief Builds the label group-by COUNT instance from a tree's (key,
/// label) marginals: row per distinct key (ascending KeyId), column per
/// label 0..max_label, cell = the summed marginal probability of that
/// key's alternatives carrying that label. `leaf_marginals` must be
/// tree.LeafMarginals() or a bitwise-identical equivalent (the engine's
/// parallel form, a MarginalsCache entry) — the shared front half of the
/// offline `aggregate` command and the serve `op=aggregate` path, so the
/// two produce identical instances by construction. Fails when any
/// alternative lacks a label.
Result<GroupByInstance> GroupByInstanceFromTree(
    const AndXorTree& tree, const std::vector<double>& leaf_marginals);

/// \brief The mean answer r_bar: r_bar[j] = sum_i probs[i][j].
std::vector<double> MeanAggregate(const GroupByInstance& instance);

/// \brief E[||r - x||^2] for a fixed vector x, in closed form:
/// sum_j [ Var(r_j) + (r_bar_j - x_j)^2 ] with
/// Var(r_j) = sum_i p_ij (1 - p_ij) (tuples are independent).
double ExpectedSquaredDistance(const GroupByInstance& instance,
                               const std::vector<double>& x);

/// \brief The possible count vector closest to the mean answer (Lemma 3 /
/// Theorem 5), via min-cost flow with exact convex per-group costs. By
/// Corollary 2 this is a deterministic 4-approximation of the median answer.
Result<std::vector<int64_t>> ClosestPossibleAggregate(
    const GroupByInstance& instance);

/// \brief Exact median answer by exhaustive enumeration of the (m+1)^n
/// assignments; fails beyond `max_assignments` enumerated states. Test/bench
/// ground truth only.
Result<std::vector<int64_t>> ExactMedianAggregate(
    const GroupByInstance& instance, int64_t max_assignments = 1 << 22);

}  // namespace cpdb

#endif  // CPDB_CORE_AGGREGATES_H_

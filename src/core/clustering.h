// Copyright 2026 The ConsensusDB Authors
//
// Consensus clustering over probabilistic databases (Section 6.2 of the
// paper). Two tuples are clustered together in a possible world iff they
// take the same (categorical) value for the uncertain attribute; keys absent
// from a world form one artificial cluster. The distance between two
// clusterings is the number of unordered pairs clustered together in one and
// separated in the other; the mean clustering minimizes the expected
// distance to the world-induced clustering.
//
// The expected distance depends only on the co-clustering probabilities
//   w_ij = sum_a Pr(i.A = a and j.A = a) + Pr(i absent and j absent),
// each computable with a two-coefficient generating function (Theorem 1).
// We implement the combinatorial pivot algorithm of Ailon-Charikar-Newman
// (the paper adapts their 4/3 LP algorithm; the LP-free pivot variant keeps
// the constant-factor guarantee), plus local search and an exact
// small-instance baseline.

#ifndef CPDB_CORE_CLUSTERING_H_
#define CPDB_CORE_CLUSTERING_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief A clustering of the keys: cluster_of[i] is the cluster id of
/// keys()[i]; ids are arbitrary but equal ids mean "together".
struct ClusteringAnswer {
  std::vector<int> cluster_of;
};

/// \brief A consensus clustering instance: the keys and their pairwise
/// co-clustering probabilities.
class ClusteringProblem {
 public:
  /// Builds the instance from a validated tree. Every leaf must carry a
  /// non-negative label. Uses closed-form marginals on block-independent
  /// trees and generating functions otherwise.
  static Result<ClusteringProblem> FromTree(const AndXorTree& tree);

  const std::vector<KeyId>& keys() const { return keys_; }
  int num_keys() const { return static_cast<int>(keys_.size()); }

  /// \brief w_ij by key indices (positions in keys()).
  double W(int i, int j) const { return w_[static_cast<size_t>(i)][static_cast<size_t>(j)]; }

  /// \brief E[d(answer, clustering(pw))] =
  /// sum_{i<j} together(answer) ? (1 - w_ij) : w_ij.
  double Expected(const ClusteringAnswer& answer) const;

 private:
  std::vector<KeyId> keys_;
  std::vector<std::vector<double>> w_;
};

/// \brief ACN-style pivot clustering: repeatedly pick a random unclustered
/// pivot and absorb every unclustered j with w(pivot, j) >= 1/2.
ClusteringAnswer PivotClustering(const ClusteringProblem& problem, Rng* rng);

/// \brief Greedy local search: move single keys between clusters (or to a
/// fresh singleton) while the expected distance improves.
ClusteringAnswer LocalSearchClustering(const ClusteringProblem& problem,
                                       const ClusteringAnswer& start,
                                       int max_rounds = 100);

/// \brief Exact mean clustering by enumerating set partitions (Bell(n);
/// requires num_keys <= max_keys). Test/bench ground truth only.
Result<ClusteringAnswer> ExactClustering(const ClusteringProblem& problem,
                                         int max_keys = 10);

/// \brief The clustering induced by a possible world (same label together;
/// absent keys share one artificial cluster), expressed over problem.keys().
ClusteringAnswer ClusteringOfWorld(const AndXorTree& tree,
                                   const std::vector<KeyId>& problem_keys,
                                   const std::vector<NodeId>& world);

/// \brief Best-of-sampled-worlds heuristic: samples `num_samples` worlds and
/// keeps the induced clustering with the smallest expected distance.
ClusteringAnswer BestOfWorldsClustering(const AndXorTree& tree,
                                        const ClusteringProblem& problem,
                                        int num_samples, Rng* rng);

}  // namespace cpdb

#endif  // CPDB_CORE_CLUSTERING_H_

// Copyright 2026 The ConsensusDB Authors

#include "core/ranking_baselines.h"

#include <algorithm>
#include <map>

#include "model/possible_worlds.h"

namespace cpdb {

namespace {

// Sorts keys by a per-key value (descending if `descending`) and returns the
// first k.
std::vector<KeyId> TopKeysByValue(const std::vector<KeyId>& keys,
                                  const std::map<KeyId, double>& value, int k,
                                  bool descending) {
  std::vector<KeyId> sorted = keys;
  std::stable_sort(sorted.begin(), sorted.end(), [&](KeyId a, KeyId b) {
    double va = value.at(a), vb = value.at(b);
    return descending ? va > vb : va < vb;
  });
  if (static_cast<int>(sorted.size()) > k) sorted.resize(static_cast<size_t>(k));
  return sorted;
}

}  // namespace

std::vector<KeyId> TopKByExpectedScore(const AndXorTree& tree, int k) {
  std::vector<double> marginal = tree.LeafMarginals();
  std::map<KeyId, double> value;
  for (KeyId key : tree.Keys()) value[key] = 0.0;
  for (NodeId l : tree.LeafIds()) {
    const TupleAlternative& alt = tree.node(l).leaf;
    value[alt.key] += marginal[static_cast<size_t>(l)] * alt.score;
  }
  return TopKeysByValue(tree.Keys(), value, k, /*descending=*/true);
}

std::vector<double> ExpectedRanks(const AndXorTree& tree) {
  const std::vector<NodeId>& leaves = tree.LeafIds();
  std::vector<double> marginal = tree.LeafMarginals();
  std::vector<KeyId> keys = tree.Keys();
  std::map<KeyId, size_t> key_index;
  for (size_t i = 0; i < keys.size(); ++i) key_index[keys[i]] = i;

  std::vector<double> expected(keys.size(), 0.0);
  for (KeyId key : keys) {
    double e = 0.0;
    double p_present = 0.0;
    // Present case: rank = 1 + #(higher-scoring other-key leaves present).
    for (NodeId a : leaves) {
      const TupleAlternative& alt = tree.node(a).leaf;
      if (alt.key != key) continue;
      double pa = marginal[static_cast<size_t>(a)];
      p_present += pa;
      e += pa;  // the "1 +" part
      for (NodeId l : leaves) {
        const TupleAlternative& other = tree.node(l).leaf;
        if (other.key == key || other.score <= alt.score) continue;
        e += tree.PairPresenceProbability(a, l);
      }
    }
    // Absent case: rank = |pw| + 1.
    // E[(|pw| + 1) * 1(key absent)] = Pr(absent) + sum_l Pr(l present and
    // key absent), and Pr(l and key absent) = Pr(l) - sum_a Pr(l and a).
    e += 1.0 - p_present;
    for (NodeId l : leaves) {
      const TupleAlternative& other = tree.node(l).leaf;
      if (other.key == key) continue;  // l present with key absent impossible
      double p_l_and_key = 0.0;
      for (NodeId a : leaves) {
        if (tree.node(a).leaf.key != key) continue;
        p_l_and_key += tree.PairPresenceProbability(l, a);
      }
      e += marginal[static_cast<size_t>(l)] - p_l_and_key;
    }
    expected[key_index[key]] = e;
  }
  return expected;
}

std::vector<KeyId> TopKByExpectedRankFromRanks(const std::vector<KeyId>& keys,
                                               const std::vector<double>& ranks,
                                               int k) {
  std::map<KeyId, double> value;
  for (size_t i = 0; i < keys.size(); ++i) value[keys[i]] = ranks[i];
  return TopKeysByValue(keys, value, k, /*descending=*/false);
}

std::vector<KeyId> TopKByExpectedRank(const AndXorTree& tree, int k) {
  return TopKByExpectedRankFromRanks(tree.Keys(), ExpectedRanks(tree), k);
}

std::vector<KeyId> ProbabilisticThresholdTopK(const RankDistribution& dist,
                                              double threshold) {
  std::vector<KeyId> selected;
  for (KeyId key : dist.keys()) {
    if (dist.PrTopK(key) >= threshold) selected.push_back(key);
  }
  std::stable_sort(selected.begin(), selected.end(), [&](KeyId a, KeyId b) {
    return dist.PrTopK(a) > dist.PrTopK(b);
  });
  return selected;
}

std::vector<KeyId> GlobalTopK(const RankDistribution& dist) {
  std::map<KeyId, double> value;
  for (KeyId key : dist.keys()) value[key] = dist.PrTopK(key);
  return TopKeysByValue(dist.keys(), value, dist.k(), /*descending=*/true);
}

Result<std::vector<KeyId>> UTopKExact(const AndXorTree& tree, int k,
                                      size_t max_worlds) {
  CPDB_ASSIGN_OR_RETURN(std::vector<World> worlds,
                        EnumerateWorlds(tree, max_worlds));
  std::map<std::vector<KeyId>, double> list_prob;
  for (const World& w : worlds) {
    list_prob[TopKOfWorld(tree, w.leaf_ids, k)] += w.prob;
  }
  const std::vector<KeyId>* best = nullptr;
  double best_prob = -1.0;
  for (const auto& [list, prob] : list_prob) {
    if (prob > best_prob) {
      best_prob = prob;
      best = &list;
    }
  }
  if (best == nullptr) return Status::Infeasible("no worlds");
  return *best;
}

std::vector<KeyId> UTopKSampled(const AndXorTree& tree, int k, int num_samples,
                                Rng* rng) {
  std::map<std::vector<KeyId>, int> counts;
  for (int s = 0; s < num_samples; ++s) {
    ++counts[TopKOfWorld(tree, SampleWorld(tree, rng), k)];
  }
  const std::vector<KeyId>* best = nullptr;
  int best_count = -1;
  for (const auto& [list, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best = &list;
    }
  }
  return best == nullptr ? std::vector<KeyId>{} : *best;
}

std::vector<KeyId> TopKByPRF(const RankDistribution& dist,
                             const std::vector<double>& weights) {
  std::map<KeyId, double> value;
  for (KeyId key : dist.keys()) {
    double v = 0.0;
    for (int i = 1; i <= dist.k() && i <= static_cast<int>(weights.size());
         ++i) {
      v += weights[static_cast<size_t>(i - 1)] * dist.PrRankEq(key, i);
    }
    value[key] = v;
  }
  return TopKeysByValue(dist.keys(), value, dist.k(), /*descending=*/true);
}

std::vector<double> PrfUpsilonHWeights(int k) {
  std::vector<double> weights(static_cast<size_t>(std::max(k, 0)));
  double h_k = 0.0;
  for (int m = 1; m <= k; ++m) h_k += 1.0 / static_cast<double>(m);
  double h_prev = 0.0;  // H_{i-1}, starting from H_0 = 0
  for (int i = 1; i <= k; ++i) {
    weights[static_cast<size_t>(i - 1)] = h_k - h_prev;
    h_prev += 1.0 / static_cast<double>(i);
  }
  return weights;
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Consensus Top-k answers under the Kendall tau distance K^(0) (Section 5.5
// of the paper). Exact optimization is NP-hard already for aggregating four
// rankings (Dwork et al.), hence the paper settles for constant-factor
// approximations driven by the pairwise order probabilities
// Pr(r(t_i) < r(t_j)), which are poly-time computable on and/xor trees.
//
// The expected distance itself decomposes over key pairs:
//   E[d_K(tau, topk(pw))] = sum_{tau ranks t before u} q(u, t)
//                         + sum_{t in tau, u notin tau} q(u, t)
// with q(u, t) = Pr(r(u) <= k and r(u) < r(t)), so we can evaluate any
// candidate answer exactly — this powers both the approximation-ratio
// experiments and the small-instance exact baseline.
//
// Substitution note (DESIGN.md): Ailon's 3/2-approximation rounds an LP; we
// implement the LP-free alternatives the paper itself references — the
// footrule-optimal answer (2-approximation via the metric equivalence class)
// and KwikSort-style pivoting on the pairwise majority tournament.

#ifndef CPDB_CORE_TOPK_KENDALL_H_
#define CPDB_CORE_TOPK_KENDALL_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/rank_distribution.h"
#include "core/topk_symdiff.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief q(u, t) = Pr(r(u) <= k and r(u) < r(t)): u makes the Top-k and
/// ranks ahead of t (t absent or ranked below both count). Pointer-tree
/// reference implementation (differential baseline for the flat overload).
double PrInTopKAndBefore(const AndXorTree& tree, KeyId u, KeyId t, int k);

/// \brief Flat-path q(u, t) over an already compiled tree — the form the
/// O(n^2) q-matrix loops use so the compile cost is paid once per tree.
/// Bitwise identical to the pointer reference.
double PrInTopKAndBefore(const FlatTree& flat, KeyId u, KeyId t, int k);

/// \brief Precomputes the pairwise q statistics for a key set and evaluates
/// E[d_K(answer, topk(pw))] for arbitrary candidate answers.
class KendallEvaluator {
 public:
  /// Precomputation costs O(|keys|^2) generating-function folds.
  KendallEvaluator(const AndXorTree& tree, int k);

  /// \brief Builds an evaluator from an externally computed q matrix with
  /// q[i][j] = q(keys[i], keys[j]) over keys = tree.Keys() (diagonal
  /// ignored). Lets callers parallelize the quadratic precompute — the
  /// engine fans one PrInTopKAndBefore fold per ordered pair across its
  /// thread pool — while this class stays thread-free. A matrix whose
  /// shape does not match tree.Keys() (built over a different key list)
  /// would yield silently wrong expectations, so it returns
  /// InvalidArgument instead of an evaluator. O(|keys|^2) to adopt the
  /// matrix.
  static Result<KendallEvaluator> Create(const AndXorTree& tree, int k,
                                         std::vector<std::vector<double>> q);

  int k() const { return k_; }
  const std::vector<KeyId>& keys() const { return keys_; }

  /// \brief q(u, t) for keys of the tree.
  double Q(KeyId u, KeyId t) const;

  /// \brief E[d_K(answer, topk(pw))] for an ordered candidate answer of
  /// distinct keys.
  double Expected(const std::vector<KeyId>& answer) const;

 private:
  // Adopts a shape-checked matrix; reached only through Create.
  KendallEvaluator(int k, std::vector<KeyId> keys,
                   std::vector<std::vector<double>> q);

  int k_;
  std::vector<KeyId> keys_;
  std::vector<std::vector<double>> q_;  // q_[u_idx][t_idx]
  std::vector<int> index_of_key_;       // dense map; keys are validated ids
  void BuildKeyIndex();
  int IndexOf(KeyId key) const;
};

/// \brief KwikSort-style aggregation: ranks all keys by randomized pivoting
/// on the majority tournament Pr(r(i) < r(j)) >= 1/2 and returns the first k.
Result<TopKResult> MeanTopKKendallPivot(const KendallEvaluator& evaluator,
                                        const std::vector<std::vector<double>>& order_probs,
                                        Rng* rng);

/// \brief The footrule-optimal answer re-scored under d_K (a
/// 2-approximation by the Fagin et al. equivalence class).
Result<TopKResult> MeanTopKKendallViaFootrule(const KendallEvaluator& evaluator,
                                              const RankDistribution& dist);

/// \brief Re-scores an already computed answer under d_K — the tail of
/// MeanTopKKendallViaFootrule, split out so the engine can supply a footrule
/// answer whose cost columns were built across its thread pool.
TopKResult RescoreUnderKendall(const KendallEvaluator& evaluator,
                               TopKResult answer);

/// \brief Exact mean answer by exhaustive search over ordered k-subsets of
/// the candidate keys (those with Pr(r(t) <= k) > 0). Exponential; fails
/// unless the candidate count is at most `max_candidates`.
Result<TopKResult> MeanTopKKendallExact(const KendallEvaluator& evaluator,
                                        const RankDistribution& dist,
                                        int max_candidates = 10);

/// \brief Exact mean answer by a Held-Karp style subset DP: the objective
/// E[d_K] decomposes as sum over ordered answer pairs of q(later, earlier)
/// plus a boundary term per chosen set, so
///   f(S) = min_{t in S} f(S \ {t}) + sum_{p in S \ {t}} q(t, p)
/// gives the best internal ordering of each subset, and the optimum is
/// min_{|S| = k} f(S) + boundary(S). O(2^c c^2) for c candidates — exact up
/// to `max_candidates` around 20 instead of the factorial brute force's ~10.
Result<TopKResult> MeanTopKKendallExactDp(const KendallEvaluator& evaluator,
                                          const RankDistribution& dist,
                                          int max_candidates = 20);

}  // namespace cpdb

#endif  // CPDB_CORE_TOPK_KENDALL_H_

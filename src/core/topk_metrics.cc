// Copyright 2026 The ConsensusDB Authors

#include "core/topk_metrics.h"

#include <algorithm>
#include <map>
#include <set>

namespace cpdb {

const char* TopKMetricName(TopKMetric metric) {
  switch (metric) {
    case TopKMetric::kSymDiff:
      return "symdiff";
    case TopKMetric::kIntersection:
      return "intersection";
    case TopKMetric::kFootrule:
      return "footrule";
    case TopKMetric::kKendall:
      return "kendall";
  }
  return "?";
}

Result<TopKMetric> ParseTopKMetricName(const std::string& name) {
  for (TopKMetric metric :
       {TopKMetric::kSymDiff, TopKMetric::kIntersection, TopKMetric::kFootrule,
        TopKMetric::kKendall}) {
    if (name == TopKMetricName(metric)) return metric;
  }
  return Status::InvalidArgument(
      "unknown metric '" + name +
      "' (expected symdiff, intersection, footrule or kendall)");
}

namespace {

// Number of elements in exactly one of the two key sets.
int SymDiffSize(const std::vector<KeyId>& a, const std::vector<KeyId>& b) {
  std::set<KeyId> sa(a.begin(), a.end());
  std::set<KeyId> sb(b.begin(), b.end());
  int diff = 0;
  for (KeyId t : sa) {
    if (sb.count(t) == 0) ++diff;
  }
  for (KeyId t : sb) {
    if (sa.count(t) == 0) ++diff;
  }
  return diff;
}

// Positions (1-based) of each key; missing keys are absent from the map.
std::map<KeyId, int> Positions(const std::vector<KeyId>& list) {
  std::map<KeyId, int> pos;
  for (size_t i = 0; i < list.size(); ++i) {
    pos[list[i]] = static_cast<int>(i) + 1;
  }
  return pos;
}

}  // namespace

double TopKListDistance(const std::vector<KeyId>& a,
                        const std::vector<KeyId>& b, int k, TopKMetric metric) {
  switch (metric) {
    case TopKMetric::kSymDiff:
      return TopKSymmetricDifference(a, b, k);
    case TopKMetric::kIntersection:
      return TopKIntersectionDistance(a, b, k);
    case TopKMetric::kFootrule:
      return TopKFootrule(a, b, k);
    case TopKMetric::kKendall:
      return TopKKendall(a, b, k);
  }
  return 0.0;
}

double TopKSymmetricDifference(const std::vector<KeyId>& a,
                               const std::vector<KeyId>& b, int k) {
  return static_cast<double>(SymDiffSize(a, b)) / (2.0 * k);
}

double TopKIntersectionDistance(const std::vector<KeyId>& a,
                                const std::vector<KeyId>& b, int k) {
  double total = 0.0;
  for (int i = 1; i <= k; ++i) {
    std::vector<KeyId> pa(a.begin(),
                          a.begin() + std::min<size_t>(a.size(), static_cast<size_t>(i)));
    std::vector<KeyId> pb(b.begin(),
                          b.begin() + std::min<size_t>(b.size(), static_cast<size_t>(i)));
    total += static_cast<double>(SymDiffSize(pa, pb)) / (2.0 * i);
  }
  return total / k;
}

double TopKFootrule(const std::vector<KeyId>& a, const std::vector<KeyId>& b,
                    int k) {
  std::map<KeyId, int> pa = Positions(a);
  std::map<KeyId, int> pb = Positions(b);
  std::set<KeyId> all;
  for (KeyId t : a) all.insert(t);
  for (KeyId t : b) all.insert(t);
  double total = 0.0;
  for (KeyId t : all) {
    auto ia = pa.find(t);
    auto ib = pb.find(t);
    int posa = ia == pa.end() ? k + 1 : ia->second;
    int posb = ib == pb.end() ? k + 1 : ib->second;
    total += std::abs(posa - posb);
  }
  return total;
}

double TopKKendall(const std::vector<KeyId>& a, const std::vector<KeyId>& b,
                   int /*k*/) {
  std::map<KeyId, int> pa = Positions(a);
  std::map<KeyId, int> pb = Positions(b);
  std::vector<KeyId> all;
  for (const auto& [t, p] : pa) all.push_back(t);
  for (const auto& [t, p] : pb) {
    if (pa.count(t) == 0) all.push_back(t);
  }
  double disagreements = 0.0;
  for (size_t x = 0; x < all.size(); ++x) {
    for (size_t y = x + 1; y < all.size(); ++y) {
      KeyId t = all[x], u = all[y];
      bool t_in_a = pa.count(t) > 0, u_in_a = pa.count(u) > 0;
      bool t_in_b = pb.count(t) > 0, u_in_b = pb.count(u) > 0;
      if (t_in_a && u_in_a && t_in_b && u_in_b) {
        // Both lists rank both: disagreement iff the order flips.
        bool order_a = pa[t] < pa[u];
        bool order_b = pb[t] < pb[u];
        if (order_a != order_b) disagreements += 1.0;
      } else if (t_in_a && u_in_a) {
        // Only list a ranks both. In any extension of b, a present key
        // precedes an absent one; disagreement iff a ranks them oppositely.
        if (t_in_b && pa[u] < pa[t]) disagreements += 1.0;
        if (u_in_b && pa[t] < pa[u]) disagreements += 1.0;
        // Neither in b: order in b's extensions is unconstrained -> 0.
      } else if (t_in_b && u_in_b) {
        if (t_in_a && pb[u] < pb[t]) disagreements += 1.0;
        if (u_in_a && pb[t] < pb[u]) disagreements += 1.0;
      } else {
        // Each list ranks exactly one of {t, u}; the ranked one precedes the
        // unranked one in every extension, so the orders provably flip iff
        // the lists rank different elements.
        bool a_ranks_t = t_in_a;  // exactly one of t_in_a/u_in_a holds here
        bool b_ranks_t = t_in_b;
        if (a_ranks_t != b_ranks_t) disagreements += 1.0;
      }
    }
  }
  return disagreements;
}

}  // namespace cpdb

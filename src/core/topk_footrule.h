// Copyright 2026 The ConsensusDB Authors
//
// Mean Top-k answer under the Spearman footrule metric with location
// parameter k+1 (Section 5.4 of the paper). The expected distance decomposes
// into a constant plus a per-(tuple, position) cost, so the optimum is an
// assignment problem. The per-position statistics are
//   Upsilon1(t)    = Pr(r(t) <= k)
//   Upsilon2(t)    = sum_{i<=k} i * Pr(r(t) = i)
//   Upsilon3(t, i) = sum_{j<=k} |i - j| Pr(r(t) = j) + i * Pr(r(t) > k).
//
// NOTE (reproduction finding, see EXPERIMENTS.md): the final combined
// expression in the paper's Figure 2 drops a (k+1-2i)*Pr(r(t)>k) term while
// folding the derivation into Upsilon3. Re-deriving from the F^(k+1)
// definition (and verifying against exhaustive enumeration in
// tests/topk_footrule_test.cc) gives the assignment cost implemented here:
//   f(t, i) = sum_{j<=k} |i-j| Pr(r(t)=j) + (k+1-i) Pr(r(t)>k)
//             - (k+1) Upsilon1(t) + Upsilon2(t),
// with constant C = k(k+1)*0 + sum_t [(k+1) Upsilon1(t) - Upsilon2(t)].
// The paper's structural claim (polynomial-time mean answer via assignment)
// is unaffected.

#ifndef CPDB_CORE_TOPK_FOOTRULE_H_
#define CPDB_CORE_TOPK_FOOTRULE_H_

#include <vector>

#include "common/result.h"
#include "core/rank_distribution.h"
#include "core/topk_symdiff.h"

namespace cpdb {

/// \brief Upsilon2(t) = sum_{i<=k} i * Pr(r(t) = i).
double Upsilon2(const RankDistribution& dist, KeyId key);

/// \brief Upsilon3(t, i) = sum_{j<=k} |i-j| Pr(r(t)=j) + i Pr(r(t)>k).
double Upsilon3(const RankDistribution& dist, KeyId key, int i);

/// \brief The assignment cost f(t, i) of placing tuple t at position i.
double FootrulePositionCost(const RankDistribution& dist, KeyId key,
                            int position);

/// \brief E[F^(k+1)(answer, topk(pw))], exactly, from the rank distribution.
/// Valid for answers of size exactly k.
double ExpectedTopKFootrule(const RankDistribution& dist,
                            const std::vector<KeyId>& answer);

/// \brief Exact mean Top-k answer under the footrule metric via the
/// Hungarian algorithm. Requires at least k keys.
Result<TopKResult> MeanTopKFootrule(const RankDistribution& dist);

/// \brief The assignment costs of one candidate tuple: entry i - 1 is
/// FootrulePositionCost(dist, key, i) for positions i = 1..k. Building the
/// k x n cost matrix is the dominant O(n k^2) part of MeanTopKFootrule; one
/// column is the per-candidate unit Engine::ConsensusTopK fans across its
/// thread pool.
std::vector<double> FootruleCostColumn(const RankDistribution& dist, KeyId key);

/// \brief MeanTopKFootrule from externally computed candidate columns
/// (columns[t] = FootruleCostColumn(dist, dist.keys()[t])); shared by the
/// sequential wrapper and the engine's parallel path, so both feed the same
/// Hungarian solve. Fails on a column count or length mismatch.
Result<TopKResult> MeanTopKFootruleFromColumns(
    const RankDistribution& dist,
    const std::vector<std::vector<double>>& columns);

}  // namespace cpdb

#endif  // CPDB_CORE_TOPK_FOOTRULE_H_

// Copyright 2026 The ConsensusDB Authors

#include "core/evaluation.h"

#include "core/jaccard.h"
#include "core/topk_metrics.h"

namespace cpdb {

Result<double> EnumExpectedTopKDistance(const AndXorTree& tree,
                                        const std::vector<KeyId>& answer,
                                        int k, TopKMetric metric,
                                        size_t max_worlds) {
  CPDB_ASSIGN_OR_RETURN(std::vector<World> worlds,
                        EnumerateWorlds(tree, max_worlds));
  double expected = 0.0;
  for (const World& w : worlds) {
    expected += w.prob * TopKListDistance(
                             answer, TopKOfWorld(tree, w.leaf_ids, k), k,
                             metric);
  }
  return expected;
}

double SampleExpectedTopKDistance(const AndXorTree& tree,
                                  const std::vector<KeyId>& answer, int k,
                                  TopKMetric metric, int num_samples,
                                  Rng* rng) {
  double total = 0.0;
  for (int s = 0; s < num_samples; ++s) {
    std::vector<NodeId> world = SampleWorld(tree, rng);
    total += TopKListDistance(answer, TopKOfWorld(tree, world, k), k, metric);
  }
  return total / num_samples;
}

Result<double> EnumExpectedSetDistance(const AndXorTree& tree,
                                       const std::vector<NodeId>& world,
                                       SetMetric metric, size_t max_worlds) {
  CPDB_ASSIGN_OR_RETURN(std::vector<World> worlds,
                        EnumerateWorlds(tree, max_worlds));
  double expected = 0.0;
  for (const World& w : worlds) {
    double d = 0.0;
    switch (metric) {
      case SetMetric::kSymDiff: {
        // |A Δ B| over sorted id vectors.
        size_t i = 0, j = 0, inter = 0;
        while (i < world.size() && j < w.leaf_ids.size()) {
          if (world[i] == w.leaf_ids[j]) {
            ++inter;
            ++i;
            ++j;
          } else if (world[i] < w.leaf_ids[j]) {
            ++i;
          } else {
            ++j;
          }
        }
        d = static_cast<double>(world.size() + w.leaf_ids.size() - 2 * inter);
        break;
      }
      case SetMetric::kJaccard:
        d = JaccardDistance(world, w.leaf_ids);
        break;
    }
    expected += w.prob * d;
  }
  return expected;
}

double ClusteringDistance(const ClusteringAnswer& a,
                          const ClusteringAnswer& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.cluster_of.size(); ++i) {
    for (size_t j = i + 1; j < a.cluster_of.size(); ++j) {
      bool ta = a.cluster_of[i] == a.cluster_of[j];
      bool tb = b.cluster_of[i] == b.cluster_of[j];
      if (ta != tb) d += 1.0;
    }
  }
  return d;
}

Result<double> EnumExpectedClusteringDistance(const AndXorTree& tree,
                                              const ClusteringAnswer& answer,
                                              size_t max_worlds) {
  CPDB_ASSIGN_OR_RETURN(std::vector<World> worlds,
                        EnumerateWorlds(tree, max_worlds));
  std::vector<KeyId> keys = tree.Keys();
  double expected = 0.0;
  for (const World& w : worlds) {
    ClusteringAnswer induced = ClusteringOfWorld(tree, keys, w.leaf_ids);
    expected += w.prob * ClusteringDistance(answer, induced);
  }
  return expected;
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "core/topk_footrule.h"

#include <cmath>

#include "matching/hungarian.h"

namespace cpdb {

double Upsilon2(const RankDistribution& dist, KeyId key) {
  double v = 0.0;
  for (int i = 1; i <= dist.k(); ++i) v += i * dist.PrRankEq(key, i);
  return v;
}

double Upsilon3(const RankDistribution& dist, KeyId key, int i) {
  double v = 0.0;
  for (int j = 1; j <= dist.k(); ++j) {
    v += std::abs(i - j) * dist.PrRankEq(key, j);
  }
  v += i * dist.PrBeyondK(key);
  return v;
}

double FootrulePositionCost(const RankDistribution& dist, KeyId key,
                            int position) {
  const int k = dist.k();
  double upsilon3_prime = 0.0;  // sum_j |i-j| Pr(r=j), without the absence part
  for (int j = 1; j <= k; ++j) {
    upsilon3_prime += std::abs(position - j) * dist.PrRankEq(key, j);
  }
  return upsilon3_prime + (k + 1 - position) * dist.PrBeyondK(key) -
         (k + 1) * dist.PrTopK(key) + Upsilon2(dist, key);
}

namespace {

// The answer-independent part of E[F^(k+1)]: every tuple that lands in the
// world's Top-k contributes (k+1) - (its rank) when it is not matched by the
// answer; the matched corrections live in FootrulePositionCost.
double FootruleConstant(const RankDistribution& dist) {
  double c = 0.0;
  for (KeyId key : dist.keys()) {
    c += (dist.k() + 1) * dist.PrTopK(key) - Upsilon2(dist, key);
  }
  return c;
}

}  // namespace

double ExpectedTopKFootrule(const RankDistribution& dist,
                            const std::vector<KeyId>& answer) {
  double total = FootruleConstant(dist);
  for (size_t i = 0; i < answer.size(); ++i) {
    total += FootrulePositionCost(dist, answer[i], static_cast<int>(i) + 1);
  }
  return total;
}

std::vector<double> FootruleCostColumn(const RankDistribution& dist,
                                       KeyId key) {
  std::vector<double> column(static_cast<size_t>(dist.k()), 0.0);
  for (int i = 1; i <= dist.k(); ++i) {
    column[static_cast<size_t>(i - 1)] = FootrulePositionCost(dist, key, i);
  }
  return column;
}

Result<TopKResult> MeanTopKFootruleFromColumns(
    const RankDistribution& dist,
    const std::vector<std::vector<double>>& columns) {
  const int k = dist.k();
  const std::vector<KeyId>& keys = dist.keys();
  if (static_cast<int>(keys.size()) < k) {
    return Status::InvalidArgument(
        "footrule mean answer needs at least k tuples");
  }
  if (columns.size() != keys.size()) {
    return Status::InvalidArgument("one cost column per key required");
  }
  // Transpose into the row-major (positions x tuples) matrix the Hungarian
  // solver consumes.
  std::vector<std::vector<double>> cost(
      static_cast<size_t>(k), std::vector<double>(keys.size(), 0.0));
  for (size_t t = 0; t < keys.size(); ++t) {
    if (static_cast<int>(columns[t].size()) != k) {
      return Status::InvalidArgument("cost column has wrong length");
    }
    for (int i = 0; i < k; ++i) {
      cost[static_cast<size_t>(i)][t] = columns[t][static_cast<size_t>(i)];
    }
  }
  CPDB_ASSIGN_OR_RETURN(Assignment assignment, SolveAssignmentMin(cost));
  TopKResult result;
  result.keys.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    result.keys.push_back(
        keys[static_cast<size_t>(assignment.row_to_col[static_cast<size_t>(i)])]);
  }
  result.expected_distance = ExpectedTopKFootrule(dist, result.keys);
  return result;
}

Result<TopKResult> MeanTopKFootrule(const RankDistribution& dist) {
  std::vector<std::vector<double>> columns;
  columns.reserve(dist.keys().size());
  for (KeyId key : dist.keys()) {
    columns.push_back(FootruleCostColumn(dist, key));
  }
  return MeanTopKFootruleFromColumns(dist, columns);
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "core/hardness.h"

#include <algorithm>
#include <limits>
#include <map>

#include "core/jaccard.h"

namespace cpdb {

bool ClauseSatisfied(const TwoSatClause& clause,
                     const std::vector<bool>& assignment) {
  bool lit1 = assignment[static_cast<size_t>(clause.var1)] == clause.positive1;
  bool lit2 = assignment[static_cast<size_t>(clause.var2)] == clause.positive2;
  return lit1 || lit2;
}

namespace {

Status CheckInstance(const Max2SatInstance& instance) {
  if (instance.num_vars < 1 || instance.num_vars > 20) {
    return Status::InvalidArgument("num_vars must be in [1, 20]");
  }
  for (const TwoSatClause& c : instance.clauses) {
    if (c.var1 < 0 || c.var1 >= instance.num_vars || c.var2 < 0 ||
        c.var2 >= instance.num_vars) {
      return Status::InvalidArgument("clause variable out of range");
    }
  }
  return Status::OK();
}

std::vector<bool> AssignmentFromMask(uint32_t mask, int num_vars) {
  std::vector<bool> assignment(static_cast<size_t>(num_vars));
  for (int v = 0; v < num_vars; ++v) assignment[static_cast<size_t>(v)] = mask & (1u << v);
  return assignment;
}

}  // namespace

Result<int> BruteForceMax2Sat(const Max2SatInstance& instance) {
  CPDB_RETURN_NOT_OK(CheckInstance(instance));
  int best = 0;
  for (uint32_t mask = 0; mask < (1u << instance.num_vars); ++mask) {
    std::vector<bool> assignment = AssignmentFromMask(mask, instance.num_vars);
    int satisfied = 0;
    for (const TwoSatClause& c : instance.clauses) {
      satisfied += ClauseSatisfied(c, assignment) ? 1 : 0;
    }
    best = std::max(best, satisfied);
  }
  return best;
}

Result<std::vector<ResultWorld>> EnumerateQueryResultWorlds(
    const Max2SatInstance& instance) {
  CPDB_RETURN_NOT_OK(CheckInstance(instance));
  std::map<std::vector<int>, double> outcomes;
  double p = 1.0 / static_cast<double>(1u << instance.num_vars);
  for (uint32_t mask = 0; mask < (1u << instance.num_vars); ++mask) {
    std::vector<bool> assignment = AssignmentFromMask(mask, instance.num_vars);
    std::vector<int> satisfied;
    for (size_t i = 0; i < instance.clauses.size(); ++i) {
      if (ClauseSatisfied(instance.clauses[i], assignment)) {
        satisfied.push_back(static_cast<int>(i));
      }
    }
    outcomes[satisfied] += p;
  }
  std::vector<ResultWorld> worlds;
  worlds.reserve(outcomes.size());
  for (auto& [clauses, prob] : outcomes) {
    worlds.push_back({clauses, prob});
  }
  return worlds;
}

Result<std::vector<int>> MedianQueryResult(const Max2SatInstance& instance) {
  CPDB_ASSIGN_OR_RETURN(std::vector<ResultWorld> worlds,
                        EnumerateQueryResultWorlds(instance));
  // Median = possible answer minimizing the expected key-level symmetric
  // difference. For a candidate S: E[d] = sum_c in S Pr(c absent) +
  // sum_c notin S Pr(c present), evaluated over the result distribution.
  std::vector<double> present(instance.clauses.size(), 0.0);
  for (const ResultWorld& w : worlds) {
    for (int c : w.satisfied_clauses) present[static_cast<size_t>(c)] += w.prob;
  }
  const std::vector<int>* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const ResultWorld& w : worlds) {
    double cost = 0.0;
    std::vector<bool> in_world(instance.clauses.size(), false);
    for (int c : w.satisfied_clauses) in_world[static_cast<size_t>(c)] = true;
    for (size_t c = 0; c < instance.clauses.size(); ++c) {
      cost += in_world[c] ? (1.0 - present[c]) : present[c];
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = &w.satisfied_clauses;
    }
  }
  if (best == nullptr) return Status::Infeasible("no result worlds");
  return *best;
}

Result<AndXorTree> BuildQueryResultTree(const Max2SatInstance& instance) {
  CPDB_ASSIGN_OR_RETURN(std::vector<ResultWorld> worlds,
                        EnumerateQueryResultWorlds(instance));
  AndXorTree tree;
  std::vector<NodeId> branches;
  std::vector<double> probs;
  double score = 1.0;
  for (const ResultWorld& w : worlds) {
    std::vector<NodeId> leaves;
    for (int c : w.satisfied_clauses) {
      TupleAlternative alt;
      alt.key = c;
      alt.score = score;
      score += 1.0;
      leaves.push_back(tree.AddLeaf(alt));
    }
    if (leaves.empty()) {
      // An assignment satisfying no clause contributes leftover probability
      // (the empty world) rather than a branch.
      continue;
    }
    branches.push_back(leaves.size() == 1 ? leaves[0]
                                          : tree.AddAnd(std::move(leaves)));
    probs.push_back(w.prob);
  }
  if (branches.empty()) {
    return Status::Infeasible("no clause is ever satisfied");
  }
  tree.SetRoot(tree.AddXor(std::move(branches), std::move(probs)));
  CPDB_RETURN_NOT_OK(tree.Validate());
  return tree;
}

TreeHardness ComputeTreeHardness(const AndXorTree& tree) {
  TreeHardness stats;
  stats.nodes = tree.NumNodes();
  stats.leaves = static_cast<int64_t>(tree.LeafIds().size());
  std::map<KeyId, int64_t> leaves_per_key;
  for (NodeId l : tree.LeafIds()) ++leaves_per_key[tree.node(l).leaf.key];
  stats.keys = static_cast<int64_t>(leaves_per_key.size());
  for (const auto& [key, count] : leaves_per_key) {
    if (count > 1) ++stats.duplicated_keys;
    stats.max_leaves_per_key = std::max(stats.max_leaves_per_key, count);
  }
  stats.tuple_independent = IsTupleIndependent(tree);
  stats.block_independent = IsBlockIndependent(tree);
  return stats;
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// The previously proposed Top-k semantics that the paper positions its
// consensus framework against (Sections 1-2): expected score, expected rank
// (Cormode et al.), probabilistic threshold PT-k (Hua et al.), Global Top-k
// (Zhang-Chomicki), U-Top-k (Soliman et al.), and the parameterized ranking
// functions PRF (Li-Saha-Deshpande). These power the semantics-comparison
// experiment (E12): each baseline's answer is scored under the consensus
// objectives E[d_Delta], E[d_I], E[d_F].

#ifndef CPDB_CORE_RANKING_BASELINES_H_
#define CPDB_CORE_RANKING_BASELINES_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/rank_distribution.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief E[score contribution] per key: sum over alternatives of
/// Pr(alternative) * score. Returns the k keys with the largest values.
std::vector<KeyId> TopKByExpectedScore(const AndXorTree& tree, int k);

/// \brief Expected ranks: E[r(t)] with an absent tuple ranked at |pw| + 1
/// (the bottom of the realized world). Closed form via pairwise presence
/// probabilities; O(L^2 * depth) for L leaves. Indexed like tree.Keys().
std::vector<double> ExpectedRanks(const AndXorTree& tree);

/// \brief The k keys with the smallest expected rank.
std::vector<KeyId> TopKByExpectedRank(const AndXorTree& tree, int k);

/// \brief TopKByExpectedRank with the expected ranks supplied (`ranks`
/// indexed like `keys`, i.e. the ExpectedRanks layout). Exists so a caller
/// holding a precomputed vector — Engine::ExpectedRanks, the serve path —
/// ranks without recomputing; TopKByExpectedRank is ExpectedRanks + this.
std::vector<KeyId> TopKByExpectedRankFromRanks(const std::vector<KeyId>& keys,
                                               const std::vector<double>& ranks,
                                               int k);

/// \brief PT-k (probabilistic threshold): all keys with
/// Pr(r(t) <= k) >= threshold, ordered by that probability descending.
/// Note: unlike the consensus answers this may return any number of tuples.
std::vector<KeyId> ProbabilisticThresholdTopK(const RankDistribution& dist,
                                              double threshold);

/// \brief Global Top-k: the k keys with the largest Pr(r(t) <= k). Theorem 3
/// of the paper shows this equals the mean Top-k answer under d_Delta.
std::vector<KeyId> GlobalTopK(const RankDistribution& dist);

/// \brief U-Top-k: the Top-k *list* with the highest probability of being
/// the realized Top-k answer, via exhaustive world enumeration (exact;
/// fails on instances with more than `max_worlds` worlds).
Result<std::vector<KeyId>> UTopKExact(const AndXorTree& tree, int k,
                                      size_t max_worlds = 1 << 20);

/// \brief Monte-Carlo U-Top-k: the most frequent Top-k list across
/// `num_samples` sampled worlds.
std::vector<KeyId> UTopKSampled(const AndXorTree& tree, int k,
                                int num_samples, Rng* rng);

/// \brief Parameterized ranking function PRF-omega: Upsilon_w(t) =
/// sum_{i=1..k} w[i-1] * Pr(r(t) = i); returns the k keys with the largest
/// values. With w[i-1] = H_k - H_{i-1} this is the paper's Upsilon_H.
std::vector<KeyId> TopKByPRF(const RankDistribution& dist,
                             const std::vector<double>& weights);

/// \brief The paper's Upsilon_H weight vector for cutoff k:
/// w[i-1] = H_k - H_{i-1} with H_0 = 0, H_j = sum_{m=1..j} 1/m. Computed
/// in one fixed accumulation order, so every caller (offline CLI, serve
/// path) derives the bitwise-identical vector.
std::vector<double> PrfUpsilonHWeights(int k);

}  // namespace cpdb

#endif  // CPDB_CORE_RANKING_BASELINES_H_

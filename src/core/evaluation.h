// Copyright 2026 The ConsensusDB Authors
//
// Ground-truth evaluation of expected distances by exhaustive possible-world
// enumeration (exact on small instances) and Monte-Carlo sampling (unbiased
// on any instance). Every closed-form expectation in the library is
// cross-validated against these in the test suite, and the benchmark harness
// uses them to measure approximation ratios.

#ifndef CPDB_CORE_EVALUATION_H_
#define CPDB_CORE_EVALUATION_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/clustering.h"
#include "core/topk_metrics.h"  // TopKMetric and the distance dispatch
#include "model/and_xor_tree.h"
#include "model/possible_worlds.h"

namespace cpdb {

/// \brief E[d(answer, topk(pw))] by exhaustive enumeration.
Result<double> EnumExpectedTopKDistance(const AndXorTree& tree,
                                        const std::vector<KeyId>& answer,
                                        int k, TopKMetric metric,
                                        size_t max_worlds = 1 << 20);

/// \brief Unbiased Monte-Carlo estimate of E[d(answer, topk(pw))].
double SampleExpectedTopKDistance(const AndXorTree& tree,
                                  const std::vector<KeyId>& answer, int k,
                                  TopKMetric metric, int num_samples,
                                  Rng* rng);

/// \brief Set-level metrics over leaf-id sets.
enum class SetMetric { kSymDiff, kJaccard };

/// \brief E[d(world, pw)] by exhaustive enumeration; `world` holds sorted
/// leaf NodeIds.
Result<double> EnumExpectedSetDistance(const AndXorTree& tree,
                                       const std::vector<NodeId>& world,
                                       SetMetric metric,
                                       size_t max_worlds = 1 << 20);

/// \brief E[d(answer, clustering(pw))] by exhaustive enumeration, with the
/// paper's absent-keys-share-a-cluster convention.
Result<double> EnumExpectedClusteringDistance(const AndXorTree& tree,
                                              const ClusteringAnswer& answer,
                                              size_t max_worlds = 1 << 20);

/// \brief Pairwise-disagreement distance between two clusterings over the
/// same key universe.
double ClusteringDistance(const ClusteringAnswer& a, const ClusteringAnswer& b);

}  // namespace cpdb

#endif  // CPDB_CORE_EVALUATION_H_

// Copyright 2026 The ConsensusDB Authors

#include "core/topk_intersection.h"

#include <algorithm>

#include "matching/hungarian.h"

namespace cpdb {

double ExpectedTopKIntersection(const RankDistribution& dist,
                                const std::vector<KeyId>& answer) {
  const int k = dist.k();
  double total = 0.0;
  for (int i = 1; i <= k; ++i) {
    double sum_all = 0.0;
    for (KeyId key : dist.keys()) sum_all += dist.PrRankLe(key, i);
    double prefix_size =
        static_cast<double>(std::min<size_t>(answer.size(), static_cast<size_t>(i)));
    double sum_prefix = 0.0;
    for (size_t j = 0; j < answer.size() && j < static_cast<size_t>(i); ++j) {
      sum_prefix += dist.PrRankLe(answer[j], i);
    }
    total += (prefix_size + sum_all - 2.0 * sum_prefix) / (2.0 * i);
  }
  return total / k;
}

double IntersectionPositionProfit(const RankDistribution& dist, KeyId key,
                                  int position) {
  double profit = 0.0;
  for (int i = position; i <= dist.k(); ++i) {
    profit += dist.PrRankLe(key, i) / i;
  }
  return profit;
}

Result<TopKResult> MeanTopKIntersectionExact(const RankDistribution& dist) {
  const int k = dist.k();
  const std::vector<KeyId>& keys = dist.keys();
  if (static_cast<int>(keys.size()) < k) {
    return Status::InvalidArgument(
        "intersection-metric mean answer needs at least k tuples");
  }
  // Rows = positions 1..k, columns = tuples.
  std::vector<std::vector<double>> profit(
      static_cast<size_t>(k), std::vector<double>(keys.size(), 0.0));
  for (int j = 1; j <= k; ++j) {
    for (size_t t = 0; t < keys.size(); ++t) {
      profit[static_cast<size_t>(j - 1)][t] =
          IntersectionPositionProfit(dist, keys[t], j);
    }
  }
  CPDB_ASSIGN_OR_RETURN(Assignment assignment, SolveAssignmentMax(profit));
  TopKResult result;
  result.keys.reserve(static_cast<size_t>(k));
  for (int j = 0; j < k; ++j) {
    result.keys.push_back(
        keys[static_cast<size_t>(assignment.row_to_col[static_cast<size_t>(j)])]);
  }
  result.expected_distance = ExpectedTopKIntersection(dist, result.keys);
  return result;
}

double UpsilonH(const RankDistribution& dist, KeyId key) {
  return IntersectionPositionProfit(dist, key, 1);
}

TopKResult MeanTopKIntersectionApprox(const RankDistribution& dist) {
  std::vector<KeyId> keys = dist.keys();
  std::stable_sort(keys.begin(), keys.end(), [&](KeyId a, KeyId b) {
    return UpsilonH(dist, a) > UpsilonH(dist, b);
  });
  TopKResult result;
  size_t take = std::min<size_t>(keys.size(), static_cast<size_t>(dist.k()));
  result.keys.assign(keys.begin(), keys.begin() + take);
  result.expected_distance = ExpectedTopKIntersection(dist, result.keys);
  return result;
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "core/topk_intersection.h"

#include <algorithm>

#include "matching/hungarian.h"

namespace cpdb {

double ExpectedTopKIntersection(const RankDistribution& dist,
                                const std::vector<KeyId>& answer) {
  const int k = dist.k();
  double total = 0.0;
  for (int i = 1; i <= k; ++i) {
    double sum_all = 0.0;
    for (KeyId key : dist.keys()) sum_all += dist.PrRankLe(key, i);
    double prefix_size =
        static_cast<double>(std::min<size_t>(answer.size(), static_cast<size_t>(i)));
    double sum_prefix = 0.0;
    for (size_t j = 0; j < answer.size() && j < static_cast<size_t>(i); ++j) {
      sum_prefix += dist.PrRankLe(answer[j], i);
    }
    total += (prefix_size + sum_all - 2.0 * sum_prefix) / (2.0 * i);
  }
  return total / k;
}

double IntersectionPositionProfit(const RankDistribution& dist, KeyId key,
                                  int position) {
  double profit = 0.0;
  for (int i = position; i <= dist.k(); ++i) {
    profit += dist.PrRankLe(key, i) / i;
  }
  return profit;
}

std::vector<double> IntersectionProfitColumn(const RankDistribution& dist,
                                             KeyId key) {
  std::vector<double> column(static_cast<size_t>(dist.k()), 0.0);
  for (int j = 1; j <= dist.k(); ++j) {
    column[static_cast<size_t>(j - 1)] =
        IntersectionPositionProfit(dist, key, j);
  }
  return column;
}

Result<TopKResult> MeanTopKIntersectionExactFromColumns(
    const RankDistribution& dist,
    const std::vector<std::vector<double>>& columns) {
  const int k = dist.k();
  const std::vector<KeyId>& keys = dist.keys();
  if (static_cast<int>(keys.size()) < k) {
    return Status::InvalidArgument(
        "intersection-metric mean answer needs at least k tuples");
  }
  if (columns.size() != keys.size()) {
    return Status::InvalidArgument("one profit column per key required");
  }
  // Transpose into the row-major (positions x tuples) matrix the Hungarian
  // solver consumes.
  std::vector<std::vector<double>> profit(
      static_cast<size_t>(k), std::vector<double>(keys.size(), 0.0));
  for (size_t t = 0; t < keys.size(); ++t) {
    if (static_cast<int>(columns[t].size()) != k) {
      return Status::InvalidArgument("profit column has wrong length");
    }
    for (int j = 0; j < k; ++j) {
      profit[static_cast<size_t>(j)][t] = columns[t][static_cast<size_t>(j)];
    }
  }
  CPDB_ASSIGN_OR_RETURN(Assignment assignment, SolveAssignmentMax(profit));
  TopKResult result;
  result.keys.reserve(static_cast<size_t>(k));
  for (int j = 0; j < k; ++j) {
    result.keys.push_back(
        keys[static_cast<size_t>(assignment.row_to_col[static_cast<size_t>(j)])]);
  }
  result.expected_distance = ExpectedTopKIntersection(dist, result.keys);
  return result;
}

Result<TopKResult> MeanTopKIntersectionExact(const RankDistribution& dist) {
  std::vector<std::vector<double>> columns;
  columns.reserve(dist.keys().size());
  for (KeyId key : dist.keys()) {
    columns.push_back(IntersectionProfitColumn(dist, key));
  }
  return MeanTopKIntersectionExactFromColumns(dist, columns);
}

double UpsilonH(const RankDistribution& dist, KeyId key) {
  return IntersectionPositionProfit(dist, key, 1);
}

TopKResult MeanTopKIntersectionApprox(const RankDistribution& dist) {
  std::vector<KeyId> keys = dist.keys();
  std::stable_sort(keys.begin(), keys.end(), [&](KeyId a, KeyId b) {
    return UpsilonH(dist, a) > UpsilonH(dist, b);
  });
  TopKResult result;
  size_t take = std::min<size_t>(keys.size(), static_cast<size_t>(dist.k()));
  result.keys.assign(keys.begin(), keys.begin() + take);
  result.expected_distance = ExpectedTopKIntersection(dist, result.keys);
  return result;
}

}  // namespace cpdb

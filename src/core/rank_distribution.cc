// Copyright 2026 The ConsensusDB Authors

#include "core/rank_distribution.h"

#include <algorithm>

#include "model/generating_function.h"
#include "poly/poly2.h"

namespace cpdb {

double RankDistribution::PrRankEq(KeyId key, int i) const {
  if (i < 1 || i > k_) return 0.0;
  auto it = key_index_.find(key);
  if (it == key_index_.end()) return 0.0;
  return pr_eq_[static_cast<size_t>(it->second)][static_cast<size_t>(i)];
}

double RankDistribution::PrRankLe(KeyId key, int i) const {
  if (i < 1) return 0.0;
  auto it = key_index_.find(key);
  if (it == key_index_.end()) return 0.0;
  int clamped = std::min(i, k_);
  return pr_le_[static_cast<size_t>(it->second)][static_cast<size_t>(clamped)];
}

int64_t RankDistribution::ApproxBytes() const {
  // Per-key: one KeyId, one rb-tree node (pair + ~3 pointers + color,
  // estimated flat), and two rows of k+1 doubles with their vector headers.
  // On top of that, the fixed-size members' out-of-line storage: the keys_
  // element array is heap-allocated beyond the sizeof(RankDistribution)
  // header, and pr_eq_/pr_le_ each heap-allocate an outer array of n inner
  // vector headers — omitting those undercharged every cache entry by
  // ~56 bytes per key, which a byte-budgeted LRU multiplies across its
  // whole admission history.
  constexpr int64_t kMapNodeBytes = 64;
  constexpr int64_t kVecHeader =
      static_cast<int64_t>(sizeof(std::vector<double>));
  const int64_t per_row =
      kVecHeader +
      static_cast<int64_t>(k_ + 1) * static_cast<int64_t>(sizeof(double));
  const int64_t n = static_cast<int64_t>(keys_.size());
  return static_cast<int64_t>(sizeof(RankDistribution)) +
         n * static_cast<int64_t>(sizeof(KeyId)) +  // keys_ element array
         2 * n * kVecHeader +  // pr_eq_/pr_le_ outer arrays of inner headers
         n * kMapNodeBytes + 2 * n * per_row;
}

void RankDistributionBuilder::EnsureKey(KeyId key) {
  auto [it, inserted] =
      dist_.key_index_.insert({key, static_cast<int>(dist_.keys_.size())});
  if (inserted) {
    dist_.keys_.push_back(key);
    dist_.pr_eq_.emplace_back(static_cast<size_t>(dist_.k_) + 1, 0.0);
  }
}

void RankDistributionBuilder::Add(KeyId key, int i, double prob) {
  EnsureKey(key);
  if (i < 1 || i > dist_.k_) return;
  dist_.pr_eq_[static_cast<size_t>(dist_.key_index_[key])]
              [static_cast<size_t>(i)] += prob;
}

RankDistribution RankDistributionBuilder::Build() && {
  // keys_ must be sorted ascending like ComputeRankDistribution produces;
  // reindex after sorting.
  std::vector<KeyId> sorted = dist_.keys_;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::vector<double>> pr_eq(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    pr_eq[i] = dist_.pr_eq_[static_cast<size_t>(dist_.key_index_[sorted[i]])];
  }
  dist_.keys_ = std::move(sorted);
  dist_.pr_eq_ = std::move(pr_eq);
  dist_.key_index_.clear();
  for (size_t i = 0; i < dist_.keys_.size(); ++i) {
    dist_.key_index_[dist_.keys_[i]] = static_cast<int>(i);
  }
  dist_.pr_le_ = dist_.pr_eq_;
  for (auto& row : dist_.pr_le_) {
    for (size_t i = 2; i < row.size(); ++i) row[i] += row[i - 1];
  }
  return std::move(dist_);
}

std::vector<double> LeafRankContribution(const AndXorTree& tree, NodeId target,
                                         int k) {
  // One bivariate generating function per tuple alternative. Truncations:
  // x (count of higher-ranked tuples) at k-1 is enough for ranks <= k, but
  // we keep k to read Pr(r = k) from x^{k-1}; y (the alternative itself) at 1.
  const TupleAlternative& alt = tree.node(target).leaf;
  auto leaf_poly = [&](NodeId id) {
    if (id == target) return Poly2::Monomial(k, 1, 0, 1, 1.0);
    const TupleAlternative& other = tree.node(id).leaf;
    if (other.key != alt.key && other.score > alt.score) {
      return Poly2::Monomial(k, 1, 1, 0, 1.0);  // counts toward the rank
    }
    return Poly2::Constant(k, 1, 1.0);
  };
  auto make_const = [&](double c) { return Poly2::Constant(k, 1, c); };
  Poly2 f = EvalGeneratingFunction<Poly2>(tree, leaf_poly, make_const);
  std::vector<double> contribution(static_cast<size_t>(k) + 1, 0.0);
  for (int i = 1; i <= k; ++i) {
    contribution[static_cast<size_t>(i)] = f.Coeff(i - 1, 1);
  }
  return contribution;
}

std::vector<double> LeafRankContribution(const FlatTree& flat, int target,
                                         int k) {
  // Same generating function as the pointer reference above, evaluated over
  // the flat instruction stream. Rows have shape (k+1) × 2, row-major:
  // Index(i, j) = i * 2 + j. Leaf classification reads the packed leaf
  // table; the monomial guards mirror Poly2::Monomial's truncation (a
  // monomial beyond the bounds is the zero polynomial).
  const std::vector<FlatLeaf>& leaves = flat.leaves();
  const FlatLeaf& alt = leaves[static_cast<size_t>(target)];
  const auto leaf_init = [&](int i, double* row) {
    if (i == target) {
      row[1] = 1.0;  // y = x^0 y^1
      return;
    }
    const FlatLeaf& other = leaves[static_cast<size_t>(i)];
    if (other.key != alt.key && other.score > alt.score) {
      if (k >= 1) row[2] = 1.0;  // x = x^1 y^0, counts toward the rank
      return;
    }
    row[0] = 1.0;  // constant 1
  };
  std::vector<double> f(static_cast<size_t>(k + 1) * 2);
  flat.EvalGeneratingFunction(k, 1, leaf_init, f.data(), &FlatFoldScratch());
  std::vector<double> contribution(static_cast<size_t>(k) + 1, 0.0);
  for (int i = 1; i <= k; ++i) {
    contribution[static_cast<size_t>(i)] =
        f[static_cast<size_t>(i - 1) * 2 + 1];  // Coeff(i - 1, 1)
  }
  return contribution;
}

RankDistribution ComputeRankDistribution(const AndXorTree& tree, int k) {
  RankDistribution dist;
  dist.k_ = k;
  dist.keys_ = tree.Keys();
  for (size_t i = 0; i < dist.keys_.size(); ++i) {
    dist.key_index_[dist.keys_[i]] = static_cast<int>(i);
  }
  dist.pr_eq_.assign(dist.keys_.size(),
                     std::vector<double>(static_cast<size_t>(k) + 1, 0.0));

  const FlatTree flat = FlatTree::Compile(tree);
  for (int target = 0; target < flat.num_leaves(); ++target) {
    std::vector<double> contribution = LeafRankContribution(flat, target, k);
    int key_idx =
        dist.key_index_[flat.leaves()[static_cast<size_t>(target)].key];
    for (int i = 1; i <= k; ++i) {
      dist.pr_eq_[static_cast<size_t>(key_idx)][static_cast<size_t>(i)] +=
          contribution[static_cast<size_t>(i)];
    }
  }

  dist.pr_le_ = dist.pr_eq_;
  for (auto& row : dist.pr_le_) {
    for (size_t i = 2; i < row.size(); ++i) row[i] += row[i - 1];
  }
  return dist;
}

RankDistribution ComputeRankDistributionPointer(const AndXorTree& tree,
                                                int k) {
  RankDistribution dist;
  dist.k_ = k;
  dist.keys_ = tree.Keys();
  for (size_t i = 0; i < dist.keys_.size(); ++i) {
    dist.key_index_[dist.keys_[i]] = static_cast<int>(i);
  }
  dist.pr_eq_.assign(dist.keys_.size(),
                     std::vector<double>(static_cast<size_t>(k) + 1, 0.0));

  // FlatTree leaf order is LeafIds() order, so the two paths accumulate
  // per-leaf contributions into each key's row in the same sequence —
  // summation order, and therefore every output bit, matches.
  for (NodeId target : tree.LeafIds()) {
    std::vector<double> contribution = LeafRankContribution(tree, target, k);
    int key_idx = dist.key_index_[tree.node(target).leaf.key];
    for (int i = 1; i <= k; ++i) {
      dist.pr_eq_[static_cast<size_t>(key_idx)][static_cast<size_t>(i)] +=
          contribution[static_cast<size_t>(i)];
    }
  }

  dist.pr_le_ = dist.pr_eq_;
  for (auto& row : dist.pr_le_) {
    for (size_t i = 2; i < row.size(); ++i) row[i] += row[i - 1];
  }
  return dist;
}

double PrRanksBeforePointer(const AndXorTree& tree, KeyId u, KeyId v) {
  // Sum over alternatives a of u of Pr(a present and no alternative of v
  // with a higher score present). Variables: y tags a (need y^1), z tags
  // higher-scoring alternatives of v (need z^0); everything else is 1.
  double total = 0.0;
  for (NodeId target : tree.LeafIds()) {
    const TupleAlternative& alt = tree.node(target).leaf;
    if (alt.key != u) continue;
    auto leaf_poly = [&](NodeId id) {
      if (id == target) return Poly2::Monomial(1, 1, 1, 0, 1.0);  // y
      const TupleAlternative& other = tree.node(id).leaf;
      if (other.key == v && other.score > alt.score) {
        return Poly2::Monomial(1, 1, 0, 1, 1.0);  // z
      }
      return Poly2::Constant(1, 1, 1.0);
    };
    auto make_const = [&](double c) { return Poly2::Constant(1, 1, c); };
    Poly2 f = EvalGeneratingFunction<Poly2>(tree, leaf_poly, make_const);
    total += f.Coeff(1, 0);
  }
  return total;
}

double PrRanksBefore(const FlatTree& flat, KeyId u, KeyId v) {
  // Flat form of the fold above: rows have shape 2 × 2 (max_dx = max_dy =
  // 1), row-major, so y = x^1 y^0 sits at index 2 and z = x^0 y^1 at
  // index 1; the answer Coeff(1, 0) is read from index 2. The alternatives
  // of u are found by one linear scan of the packed leaf table, and every
  // per-alternative fold reuses this thread's arena.
  double total = 0.0;
  const std::vector<FlatLeaf>& leaves = flat.leaves();
  double f[4];
  for (int target = 0; target < flat.num_leaves(); ++target) {
    const FlatLeaf& alt = leaves[static_cast<size_t>(target)];
    if (alt.key != u) continue;
    const auto leaf_init = [&](int i, double* row) {
      if (i == target) {
        row[2] = 1.0;  // y = x^1 y^0
        return;
      }
      const FlatLeaf& other = leaves[static_cast<size_t>(i)];
      if (other.key == v && other.score > alt.score) {
        row[1] = 1.0;  // z = x^0 y^1
        return;
      }
      row[0] = 1.0;  // constant 1
    };
    flat.EvalGeneratingFunction(1, 1, leaf_init, f, &FlatFoldScratch());
    total += f[2];  // Coeff(1, 0)
  }
  return total;
}

double PrRanksBefore(const AndXorTree& tree, KeyId u, KeyId v) {
  return PrRanksBefore(FlatTree::Compile(tree), u, v);
}

std::vector<std::vector<double>> PairwiseOrderProbabilities(
    const AndXorTree& tree, const std::vector<KeyId>& keys) {
  // One compile, n^2 cells: the per-cell work drops to the folds
  // themselves, instead of re-walking the pointer tree per (u, v) pair.
  const FlatTree flat = FlatTree::Compile(tree);
  std::vector<std::vector<double>> p(
      keys.size(), std::vector<double>(keys.size(), 0.0));
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = 0; j < keys.size(); ++j) {
      if (i == j) continue;
      p[i][j] = PrRanksBefore(flat, keys[i], keys[j]);
    }
  }
  return p;
}

}  // namespace cpdb

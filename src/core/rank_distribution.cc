// Copyright 2026 The ConsensusDB Authors

#include "core/rank_distribution.h"

#include <algorithm>

#include "model/generating_function.h"
#include "poly/poly2.h"

namespace cpdb {

double RankDistribution::PrRankEq(KeyId key, int i) const {
  if (i < 1 || i > k_) return 0.0;
  auto it = key_index_.find(key);
  if (it == key_index_.end()) return 0.0;
  return pr_eq_[static_cast<size_t>(it->second)][static_cast<size_t>(i)];
}

double RankDistribution::PrRankLe(KeyId key, int i) const {
  if (i < 1) return 0.0;
  auto it = key_index_.find(key);
  if (it == key_index_.end()) return 0.0;
  int clamped = std::min(i, k_);
  return pr_le_[static_cast<size_t>(it->second)][static_cast<size_t>(clamped)];
}

int64_t RankDistribution::ApproxBytes() const {
  // Per-key: one KeyId, one rb-tree node (pair + ~3 pointers + color,
  // estimated flat), and two rows of k+1 doubles with their vector headers.
  constexpr int64_t kMapNodeBytes = 64;
  const int64_t per_row = static_cast<int64_t>(sizeof(std::vector<double>)) +
                          static_cast<int64_t>(k_ + 1) *
                              static_cast<int64_t>(sizeof(double));
  const int64_t n = static_cast<int64_t>(keys_.size());
  return static_cast<int64_t>(sizeof(RankDistribution)) +
         n * static_cast<int64_t>(sizeof(KeyId)) + n * kMapNodeBytes +
         2 * n * per_row;
}

void RankDistributionBuilder::EnsureKey(KeyId key) {
  auto [it, inserted] =
      dist_.key_index_.insert({key, static_cast<int>(dist_.keys_.size())});
  if (inserted) {
    dist_.keys_.push_back(key);
    dist_.pr_eq_.emplace_back(static_cast<size_t>(dist_.k_) + 1, 0.0);
  }
}

void RankDistributionBuilder::Add(KeyId key, int i, double prob) {
  EnsureKey(key);
  if (i < 1 || i > dist_.k_) return;
  dist_.pr_eq_[static_cast<size_t>(dist_.key_index_[key])]
              [static_cast<size_t>(i)] += prob;
}

RankDistribution RankDistributionBuilder::Build() && {
  // keys_ must be sorted ascending like ComputeRankDistribution produces;
  // reindex after sorting.
  std::vector<KeyId> sorted = dist_.keys_;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::vector<double>> pr_eq(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    pr_eq[i] = dist_.pr_eq_[static_cast<size_t>(dist_.key_index_[sorted[i]])];
  }
  dist_.keys_ = std::move(sorted);
  dist_.pr_eq_ = std::move(pr_eq);
  dist_.key_index_.clear();
  for (size_t i = 0; i < dist_.keys_.size(); ++i) {
    dist_.key_index_[dist_.keys_[i]] = static_cast<int>(i);
  }
  dist_.pr_le_ = dist_.pr_eq_;
  for (auto& row : dist_.pr_le_) {
    for (size_t i = 2; i < row.size(); ++i) row[i] += row[i - 1];
  }
  return std::move(dist_);
}

std::vector<double> LeafRankContribution(const AndXorTree& tree, NodeId target,
                                         int k) {
  // One bivariate generating function per tuple alternative. Truncations:
  // x (count of higher-ranked tuples) at k-1 is enough for ranks <= k, but
  // we keep k to read Pr(r = k) from x^{k-1}; y (the alternative itself) at 1.
  const TupleAlternative& alt = tree.node(target).leaf;
  auto leaf_poly = [&](NodeId id) {
    if (id == target) return Poly2::Monomial(k, 1, 0, 1, 1.0);
    const TupleAlternative& other = tree.node(id).leaf;
    if (other.key != alt.key && other.score > alt.score) {
      return Poly2::Monomial(k, 1, 1, 0, 1.0);  // counts toward the rank
    }
    return Poly2::Constant(k, 1, 1.0);
  };
  auto make_const = [&](double c) { return Poly2::Constant(k, 1, c); };
  Poly2 f = EvalGeneratingFunction<Poly2>(tree, leaf_poly, make_const);
  std::vector<double> contribution(static_cast<size_t>(k) + 1, 0.0);
  for (int i = 1; i <= k; ++i) {
    contribution[static_cast<size_t>(i)] = f.Coeff(i - 1, 1);
  }
  return contribution;
}

RankDistribution ComputeRankDistribution(const AndXorTree& tree, int k) {
  RankDistribution dist;
  dist.k_ = k;
  dist.keys_ = tree.Keys();
  for (size_t i = 0; i < dist.keys_.size(); ++i) {
    dist.key_index_[dist.keys_[i]] = static_cast<int>(i);
  }
  dist.pr_eq_.assign(dist.keys_.size(),
                     std::vector<double>(static_cast<size_t>(k) + 1, 0.0));

  for (NodeId target : tree.LeafIds()) {
    std::vector<double> contribution = LeafRankContribution(tree, target, k);
    int key_idx = dist.key_index_[tree.node(target).leaf.key];
    for (int i = 1; i <= k; ++i) {
      dist.pr_eq_[static_cast<size_t>(key_idx)][static_cast<size_t>(i)] +=
          contribution[static_cast<size_t>(i)];
    }
  }

  dist.pr_le_ = dist.pr_eq_;
  for (auto& row : dist.pr_le_) {
    for (size_t i = 2; i < row.size(); ++i) row[i] += row[i - 1];
  }
  return dist;
}

double PrRanksBefore(const AndXorTree& tree, KeyId u, KeyId v) {
  // Sum over alternatives a of u of Pr(a present and no alternative of v
  // with a higher score present). Variables: y tags a (need y^1), z tags
  // higher-scoring alternatives of v (need z^0); everything else is 1.
  double total = 0.0;
  for (NodeId target : tree.LeafIds()) {
    const TupleAlternative& alt = tree.node(target).leaf;
    if (alt.key != u) continue;
    auto leaf_poly = [&](NodeId id) {
      if (id == target) return Poly2::Monomial(1, 1, 1, 0, 1.0);  // y
      const TupleAlternative& other = tree.node(id).leaf;
      if (other.key == v && other.score > alt.score) {
        return Poly2::Monomial(1, 1, 0, 1, 1.0);  // z
      }
      return Poly2::Constant(1, 1, 1.0);
    };
    auto make_const = [&](double c) { return Poly2::Constant(1, 1, c); };
    Poly2 f = EvalGeneratingFunction<Poly2>(tree, leaf_poly, make_const);
    total += f.Coeff(1, 0);
  }
  return total;
}

std::vector<std::vector<double>> PairwiseOrderProbabilities(
    const AndXorTree& tree, const std::vector<KeyId>& keys) {
  std::vector<std::vector<double>> p(
      keys.size(), std::vector<double>(keys.size(), 0.0));
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = 0; j < keys.size(); ++j) {
      if (i == j) continue;
      p[i][j] = PrRanksBefore(tree, keys[i], keys[j]);
    }
  }
  return p;
}

}  // namespace cpdb

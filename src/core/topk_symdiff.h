// Copyright 2026 The ConsensusDB Authors
//
// Consensus Top-k answers under the (normalized) symmetric difference metric
// d_Delta (Section 5.2 of the paper).
//
// Mean answer (Theorem 3): the k tuples with the largest Pr(r(t) <= k) —
// this is exactly a probabilistic-threshold (PT-k) query with the threshold
// calibrated to return k tuples, and coincides with Global Top-k semantics.
//
// Median answer (Theorem 4): the Top-k answer of some positive-probability
// world maximizing sum_{t in answer} Pr(r(t) <= k), found by a per-score-
// threshold dynamic program over the and/xor tree. We extend the paper's
// algorithm to also consider worlds with fewer than k tuples (the paper
// implicitly assumes |pw| >= k): over variable-size candidates the uniform
// objective is maximizing sum_{t} (Pr(r(t) <= k) - 1/2).

#ifndef CPDB_CORE_TOPK_SYMDIFF_H_
#define CPDB_CORE_TOPK_SYMDIFF_H_

#include <vector>

#include "common/result.h"
#include "core/rank_distribution.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief A consensus Top-k answer plus its expected distance.
struct TopKResult {
  /// Answer keys in rank order.
  std::vector<KeyId> keys;
  /// E[d(answer, topk(pw))] under the metric of the producing algorithm.
  double expected_distance = 0.0;
};

/// \brief E[d_Delta(answer, topk(pw))] =
/// (|answer| + sum_t Pr(r(t)<=k) - 2 sum_{t in answer} Pr(r(t)<=k)) / (2k).
double ExpectedTopKSymDiff(const RankDistribution& dist,
                           const std::vector<KeyId>& answer);

/// \brief Theorem 3: the mean Top-k answer under d_Delta, ordered by
/// Pr(r(t) <= k) descending. Following the paper, the answer has size
/// exactly k (Omega = sorted lists of size k).
TopKResult MeanTopKSymDiff(const RankDistribution& dist);

/// \brief The size-unrestricted mean answer under d_Delta: all tuples with
/// Pr(r(t) <= k) > 1/2 (the Theorem 2 form applied to Top-k membership).
/// When worlds smaller than k have positive probability this can strictly
/// beat the size-k mean — see DESIGN.md section 4b and experiment E5/E6.
TopKResult MeanTopKSymDiffUnrestricted(const RankDistribution& dist);

/// \brief Theorem 4: a median Top-k answer under d_Delta for an and/xor
/// tree; `dist` must come from ComputeRankDistribution(tree, k).
/// The answer is ordered by tuple score descending (its rank order in the
/// witnessing world).
Result<TopKResult> MedianTopKSymDiff(const AndXorTree& tree,
                                     const RankDistribution& dist);

}  // namespace cpdb

#endif  // CPDB_CORE_TOPK_SYMDIFF_H_

// Copyright 2026 The ConsensusDB Authors
//
// Consensus Top-k answers under the (normalized) symmetric difference metric
// d_Delta (Section 5.2 of the paper).
//
// Mean answer (Theorem 3): the k tuples with the largest Pr(r(t) <= k) —
// this is exactly a probabilistic-threshold (PT-k) query with the threshold
// calibrated to return k tuples, and coincides with Global Top-k semantics.
//
// Median answer (Theorem 4): the Top-k answer of some positive-probability
// world maximizing sum_{t in answer} Pr(r(t) <= k), found by a per-score-
// threshold dynamic program over the and/xor tree. We extend the paper's
// algorithm to also consider worlds with fewer than k tuples (the paper
// implicitly assumes |pw| >= k): over variable-size candidates the uniform
// objective is maximizing sum_{t} (Pr(r(t) <= k) - 1/2).

#ifndef CPDB_CORE_TOPK_SYMDIFF_H_
#define CPDB_CORE_TOPK_SYMDIFF_H_

#include <vector>

#include "common/result.h"
#include "core/rank_distribution.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief A consensus Top-k answer plus its expected distance.
struct TopKResult {
  /// Answer keys in rank order.
  std::vector<KeyId> keys;
  /// E[d(answer, topk(pw))] under the metric of the producing algorithm.
  double expected_distance = 0.0;
};

/// \brief E[d_Delta(answer, topk(pw))] =
/// (|answer| + sum_t Pr(r(t)<=k) - 2 sum_{t in answer} Pr(r(t)<=k)) / (2k).
double ExpectedTopKSymDiff(const RankDistribution& dist,
                           const std::vector<KeyId>& answer);

/// \brief Theorem 3: the mean Top-k answer under d_Delta, ordered by
/// Pr(r(t) <= k) descending. Following the paper, the answer has size
/// exactly k (Omega = sorted lists of size k).
TopKResult MeanTopKSymDiff(const RankDistribution& dist);

/// \brief The size-unrestricted mean answer under d_Delta: all tuples with
/// Pr(r(t) <= k) > 1/2 (the Theorem 2 form applied to Top-k membership).
/// When worlds smaller than k have positive probability this can strictly
/// beat the size-k mean — see DESIGN.md section 4b and experiment E5/E6.
TopKResult MeanTopKSymDiffUnrestricted(const RankDistribution& dist);

/// \brief Theorem 4: a median Top-k answer under d_Delta for an and/xor
/// tree; `dist` must come from ComputeRankDistribution(tree, k).
/// The answer is ordered by tuple score descending (its rank order in the
/// witnessing world).
Result<TopKResult> MedianTopKSymDiff(const AndXorTree& tree,
                                     const RankDistribution& dist);

// -- Stratum decomposition of MedianTopKSymDiff ----------------------------
//
// The Theorem 4 search runs one size-capped max-value DP per distinct leaf
// score (candidates of size exactly k, Top-k answers of realizable worlds)
// plus one DP over the unpruned tree (whole worlds smaller than k). The
// strata are mutually independent, which makes them the unit of work
// Engine::ConsensusTopK fans across its thread pool; MedianTopKSymDiff
// itself evaluates them sequentially and merges with the identical code, so
// the two paths are bitwise-interchangeable.

/// \brief One candidate answer produced by a stratum: the uniform objective
/// sum_{t in tau} (Pr(r(t) <= k) - 1/2) and the witnessing leaves (sorted
/// NodeIds).
struct SymDiffMedianCandidate {
  double centered_value = 0.0;
  std::vector<NodeId> leaves;
};

/// \brief Shared inputs of every stratum, computed once per query (one
/// distinct-score scan and one PrTopK sweep instead of one per stratum):
/// the Theorem 4 thresholds ascending, the per-node DP values
/// Pr(r(t) <= k), and their centered form Pr(r(t) <= k) - 1/2 (leaves
/// only; other nodes 0). Build with BuildMedianSymDiffContext.
struct MedianSymDiffContext {
  int k = 0;
  std::vector<double> thresholds;
  std::vector<double> value_p;
  std::vector<double> value_centered;
};

/// \brief Precomputes the stratum inputs for MedianTopKSymDiff over `tree`;
/// `dist` must come from ComputeRankDistribution(tree, k).
MedianSymDiffContext BuildMedianSymDiffContext(const AndXorTree& tree,
                                               const RankDistribution& dist);

/// \brief Number of independent search strata: one per distinct leaf score,
/// plus the smaller-than-k stratum. Valid stratum indices are
/// [0, NumMedianSymDiffStrata(context)).
int NumMedianSymDiffStrata(const MedianSymDiffContext& context);

/// \brief Evaluates stratum `stratum`: indices below the distinct-score
/// count run that score-threshold DP (at most one candidate); the final
/// index runs the small-world DP (up to k candidates, sizes ascending).
/// Candidates are returned in the exact order the sequential scan considers
/// them; infeasible strata return an empty vector. Strata are independent
/// and `context` is only read, so calls may run concurrently.
std::vector<SymDiffMedianCandidate> EvalMedianSymDiffStratum(
    const AndXorTree& tree, const MedianSymDiffContext& context, int stratum);

/// \brief Merges per-stratum candidate lists (indexed by stratum) into the
/// final median answer, replaying the sequential scan's first-improvement
/// order, and finalizes (rank order by score, expected distance). Shared by
/// MedianTopKSymDiff and the engine's parallel path.
Result<TopKResult> PickMedianSymDiffCandidate(
    const AndXorTree& tree, const RankDistribution& dist,
    const std::vector<std::vector<SymDiffMedianCandidate>>& per_stratum);

}  // namespace cpdb

#endif  // CPDB_CORE_TOPK_SYMDIFF_H_

// Copyright 2026 The ConsensusDB Authors

#include "core/topk_kendall.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <string>
#include <utility>

#include "core/topk_footrule.h"
#include "model/flat_tree.h"
#include "model/generating_function.h"
#include "poly/poly2.h"

namespace cpdb {

double PrInTopKAndBefore(const AndXorTree& tree, KeyId u, KeyId t, int k) {
  // Sum over alternatives b of u of
  //   Pr(b present, no higher-scoring alternative of t present, and at most
  //      k-1 higher-scoring tuples of other keys present).
  // Higher-scoring alternatives of t are excluded by assigning them the zero
  // polynomial (their worlds contribute no mass); higher-scoring leaves of
  // other keys count toward the rank via variable x; b itself is tagged y.
  double total = 0.0;
  for (NodeId target : tree.LeafIds()) {
    const TupleAlternative& alt = tree.node(target).leaf;
    if (alt.key != u) continue;
    auto leaf_poly = [&](NodeId id) {
      if (id == target) return Poly2::Monomial(k, 1, 0, 1, 1.0);  // y
      const TupleAlternative& other = tree.node(id).leaf;
      if (other.score > alt.score) {
        if (other.key == t) return Poly2::Constant(k, 1, 0.0);  // forbidden
        if (other.key != u) return Poly2::Monomial(k, 1, 1, 0, 1.0);  // x
      }
      return Poly2::Constant(k, 1, 1.0);
    };
    auto make_const = [&](double c) { return Poly2::Constant(k, 1, c); };
    Poly2 f = EvalGeneratingFunction<Poly2>(tree, leaf_poly, make_const);
    for (int i = 0; i <= k - 1; ++i) total += f.Coeff(i, 1);
  }
  return total;
}

double PrInTopKAndBefore(const FlatTree& flat, KeyId u, KeyId t, int k) {
  // Flat form of the fold above: rows have shape (k+1) × 2, row-major, so
  // y = x^0 y^1 sits at index 1, x = x^1 y^0 at index 2 (guarded like
  // Poly2::Monomial's truncation), and the forbidden leaves keep their
  // zeroed row. Bitwise identical to the pointer reference.
  double total = 0.0;
  const std::vector<FlatLeaf>& leaves = flat.leaves();
  std::vector<double> f(static_cast<size_t>(k + 1) * 2);
  for (int target = 0; target < flat.num_leaves(); ++target) {
    const FlatLeaf& alt = leaves[static_cast<size_t>(target)];
    if (alt.key != u) continue;
    const auto leaf_init = [&](int i, double* row) {
      if (i == target) {
        row[1] = 1.0;  // y
        return;
      }
      const FlatLeaf& other = leaves[static_cast<size_t>(i)];
      if (other.score > alt.score) {
        if (other.key == t) return;  // forbidden: the zero polynomial
        if (other.key != u) {
          if (k >= 1) row[2] = 1.0;  // x, counts toward the rank
          return;
        }
      }
      row[0] = 1.0;
    };
    flat.EvalGeneratingFunction(k, 1, leaf_init, f.data(), &FlatFoldScratch());
    for (int i = 0; i <= k - 1; ++i) {
      total += f[static_cast<size_t>(i) * 2 + 1];  // Coeff(i, 1)
    }
  }
  return total;
}

KendallEvaluator::KendallEvaluator(const AndXorTree& tree, int k)
    : k_(k), keys_(tree.Keys()) {
  BuildKeyIndex();
  q_.assign(keys_.size(), std::vector<double>(keys_.size(), 0.0));
  // One compile shared by all n^2 q cells (the engine fans the same cells
  // across its pool; this is the sequential form).
  const FlatTree flat = FlatTree::Compile(tree);
  for (size_t iu = 0; iu < keys_.size(); ++iu) {
    for (size_t it = 0; it < keys_.size(); ++it) {
      if (iu == it) continue;
      q_[iu][it] = PrInTopKAndBefore(flat, keys_[iu], keys_[it], k_);
    }
  }
}

Result<KendallEvaluator> KendallEvaluator::Create(
    const AndXorTree& tree, int k, std::vector<std::vector<double>> q) {
  std::vector<KeyId> keys = tree.Keys();
  // A mis-shaped matrix (built over a different key list) must be rejected:
  // padding it out would silently produce wrong Kendall expectations.
  bool shape_ok = q.size() == keys.size();
  for (const auto& row : q) shape_ok = shape_ok && row.size() == keys.size();
  if (!shape_ok) {
    return Status::InvalidArgument(
        "KendallEvaluator: q matrix shape does not match " +
        std::to_string(keys.size()) + " keys");
  }
  return KendallEvaluator(k, std::move(keys), std::move(q));
}

KendallEvaluator::KendallEvaluator(int k, std::vector<KeyId> keys,
                                   std::vector<std::vector<double>> q)
    : k_(k), keys_(std::move(keys)), q_(std::move(q)) {
  BuildKeyIndex();
  for (size_t i = 0; i < keys_.size(); ++i) q_[i][i] = 0.0;
}

void KendallEvaluator::BuildKeyIndex() {
  KeyId max_key = 0;
  for (KeyId key : keys_) max_key = std::max(max_key, key);
  index_of_key_.assign(static_cast<size_t>(max_key) + 1, -1);
  for (size_t i = 0; i < keys_.size(); ++i) {
    index_of_key_[static_cast<size_t>(keys_[i])] = static_cast<int>(i);
  }
}

int KendallEvaluator::IndexOf(KeyId key) const {
  if (key < 0 || static_cast<size_t>(key) >= index_of_key_.size()) return -1;
  return index_of_key_[static_cast<size_t>(key)];
}

double KendallEvaluator::Q(KeyId u, KeyId t) const {
  int iu = IndexOf(u);
  int it = IndexOf(t);
  if (iu < 0 || it < 0) return 0.0;
  return q_[static_cast<size_t>(iu)][static_cast<size_t>(it)];
}

double KendallEvaluator::Expected(const std::vector<KeyId>& answer) const {
  std::vector<bool> in_answer(keys_.size(), false);
  for (KeyId t : answer) {
    int idx = IndexOf(t);
    if (idx >= 0) in_answer[static_cast<size_t>(idx)] = true;
  }
  double expected = 0.0;
  // Pairs ranked by the answer: t before u contributes q(u, t).
  for (size_t a = 0; a < answer.size(); ++a) {
    for (size_t b = a + 1; b < answer.size(); ++b) {
      expected += Q(answer[b], answer[a]);
    }
  }
  // Pairs with t in the answer, u outside it: the answer's extensions place
  // t first, so disagreement happens when u enters the Top-k ahead of t.
  for (KeyId t : answer) {
    for (size_t iu = 0; iu < keys_.size(); ++iu) {
      if (in_answer[iu]) continue;
      expected += Q(keys_[iu], t);
    }
  }
  return expected;
}

Result<TopKResult> MeanTopKKendallPivot(
    const KendallEvaluator& evaluator,
    const std::vector<std::vector<double>>& order_probs, Rng* rng) {
  const std::vector<KeyId>& keys = evaluator.keys();
  if (order_probs.size() != keys.size()) {
    return Status::InvalidArgument(
        "order_probs must be indexed like evaluator.keys()");
  }
  // KwikSort: randomized pivot partitioning on the majority tournament.
  std::vector<int> order(keys.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::function<void(std::vector<int>&)> sort_rec = [&](std::vector<int>& ids) {
    if (ids.size() <= 1) return;
    size_t pivot_pos =
        static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(ids.size()) - 1));
    int pivot = ids[pivot_pos];
    std::vector<int> left, right;
    for (int id : ids) {
      if (id == pivot) continue;
      // "id beats pivot" when it ranks before the pivot with majority
      // probability.
      if (order_probs[static_cast<size_t>(id)][static_cast<size_t>(pivot)] >=
          order_probs[static_cast<size_t>(pivot)][static_cast<size_t>(id)]) {
        left.push_back(id);
      } else {
        right.push_back(id);
      }
    }
    sort_rec(left);
    sort_rec(right);
    ids.clear();
    ids.insert(ids.end(), left.begin(), left.end());
    ids.push_back(pivot);
    ids.insert(ids.end(), right.begin(), right.end());
  };
  sort_rec(order);

  TopKResult result;
  size_t take = std::min<size_t>(order.size(), static_cast<size_t>(evaluator.k()));
  for (size_t i = 0; i < take; ++i) {
    result.keys.push_back(keys[static_cast<size_t>(order[i])]);
  }
  result.expected_distance = evaluator.Expected(result.keys);
  return result;
}

TopKResult RescoreUnderKendall(const KendallEvaluator& evaluator,
                               TopKResult answer) {
  answer.expected_distance = evaluator.Expected(answer.keys);
  return answer;
}

Result<TopKResult> MeanTopKKendallViaFootrule(const KendallEvaluator& evaluator,
                                              const RankDistribution& dist) {
  CPDB_ASSIGN_OR_RETURN(TopKResult footrule, MeanTopKFootrule(dist));
  return RescoreUnderKendall(evaluator, std::move(footrule));
}

Result<TopKResult> MeanTopKKendallExactDp(const KendallEvaluator& evaluator,
                                          const RankDistribution& dist,
                                          int max_candidates) {
  std::vector<KeyId> candidates;
  for (KeyId key : evaluator.keys()) {
    if (dist.PrTopK(key) > 0.0) candidates.push_back(key);
  }
  const int c = static_cast<int>(candidates.size());
  if (c > max_candidates || c > 24) {
    return Status::ResourceExhausted(
        "too many candidates for the Kendall subset DP");
  }
  const int k = std::min<int>(evaluator.k(), c);
  const uint32_t full = 1u << c;

  // q_[i][j] between candidate indices.
  std::vector<std::vector<double>> q(static_cast<size_t>(c),
                                     std::vector<double>(static_cast<size_t>(c), 0.0));
  for (int i = 0; i < c; ++i) {
    for (int j = 0; j < c; ++j) {
      if (i != j) {
        q[static_cast<size_t>(i)][static_cast<size_t>(j)] =
            evaluator.Q(candidates[static_cast<size_t>(i)],
                        candidates[static_cast<size_t>(j)]);
      }
    }
  }
  // Keys outside the candidate set have Pr(r <= k) = 0, so q(u, t) = 0 for
  // them and the boundary term only ranges over candidates.

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> f(full, kInf);
  std::vector<int8_t> last(full, -1);
  f[0] = 0.0;
  for (uint32_t mask = 1; mask < full; ++mask) {
    if (static_cast<int>(__builtin_popcount(mask)) > k) continue;
    for (int t = 0; t < c; ++t) {
      if (!(mask & (1u << t))) continue;
      uint32_t prev = mask ^ (1u << t);
      if (f[prev] == kInf) continue;
      // t is placed last among `mask`: every p in prev precedes it.
      double cost = f[prev];
      for (int p = 0; p < c; ++p) {
        if (prev & (1u << p)) {
          cost += q[static_cast<size_t>(t)][static_cast<size_t>(p)];
        }
      }
      if (cost < f[mask]) {
        f[mask] = cost;
        last[mask] = static_cast<int8_t>(t);
      }
    }
  }

  double best = kInf;
  uint32_t best_mask = 0;
  for (uint32_t mask = 0; mask < full; ++mask) {
    if (static_cast<int>(__builtin_popcount(mask)) != k || f[mask] == kInf) {
      continue;
    }
    // Boundary: candidates outside the answer entering the Top-k ahead of
    // answer members.
    double boundary = 0.0;
    for (int t = 0; t < c; ++t) {
      if (!(mask & (1u << t))) continue;
      for (int u = 0; u < c; ++u) {
        if (u != t && !(mask & (1u << u))) {
          boundary += q[static_cast<size_t>(u)][static_cast<size_t>(t)];
        }
      }
    }
    if (f[mask] + boundary < best) {
      best = f[mask] + boundary;
      best_mask = mask;
    }
  }
  if (best == kInf) return Status::Infeasible("no feasible answer");

  TopKResult result;
  result.keys.resize(static_cast<size_t>(k));
  uint32_t mask = best_mask;
  for (int pos = k - 1; pos >= 0; --pos) {
    int t = last[mask];
    result.keys[static_cast<size_t>(pos)] = candidates[static_cast<size_t>(t)];
    mask ^= 1u << t;
  }
  result.expected_distance = evaluator.Expected(result.keys);
  return result;
}

Result<TopKResult> MeanTopKKendallExact(const KendallEvaluator& evaluator,
                                        const RankDistribution& dist,
                                        int max_candidates) {
  std::vector<KeyId> candidates;
  for (KeyId key : evaluator.keys()) {
    if (dist.PrTopK(key) > 0.0) candidates.push_back(key);
  }
  if (static_cast<int>(candidates.size()) > max_candidates) {
    return Status::ResourceExhausted(
        "too many candidates for exhaustive Kendall search");
  }
  const int k = std::min<int>(evaluator.k(), static_cast<int>(candidates.size()));

  TopKResult best;
  best.expected_distance = std::numeric_limits<double>::infinity();
  std::vector<KeyId> current;
  std::vector<bool> used(candidates.size(), false);
  std::function<void()> recurse = [&]() {
    if (static_cast<int>(current.size()) == k) {
      double e = evaluator.Expected(current);
      if (e < best.expected_distance) {
        best.expected_distance = e;
        best.keys = current;
      }
      return;
    }
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      used[i] = true;
      current.push_back(candidates[i]);
      recurse();
      current.pop_back();
      used[i] = false;
    }
  };
  recurse();
  return best;
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "core/set_consensus.h"

#include <algorithm>
#include <set>
#include <utility>

namespace cpdb {

double ExpectedSymDiffDistance(const AndXorTree& tree,
                               const std::vector<NodeId>& world) {
  return ExpectedSymDiffDistanceFromMarginals(tree, tree.LeafMarginals(),
                                              world);
}

double ExpectedSymDiffDistanceFromMarginals(
    const AndXorTree& tree, const std::vector<double>& marginal,
    const std::vector<NodeId>& world) {
  std::set<NodeId> in_world(world.begin(), world.end());
  double expected = 0.0;
  for (NodeId l : tree.LeafIds()) {
    double p = marginal[static_cast<size_t>(l)];
    expected += in_world.count(l) > 0 ? (1.0 - p) : p;
  }
  return expected;
}

std::vector<NodeId> MeanWorldSymDiff(const AndXorTree& tree) {
  return MeanWorldSymDiffFromMarginals(tree, tree.LeafMarginals());
}

std::vector<NodeId> MeanWorldSymDiffFromMarginals(
    const AndXorTree& tree, const std::vector<double>& marginal) {
  std::vector<NodeId> world;
  for (NodeId l : tree.LeafIds()) {
    if (marginal[static_cast<size_t>(l)] > 0.5) world.push_back(l);
  }
  return world;
}

namespace {

// DP state per node: the minimum of sum_{l in S_v} (1 - 2 Pr(l)) over the
// possible worlds S_v of the subtree, plus the choice realizing it.
struct DpEntry {
  double cost = 0.0;
  // For XOR nodes: index into children of the chosen child, or -1 for the
  // empty choice. Unused elsewhere.
  int choice = -1;
};

}  // namespace

std::vector<NodeId> MedianWorldSymDiff(const AndXorTree& tree) {
  return MedianWorldSymDiffFromMarginals(tree, tree.LeafMarginals());
}

std::vector<NodeId> MedianWorldSymDiffFromMarginals(
    const AndXorTree& tree, const std::vector<double>& marginal) {
  std::vector<DpEntry> dp(static_cast<size_t>(tree.NumNodes()));

  // Post-order DP.
  std::vector<std::pair<NodeId, bool>> stack = {{tree.root(), false}};
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    const TreeNode& n = tree.node(id);
    if (!expanded) {
      stack.push_back({id, true});
      for (NodeId c : n.children) stack.push_back({c, false});
      continue;
    }
    DpEntry& e = dp[static_cast<size_t>(id)];
    switch (n.kind) {
      case NodeKind::kLeaf:
        e.cost = 1.0 - 2.0 * marginal[static_cast<size_t>(id)];
        break;
      case NodeKind::kAnd: {
        e.cost = 0.0;
        for (NodeId c : n.children) e.cost += dp[static_cast<size_t>(c)].cost;
        break;
      }
      case NodeKind::kXor: {
        double leftover = 1.0;
        for (double p : n.edge_probs) leftover -= p;
        // The empty outcome is available iff leftover mass is positive.
        bool best_set = false;
        if (leftover > 0.0) {
          e.cost = 0.0;
          e.choice = -1;
          best_set = true;
        }
        for (size_t i = 0; i < n.children.size(); ++i) {
          if (n.edge_probs[i] <= 0.0) continue;
          double c = dp[static_cast<size_t>(n.children[i])].cost;
          if (!best_set || c < e.cost) {
            e.cost = c;
            e.choice = static_cast<int>(i);
            best_set = true;
          }
        }
        // A validated tree always has at least one positive option.
        break;
      }
    }
  }

  // Reconstruct the chosen world.
  std::vector<NodeId> world;
  std::vector<NodeId> walk = {tree.root()};
  while (!walk.empty()) {
    NodeId id = walk.back();
    walk.pop_back();
    const TreeNode& n = tree.node(id);
    switch (n.kind) {
      case NodeKind::kLeaf:
        world.push_back(id);
        break;
      case NodeKind::kAnd:
        for (NodeId c : n.children) walk.push_back(c);
        break;
      case NodeKind::kXor: {
        int choice = dp[static_cast<size_t>(id)].choice;
        if (choice >= 0) walk.push_back(n.children[static_cast<size_t>(choice)]);
        break;
      }
    }
  }
  std::sort(world.begin(), world.end());
  return world;
}

}  // namespace cpdb

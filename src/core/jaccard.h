// Copyright 2026 The ConsensusDB Authors
//
// Consensus worlds under the Jaccard distance (Section 4.2 of the paper).
// Lemma 1 computes E[d_J(W, pw)] for a fixed world W through a bivariate
// generating function (x tags the leaves of W, y the others); Lemma 2 shows
// the mean world of a tuple-independent database is a prefix of the tuples
// sorted by probability, which the algorithms below scan exhaustively.

#ifndef CPDB_CORE_JACCARD_H_
#define CPDB_CORE_JACCARD_H_

#include <vector>

#include "common/result.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief d_J(S1, S2) = |S1 Δ S2| / |S1 ∪ S2| over leaf-id sets
/// (d_J(∅, ∅) = 0). Inputs must be sorted.
double JaccardDistance(const std::vector<NodeId>& s1,
                       const std::vector<NodeId>& s2);

/// \brief Lemma 1: E[d_J(W, pw)] for a fixed leaf set W, exactly, via the
/// bivariate generating function; O(L * |W| * (L - |W|)) for L leaves.
double ExpectedJaccardDistance(const AndXorTree& tree,
                               const std::vector<NodeId>& world);

/// \brief True iff the tree is a tuple-independent table: an AND (or a
/// single XOR) of single-leaf XOR blocks with one alternative per key.
bool IsTupleIndependent(const AndXorTree& tree);

/// \brief True iff the tree is block-independent-disjoint: an AND (or a
/// single XOR) of XOR blocks whose children are leaves.
bool IsBlockIndependent(const AndXorTree& tree);

/// \brief Lemma 2 algorithm: the mean world under Jaccard distance of a
/// tuple-independent database. Sorts tuples by probability descending and
/// returns the prefix with the smallest expected distance. For
/// tuple-independent databases every subset is a possible world, so this is
/// simultaneously the median world.
Result<std::vector<NodeId>> MeanWorldJaccard(const AndXorTree& tree);

/// \brief Median world under Jaccard distance for a BID table: considers,
/// per block, only the highest-probability alternative (per the paper), and
/// scans prefixes of the blocks sorted by that probability.
Result<std::vector<NodeId>> MedianWorldJaccardBid(const AndXorTree& tree);

}  // namespace cpdb

#endif  // CPDB_CORE_JACCARD_H_

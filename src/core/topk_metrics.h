// Copyright 2026 The ConsensusDB Authors
//
// Distances between two Top-k lists (Fagin, Kumar, Sivakumar: "Comparing
// top k lists", SIAM J. Discrete Math 2003), as used in Section 5 of the
// paper:
//   * normalized symmetric difference d_Delta (membership only);
//   * intersection metric d_I (prefix-averaged d_Delta);
//   * Spearman footrule with location parameter k+1, F^(k+1);
//   * Kendall tau K^(0): pairs whose order provably disagrees in every pair
//     of full-ranking extensions.
//
// Lists are sequences of distinct keys in rank order; they may be shorter
// than k (a possible world can have fewer than k tuples).

#ifndef CPDB_CORE_TOPK_METRICS_H_
#define CPDB_CORE_TOPK_METRICS_H_

#include <vector>

#include "model/types.h"

namespace cpdb {

/// \brief (1/2k) |a Δ b| over the key sets.
double TopKSymmetricDifference(const std::vector<KeyId>& a,
                               const std::vector<KeyId>& b, int k);

/// \brief (1/k) sum_{i=1..k} (1/2i) |a^i Δ b^i| where x^i is the length-
/// min(i,|x|) prefix.
double TopKIntersectionDistance(const std::vector<KeyId>& a,
                                const std::vector<KeyId>& b, int k);

/// \brief Footrule with location parameter k+1: every key of a ∪ b
/// contributes |pos_a - pos_b| with missing keys placed at position k+1.
double TopKFootrule(const std::vector<KeyId>& a, const std::vector<KeyId>& b,
                    int k);

/// \brief K^(0): number of unordered pairs {t, u} of a ∪ b whose relative
/// order differs in all full rankings extending a and b respectively.
double TopKKendall(const std::vector<KeyId>& a, const std::vector<KeyId>& b,
                   int k);

}  // namespace cpdb

#endif  // CPDB_CORE_TOPK_METRICS_H_

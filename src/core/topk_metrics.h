// Copyright 2026 The ConsensusDB Authors
//
// Distances between two Top-k lists (Fagin, Kumar, Sivakumar: "Comparing
// top k lists", SIAM J. Discrete Math 2003), as used in Section 5 of the
// paper:
//   * normalized symmetric difference d_Delta (membership only);
//   * intersection metric d_I (prefix-averaged d_Delta);
//   * Spearman footrule with location parameter k+1, F^(k+1);
//   * Kendall tau K^(0): pairs whose order provably disagrees in every pair
//     of full-ranking extensions.
//
// Lists are sequences of distinct keys in rank order; they may be shorter
// than k (a possible world can have fewer than k tuples).

#ifndef CPDB_CORE_TOPK_METRICS_H_
#define CPDB_CORE_TOPK_METRICS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "model/types.h"

namespace cpdb {

/// \brief The four Top-k list metrics of Section 5, selectable wherever a
/// distance is a runtime parameter (the generic evaluators, the Monte-Carlo
/// estimators, the engine's query API, the CLI's --metric flag).
enum class TopKMetric { kSymDiff, kIntersection, kFootrule, kKendall };

/// \brief The metric's textual name ("symdiff", "intersection", "footrule",
/// "kendall") — the single vocabulary shared by the CLI's --metric flag and
/// the serve protocol's metric= field. "?" for unknown enum values.
const char* TopKMetricName(TopKMetric metric);

/// \brief The inverse of TopKMetricName; InvalidArgument (naming the
/// accepted values) for anything else. Strict: callers must not default.
Result<TopKMetric> ParseTopKMetricName(const std::string& name);

/// \brief d(a, b) under `metric` — the single distance dispatch shared by
/// every metric-parameterized caller (core/evaluation.cc, core/monte_carlo.cc,
/// engine/engine.cc). Unknown enum values return 0.
double TopKListDistance(const std::vector<KeyId>& a,
                        const std::vector<KeyId>& b, int k, TopKMetric metric);

/// \brief The normalized symmetric difference d_Delta(a, b) =
/// (1/2k) |a Δ b| over the key sets (Section 5.2); order within the lists
/// is ignored, so this is the pure membership distance. Range [0, 1].
///
/// Complexity: O((|a| + |b|) log(|a| + |b|)) via ordered-set
/// membership.
double TopKSymmetricDifference(const std::vector<KeyId>& a,
                               const std::vector<KeyId>& b, int k);

/// \brief The intersection metric d_I(a, b) =
/// (1/k) sum_{i=1..k} (1/2i) |a^i Δ b^i| where x^i is the length-min(i,|x|)
/// prefix (Section 5.3): a prefix-averaged d_Delta, so agreement near the
/// top of the lists counts more. Range [0, 1].
///
/// Complexity: O(k^2 log k) (each of the k prefixes is diffed
/// independently).
double TopKIntersectionDistance(const std::vector<KeyId>& a,
                                const std::vector<KeyId>& b, int k);

/// \brief The Spearman footrule with location parameter k+1, F^(k+1)(a, b)
/// (Section 5.4): every key of a ∪ b contributes |pos_a - pos_b| with keys
/// missing from a list placed at position k+1. A true metric on Top-k
/// lists; range [0, k(k+1)].
///
/// Complexity: O((|a| + |b|) log(|a| + |b|)).
double TopKFootrule(const std::vector<KeyId>& a, const std::vector<KeyId>& b,
                    int k);

/// \brief The Kendall distance K^(0)(a, b) (Section 5.5): the number of
/// unordered pairs {t, u} of a ∪ b whose relative order provably differs in
/// every pair of full rankings extending a and b — the optimistic variant,
/// so pairs whose order is unconstrained by either list cost nothing.
/// Range [0, k^2].
///
/// Complexity: O(m^2 log m) for m = |a ∪ b| <= 2k pair enumeration.
double TopKKendall(const std::vector<KeyId>& a, const std::vector<KeyId>& b,
                   int k);

}  // namespace cpdb

#endif  // CPDB_CORE_TOPK_METRICS_H_

// Copyright 2026 The ConsensusDB Authors
//
// Rank distributions over and/xor trees (Example 3 / Section 5 of the
// paper). For each probabilistic tuple t, Pr(r(t) = i) is the probability
// that t appears in a random possible world ranked i-th by score; absent
// tuples have rank infinity, so Pr(r(t) > k) includes absence. These
// distributions are the sufficient statistics for every consensus Top-k
// computation in Section 5.

#ifndef CPDB_CORE_RANK_DISTRIBUTION_H_
#define CPDB_CORE_RANK_DISTRIBUTION_H_

#include <map>
#include <vector>

#include "model/and_xor_tree.h"
#include "model/flat_tree.h"

namespace cpdb {

/// \brief Pr(r(t) = i) and Pr(r(t) <= i) for every key and every i in 1..k.
///
/// Paper semantics: these positional probabilities are the sufficient
/// statistics of Section 5 — every consensus Top-k objective (mean answers
/// under d_Delta, d_I, F^(k+1)) is a linear functional of them, which is
/// why "compute the rank distribution once, then optimize" is the uniform
/// algorithmic pattern. Accessors are O(log n) per lookup (key index map)
/// and O(1) in i.
class RankDistribution {
 public:
  int k() const { return k_; }

  /// \brief Keys covered, ascending (all keys of the generating tree).
  const std::vector<KeyId>& keys() const { return keys_; }

  /// \brief Pr(r(key) = i): the probability some alternative of `key` is
  /// present and ranked exactly i-th by score. 0 for i outside [1, k] or
  /// unknown keys. O(log n) per call.
  double PrRankEq(KeyId key, int i) const;

  /// \brief Pr(r(key) <= i) for i in [1, k]; 0 for i < 1; PrTopK for i > k.
  /// Precomputed prefix sums, so O(log n) per call.
  double PrRankLe(KeyId key, int i) const;

  /// \brief Pr(r(key) <= k): the probability the tuple makes the Top-k —
  /// the Global-Top-k / PT-k statistic of Theorem 3. O(log n) per call.
  double PrTopK(KeyId key) const { return PrRankLe(key, k_); }

  /// \brief Pr(r(key) > k), including the probability the tuple is absent
  /// (absent tuples have rank infinity). O(log n) per call.
  double PrBeyondK(KeyId key) const { return 1.0 - PrTopK(key); }

  /// \brief Approximate heap footprint in bytes — the eviction cost the
  /// serving layer's byte-budgeted caches charge for retaining this
  /// distribution. Computed from element *counts* (sizes, not allocator
  /// capacities) plus a fixed per-map-node estimate, so the figure is a
  /// deterministic function of (keys, k): budget-driven eviction decisions
  /// replay identically across runs and platforms. O(1): n·k dominates and
  /// both factors are stored.
  int64_t ApproxBytes() const;

 private:
  friend RankDistribution ComputeRankDistribution(const AndXorTree& tree,
                                                  int k);
  friend RankDistribution ComputeRankDistributionPointer(
      const AndXorTree& tree, int k);
  friend class RankDistributionBuilder;
  int k_ = 0;
  std::vector<KeyId> keys_;
  std::map<KeyId, int> key_index_;
  // pr_eq_[key_index][i] = Pr(r = i); index 0 unused.
  std::vector<std::vector<double>> pr_eq_;
  std::vector<std::vector<double>> pr_le_;
};

/// \brief Assembles a RankDistribution from externally computed
/// Pr(r(key) = i) values (used by the fast block-independent algorithm in
/// rank_distribution_fast.h and by the parallel engine's per-leaf merge).
/// Build() sorts keys and finalizes prefix sums in O(n (log n + k)).
class RankDistributionBuilder {
 public:
  explicit RankDistributionBuilder(int k) { dist_.k_ = k; }

  /// \brief Registers `key` with an all-zero distribution if absent (keys
  /// that never reach the Top-k must still appear in keys()).
  void EnsureKey(KeyId key);

  /// \brief Adds `prob` to Pr(r(key) = i); creates the key on first use.
  void Add(KeyId key, int i, double prob);

  /// \brief Finalizes prefix sums and returns the distribution.
  RankDistribution Build() &&;

 private:
  RankDistribution dist_;
};

/// \brief The contribution of one leaf to its key's rank distribution:
/// entry i of the returned vector (size k + 1, entry 0 unused) is
/// Pr(`target` is present and ranked i-th), i.e. the coefficient of
/// x^{i-1} y^1 of the leaf's bivariate generating function. Summing over a
/// key's alternatives yields Pr(r(key) = i). One evaluation costs O(L k)
/// for L leaves; this is the unit of work the parallel engine distributes.
///
/// This is the pointer-tree reference implementation, retained as the
/// differential baseline for the flat overload below
/// (tests/flat_tree_test.cc asserts bitwise equality).
std::vector<double> LeafRankContribution(const AndXorTree& tree, NodeId target,
                                         int k);

/// \brief Flat-path LeafRankContribution: same value, bit for bit, computed
/// over a compiled FlatTree. `target` indexes flat.leaves() (left-to-right
/// DFS order == AndXorTree::LeafIds() order). Per-target leaf
/// classification is a linear scan over the packed leaf table and all
/// polynomial scratch lives in this thread's reusable arena, so repeated
/// calls over one compiled tree allocate only the returned vector.
std::vector<double> LeafRankContribution(const FlatTree& flat, int target,
                                         int k);

/// \brief Computes the rank distribution of every key, truncated at rank k.
///
/// Implementation (Example 3): for each tuple alternative a with score s,
/// the bivariate generating function with variable x on higher-scoring
/// leaves of other keys and y on a has Pr(rank via a = i) as the coefficient
/// of x^{i-1} y; summing over a's alternatives gives the key's distribution.
/// Cost O(L^2 k) for L leaves (L independent O(L k) leaf evaluations; see
/// LeafRankContribution, the unit the parallel engine distributes).
///
/// Runs the flat fold: the tree is compiled once (FlatTree::Compile) and
/// each leaf evaluation is a linear pass over the instruction stream with
/// arena scratch. Bitwise identical to ComputeRankDistributionPointer.
RankDistribution ComputeRankDistribution(const AndXorTree& tree, int k);

/// \brief Pointer-tree reference for ComputeRankDistribution — the
/// historical per-leaf EvalGeneratingFunction walk, kept as the
/// differential baseline for the flat path.
RankDistribution ComputeRankDistributionPointer(const AndXorTree& tree, int k);

/// \brief Pr(r(t_u) < r(t_v)): the probability that key u ranks strictly
/// ahead of key v (v absent counts as rank infinity, so u present with v
/// absent qualifies). Used by Kendall-tau aggregation (Section 5.5).
/// O(A_u L) for A_u alternatives of u over L leaves. Compiles the tree
/// once and runs the flat fold per alternative; bitwise identical to
/// PrRanksBeforePointer.
double PrRanksBefore(const AndXorTree& tree, KeyId u, KeyId v);

/// \brief Flat-path PrRanksBefore over an already compiled tree — the form
/// the O(n^2) pairwise loops use so the compile cost is paid once per tree,
/// not once per (u, v) cell.
double PrRanksBefore(const FlatTree& flat, KeyId u, KeyId v);

/// \brief Pointer-tree reference for PrRanksBefore (differential baseline).
double PrRanksBeforePointer(const AndXorTree& tree, KeyId u, KeyId v);

/// \brief All pairwise order probabilities among `keys`;
/// result[i][j] = Pr(r(keys[i]) < r(keys[j])). Diagonal is 0. The tree is
/// compiled to a FlatTree once and reused across all n^2 cells — the
/// quadratic precomputation behind every Kendall consensus answer
/// (Engine::PairwiseOrderProbabilities runs the same cells in parallel,
/// sharing one compiled tree across tasks).
std::vector<std::vector<double>> PairwiseOrderProbabilities(
    const AndXorTree& tree, const std::vector<KeyId>& keys);

}  // namespace cpdb

#endif  // CPDB_CORE_RANK_DISTRIBUTION_H_

// Copyright 2026 The ConsensusDB Authors
//
// The paper's NP-hardness construction for median worlds under arbitrary
// correlations (Section 4.1): a MAX-2-SAT instance becomes a two-relation
// query R join S where S holds two equiprobable mutually exclusive tuples
// per variable and R maps clauses to their literals. Each clause appears in
// the projected result with marginal probability 3/4, but the result tuples
// are correlated through the shared variable choices, and the median world
// (over result *keys*) selects the assignment satisfying the most clauses.
//
// This module materializes the construction so the reduction can be
// exercised end to end on small instances: the key-level median recovered by
// brute force over the result distribution must match the brute-force
// MAX-2-SAT optimum. It also shows why Corollary 1 does not extend: the
// and/xor-tree representation of the result distribution duplicates clause
// keys across assignment branches, so the tractable *leaf-level* median does
// not answer the *key-level* question.

#ifndef CPDB_CORE_HARDNESS_H_
#define CPDB_CORE_HARDNESS_H_

#include <vector>

#include "common/result.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief A 2-CNF clause over variables 0..num_vars-1.
struct TwoSatClause {
  int var1 = 0;
  bool positive1 = true;
  int var2 = 0;
  bool positive2 = true;
};

/// \brief A MAX-2-SAT instance.
struct Max2SatInstance {
  int num_vars = 0;
  std::vector<TwoSatClause> clauses;
};

/// \brief True iff the assignment satisfies the clause.
bool ClauseSatisfied(const TwoSatClause& clause,
                     const std::vector<bool>& assignment);

/// \brief Exhaustive MAX-2-SAT: the maximum number of simultaneously
/// satisfiable clauses. Requires num_vars <= 20.
Result<int> BruteForceMax2Sat(const Max2SatInstance& instance);

/// \brief The distribution over query results pi_C(R join S): one outcome
/// per assignment (probability 2^-num_vars), whose value is the sorted set
/// of satisfied clause indices. Outcomes with identical clause sets are
/// merged.
struct ResultWorld {
  std::vector<int> satisfied_clauses;
  double prob = 0.0;
};
Result<std::vector<ResultWorld>> EnumerateQueryResultWorlds(
    const Max2SatInstance& instance);

/// \brief The median answer of the result distribution under the key-level
/// symmetric difference (brute force over possible answers); by the paper's
/// reduction its size equals BruteForceMax2Sat.
Result<std::vector<int>> MedianQueryResult(const Max2SatInstance& instance);

/// \brief Materializes the result distribution as an and/xor tree (a XOR of
/// per-assignment AND branches; clause keys repeat across branches, legally,
/// since their LCA is the XOR root). Clause i becomes key i; scores are
/// distinct per (branch, clause) leaf.
Result<AndXorTree> BuildQueryResultTree(const Max2SatInstance& instance);

/// \brief Descriptive hardness statistics for one tree — the structural
/// signals behind the paper's tractability frontier. Key duplication is
/// the load-bearing one: the hardness construction above duplicates clause
/// keys across assignment branches, which is exactly what divorces the
/// tractable leaf-level median from the NP-hard key-level one, while
/// tuple-/block-independent shapes admit the fast paths. All fields are
/// exact integer/boolean counts, so the stats are trivially deterministic.
struct TreeHardness {
  int64_t nodes = 0;   ///< total tree nodes (internal + leaves)
  int64_t leaves = 0;  ///< alternative leaves
  int64_t keys = 0;    ///< distinct keys across the leaves
  /// Keys appearing on more than one leaf — 0 means leaf-level and
  /// key-level answers coincide per alternative.
  int64_t duplicated_keys = 0;
  int64_t max_leaves_per_key = 0;  ///< worst-case duplication degree
  bool tuple_independent = false;  ///< core/jaccard.h IsTupleIndependent
  bool block_independent = false;  ///< core/jaccard.h IsBlockIndependent
};

/// \brief Computes the hardness statistics of a validated tree. One O(N)
/// pass plus the two independence shape checks.
TreeHardness ComputeTreeHardness(const AndXorTree& tree);

}  // namespace cpdb

#endif  // CPDB_CORE_HARDNESS_H_

// Copyright 2026 The ConsensusDB Authors
//
// Consensus worlds under the symmetric difference distance (Section 4.1).
// The mean world is the set of tuple alternatives with marginal probability
// above 1/2 (Theorem 2). For and/xor trees the paper's Corollary 1 states
// the same set is realizable as a possible world; we implement the median
// as an exact min-cost dynamic program over the tree, which also resolves
// the probability-exactly-1/2 tie cases where the literal {p > 1/2} set can
// have probability zero (e.g. a XOR with two 0.5 children).

#ifndef CPDB_CORE_SET_CONSENSUS_H_
#define CPDB_CORE_SET_CONSENSUS_H_

#include <vector>

#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief E[d_Delta(S, pw)] for a fixed leaf set S: each leaf in S
/// contributes Pr(absent), each leaf outside contributes Pr(present). The
/// objective both consensus answers below minimize — over all sets for the
/// mean, over possible worlds for the median.
///
/// Complexity: O(L) for L leaves, after the O(N)-node marginal pass.
double ExpectedSymDiffDistance(const AndXorTree& tree,
                               const std::vector<NodeId>& world);

/// \brief The mean world under symmetric difference (Theorem 2): all leaves
/// with marginal probability > 1/2, as sorted NodeIds.
///
/// Paper semantics: the *mean* answer minimizes E[d_Delta(S, pw)] over
/// arbitrary leaf sets S — the set analogue of an expected value, and NOT
/// necessarily a realizable world (contrast MedianWorldSymDiff). It keeps
/// exactly the tuples more likely present than absent, the set-consensus
/// analogue of ranking by expected rank rather than by the single most
/// probable outcome.
///
/// Complexity: O(N) for N tree nodes (one marginal pass plus a filter).
std::vector<NodeId> MeanWorldSymDiff(const AndXorTree& tree);

/// \brief The median world under symmetric difference (Corollary 1): a
/// possible world (positive probability) minimizing the expected distance.
///
/// Paper semantics: the *median* answer constrains the minimizer to the
/// support of the distribution — a realizable ("most central", not
/// most-probable) world. By Corollary 1 its objective value coincides with
/// the unrestricted mean on and/xor trees, but ties at probability exactly
/// 1/2 can force a different witness set.
///
/// Exact for every and/xor tree via a min-cost DP: minimizing
/// E[d_Delta(S, pw)] = sum_l Pr(l) + sum_{l in S} (1 - 2 Pr(l)) over possible
/// worlds S decomposes over the tree (AND sums children minima; XOR takes
/// the cheapest positive-probability option, including "nothing" when the
/// leftover mass is positive).
///
/// Complexity: O(N) for N tree nodes (one bottom-up DP pass).
std::vector<NodeId> MedianWorldSymDiff(const AndXorTree& tree);

// -- Marginal-parameterized forms ------------------------------------------
//
// The three functions above each start from tree.LeafMarginals() — the only
// super-constant-per-leaf work on these O(N) paths. The variants below take
// the marginal vector (indexed by NodeId, as produced by LeafMarginals() or
// by per-leaf AndXorTree::LeafMarginal calls) as an argument, so the engine
// can compute the per-leaf folds across its thread pool and keep the cheap
// filter / DP / sum on the calling thread. Each wrapper above is exactly
// `FromMarginals(tree, tree.LeafMarginals(), ...)`.

/// \brief MeanWorldSymDiff from precomputed leaf marginals.
std::vector<NodeId> MeanWorldSymDiffFromMarginals(
    const AndXorTree& tree, const std::vector<double>& marginal);

/// \brief MedianWorldSymDiff from precomputed leaf marginals.
std::vector<NodeId> MedianWorldSymDiffFromMarginals(
    const AndXorTree& tree, const std::vector<double>& marginal);

/// \brief ExpectedSymDiffDistance from precomputed leaf marginals.
double ExpectedSymDiffDistanceFromMarginals(
    const AndXorTree& tree, const std::vector<double>& marginal,
    const std::vector<NodeId>& world);

}  // namespace cpdb

#endif  // CPDB_CORE_SET_CONSENSUS_H_

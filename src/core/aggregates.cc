// Copyright 2026 The ConsensusDB Authors

#include "core/aggregates.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "matching/min_cost_flow.h"

namespace cpdb {

Status ValidateGroupBy(const GroupByInstance& instance) {
  if (instance.probs.empty()) {
    return Status::InvalidArgument("group-by instance has no tuples");
  }
  size_t m = instance.probs[0].size();
  if (m == 0) return Status::InvalidArgument("group-by instance has no groups");
  for (size_t i = 0; i < instance.probs.size(); ++i) {
    if (instance.probs[i].size() != m) {
      return Status::InvalidArgument("ragged probability matrix");
    }
    double row = 0.0;
    for (double p : instance.probs[i]) {
      if (p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("probability out of [0,1] in row " +
                                       std::to_string(i));
      }
      row += p;
    }
    if (row > 1.0 + 1e-9) {
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " sums to " + std::to_string(row) + " > 1");
    }
  }
  return Status::OK();
}

Result<GroupByInstance> GroupByInstanceFromTree(
    const AndXorTree& tree, const std::vector<double>& leaf_marginals) {
  // Accumulate (key, label) marginal mass in DFS leaf order — the exact
  // accumulation order the offline CLI historically used, so the instance
  // (and everything downstream of it) is bitwise-stable.
  std::map<KeyId, std::map<int32_t, double>> rows;
  int32_t max_label = -1;
  for (NodeId l : tree.LeafIds()) {
    const TupleAlternative& alt = tree.node(l).leaf;
    if (alt.label < 0) {
      return Status::InvalidArgument(
          "aggregate requires a label on every alternative (key " +
          std::to_string(alt.key) + " has none)");
    }
    rows[alt.key][alt.label] += leaf_marginals[static_cast<size_t>(l)];
    max_label = std::max(max_label, alt.label);
  }
  GroupByInstance instance;
  for (const auto& [key, labels] : rows) {
    std::vector<double> row(static_cast<size_t>(max_label) + 1, 0.0);
    for (const auto& [label, p] : labels) row[static_cast<size_t>(label)] = p;
    instance.probs.push_back(std::move(row));
  }
  return instance;
}

std::vector<double> MeanAggregate(const GroupByInstance& instance) {
  std::vector<double> mean(static_cast<size_t>(instance.num_groups()), 0.0);
  for (const auto& row : instance.probs) {
    for (size_t j = 0; j < row.size(); ++j) mean[j] += row[j];
  }
  return mean;
}

double ExpectedSquaredDistance(const GroupByInstance& instance,
                               const std::vector<double>& x) {
  std::vector<double> mean = MeanAggregate(instance);
  double total = 0.0;
  for (size_t j = 0; j < mean.size(); ++j) {
    double var = 0.0;
    for (const auto& row : instance.probs) {
      var += row[j] * (1.0 - row[j]);
    }
    double diff = mean[j] - x[j];
    total += var + diff * diff;
  }
  return total;
}

Result<std::vector<int64_t>> ClosestPossibleAggregate(
    const GroupByInstance& instance) {
  CPDB_RETURN_NOT_OK(ValidateGroupBy(instance));
  const int n = instance.num_tuples();
  const int m = instance.num_groups();
  std::vector<double> mean = MeanAggregate(instance);

  // Network: source -> tuple_i (cap 1) -> group_j (where p_ij > 0) -> sink
  // via a chain of unit edges with convex marginal costs
  //   marginal(j, c) = (c - mean_j)^2 - (c-1 - mean_j)^2 = 2c - 1 - 2 mean_j
  // so that the total group cost telescopes to (r_j - mean_j)^2 - mean_j^2.
  // Tuples that can be absent route to an "absent" node with zero cost.
  // All costs are shifted by a constant M per unit so they are non-negative
  // (every maximal flow carries exactly n units into the sink, making the
  // shift a constant offset that cannot change the argmin).
  double shift = 1.0;
  for (int j = 0; j < m; ++j) shift = std::max(shift, 2.0 * mean[static_cast<size_t>(j)] + 1.0);

  const int source = 0;
  const int sink = 1;
  const int tuple_base = 2;
  const int group_base = tuple_base + n;
  const int absent_node = group_base + m;
  MinCostFlow flow(absent_node + 1);

  for (int i = 0; i < n; ++i) {
    flow.AddEdge(source, tuple_base + i, 1, 0.0);
    double row_sum = 0.0;
    for (int j = 0; j < m; ++j) {
      double p = instance.probs[static_cast<size_t>(i)][static_cast<size_t>(j)];
      row_sum += p;
      if (p > 0.0) flow.AddEdge(tuple_base + i, group_base + j, 1, 0.0);
    }
    if (row_sum < 1.0 - 1e-12) {
      flow.AddEdge(tuple_base + i, absent_node, 1, 0.0);
    }
  }
  // Count how many tuples can reach each group to cap the unit chain.
  std::vector<int> group_cap(static_cast<size_t>(m), 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      if (instance.probs[static_cast<size_t>(i)][static_cast<size_t>(j)] > 0.0) {
        ++group_cap[static_cast<size_t>(j)];
      }
    }
  }
  // first_group_edge[j] is the id of the first unit edge of group j's chain.
  std::vector<int> first_group_edge(static_cast<size_t>(m), -1);
  std::vector<int> chain_len(static_cast<size_t>(m), 0);
  for (int j = 0; j < m; ++j) {
    chain_len[static_cast<size_t>(j)] = group_cap[static_cast<size_t>(j)];
    for (int c = 1; c <= group_cap[static_cast<size_t>(j)]; ++c) {
      double marginal = 2.0 * c - 1.0 - 2.0 * mean[static_cast<size_t>(j)] + shift;
      int id = flow.AddEdge(group_base + j, sink, 1, marginal);
      if (c == 1) first_group_edge[static_cast<size_t>(j)] = id;
    }
  }
  // The absent route must pay the same per-unit shift as the group chains;
  // otherwise the shift would subsidize answers that drop more tuples.
  flow.AddEdge(absent_node, sink, n, shift);

  CPDB_ASSIGN_OR_RETURN(MinCostFlow::Solution solution,
                        flow.Solve(source, sink, n));
  if (solution.flow != n) {
    return Status::Infeasible("could not route all tuples (unexpected)");
  }

  std::vector<int64_t> counts(static_cast<size_t>(m), 0);
  for (int j = 0; j < m; ++j) {
    for (int c = 0; c < chain_len[static_cast<size_t>(j)]; ++c) {
      counts[static_cast<size_t>(j)] +=
          flow.Flow(first_group_edge[static_cast<size_t>(j)] + c);
    }
  }
  return counts;
}

namespace {

// Recursively enumerates assignments for ExactMedianAggregate. `choice[i]`
// in [0, m] where m means absent.
void EnumerateAssignments(const GroupByInstance& instance, int i,
                          std::vector<int>* choice, double prob,
                          std::vector<std::vector<int64_t>>* answers,
                          std::vector<double>* answer_probs,
                          int64_t* budget) {
  if (*budget <= 0) return;
  const int n = instance.num_tuples();
  const int m = instance.num_groups();
  if (i == n) {
    --*budget;
    std::vector<int64_t> counts(static_cast<size_t>(m), 0);
    for (int t = 0; t < n; ++t) {
      if ((*choice)[static_cast<size_t>(t)] < m) {
        ++counts[static_cast<size_t>((*choice)[static_cast<size_t>(t)])];
      }
    }
    // Linear scan for an existing identical answer (instances are tiny).
    for (size_t a = 0; a < answers->size(); ++a) {
      if ((*answers)[a] == counts) {
        (*answer_probs)[a] += prob;
        return;
      }
    }
    answers->push_back(std::move(counts));
    answer_probs->push_back(prob);
    return;
  }
  double row_sum = 0.0;
  for (int j = 0; j < m; ++j) {
    double p = instance.probs[static_cast<size_t>(i)][static_cast<size_t>(j)];
    row_sum += p;
    if (p <= 0.0) continue;
    (*choice)[static_cast<size_t>(i)] = j;
    EnumerateAssignments(instance, i + 1, choice, prob * p, answers,
                         answer_probs, budget);
  }
  if (row_sum < 1.0 - 1e-12) {
    (*choice)[static_cast<size_t>(i)] = m;
    EnumerateAssignments(instance, i + 1, choice, prob * (1.0 - row_sum),
                         answers, answer_probs, budget);
  }
}

}  // namespace

Result<std::vector<int64_t>> ExactMedianAggregate(
    const GroupByInstance& instance, int64_t max_assignments) {
  CPDB_RETURN_NOT_OK(ValidateGroupBy(instance));
  std::vector<std::vector<int64_t>> answers;
  std::vector<double> answer_probs;
  std::vector<int> choice(static_cast<size_t>(instance.num_tuples()), -1);
  int64_t budget = max_assignments;
  EnumerateAssignments(instance, 0, &choice, 1.0, &answers, &answer_probs,
                       &budget);
  if (budget <= 0) {
    return Status::ResourceExhausted("too many assignments to enumerate");
  }
  if (answers.empty()) return Status::Infeasible("no possible answers");

  // E[d(candidate, r)] = sum over possible answers of prob * squared dist.
  double best = std::numeric_limits<double>::infinity();
  size_t best_idx = 0;
  for (size_t a = 0; a < answers.size(); ++a) {
    double expected = 0.0;
    for (size_t b = 0; b < answers.size(); ++b) {
      double d = 0.0;
      for (size_t j = 0; j < answers[a].size(); ++j) {
        double diff = static_cast<double>(answers[a][j] - answers[b][j]);
        d += diff * diff;
      }
      expected += answer_probs[b] * d;
    }
    if (expected < best) {
      best = expected;
      best_idx = a;
    }
  }
  return answers[best_idx];
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Mean Top-k answers under the intersection metric d_I (Section 5.3 of the
// paper): exact optimization via an assignment problem between Top-k
// positions and tuples, and the H_k-approximation obtained by ranking tuples
// by the Upsilon_H parameterized ranking function
//   Upsilon_H(t) = sum_{i=1..k} Pr(r(t) <= i) / i.

#ifndef CPDB_CORE_TOPK_INTERSECTION_H_
#define CPDB_CORE_TOPK_INTERSECTION_H_

#include <vector>

#include "common/result.h"
#include "core/rank_distribution.h"
#include "core/topk_symdiff.h"

namespace cpdb {

/// \brief E[d_I(answer, topk(pw))] =
/// (1/k) sum_{i=1..k} (1/2i)(|answer^i| + sum_t Pr(r(t)<=i)
///                           - 2 sum_{t in answer^i} Pr(r(t)<=i)).
double ExpectedTopKIntersection(const RankDistribution& dist,
                                const std::vector<KeyId>& answer);

/// \brief The profit of placing tuple `key` at position j (1-based):
/// sum_{i=j..k} Pr(r(key) <= i) / i. The exact mean answer maximizes the
/// total profit of a position->tuple assignment.
double IntersectionPositionProfit(const RankDistribution& dist, KeyId key,
                                  int position);

/// \brief Exact mean Top-k answer under d_I via the Hungarian algorithm
/// (O(n k^2) with potentials). Requires at least k keys.
Result<TopKResult> MeanTopKIntersectionExact(const RankDistribution& dist);

/// \brief The assignment profits of one candidate tuple: entry j - 1 is
/// IntersectionPositionProfit(dist, key, j) for positions j = 1..k — the
/// per-candidate unit Engine::ConsensusTopK fans across its thread pool.
std::vector<double> IntersectionProfitColumn(const RankDistribution& dist,
                                             KeyId key);

/// \brief MeanTopKIntersectionExact from externally computed candidate
/// columns (columns[t] = IntersectionProfitColumn(dist, dist.keys()[t]));
/// shared by the sequential wrapper and the engine's parallel path. Fails on
/// a column count or length mismatch.
Result<TopKResult> MeanTopKIntersectionExactFromColumns(
    const RankDistribution& dist,
    const std::vector<std::vector<double>>& columns);

/// \brief Upsilon_H(t) = sum_{i=1..k} Pr(r(t) <= i)/i (a special case of
/// the parameterized ranking functions of Li-Saha-Deshpande).
double UpsilonH(const RankDistribution& dist, KeyId key);

/// \brief H_k-approximate mean answer: the k tuples with the largest
/// Upsilon_H values, in that order. The paper proves
/// A(approx) >= A(optimal) / H_k for the profit objective A.
TopKResult MeanTopKIntersectionApprox(const RankDistribution& dist);

}  // namespace cpdb

#endif  // CPDB_CORE_TOPK_INTERSECTION_H_

// Copyright 2026 The ConsensusDB Authors

#include "core/monte_carlo.h"

#include <cmath>

#include "core/jaccard.h"
#include "core/topk_metrics.h"
#include "model/possible_worlds.h"

namespace cpdb {

McEstimate FinishEstimate(const Welford& acc) {
  McEstimate e;
  e.mean = acc.mean;
  e.samples = static_cast<int>(acc.n);
  if (acc.n > 1) {
    double variance = acc.m2 / static_cast<double>(acc.n - 1);
    e.std_error = std::sqrt(variance / static_cast<double>(acc.n));
  }
  return e;
}

McEstimate EstimateOverWorlds(
    const AndXorTree& tree, int num_samples, Rng* rng,
    const std::function<double(const std::vector<NodeId>&)>& f) {
  Welford acc;
  for (int s = 0; s < num_samples; ++s) {
    acc.Add(f(SampleWorld(tree, rng)));
  }
  return FinishEstimate(acc);
}

McEstimate EstimateOverWorldsAdaptive(
    const AndXorTree& tree, double target_std_error, int max_samples,
    Rng* rng, const std::function<double(const std::vector<NodeId>&)>& f,
    int batch) {
  Welford acc;
  while (acc.n < max_samples) {
    for (int s = 0; s < batch && acc.n < max_samples; ++s) {
      acc.Add(f(SampleWorld(tree, rng)));
    }
    McEstimate current = FinishEstimate(acc);
    if (acc.n >= 2 * batch && current.std_error <= target_std_error) break;
  }
  return FinishEstimate(acc);
}

McEstimate McExpectedTopKDistance(const AndXorTree& tree,
                                  const std::vector<KeyId>& answer, int k,
                                  TopKMetric metric, int num_samples,
                                  Rng* rng) {
  return EstimateOverWorlds(
      tree, num_samples, rng, [&](const std::vector<NodeId>& world) {
        return TopKListDistance(answer, TopKOfWorld(tree, world, k), k,
                                metric);
      });
}

McEstimate McExpectedSetDistance(const AndXorTree& tree,
                                 const std::vector<NodeId>& world,
                                 SetMetric metric, int num_samples, Rng* rng) {
  return EstimateOverWorlds(
      tree, num_samples, rng, [&](const std::vector<NodeId>& sampled) {
        switch (metric) {
          case SetMetric::kSymDiff: {
            size_t i = 0, j = 0, inter = 0;
            while (i < world.size() && j < sampled.size()) {
              if (world[i] == sampled[j]) {
                ++inter;
                ++i;
                ++j;
              } else if (world[i] < sampled[j]) {
                ++i;
              } else {
                ++j;
              }
            }
            return static_cast<double>(world.size() + sampled.size() -
                                       2 * inter);
          }
          case SetMetric::kJaccard:
            return JaccardDistance(world, sampled);
        }
        return 0.0;
      });
}

McEstimate McExpectedClusteringDistance(const AndXorTree& tree,
                                        const ClusteringAnswer& answer,
                                        int num_samples, Rng* rng) {
  std::vector<KeyId> keys = tree.Keys();
  return EstimateOverWorlds(
      tree, num_samples, rng, [&](const std::vector<NodeId>& world) {
        return ClusteringDistance(answer,
                                  ClusteringOfWorld(tree, keys, world));
      });
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "core/clustering.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "core/jaccard.h"  // IsBlockIndependent
#include "model/generating_function.h"
#include "model/possible_worlds.h"
#include "poly/poly1.h"

namespace cpdb {

namespace {

// Generic (correlation-aware) w_ij via generating functions: x tags the
// leaves of both keys carrying label a; [x^2] is Pr(i.A = a and j.A = a).
// Both-absent: x tags every leaf of either key; [x^0] is Pr(both absent).
double PairCoClusterGeneric(const AndXorTree& tree, KeyId ki, KeyId kj) {
  std::set<int32_t> labels_i, labels_j;
  for (NodeId l : tree.LeafIds()) {
    const TupleAlternative& alt = tree.node(l).leaf;
    if (alt.key == ki) labels_i.insert(alt.label);
    if (alt.key == kj) labels_j.insert(alt.label);
  }
  double w = 0.0;
  auto make_const = [](double c) { return Poly1::Constant(2, c); };
  for (int32_t a : labels_i) {
    if (labels_j.count(a) == 0) continue;
    auto leaf_poly = [&](NodeId id) {
      const TupleAlternative& alt = tree.node(id).leaf;
      if ((alt.key == ki || alt.key == kj) && alt.label == a) {
        return Poly1::Monomial(2, 1, 1.0);
      }
      return Poly1::Constant(2, 1.0);
    };
    Poly1 f = EvalGeneratingFunction<Poly1>(tree, leaf_poly, make_const);
    w += f.Coeff(2);
  }
  // Both absent.
  auto leaf_poly_absent = [&](NodeId id) {
    const TupleAlternative& alt = tree.node(id).leaf;
    if (alt.key == ki || alt.key == kj) return Poly1::Monomial(2, 1, 1.0);
    return Poly1::Constant(2, 1.0);
  };
  Poly1 f = EvalGeneratingFunction<Poly1>(tree, leaf_poly_absent, make_const);
  w += f.Coeff(0);
  return w;
}

}  // namespace

Result<ClusteringProblem> ClusteringProblem::FromTree(const AndXorTree& tree) {
  for (NodeId l : tree.LeafIds()) {
    if (tree.node(l).leaf.label < 0) {
      return Status::InvalidArgument(
          "clustering requires a non-negative label on every leaf");
    }
  }
  ClusteringProblem problem;
  problem.keys_ = tree.Keys();
  size_t n = problem.keys_.size();
  problem.w_.assign(n, std::vector<double>(n, 0.0));

  if (IsBlockIndependent(tree)) {
    // Closed form: per-key label marginals; independence across keys.
    std::vector<double> marginal = tree.LeafMarginals();
    std::map<KeyId, std::map<int32_t, double>> label_probs;
    std::map<KeyId, double> present;
    for (NodeId l : tree.LeafIds()) {
      const TupleAlternative& alt = tree.node(l).leaf;
      label_probs[alt.key][alt.label] += marginal[static_cast<size_t>(l)];
      present[alt.key] += marginal[static_cast<size_t>(l)];
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const auto& li = label_probs[problem.keys_[i]];
        const auto& lj = label_probs[problem.keys_[j]];
        double w = (1.0 - present[problem.keys_[i]]) *
                   (1.0 - present[problem.keys_[j]]);
        for (const auto& [label, pi] : li) {
          auto it = lj.find(label);
          if (it != lj.end()) w += pi * it->second;
        }
        problem.w_[i][j] = problem.w_[j][i] = w;
      }
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double w =
            PairCoClusterGeneric(tree, problem.keys_[i], problem.keys_[j]);
        problem.w_[i][j] = problem.w_[j][i] = w;
      }
    }
  }
  return problem;
}

double ClusteringProblem::Expected(const ClusteringAnswer& answer) const {
  double expected = 0.0;
  for (size_t i = 0; i < keys_.size(); ++i) {
    for (size_t j = i + 1; j < keys_.size(); ++j) {
      bool together = answer.cluster_of[i] == answer.cluster_of[j];
      expected += together ? (1.0 - w_[i][j]) : w_[i][j];
    }
  }
  return expected;
}

ClusteringAnswer PivotClustering(const ClusteringProblem& problem, Rng* rng) {
  int n = problem.num_keys();
  ClusteringAnswer answer;
  answer.cluster_of.assign(static_cast<size_t>(n), -1);
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  rng->Shuffle(&order);
  int next_cluster = 0;
  for (int pivot : order) {
    if (answer.cluster_of[static_cast<size_t>(pivot)] >= 0) continue;
    int cluster = next_cluster++;
    answer.cluster_of[static_cast<size_t>(pivot)] = cluster;
    for (int j = 0; j < n; ++j) {
      if (answer.cluster_of[static_cast<size_t>(j)] >= 0) continue;
      if (problem.W(pivot, j) >= 0.5) {
        answer.cluster_of[static_cast<size_t>(j)] = cluster;
      }
    }
  }
  return answer;
}

ClusteringAnswer LocalSearchClustering(const ClusteringProblem& problem,
                                       const ClusteringAnswer& start,
                                       int max_rounds) {
  int n = problem.num_keys();
  ClusteringAnswer answer = start;
  // Delta of moving key i into cluster c (possibly a fresh one): recompute
  // i's pairwise contributions.
  auto contribution = [&](int i, int cluster) {
    double total = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      bool together = answer.cluster_of[static_cast<size_t>(j)] == cluster;
      total += together ? (1.0 - problem.W(i, j)) : problem.W(i, j);
    }
    return total;
  };
  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (int i = 0; i < n; ++i) {
      int current = answer.cluster_of[static_cast<size_t>(i)];
      double current_cost = contribution(i, current);
      // Candidate targets: every existing cluster plus a fresh singleton id.
      std::set<int> targets(answer.cluster_of.begin(), answer.cluster_of.end());
      int fresh = *targets.rbegin() + 1;
      targets.insert(fresh);
      for (int c : targets) {
        if (c == current) continue;
        double cost = contribution(i, c);
        if (cost < current_cost - 1e-12) {
          answer.cluster_of[static_cast<size_t>(i)] = c;
          current_cost = cost;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return answer;
}

Result<ClusteringAnswer> ExactClustering(const ClusteringProblem& problem,
                                         int max_keys) {
  int n = problem.num_keys();
  if (n > max_keys) {
    return Status::ResourceExhausted("too many keys for exact clustering");
  }
  ClusteringAnswer best;
  best.cluster_of.assign(static_cast<size_t>(n), 0);
  double best_cost = std::numeric_limits<double>::infinity();
  // Enumerate set partitions in restricted-growth form.
  std::vector<int> rg(static_cast<size_t>(n), 0);
  while (true) {
    ClusteringAnswer candidate;
    candidate.cluster_of = rg;
    double cost = problem.Expected(candidate);
    if (cost < best_cost) {
      best_cost = cost;
      best = candidate;
    }
    // Next restricted-growth string.
    int i = n - 1;
    for (; i > 0; --i) {
      int max_prefix = 0;
      for (int j = 0; j < i; ++j) max_prefix = std::max(max_prefix, rg[static_cast<size_t>(j)]);
      if (rg[static_cast<size_t>(i)] <= max_prefix) {
        ++rg[static_cast<size_t>(i)];
        for (int j = i + 1; j < n; ++j) rg[static_cast<size_t>(j)] = 0;
        break;
      }
    }
    if (i == 0) break;
  }
  return best;
}

ClusteringAnswer ClusteringOfWorld(const AndXorTree& tree,
                                   const std::vector<KeyId>& problem_keys,
                                   const std::vector<NodeId>& world) {
  std::map<KeyId, int32_t> label_of;
  for (NodeId l : world) {
    const TupleAlternative& alt = tree.node(l).leaf;
    label_of[alt.key] = alt.label;
  }
  ClusteringAnswer answer;
  answer.cluster_of.reserve(problem_keys.size());
  // Cluster id = label for present keys; one shared id for absent keys.
  int32_t absent_cluster = -1;
  for (const auto& [key, label] : label_of) {
    absent_cluster = std::max(absent_cluster, label);
  }
  ++absent_cluster;
  for (KeyId key : problem_keys) {
    auto it = label_of.find(key);
    answer.cluster_of.push_back(it == label_of.end() ? absent_cluster
                                                     : it->second);
  }
  return answer;
}

ClusteringAnswer BestOfWorldsClustering(const AndXorTree& tree,
                                        const ClusteringProblem& problem,
                                        int num_samples, Rng* rng) {
  ClusteringAnswer best;
  best.cluster_of.assign(static_cast<size_t>(problem.num_keys()), 0);
  double best_cost = problem.Expected(best);
  for (int s = 0; s < num_samples; ++s) {
    std::vector<NodeId> world = SampleWorld(tree, rng);
    ClusteringAnswer candidate = ClusteringOfWorld(tree, problem.keys(), world);
    double cost = problem.Expected(candidate);
    if (cost < best_cost) {
      best_cost = cost;
      best = candidate;
    }
  }
  return best;
}

}  // namespace cpdb

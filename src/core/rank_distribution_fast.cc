// Copyright 2026 The ConsensusDB Authors

#include "core/rank_distribution_fast.h"

#include <algorithm>
#include <vector>

#include "core/jaccard.h"  // IsBlockIndependent
#include "poly/poly1.h"

namespace cpdb {

namespace {

// A segment tree whose leaves hold one truncated polynomial per block and
// whose root holds the product of them all. Point updates recompute the
// O(log m) ancestors, each via one truncated multiplication.
class PolyProductTree {
 public:
  PolyProductTree(int num_blocks, int max_degree)
      : max_degree_(max_degree), size_(1) {
    while (size_ < num_blocks) size_ *= 2;
    nodes_.assign(static_cast<size_t>(2 * size_),
                  Poly1::Constant(max_degree, 1.0));
  }

  void Update(int block, Poly1 factor) {
    int pos = size_ + block;
    nodes_[static_cast<size_t>(pos)] = std::move(factor);
    for (pos /= 2; pos >= 1; pos /= 2) {
      nodes_[static_cast<size_t>(pos)] =
          nodes_[static_cast<size_t>(2 * pos)] *
          nodes_[static_cast<size_t>(2 * pos + 1)];
    }
  }

  const Poly1& Root() const { return nodes_[1]; }

 private:
  int max_degree_;
  int size_;
  std::vector<Poly1> nodes_;
};

struct ScanAlternative {
  double score;
  double prob;
  int block;
  KeyId key;
};

}  // namespace

Result<RankDistribution> ComputeRankDistributionFast(const AndXorTree& tree,
                                                     int k) {
  if (!IsBlockIndependent(tree)) {
    return Status::InvalidArgument(
        "ComputeRankDistributionFast requires a block-independent tree; use "
        "ComputeRankDistribution for general and/xor trees");
  }
  const TreeNode& root = tree.node(tree.root());
  std::vector<NodeId> blocks = root.kind == NodeKind::kXor
                                   ? std::vector<NodeId>{tree.root()}
                                   : root.children;
  const int m = static_cast<int>(blocks.size());

  std::vector<ScanAlternative> scan;
  RankDistributionBuilder builder(k);
  for (int j = 0; j < m; ++j) {
    const TreeNode& block = tree.node(blocks[static_cast<size_t>(j)]);
    for (size_t c = 0; c < block.children.size(); ++c) {
      const TupleAlternative& alt =
          tree.node(block.children[c]).leaf;
      builder.EnsureKey(alt.key);
      scan.push_back({alt.score, block.edge_probs[c], j, alt.key});
    }
  }
  // Decreasing score order: when the scan reaches an alternative, every
  // block factor already accounts for exactly the higher-scoring mass.
  std::sort(scan.begin(), scan.end(),
            [](const ScanAlternative& a, const ScanAlternative& b) {
              return a.score > b.score;
            });

  PolyProductTree product(m, k);
  std::vector<double> mass_above(static_cast<size_t>(m), 0.0);

  for (const ScanAlternative& alt : scan) {
    if (alt.prob > 0.0) {
      // Mask the target's own block (its key-mates are mutually exclusive
      // with the target and never count toward its rank).
      double saved_mass = mass_above[static_cast<size_t>(alt.block)];
      product.Update(alt.block, Poly1::Constant(k, 1.0));
      const Poly1& others = product.Root();
      for (int i = 1; i <= k; ++i) {
        builder.Add(alt.key, i, alt.prob * others.Coeff(i - 1));
      }
      product.Update(alt.block,
                     Poly1::Affine(k, 1.0 - saved_mass, saved_mass));
    }
    // The alternative's mass now counts as "above threshold" for everything
    // scanned later (strictly lower scores; scores are tie-free).
    mass_above[static_cast<size_t>(alt.block)] += alt.prob;
    double q = mass_above[static_cast<size_t>(alt.block)];
    product.Update(alt.block, Poly1::Affine(k, 1.0 - q, q));
  }
  return std::move(builder).Build();
}

}  // namespace cpdb

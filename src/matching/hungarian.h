// Copyright 2026 The ConsensusDB Authors
//
// Dense rectangular assignment problem solver (Hungarian algorithm with
// potentials, the Jonker-Volgenant formulation; O(rows^2 * cols)).
//
// The paper reduces the mean Top-k answer under the intersection metric
// (Section 5.3) and under Spearman's footrule (Section 5.4) to an assignment
// problem between the k result positions and the n candidate tuples. The
// paper cites Micali-Vazirani general matching; for these dense bipartite
// instances the Hungarian algorithm is simpler and at least as fast in
// practice (see DESIGN.md, substitution notes).

#ifndef CPDB_MATCHING_HUNGARIAN_H_
#define CPDB_MATCHING_HUNGARIAN_H_

#include <vector>

#include "common/result.h"

namespace cpdb {

/// \brief Solution of an assignment problem.
struct Assignment {
  /// row_to_col[i] is the column assigned to row i (always valid: the solver
  /// requires rows <= cols, so every row is matched).
  std::vector<int> row_to_col;
  /// Total cost (for SolveAssignmentMin) or profit (for SolveAssignmentMax)
  /// of the returned assignment.
  double total = 0.0;
};

/// \brief Minimizes total cost over all assignments of each row to a
/// distinct column. Requires a rectangular matrix with rows <= cols and at
/// least one row.
///
/// Pure function of `cost` (no shared or global state), so distinct solves
/// may run concurrently — Engine::EvaluateConsensusBatch fans one solve per
/// footrule/intersection query across its thread pool.
Result<Assignment> SolveAssignmentMin(
    const std::vector<std::vector<double>>& cost);

/// \brief Maximizes total profit; same preconditions (and the same
/// concurrency guarantee) as SolveAssignmentMin.
Result<Assignment> SolveAssignmentMax(
    const std::vector<std::vector<double>>& profit);

}  // namespace cpdb

#endif  // CPDB_MATCHING_HUNGARIAN_H_

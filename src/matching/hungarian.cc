// Copyright 2026 The ConsensusDB Authors

#include "matching/hungarian.h"

#include <algorithm>
#include <limits>

namespace cpdb {

Result<Assignment> SolveAssignmentMin(
    const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());  // rows
  if (n == 0) return Status::InvalidArgument("assignment needs >= 1 row");
  const int m = static_cast<int>(cost[0].size());  // cols
  if (m < n) {
    return Status::InvalidArgument("assignment requires rows <= cols");
  }
  for (const auto& row : cost) {
    if (static_cast<int>(row.size()) != m) {
      return Status::InvalidArgument("assignment matrix is ragged");
    }
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // 1-based arrays per the classical formulation. p[j] is the row matched to
  // column j (0 = free); u/v are dual potentials; way[j] backtracks the
  // alternating tree.
  std::vector<double> u(static_cast<size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(m) + 1, 0.0);
  std::vector<int> p(static_cast<size_t>(m) + 1, 0);
  std::vector<int> way(static_cast<size_t>(m) + 1, 0);
  // Scratch for one augmentation, reset (not reallocated) per row: the
  // solver sits on the engine's per-query hot path.
  std::vector<double> minv(static_cast<size_t>(m) + 1, kInf);
  std::vector<bool> used(static_cast<size_t>(m) + 1, false);

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::fill(minv.begin(), minv.end(), kInf);
    std::fill(used.begin(), used.end(), false);
    do {
      used[static_cast<size_t>(j0)] = true;
      int i0 = p[static_cast<size_t>(j0)];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= m; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        double cur = cost[static_cast<size_t>(i0 - 1)][static_cast<size_t>(j - 1)] -
                     u[static_cast<size_t>(i0)] - v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= m; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(p[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<size_t>(j0)] != 0);
    // Augment along the alternating path back to the root.
    do {
      int j1 = way[static_cast<size_t>(j0)];
      p[static_cast<size_t>(j0)] = p[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  Assignment result;
  result.row_to_col.assign(static_cast<size_t>(n), -1);
  for (int j = 1; j <= m; ++j) {
    int i = p[static_cast<size_t>(j)];
    if (i > 0) result.row_to_col[static_cast<size_t>(i - 1)] = j - 1;
  }
  result.total = 0.0;
  for (int i = 0; i < n; ++i) {
    result.total +=
        cost[static_cast<size_t>(i)][static_cast<size_t>(result.row_to_col[static_cast<size_t>(i)])];
  }
  return result;
}

Result<Assignment> SolveAssignmentMax(
    const std::vector<std::vector<double>>& profit) {
  std::vector<std::vector<double>> cost(profit.size());
  for (size_t i = 0; i < profit.size(); ++i) {
    cost[i].resize(profit[i].size());
    for (size_t j = 0; j < profit[i].size(); ++j) cost[i][j] = -profit[i][j];
  }
  CPDB_ASSIGN_OR_RETURN(Assignment a, SolveAssignmentMin(cost));
  a.total = -a.total;
  return a;
}

}  // namespace cpdb

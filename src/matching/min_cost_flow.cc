// Copyright 2026 The ConsensusDB Authors

#include "matching/min_cost_flow.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace cpdb {

MinCostFlow::MinCostFlow(int num_nodes) : num_nodes_(num_nodes) {
  adj_.resize(static_cast<size_t>(num_nodes));
}

int MinCostFlow::AddEdge(int from, int to, int64_t capacity, double cost) {
  int id = static_cast<int>(edges_.size());
  edges_.push_back({to, capacity, cost});
  edges_.push_back({from, 0, -cost});
  adj_[static_cast<size_t>(from)].push_back(id);
  adj_[static_cast<size_t>(to)].push_back(id + 1);
  return id / 2;
}

Result<MinCostFlow::Solution> MinCostFlow::Solve(int source, int sink,
                                                 int64_t flow_limit) {
  if (solved_) {
    return Status::InvalidArgument("MinCostFlow::Solve called twice");
  }
  solved_ = true;
  if (source < 0 || source >= num_nodes_ || sink < 0 || sink >= num_nodes_ ||
      source == sink) {
    return Status::InvalidArgument("bad source/sink");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  Solution solution;

  std::vector<double> dist;
  std::vector<int> pred_edge;
  std::vector<bool> in_queue;
  // SPFA iteration guard: more than num_nodes relaxations of one node means
  // a negative cycle, which violates the documented precondition.
  std::vector<int> relax_count;

  while (solution.flow < flow_limit) {
    dist.assign(static_cast<size_t>(num_nodes_), kInf);
    pred_edge.assign(static_cast<size_t>(num_nodes_), -1);
    in_queue.assign(static_cast<size_t>(num_nodes_), false);
    relax_count.assign(static_cast<size_t>(num_nodes_), 0);
    dist[static_cast<size_t>(source)] = 0.0;
    std::deque<int> queue = {source};
    in_queue[static_cast<size_t>(source)] = true;
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop_front();
      in_queue[static_cast<size_t>(u)] = false;
      for (int eid : adj_[static_cast<size_t>(u)]) {
        const Edge& e = edges_[static_cast<size_t>(eid)];
        if (e.cap <= 0) continue;
        double nd = dist[static_cast<size_t>(u)] + e.cost;
        if (nd < dist[static_cast<size_t>(e.to)] - 1e-12) {
          dist[static_cast<size_t>(e.to)] = nd;
          pred_edge[static_cast<size_t>(e.to)] = eid;
          if (!in_queue[static_cast<size_t>(e.to)]) {
            if (++relax_count[static_cast<size_t>(e.to)] > num_nodes_ + 1) {
              return Status::InvalidArgument(
                  "negative cycle detected in flow network");
            }
            in_queue[static_cast<size_t>(e.to)] = true;
            queue.push_back(e.to);
          }
        }
      }
    }
    if (dist[static_cast<size_t>(sink)] == kInf) break;  // no augmenting path

    // Bottleneck along the shortest path.
    int64_t push = flow_limit - solution.flow;
    for (int v = sink; v != source;) {
      const Edge& e = edges_[static_cast<size_t>(pred_edge[static_cast<size_t>(v)])];
      push = std::min(push, e.cap);
      v = edges_[static_cast<size_t>(pred_edge[static_cast<size_t>(v)] ^ 1)].to;
    }
    for (int v = sink; v != source;) {
      int eid = pred_edge[static_cast<size_t>(v)];
      edges_[static_cast<size_t>(eid)].cap -= push;
      edges_[static_cast<size_t>(eid ^ 1)].cap += push;
      v = edges_[static_cast<size_t>(eid ^ 1)].to;
    }
    solution.flow += push;
    solution.cost += static_cast<double>(push) * dist[static_cast<size_t>(sink)];
  }
  return solution;
}

int64_t MinCostFlow::Flow(int edge_id) const {
  // Flow on forward edge i equals the residual capacity of its reverse edge.
  return edges_[static_cast<size_t>(edge_id * 2 + 1)].cap;
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Minimum-cost maximum-flow via successive shortest paths (SPFA). Used to
// find the median answer of group-by COUNT aggregates (Section 6.1 of the
// paper, Lemma 3 / Theorem 5): the r-matching whose count vector is closest
// to the mean vector.

#ifndef CPDB_MATCHING_MIN_COST_FLOW_H_
#define CPDB_MATCHING_MIN_COST_FLOW_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace cpdb {

/// \brief A directed flow network with per-edge capacity and cost.
///
/// Costs may be negative only if the initial residual network contains no
/// negative cycle; all library call sites shift costs to be non-negative
/// (see aggregates.cc), which makes successive shortest paths exact.
class MinCostFlow {
 public:
  explicit MinCostFlow(int num_nodes);

  /// \brief Adds an edge; returns its id, usable with Flow() after solving.
  int AddEdge(int from, int to, int64_t capacity, double cost);

  struct Solution {
    int64_t flow = 0;   ///< total flow pushed from s to t
    double cost = 0.0;  ///< total cost of that flow
  };

  /// \brief Pushes up to `flow_limit` units from s to t along successive
  /// shortest (by cost) augmenting paths. Call at most once per instance.
  Result<Solution> Solve(int source, int sink,
                         int64_t flow_limit = INT64_MAX);

  /// \brief Flow routed on edge `edge_id` (as returned by AddEdge).
  int64_t Flow(int edge_id) const;

  int num_nodes() const { return num_nodes_; }

 private:
  struct Edge {
    int to;
    int64_t cap;
    double cost;
  };

  // edges_[2i] is the forward edge for AddEdge call i; edges_[2i+1] is its
  // residual reverse edge with negated cost.
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> adj_;
  int num_nodes_;
  bool solved_ = false;
};

}  // namespace cpdb

#endif  // CPDB_MATCHING_MIN_COST_FLOW_H_

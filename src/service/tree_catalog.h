// Copyright 2026 The ConsensusDB Authors
//
// TreeCatalog — the serving layer's store of loaded trees, and the owner of
// the stack's TWO-LEVEL IDENTITY model:
//
//   name  ──►  ContentFp  ──►  StructKey  ──►  one shared canonical tree
//                                              + one shared FlatTree program
//
// ContentFp (common/hash.h) hashes the exact canonical serialization of the
// loaded tree — the wire-visible identity (protocol fingerprint= fields,
// name binding, AlreadyExists semantics, snapshot records). StructKey hashes
// the serialization of the tree's canonical ORIENTATION (model/canonical.h:
// commutative and/xor children sorted) — the dedup identity. Two loads that
// differ only in commutative child order get distinct ContentFps but one
// StructKey, and therefore share one tree handle, one compiled fold program,
// and (because caches key on StructKey) one set of cache lines.
//
// The catalog compiles the FlatTree program for each NEW shape exactly once
// at insert time; query paths reuse it via CatalogEntry::program, so the
// steady-state serve path never compiles. For a tree already in canonical
// orientation ContentFp and StructKey hash the same bytes and are therefore
// numerically equal — which is what keeps cache keys, shard routing, and
// hence wire transcripts unchanged for canonical inputs.

#ifndef CPDB_SERVICE_TREE_CATALOG_H_
#define CPDB_SERVICE_TREE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "model/and_xor_tree.h"
#include "model/flat_tree.h"

namespace cpdb {

/// \brief An immutable catalog entry: the shared tree plus both identities.
/// Handles remain valid after the catalog drops or replaces the name —
/// in-flight queries keep the tree and program alive through shared_ptrs.
///
/// `tree` is the CANONICAL ORIENTATION of the loaded content (not the
/// as-loaded child order): every query for any member of a commutative
/// permutation orbit runs over the same tree object, so duplicates return
/// byte-identical answers by construction.
struct CatalogEntry {
  std::string name;
  /// Wire-visible identity: Fnv1a64 over FormatTree of the loaded tree.
  ContentFp content_fp;
  /// Structural identity: Fnv1a64 over FormatTree of the canonical
  /// orientation. Shared by all commutative permutations of one shape.
  StructKey struct_key;
  /// The canonical orientation, shared per StructKey.
  std::shared_ptr<const AndXorTree> tree;
  /// The compiled fold program for `tree`, shared per StructKey; compiled
  /// once when the shape first enters the catalog.
  std::shared_ptr<const FlatTree> program;
};

/// \brief The full identity of one tree, computed once and reusable across
/// catalogs (ShardedScheduler computes it on the front end, routes by
/// struct_key, then inserts into the target shard without re-serializing).
struct TreeIdentity {
  ContentFp content_fp;
  StructKey struct_key;
  /// FormatTree(loaded tree, indent=false) — the bytes ContentFp hashes.
  std::string content_bytes;
  /// FormatTree(canonical orientation, indent=false) — the bytes StructKey
  /// hashes. Equal to content_bytes iff the input was already canonical.
  std::string canonical_bytes;
  std::shared_ptr<const AndXorTree> canonical_tree;
};

/// \brief Sizes of the three identity levels; names >= contents >= shapes.
/// contents / shapes is the catalog's duplication factor (the `dedup_ratio`
/// stats field).
struct CatalogCounts {
  int64_t names = 0;
  int64_t contents = 0;
  int64_t shapes = 0;
};

/// \brief Thread-safe name -> tree store with two-level content/structure
/// deduplication.
///
/// Concurrency: all members may be called from any thread. Lookups return
/// shared immutable state. The internal mutex guards the maps; the only
/// non-trivial work under it is the one-time FlatTree compile when a NEW
/// shape arrives (bounded by tree size, and exactly once per shape).
class TreeCatalog {
 public:
  /// \brief The wire-visible fingerprint `tree` would be stored under: the
  /// stable hash of its canonical serialization. Exposed so callers can
  /// compute identities for trees that never enter a catalog.
  static ContentFp FingerprintTree(const AndXorTree& tree);

  /// \brief Computes the full two-level identity of `tree`: content bytes
  /// and ContentFp of the given orientation, plus the canonical orientation
  /// (model/canonical.h) with its bytes and StructKey. Validates the tree;
  /// the returned canonical_tree is validated and ready to compile.
  static Result<TreeIdentity> ComputeIdentity(AndXorTree tree);

  /// \brief Registers `tree` under `name` and returns its entry.
  /// Idempotent for identical content: inserting the same name again
  /// succeeds iff the content matches (returning the existing entry); a
  /// different tree under an existing name is AlreadyExists — replacing a
  /// served tree in place would silently change answers mid-stream.
  /// Content already present under another name shares its ContentFp
  /// record; any member of an already-present commutative orbit shares the
  /// existing shape's tree handle and fold program. Equal hashes at either
  /// level are confirmed by byte comparison, so a 64-bit collision surfaces
  /// as an Internal error instead of silently serving another tree's
  /// answers.
  Result<CatalogEntry> Insert(const std::string& name, AndXorTree tree);

  /// \brief Insert with the identity precomputed by ComputeIdentity. Exists
  /// so a routing layer that already computed the identity to pick a shard
  /// (ShardedScheduler) does not pay the serialization + canonicalization
  /// twice per load; Insert is ComputeIdentity + this.
  Result<CatalogEntry> InsertWithIdentity(const std::string& name,
                                          const TreeIdentity& identity);

  /// \brief Insert with the wire identity precomputed by the caller:
  /// `content_bytes` MUST be the canonical serialization the caller loaded
  /// (FormatTree of the orientation `content_fp` fingerprints) and
  /// `content_fp` its Fnv1a64 — a mismatch corrupts the content dedup.
  /// `tree` may be any orientation of that content (snapshot install hands
  /// in the canonical orientation; live loads the as-parsed one): it is
  /// canonicalized here to derive the structural level.
  Result<CatalogEntry> InsertCanonical(const std::string& name,
                                       AndXorTree tree,
                                       std::string content_bytes,
                                       ContentFp content_fp);

  /// \brief Parses `text` (the s-expression tree format) and inserts it.
  Result<CatalogEntry> InsertFromText(const std::string& name,
                                      const std::string& text);

  /// \brief The NotFound status Lookup reports for an unknown `name`.
  /// Exposed so routing layers that resolve names before reaching any
  /// catalog (ShardedScheduler's directory) emit the byte-identical error
  /// line by construction, not by keeping a copied string in sync.
  static Status UnknownTreeError(const std::string& name);

  /// \brief The entry registered under `name`, or NotFound
  /// (UnknownTreeError).
  Result<CatalogEntry> Lookup(const std::string& name) const;

  /// \brief Number of registered names.
  size_t size() const;

  /// \brief Sizes of all three identity levels, read atomically.
  CatalogCounts Counts() const;

  /// \brief Number of FlatTree programs compiled by this catalog — exactly
  /// the number of distinct shapes ever inserted. Feeds the
  /// cpdb_fold_compiles_total metric alongside the engine's own counter.
  int64_t fold_compiles() const;

  /// \brief The stored content bytes for a ContentFp (the exact
  /// serialization its wire identity hashes), or NotFound. Snapshot
  /// building reads this so v2 records persist the content orientation,
  /// not the canonical one.
  Result<std::string> ContentBytes(ContentFp content_fp) const;

  /// \brief Every entry, in name order — deterministic regardless of load
  /// order, which is what makes a catalog snapshot saved from live state
  /// byte-stable (service/catalog_snapshot.h walks this). Entries share
  /// tree ownership, so the returned view stays valid however the catalog
  /// changes afterwards.
  std::vector<CatalogEntry> SnapshotEntries() const;

 private:
  /// Second identity level: one per distinct content serialization.
  struct ContentRecord {
    StructKey struct_key;
    std::string bytes;  // the serialization content_fp hashes
  };
  /// Third identity level: one per distinct shape; owns the shared state.
  struct ShapeRecord {
    std::shared_ptr<const AndXorTree> tree;      // canonical orientation
    std::shared_ptr<const FlatTree> program;     // compiled once
    std::string canonical_bytes;                 // collision defense
  };

  Result<CatalogEntry> InsertWithIdentityLocked(const std::string& name,
                                                const TreeIdentity& identity);

  mutable std::mutex mu_;
  std::map<std::string, CatalogEntry> by_name_;
  // Entries at both levels are currently immortal, matching a serving
  // process's lifetime (weak_ptr would allow eviction).
  std::map<ContentFp, ContentRecord> by_content_;
  std::map<StructKey, ShapeRecord> by_shape_;
  int64_t fold_compiles_ = 0;
};

}  // namespace cpdb

#endif  // CPDB_SERVICE_TREE_CATALOG_H_

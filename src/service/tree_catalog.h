// Copyright 2026 The ConsensusDB Authors
//
// TreeCatalog — the serving layer's store of loaded trees. Each tree is
// parsed and validated once, fingerprinted by a stable 64-bit content hash
// over its *canonical* serialization (FormatTree of the parsed tree, so two
// inputs that differ only in whitespace or formatting collide on purpose),
// and handed out as a shared immutable handle. Queries address trees by
// name; caches key derived work by fingerprint, so renaming or re-loading
// identical content never duplicates cached state. Modeled on fingerprinted
// structure stores in production database systems: the catalog is the only
// service component that owns tree lifetime.

#ifndef CPDB_SERVICE_TREE_CATALOG_H_
#define CPDB_SERVICE_TREE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief An immutable catalog entry: the shared tree plus its identity.
/// Handles remain valid after the catalog drops or replaces the name —
/// in-flight queries keep the tree alive through the shared_ptr.
struct CatalogEntry {
  std::string name;
  /// Fnv1a64 over FormatTree(tree): stable across processes, load order,
  /// and input formatting. Two entries share a fingerprint iff their
  /// canonical serializations are byte-identical.
  uint64_t fingerprint = 0;
  std::shared_ptr<const AndXorTree> tree;
};

/// \brief Thread-safe name -> tree store with content-hash deduplication.
///
/// Concurrency: all members may be called from any thread. Lookups return
/// shared immutable state; the internal mutex only guards the maps (no
/// user code runs under it).
class TreeCatalog {
 public:
  /// \brief The fingerprint `tree` would be stored under: the stable hash
  /// of its canonical serialization. Exposed so callers can compute cache
  /// keys for trees that never enter a catalog.
  static uint64_t FingerprintTree(const AndXorTree& tree);

  /// \brief Registers `tree` under `name` and returns its entry.
  /// Idempotent for identical content: inserting the same name again
  /// succeeds iff the content matches (returning the existing entry); a
  /// different tree under an existing name is AlreadyExists — replacing a
  /// served tree in place would silently change answers mid-stream.
  /// Content already present under another name shares the same
  /// shared_ptr<const AndXorTree>, so equal trees are stored once. Equal
  /// fingerprints are confirmed by byte comparison of the canonical
  /// serializations, so a 64-bit hash collision surfaces as an Internal
  /// error instead of silently serving another tree's answers.
  Result<CatalogEntry> Insert(const std::string& name, AndXorTree tree);

  /// \brief Insert with the canonical serialization and fingerprint
  /// precomputed by the caller — `canonical` MUST equal
  /// FormatTree(tree, /*indent=*/false) and `fingerprint` its Fnv1a64 (a
  /// mismatch corrupts the content dedup). Exists so a routing layer that
  /// already serialized the tree to pick a shard (ShardedScheduler) does
  /// not pay the O(tree) serialization twice per load; Insert is this
  /// with the two values computed here.
  Result<CatalogEntry> InsertCanonical(const std::string& name,
                                       AndXorTree tree, std::string canonical,
                                       uint64_t fingerprint);

  /// \brief Parses `text` (the s-expression tree format) and inserts it.
  Result<CatalogEntry> InsertFromText(const std::string& name,
                                      const std::string& text);

  /// \brief The NotFound status Lookup reports for an unknown `name`.
  /// Exposed so routing layers that resolve names before reaching any
  /// catalog (ShardedScheduler's directory) emit the byte-identical error
  /// line by construction, not by keeping a copied string in sync.
  static Status UnknownTreeError(const std::string& name);

  /// \brief The entry registered under `name`, or NotFound
  /// (UnknownTreeError).
  Result<CatalogEntry> Lookup(const std::string& name) const;

  /// \brief Number of registered names.
  size_t size() const;

  /// \brief Every entry, in name order — deterministic regardless of load
  /// order, which is what makes a catalog snapshot saved from live state
  /// byte-stable (service/catalog_snapshot.h walks this). Entries share
  /// tree ownership, so the returned view stays valid however the catalog
  /// changes afterwards.
  std::vector<CatalogEntry> SnapshotEntries() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, CatalogEntry> by_name_;
  // fingerprint -> the shared tree, so identical content under several
  // names is stored once. weak_ptr would allow eviction; entries are
  // currently immortal, matching a serving process's lifetime.
  std::map<uint64_t, std::shared_ptr<const AndXorTree>> by_fingerprint_;
};

}  // namespace cpdb

#endif  // CPDB_SERVICE_TREE_CATALOG_H_

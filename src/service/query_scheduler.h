// Copyright 2026 The ConsensusDB Authors
//
// QueryScheduler — the batched execution layer between the request
// protocol and cpdb::Engine. A batch is a vector of heterogeneous typed
// requests (catalog loads, consensus Top-k under any metric, set-consensus
// worlds, cache-stats probes), possibly against different catalog trees.
// The scheduler:
//
//   1. applies every `load` to the TreeCatalog (in request order, before
//      any query — a batch is a unit of work, not a transcript: queries may
//      reference trees loaded later in the same batch);
//   2. resolves query trees by name and routes the shared precomputes
//      through the two owned caches — rank distributions by (StructKey, k)
//      for Top-k queries, leaf marginals by StructKey for world queries —
//      so queries sharing a structural key (permuted duplicates included),
//      within this batch or with any earlier one, pay the fold once; the
//      folds themselves reuse the catalog's precompiled per-shape program,
//      so the steady-state query path never compiles;
//   3. fans the remaining per-query work (strata, Hungarian columns, q
//      matrices) through Engine::EvaluateConsensusBatch, and answers world
//      queries through Engine::ConsensusWorldWithMarginals.
//
// Both caches are single-flight, LRU-evicting under the configured byte
// budget (SchedulerOptions::cache_budget_bytes) — a long-lived server
// under key churn holds bounded memory. Answers are bitwise identical to
// one-at-a-time Engine calls with the caches enabled, disabled, cold,
// warm, or evicting, for any thread count — the caches store values the
// engine computes deterministically, so memoization is invisible except in
// the CacheStats counters and the latency.
//
// Besides ExecuteBatch there is a streaming path: ExecuteStreaming pulls
// requests one at a time and emits each response before reading the next
// request — the serve --stream mode, where a client on a pipe sees answer
// N before writing request N+1. Streaming trades the batch conveniences
// for incrementality: requests execute strictly in input order (a query
// may only reference trees loaded *earlier*), and `stats` reports the
// counters at its point in the stream rather than post-batch.
//
// This is the chassis for sharding, and service/sharded_scheduler.h is the
// front-end built on it: a ShardedScheduler owns one (Engine, TreeCatalog,
// QueryScheduler) context per shard and partitions batches across them by
// tree fingerprint — exactly this interface (catalog handles + a batch
// call with per-slot Results), replicated.

#ifndef CPDB_SERVICE_QUERY_SCHEDULER_H_
#define CPDB_SERVICE_QUERY_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/hardness.h"
#include "engine/engine.h"
#include "io/request_protocol.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "service/marginals_cache.h"
#include "service/rank_dist_cache.h"
#include "service/tree_catalog.h"

namespace cpdb {

/// \brief One typed request of a service batch. The set of ops, their wire
/// names, parameter schemas, and routing traits are declared in one place:
/// service/op_registry.h.
struct ServiceRequest {
  enum class Op {
    kLoad,       ///< register a tree file with the catalog
    kTopK,       ///< consensus Top-k against a catalog tree
    kWorld,      ///< set-consensus world against a catalog tree
    kStats,      ///< report the scheduler's cache counters
    kMetrics,    ///< scrape the scheduler's metrics registry
    kMarginals,  ///< per-key presence marginals of a catalog tree
    kAggregate,  ///< label group-by COUNT consensus (mean + median)
    kBaseline,   ///< baseline ranking semantics (escore/erank/global/prf)
    kHardness,   ///< structural hardness statistics of a catalog tree
  };

  Op op = Op::kTopK;

  // kLoad
  std::string load_name;
  std::string load_file;
  std::string load_format = "tree";  // tree | bid

  // kTopK / kWorld / kMarginals / kAggregate / kBaseline / kHardness
  std::string tree_name;
  int k = 1;                                  // kTopK / kBaseline
  TopKMetric metric = TopKMetric::kSymDiff;   // kTopK
  TopKAnswer answer = TopKAnswer::kMean;      // kTopK
  bool median_world = false;                  // kWorld: median vs mean

  // kBaseline
  std::string baseline_method = "escore";  // escore | erank | global | prf

  // kMetrics
  std::string metrics_format = "kv";  // kv | prom

  /// Any op: `trace=on` asks for side-band trace_* stage-timing fields on
  /// this request's ok response. Never changes the answer fields.
  bool trace = false;
};

/// \brief Maps a tokenized protocol line to a typed request — the semantic
/// half of parsing (the grammar half is io/request_protocol.h). Strict
/// throughout, per the CLI convention: unknown op, unknown field for the
/// op, unknown metric/answer/format value, or an out-of-range k are errors,
/// never defaults. `line` must be non-empty (callers skip comment lines).
Result<ServiceRequest> ServiceRequestFromLine(const RequestLine& line);

/// \brief One shard's pair of cache counter snapshots — the per-shard
/// breakdown a sharded front-end attaches to its kStats answers.
struct ShardCacheStats {
  CacheStats rank_dist;   ///< the shard's RankDistCache counters
  CacheStats marginals;   ///< the shard's MarginalsCache counters
  CatalogCounts catalog;  ///< the shard's catalog name/content/shape counts
};

/// \brief Side-band timing for one request — never part of the answer.
/// Spans are (stage name, nanoseconds) in execution order; total_ns is the
/// request's service latency (the sum of its spans for load/topk/world,
/// one whole-op measurement for stats/metrics). The `trace` bit records
/// whether the *request* asked for trace output: ResponseToFields emits
/// trace_* fields only when it is set, so a response carrying timing for
/// histogram purposes still renders byte-identical to an untimed one.
struct ResponseTiming {
  bool trace = false;
  int64_t total_ns = 0;
  std::vector<std::pair<std::string, int64_t>> spans;
};

/// \brief One request's answer; which members are meaningful depends on op.
struct ServiceResponse {
  ServiceRequest::Op op = ServiceRequest::Op::kTopK;
  std::string tree_name;     // kTopK/kWorld echo; kLoad: the bound name
  ContentFp fingerprint;     // kLoad: the wire-visible content identity
  int k = 0;                 // kTopK echo
  std::string metric;        // kTopK/kWorld echo (textual)
  std::string answer;        // kTopK/kWorld echo (textual)
  std::vector<KeyId> keys;   // kTopK: answer keys; kWorld: world keys
  double expected_distance = 0.0;  // kTopK/kWorld
  CacheStats stats;                // kStats: rank-distribution cache
                                   // (aggregated totals when sharded)
  CacheStats marginals_stats;      // kStats: marginals cache (ditto)
  /// kStats: catalog name/content/shape counts (summed across shards when
  /// sharded — StructKey routing keeps shard catalogs disjoint at every
  /// level, so the sums are exact). Rendered as the `shapes=` and
  /// `dedup_ratio=` fields.
  CatalogCounts catalog;
  /// kStats via a ShardedScheduler: one entry per shard, in shard order,
  /// summing to the two aggregate members above. Empty for the
  /// single-engine QueryScheduler, whose wire output stays byte-identical
  /// to what it was before sharding existed.
  std::vector<ShardCacheStats> shard_stats;
  std::string metrics_format;  // kMetrics echo (kv | prom)
  MetricsSnapshot metrics;     // kMetrics: the scrape
  /// kMarginals: per-key presence marginals aligned with `keys`;
  /// kAggregate: the mean group-count vector.
  std::vector<double> values;
  /// kAggregate: the median (closest-possible) group-count vector.
  std::vector<int64_t> group_counts;
  std::string method;      // kBaseline echo (escore | erank | global | prf)
  TreeHardness hardness;   // kHardness: the structural statistics
  /// Side-band stage timings; rendered as trace_* fields only when
  /// timing.trace is set (the request said trace=on).
  ResponseTiming timing;
};

/// \brief Renders a response as protocol fields, ready for
/// FormatResponseLine. The inverse direction of ServiceRequestFromLine.
std::vector<RequestField> ResponseToFields(const ServiceResponse& response);

/// \brief Reads and parses a kLoad request's file into a validated tree
/// (request.load_format selects the parser). The single shared front half
/// of load execution — both QueryScheduler and ShardedScheduler route
/// through it, so the two paths' read/parse error statuses are
/// byte-identical by construction, not by convention.
Result<AndXorTree> LoadRequestTree(const ServiceRequest& request);

/// \brief Scheduler knobs.
struct SchedulerOptions {
  /// Disables both memo caches: every query recomputes its folds through
  /// the engine. Exists for the parity tests and the cache-speedup
  /// benchmarks; production serving keeps it on.
  bool use_cache = true;

  /// Byte budget applied to *each* owned cache (the CLI's --cache-budget):
  /// retained entries are charged their size-based footprint and evicted
  /// LRU-first when the charge would exceed the budget.
  /// kUnboundedCacheBytes (the default) never evicts; 0 retains nothing
  /// while still coalescing concurrent computes. Answers are bitwise
  /// independent of the budget — eviction costs recomputation, never
  /// correctness.
  int64_t cache_budget_bytes = kUnboundedCacheBytes;

  /// Owns a ServeInstruments registry and records per-op latency
  /// histograms, per-stage spans, and request/error counters
  /// (the CLI's --metrics). Off means *zero* timing reads on the serve
  /// path (no clock calls, no atomics) and op=metrics answers an error.
  /// Answers are byte-identical either way — the differential suite pins
  /// it.
  bool enable_metrics = true;

  /// The timing source; nullptr resolves to SteadyClock::Instance().
  /// Tests inject a FakeClock here to make every histogram bucket and
  /// trace field deterministic. Not owned; must outlive the scheduler.
  const Clock* clock = nullptr;
};

/// \brief The serve path's instruments, owned by one scheduler (one per
/// shard when sharded — cheap per-shard instances, merged at scrape time).
/// The per-op instruments are generated from the OpRegistry's wire names
/// (cpdb_<op>_requests_total / cpdb_<op>_latency_nanoseconds, registered
/// in table order), so adding an op auto-registers its pair while every
/// existing name stays golden-pinned; tests/service_test.cc pins the cache
/// re-export names and tests/obs_test.cc the export formats.
struct ServeInstruments {
  ServeInstruments();

  MetricsRegistry registry;

  Counter* requests_total;        // cpdb_requests_total
  Counter* request_errors_total;  // cpdb_request_errors_total

  /// Per-op counters/histograms indexed by ServiceRequest::Op (== the
  /// registry's table order).
  std::vector<Counter*> op_requests;
  std::vector<LatencyHistogram*> op_latencies;

  // Stage spans: parse (request-line and tree-file parses), catalog
  // (insert/lookup), cache (memo-cache routing incl. fold-on-miss),
  // fold (engine evaluation), format (response rendering, recorded by the
  // transport).
  LatencyHistogram* stage_parse;    // cpdb_stage_parse_latency_nanoseconds
  LatencyHistogram* stage_catalog;  // cpdb_stage_catalog_latency_nanoseconds
  LatencyHistogram* stage_cache;    // cpdb_stage_cache_latency_nanoseconds
  LatencyHistogram* stage_fold;     // cpdb_stage_fold_latency_nanoseconds
  LatencyHistogram* stage_format;   // cpdb_stage_format_latency_nanoseconds

  Counter* op_counter(ServiceRequest::Op op) {
    return op_requests[static_cast<size_t>(op)];
  }
  LatencyHistogram* op_latency(ServiceRequest::Op op) {
    return op_latencies[static_cast<size_t>(op)];
  }
  /// The stage histogram for a span name, or nullptr for an unknown name.
  LatencyHistogram* stage(const std::string& name);
};

/// \brief Re-exports a CacheStats snapshot as metric samples appended to
/// `out` (hits/misses/coalesced/evictions as counters with a _total
/// suffix, entries/bytes as gauges), named `<prefix><field>`. The caller
/// sorts `out` before merging. Shared by the metrics scrape and the
/// golden-name test, so the exported names cannot drift from the pinned
/// set silently.
void AppendCacheStatsMetrics(const CacheStats& stats,
                             const std::string& prefix, MetricsSnapshot* out);

/// \brief Renders one slow-query log line (the serve --slow-query-ms
/// sink): tab-separated name=value fields — line number, total
/// milliseconds (FormatRoundTripDouble), each recorded span in
/// nanoseconds, then the raw request echoed through EscapeFieldValue so a
/// hostile request cannot forge log structure. No trailing newline.
std::string FormatSlowQueryLine(int64_t line_number,
                                const std::string& raw_request,
                                const ResponseTiming& timing);

/// \brief Executes request batches against one engine and one catalog.
///
/// The scheduler owns the RankDistCache and MarginalsCache (the only
/// mutable state in the serving layer besides the catalog maps) and is
/// thread-compatible: concurrent ExecuteBatch / ExecuteOne calls are safe —
/// catalog and caches are internally locked; the engine is stateless per
/// query — but batches racing on `load` of conflicting content may observe
/// AlreadyExists.
class QueryScheduler {
 public:
  /// \brief Neither pointer is owned; both must outlive the scheduler.
  QueryScheduler(const Engine* engine, TreeCatalog* catalog,
                 SchedulerOptions options = SchedulerOptions());

  /// \brief Executes a batch; results[i] answers requests[i]. Per-request
  /// failures (unknown tree, unreadable file, unsupported metric/answer
  /// combination) land in their slot without affecting other slots.
  /// kStats slots report the counters *after* the batch's query work, in
  /// keeping with loads-before-queries batch semantics.
  std::vector<Result<ServiceResponse>> ExecuteBatch(
      const std::vector<ServiceRequest>& requests);

  /// \brief Executes one request immediately — the unit of the streaming
  /// path. Same cache routing and bitwise-identical answers as a
  /// single-request ExecuteBatch, with the two order-sensitive
  /// differences streaming implies: a kTopK/kWorld request sees only trees
  /// loaded before this call, and kStats reports the counters as of now.
  Result<ServiceResponse> ExecuteOne(const ServiceRequest& request);

  /// \brief The incremental serve loop: repeatedly pulls a request from
  /// `next` (which returns false when the input is exhausted) and passes
  /// its response to `emit` — always emitting request N's response
  /// *before* pulling request N+1, so a streaming client observes answers
  /// as it writes. Equivalent to calling ExecuteOne in a loop; exists so
  /// the interleaving contract lives (and is tested) in the scheduler
  /// rather than in every transport.
  void ExecuteStreaming(
      const std::function<bool(ServiceRequest*)>& next,
      const std::function<void(const Result<ServiceResponse>&)>& emit);

  /// \brief Seeds the owned rank-distribution cache with a precomputed
  /// entry — the warm-restart seam: a catalog snapshot's persisted
  /// distributions land here so a restarted replica's first batch hits
  /// warm instead of re-folding. No-op (returns false) when caching is
  /// disabled or the entry is not retained (existing entry, over-budget);
  /// never changes answers, exactly like every other cache path.
  bool SeedRankDistribution(StructKey struct_key, int k,
                            std::shared_ptr<const RankDistribution> dist) {
    if (!options_.use_cache) return false;
    return cache_.Seed(struct_key, k, std::move(dist));
  }

  /// \brief The rank-distribution cache's retained entries, in
  /// (struct_key, k) order — what a snapshot save persists as the
  /// precomputed-distributions section.
  std::vector<RankDistCache::RetainedEntry> RetainedRankDistributions() const {
    return cache_.RetainedEntries();
  }

  /// \brief Counter snapshot of the owned rank-distribution cache.
  CacheStats cache_stats() const { return cache_.stats(); }

  /// \brief Counter snapshot of the owned marginals cache.
  CacheStats marginals_stats() const { return marginals_cache_.stats(); }

  const SchedulerOptions& options() const { return options_; }

  /// \brief The owned instruments, or nullptr when metrics are disabled.
  /// The sharded front-end records its front-end work (loads, routing
  /// failures, stats/metrics ops) through this.
  ServeInstruments* instruments() const { return instruments_.get(); }

  /// \brief The injected clock (never null; defaults to SteadyClock).
  const Clock* clock() const { return clock_; }

  /// \brief The full metrics scrape: the registry's instruments plus the
  /// fold/arena counters (cpdb_fold_compiles_total counts the catalog's
  /// per-shape compiles together with the engine's on-demand ones), the
  /// catalog's identity gauges (cpdb_catalog_entries = bound names,
  /// cpdb_catalog_shapes = distinct structures), and both caches' counters
  /// re-exported under cpdb_rankdist_cache_* / cpdb_marginals_cache_*.
  /// Must not be called when metrics are disabled (instruments() is
  /// nullptr).
  MetricsSnapshot MetricsSnapshotNow() const;

 private:
  /// The OpRegistry hooks execute against the scheduler through a private
  /// OpHost adapter (service/op_registry.h) defined in the .cc — the
  /// primitives below are its surface.
  friend class SchedulerOpHost;

  /// The rank distribution for one valid Top-k request: through the cache
  /// when enabled (single-flight, charged against the budget), nullptr
  /// when disabled or when the request can only fail — the engine rejects
  /// such queries before paying the fold, and the scheduler must not
  /// populate the cache for them.
  std::shared_ptr<const RankDistribution> DistFor(const CatalogEntry& entry,
                                                  const ServiceRequest& request);

  /// The rank distribution at cutoff k unconditionally (the baseline
  /// rankings' precompute): through the cache when enabled, computed fresh
  /// otherwise.
  std::shared_ptr<const RankDistribution> RankDistFor(const CatalogEntry& entry,
                                                      int k);

  /// The leaf marginals for a tree-addressed request: through the
  /// marginals cache when enabled, computed fresh otherwise.
  std::shared_ptr<const std::vector<double>> MarginalsFor(
      const CatalogEntry& entry);

  /// The load path with stage spans: parse (read + parse the tree file)
  /// and catalog (the insert). `clk` null means no spans are recorded.
  Result<ServiceResponse> ExecuteLoadTimed(const ServiceRequest& request,
                                           const Clock* clk,
                                           ResponseTiming* timing);

  ServiceResponse StatsResponse() const;

  /// The timing source for a unit of work: the injected clock when this
  /// request must be timed (metrics on, or the request said trace=on),
  /// nullptr — which makes every Stopwatch inert — otherwise.
  const Clock* TimingClock(bool any_trace) const {
    return (instruments_ != nullptr || any_trace) ? clock_ : nullptr;
  }

  /// Sums a finished request's spans into total_ns, records the op and
  /// stage histograms (when metrics are on), and attaches trace output to
  /// an ok response when the request asked for it.
  void FinishTiming(const ServiceRequest& request, ResponseTiming* timing,
                    Result<ServiceResponse>* response);

  const Engine* engine_;
  TreeCatalog* catalog_;
  SchedulerOptions options_;
  const Clock* clock_;
  std::unique_ptr<ServeInstruments> instruments_;
  RankDistCache cache_;
  MarginalsCache marginals_cache_;
};

}  // namespace cpdb

#endif  // CPDB_SERVICE_QUERY_SCHEDULER_H_

// Copyright 2026 The ConsensusDB Authors
//
// QueryScheduler — the batched execution layer between the request
// protocol and cpdb::Engine. A batch is a vector of heterogeneous typed
// requests (catalog loads, consensus Top-k under any metric, set-consensus
// worlds, cache-stats probes), possibly against different catalog trees.
// The scheduler:
//
//   1. applies every `load` to the TreeCatalog (in request order, before
//      any query — a batch is a unit of work, not a transcript: queries may
//      reference trees loaded later in the same batch);
//   2. resolves query trees by name and routes the shared precomputes
//      through the two owned caches — rank distributions by (tree
//      fingerprint, k) for Top-k queries, leaf marginals by fingerprint for
//      world queries — so queries sharing a fingerprint, within this batch
//      or with any earlier one, pay the fold once;
//   3. fans the remaining per-query work (strata, Hungarian columns, q
//      matrices) through Engine::EvaluateConsensusBatch, and answers world
//      queries through Engine::ConsensusWorldWithMarginals.
//
// Both caches are single-flight, LRU-evicting under the configured byte
// budget (SchedulerOptions::cache_budget_bytes) — a long-lived server
// under key churn holds bounded memory. Answers are bitwise identical to
// one-at-a-time Engine calls with the caches enabled, disabled, cold,
// warm, or evicting, for any thread count — the caches store values the
// engine computes deterministically, so memoization is invisible except in
// the CacheStats counters and the latency.
//
// Besides ExecuteBatch there is a streaming path: ExecuteStreaming pulls
// requests one at a time and emits each response before reading the next
// request — the serve --stream mode, where a client on a pipe sees answer
// N before writing request N+1. Streaming trades the batch conveniences
// for incrementality: requests execute strictly in input order (a query
// may only reference trees loaded *earlier*), and `stats` reports the
// counters at its point in the stream rather than post-batch.
//
// This is the chassis for sharding, and service/sharded_scheduler.h is the
// front-end built on it: a ShardedScheduler owns one (Engine, TreeCatalog,
// QueryScheduler) context per shard and partitions batches across them by
// tree fingerprint — exactly this interface (catalog handles + a batch
// call with per-slot Results), replicated.

#ifndef CPDB_SERVICE_QUERY_SCHEDULER_H_
#define CPDB_SERVICE_QUERY_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/engine.h"
#include "io/request_protocol.h"
#include "service/marginals_cache.h"
#include "service/rank_dist_cache.h"
#include "service/tree_catalog.h"

namespace cpdb {

/// \brief One typed request of a service batch.
struct ServiceRequest {
  enum class Op {
    kLoad,   ///< register a tree file with the catalog
    kTopK,   ///< consensus Top-k against a catalog tree
    kWorld,  ///< set-consensus world against a catalog tree
    kStats,  ///< report the scheduler's cache counters
  };

  Op op = Op::kTopK;

  // kLoad
  std::string load_name;
  std::string load_file;
  std::string load_format = "tree";  // tree | bid

  // kTopK / kWorld
  std::string tree_name;
  int k = 1;                                  // kTopK
  TopKMetric metric = TopKMetric::kSymDiff;   // kTopK
  TopKAnswer answer = TopKAnswer::kMean;      // kTopK
  bool median_world = false;                  // kWorld: median vs mean
};

/// \brief Maps a tokenized protocol line to a typed request — the semantic
/// half of parsing (the grammar half is io/request_protocol.h). Strict
/// throughout, per the CLI convention: unknown op, unknown field for the
/// op, unknown metric/answer/format value, or an out-of-range k are errors,
/// never defaults. `line` must be non-empty (callers skip comment lines).
Result<ServiceRequest> ServiceRequestFromLine(const RequestLine& line);

/// \brief One shard's pair of cache counter snapshots — the per-shard
/// breakdown a sharded front-end attaches to its kStats answers.
struct ShardCacheStats {
  CacheStats rank_dist;   ///< the shard's RankDistCache counters
  CacheStats marginals;   ///< the shard's MarginalsCache counters
};

/// \brief One request's answer; which members are meaningful depends on op.
struct ServiceResponse {
  ServiceRequest::Op op = ServiceRequest::Op::kTopK;
  std::string tree_name;     // kTopK/kWorld echo; kLoad: the bound name
  uint64_t fingerprint = 0;  // kLoad
  int k = 0;                 // kTopK echo
  std::string metric;        // kTopK/kWorld echo (textual)
  std::string answer;        // kTopK/kWorld echo (textual)
  std::vector<KeyId> keys;   // kTopK: answer keys; kWorld: world keys
  double expected_distance = 0.0;  // kTopK/kWorld
  CacheStats stats;                // kStats: rank-distribution cache
                                   // (aggregated totals when sharded)
  CacheStats marginals_stats;      // kStats: marginals cache (ditto)
  /// kStats via a ShardedScheduler: one entry per shard, in shard order,
  /// summing to the two aggregate members above. Empty for the
  /// single-engine QueryScheduler, whose wire output stays byte-identical
  /// to what it was before sharding existed.
  std::vector<ShardCacheStats> shard_stats;
};

/// \brief Renders a response as protocol fields, ready for
/// FormatResponseLine. The inverse direction of ServiceRequestFromLine.
std::vector<RequestField> ResponseToFields(const ServiceResponse& response);

/// \brief Reads and parses a kLoad request's file into a validated tree
/// (request.load_format selects the parser). The single shared front half
/// of load execution — both QueryScheduler and ShardedScheduler route
/// through it, so the two paths' read/parse error statuses are
/// byte-identical by construction, not by convention.
Result<AndXorTree> LoadRequestTree(const ServiceRequest& request);

/// \brief Scheduler knobs.
struct SchedulerOptions {
  /// Disables both memo caches: every query recomputes its folds through
  /// the engine. Exists for the parity tests and the cache-speedup
  /// benchmarks; production serving keeps it on.
  bool use_cache = true;

  /// Byte budget applied to *each* owned cache (the CLI's --cache-budget):
  /// retained entries are charged their size-based footprint and evicted
  /// LRU-first when the charge would exceed the budget.
  /// kUnboundedCacheBytes (the default) never evicts; 0 retains nothing
  /// while still coalescing concurrent computes. Answers are bitwise
  /// independent of the budget — eviction costs recomputation, never
  /// correctness.
  int64_t cache_budget_bytes = kUnboundedCacheBytes;
};

/// \brief Executes request batches against one engine and one catalog.
///
/// The scheduler owns the RankDistCache and MarginalsCache (the only
/// mutable state in the serving layer besides the catalog maps) and is
/// thread-compatible: concurrent ExecuteBatch / ExecuteOne calls are safe —
/// catalog and caches are internally locked; the engine is stateless per
/// query — but batches racing on `load` of conflicting content may observe
/// AlreadyExists.
class QueryScheduler {
 public:
  /// \brief Neither pointer is owned; both must outlive the scheduler.
  QueryScheduler(const Engine* engine, TreeCatalog* catalog,
                 SchedulerOptions options = SchedulerOptions());

  /// \brief Executes a batch; results[i] answers requests[i]. Per-request
  /// failures (unknown tree, unreadable file, unsupported metric/answer
  /// combination) land in their slot without affecting other slots.
  /// kStats slots report the counters *after* the batch's query work, in
  /// keeping with loads-before-queries batch semantics.
  std::vector<Result<ServiceResponse>> ExecuteBatch(
      const std::vector<ServiceRequest>& requests);

  /// \brief Executes one request immediately — the unit of the streaming
  /// path. Same cache routing and bitwise-identical answers as a
  /// single-request ExecuteBatch, with the two order-sensitive
  /// differences streaming implies: a kTopK/kWorld request sees only trees
  /// loaded before this call, and kStats reports the counters as of now.
  Result<ServiceResponse> ExecuteOne(const ServiceRequest& request);

  /// \brief The incremental serve loop: repeatedly pulls a request from
  /// `next` (which returns false when the input is exhausted) and passes
  /// its response to `emit` — always emitting request N's response
  /// *before* pulling request N+1, so a streaming client observes answers
  /// as it writes. Equivalent to calling ExecuteOne in a loop; exists so
  /// the interleaving contract lives (and is tested) in the scheduler
  /// rather than in every transport.
  void ExecuteStreaming(
      const std::function<bool(ServiceRequest*)>& next,
      const std::function<void(const Result<ServiceResponse>&)>& emit);

  /// \brief Seeds the owned rank-distribution cache with a precomputed
  /// entry — the warm-restart seam: a catalog snapshot's persisted
  /// distributions land here so a restarted replica's first batch hits
  /// warm instead of re-folding. No-op (returns false) when caching is
  /// disabled or the entry is not retained (existing entry, over-budget);
  /// never changes answers, exactly like every other cache path.
  bool SeedRankDistribution(uint64_t fingerprint, int k,
                            std::shared_ptr<const RankDistribution> dist) {
    if (!options_.use_cache) return false;
    return cache_.Seed(fingerprint, k, std::move(dist));
  }

  /// \brief The rank-distribution cache's retained entries, in
  /// (fingerprint, k) order — what a snapshot save persists as the
  /// precomputed-distributions section.
  std::vector<RankDistCache::RetainedEntry> RetainedRankDistributions() const {
    return cache_.RetainedEntries();
  }

  /// \brief Counter snapshot of the owned rank-distribution cache.
  CacheStats cache_stats() const { return cache_.stats(); }

  /// \brief Counter snapshot of the owned marginals cache.
  CacheStats marginals_stats() const { return marginals_cache_.stats(); }

  const SchedulerOptions& options() const { return options_; }

 private:
  /// The rank distribution for one valid Top-k request: through the cache
  /// when enabled (single-flight, charged against the budget), nullptr
  /// when disabled or when the request can only fail — the engine rejects
  /// such queries before paying the fold, and the scheduler must not
  /// populate the cache for them.
  std::shared_ptr<const RankDistribution> DistFor(const CatalogEntry& entry,
                                                  const ServiceRequest& request);

  /// The leaf marginals for a world request's tree: through the marginals
  /// cache when enabled, computed fresh otherwise.
  std::shared_ptr<const std::vector<double>> MarginalsFor(
      const CatalogEntry& entry);

  Result<ServiceResponse> ExecuteWorld(const CatalogEntry& entry,
                                       const ServiceRequest& request);

  ServiceResponse StatsResponse() const;

  const Engine* engine_;
  TreeCatalog* catalog_;
  SchedulerOptions options_;
  RankDistCache cache_;
  MarginalsCache marginals_cache_;
};

}  // namespace cpdb

#endif  // CPDB_SERVICE_QUERY_SCHEDULER_H_

// Copyright 2026 The ConsensusDB Authors
//
// QueryScheduler — the batched execution layer between the request
// protocol and cpdb::Engine. A batch is a vector of heterogeneous typed
// requests (catalog loads, consensus Top-k under any metric, set-consensus
// worlds, cache-stats probes), possibly against different catalog trees.
// The scheduler:
//
//   1. applies every `load` to the TreeCatalog (in request order, before
//      any query — a batch is a unit of work, not a transcript: queries may
//      reference trees loaded later in the same batch);
//   2. resolves query trees by name and routes the shared rank-distribution
//      precompute through a RankDistCache keyed by (tree fingerprint, k),
//      so queries sharing a fingerprint — within this batch or with any
//      earlier one — pay the O(L^2 k) fold once;
//   3. fans the remaining per-query work (strata, Hungarian columns, q
//      matrices) through Engine::EvaluateConsensusBatch.
//
// Answers are bitwise identical to one-at-a-time Engine calls with the
// cache enabled, disabled, cold, or warm, for any thread count — the cache
// stores a value the engine computes deterministically, so memoization is
// invisible except in the CacheStats counters and the latency.
//
// This is the chassis for sharding: a front-end that partitions batches
// across processes needs exactly this interface (catalog handles + a batch
// call with per-slot Results) on each shard.

#ifndef CPDB_SERVICE_QUERY_SCHEDULER_H_
#define CPDB_SERVICE_QUERY_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/engine.h"
#include "io/request_protocol.h"
#include "service/rank_dist_cache.h"
#include "service/tree_catalog.h"

namespace cpdb {

/// \brief One typed request of a service batch.
struct ServiceRequest {
  enum class Op {
    kLoad,   ///< register a tree file with the catalog
    kTopK,   ///< consensus Top-k against a catalog tree
    kWorld,  ///< set-consensus world against a catalog tree
    kStats,  ///< report the scheduler's cache counters
  };

  Op op = Op::kTopK;

  // kLoad
  std::string load_name;
  std::string load_file;
  std::string load_format = "tree";  // tree | bid

  // kTopK / kWorld
  std::string tree_name;
  int k = 1;                                  // kTopK
  TopKMetric metric = TopKMetric::kSymDiff;   // kTopK
  TopKAnswer answer = TopKAnswer::kMean;      // kTopK
  bool median_world = false;                  // kWorld: median vs mean
};

/// \brief Maps a tokenized protocol line to a typed request — the semantic
/// half of parsing (the grammar half is io/request_protocol.h). Strict
/// throughout, per the CLI convention: unknown op, unknown field for the
/// op, unknown metric/answer/format value, or an out-of-range k are errors,
/// never defaults. `line` must be non-empty (callers skip comment lines).
Result<ServiceRequest> ServiceRequestFromLine(const RequestLine& line);

/// \brief One request's answer; which members are meaningful depends on op.
struct ServiceResponse {
  ServiceRequest::Op op = ServiceRequest::Op::kTopK;
  std::string tree_name;     // kTopK/kWorld echo; kLoad: the bound name
  uint64_t fingerprint = 0;  // kLoad
  int k = 0;                 // kTopK echo
  std::string metric;        // kTopK/kWorld echo (textual)
  std::string answer;        // kTopK/kWorld echo (textual)
  std::vector<KeyId> keys;   // kTopK: answer keys; kWorld: world keys
  double expected_distance = 0.0;  // kTopK/kWorld
  CacheStats stats;                // kStats
};

/// \brief Renders a response as protocol fields, ready for
/// FormatResponseLine. The inverse direction of ServiceRequestFromLine.
std::vector<RequestField> ResponseToFields(const ServiceResponse& response);

/// \brief Scheduler knobs.
struct SchedulerOptions {
  /// Disables the rank-distribution cache: every query recomputes its
  /// fold through the engine. Exists for the parity tests and the
  /// cache-speedup benchmarks; production serving keeps it on.
  bool use_cache = true;
};

/// \brief Executes request batches against one engine and one catalog.
///
/// The scheduler owns the RankDistCache (the only mutable state in the
/// serving layer besides the catalog maps) and is thread-compatible:
/// concurrent ExecuteBatch calls are safe — catalog and cache are
/// internally locked; the engine is stateless per query — but batches
/// racing on `load` of conflicting content may observe AlreadyExists.
class QueryScheduler {
 public:
  /// \brief Neither pointer is owned; both must outlive the scheduler.
  QueryScheduler(const Engine* engine, TreeCatalog* catalog,
                 SchedulerOptions options = SchedulerOptions());

  /// \brief Executes a batch; results[i] answers requests[i]. Per-request
  /// failures (unknown tree, unreadable file, unsupported metric/answer
  /// combination) land in their slot without affecting other slots.
  /// kStats slots report the counters *after* the batch's query work, in
  /// keeping with loads-before-queries batch semantics.
  std::vector<Result<ServiceResponse>> ExecuteBatch(
      const std::vector<ServiceRequest>& requests);

  /// \brief Counter snapshot of the owned rank-distribution cache.
  CacheStats cache_stats() const { return cache_.stats(); }

  const SchedulerOptions& options() const { return options_; }

 private:
  const Engine* engine_;
  TreeCatalog* catalog_;
  SchedulerOptions options_;
  RankDistCache cache_;
};

}  // namespace cpdb

#endif  // CPDB_SERVICE_QUERY_SCHEDULER_H_

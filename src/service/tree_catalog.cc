// Copyright 2026 The ConsensusDB Authors

#include "service/tree_catalog.h"

#include <utility>

#include "io/tree_text.h"
#include "model/canonical.h"

namespace cpdb {

ContentFp TreeCatalog::FingerprintTree(const AndXorTree& tree) {
  // The canonical single-line serialization, not the user's input text:
  // formatting differences must not split identical trees into distinct
  // fingerprints.
  return ContentFp(Fnv1a64(FormatTree(tree, /*indent=*/false)));
}

Result<TreeIdentity> TreeCatalog::ComputeIdentity(AndXorTree tree) {
  CPDB_RETURN_NOT_OK(tree.Validate());
  TreeIdentity identity;
  identity.content_bytes = FormatTree(tree, /*indent=*/false);
  identity.content_fp = ContentFp(Fnv1a64(identity.content_bytes));
  CPDB_ASSIGN_OR_RETURN(AndXorTree canonical, CanonicalizeTree(tree));
  identity.canonical_bytes = FormatTree(canonical, /*indent=*/false);
  identity.struct_key = StructKey(Fnv1a64(identity.canonical_bytes));
  identity.canonical_tree =
      std::make_shared<const AndXorTree>(std::move(canonical));
  return identity;
}

Result<CatalogEntry> TreeCatalog::Insert(const std::string& name,
                                         AndXorTree tree) {
  // Check the name before paying the O(tree) identity computation below
  // (InsertWithIdentity re-checks for its direct callers).
  if (name.empty()) {
    return Status::InvalidArgument("catalog name must not be empty");
  }
  CPDB_ASSIGN_OR_RETURN(TreeIdentity identity,
                        ComputeIdentity(std::move(tree)));
  return InsertWithIdentity(name, identity);
}

Result<CatalogEntry> TreeCatalog::InsertWithIdentity(
    const std::string& name, const TreeIdentity& identity) {
  if (name.empty()) {
    return Status::InvalidArgument("catalog name must not be empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  return InsertWithIdentityLocked(name, identity);
}

Result<CatalogEntry> TreeCatalog::InsertWithIdentityLocked(
    const std::string& name, const TreeIdentity& identity) {
  // Whenever a hash matches existing state — at the name, content, or shape
  // level — confirm the bytes match too: the hashes are 64-bit and
  // non-cryptographic, and the dedup below plus the (StructKey, k) caches
  // keyed on it would silently serve the wrong tree's answers on a
  // collision. The compares run only on the hash-equal paths, so honest
  // traffic pays one serialization + canonicalization per load.
  auto named = by_name_.find(name);
  if (named != by_name_.end()) {
    auto content = by_content_.find(named->second.content_fp);
    if (named->second.content_fp == identity.content_fp &&
        content != by_content_.end() &&
        content->second.bytes == identity.content_bytes) {
      return named->second;  // idempotent re-load of identical content
    }
    return Status::AlreadyExists("catalog name '" + name +
                                 "' is bound to different content");
  }
  auto content = by_content_.find(identity.content_fp);
  if (content != by_content_.end() &&
      content->second.bytes != identity.content_bytes) {
    return Status::Internal("fingerprint collision: '" + name +
                            "' hashes like existing content it does not "
                            "equal; rename is no workaround — the content "
                            "cannot be cached safely");
  }
  auto shape = by_shape_.find(identity.struct_key);
  if (shape != by_shape_.end() &&
      shape->second.canonical_bytes != identity.canonical_bytes) {
    return Status::Internal("structural key collision: '" + name +
                            "' canonicalizes like an existing shape it does "
                            "not equal; the two cannot share a fold program "
                            "or cache lines safely");
  }
  if (shape == by_shape_.end()) {
    // First time this shape enters the catalog: compile its fold program
    // once. Every future load of any orientation of this shape — and every
    // query against it — reuses the program through the shared_ptr.
    ShapeRecord record;
    record.tree = identity.canonical_tree;
    record.program = std::make_shared<const FlatTree>(
        FlatTree::Compile(*identity.canonical_tree));
    record.canonical_bytes = identity.canonical_bytes;
    ++fold_compiles_;
    shape = by_shape_.emplace(identity.struct_key, std::move(record)).first;
  }
  if (content == by_content_.end()) {
    by_content_.emplace(identity.content_fp,
                        ContentRecord{identity.struct_key,
                                      identity.content_bytes});
  }
  CatalogEntry entry{name, identity.content_fp, identity.struct_key,
                     shape->second.tree, shape->second.program};
  by_name_.emplace(name, entry);
  return entry;
}

Result<CatalogEntry> TreeCatalog::InsertCanonical(const std::string& name,
                                                  AndXorTree tree,
                                                  std::string content_bytes,
                                                  ContentFp content_fp) {
  if (name.empty()) {
    return Status::InvalidArgument("catalog name must not be empty");
  }
  // The caller owns the wire identity (content bytes + fingerprint); derive
  // only the structural level here. `tree` may be any orientation of the
  // content — canonicalization collapses it to the shape's one orientation.
  CPDB_RETURN_NOT_OK(tree.Validate());
  TreeIdentity identity;
  identity.content_bytes = std::move(content_bytes);
  identity.content_fp = content_fp;
  CPDB_ASSIGN_OR_RETURN(AndXorTree canonical,
                        CanonicalizeTree(std::move(tree)));
  identity.canonical_bytes = FormatTree(canonical, /*indent=*/false);
  identity.struct_key = StructKey(Fnv1a64(identity.canonical_bytes));
  identity.canonical_tree =
      std::make_shared<const AndXorTree>(std::move(canonical));
  return InsertWithIdentity(name, identity);
}

Result<CatalogEntry> TreeCatalog::InsertFromText(const std::string& name,
                                                 const std::string& text) {
  CPDB_ASSIGN_OR_RETURN(AndXorTree tree, ParseTree(text));
  return Insert(name, std::move(tree));
}

Status TreeCatalog::UnknownTreeError(const std::string& name) {
  return Status::NotFound("no catalog tree named '" + name + "'");
}

Result<CatalogEntry> TreeCatalog::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return UnknownTreeError(name);
  }
  return it->second;
}

size_t TreeCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_name_.size();
}

CatalogCounts TreeCatalog::Counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  CatalogCounts counts;
  counts.names = static_cast<int64_t>(by_name_.size());
  counts.contents = static_cast<int64_t>(by_content_.size());
  counts.shapes = static_cast<int64_t>(by_shape_.size());
  return counts;
}

int64_t TreeCatalog::fold_compiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fold_compiles_;
}

Result<std::string> TreeCatalog::ContentBytes(ContentFp content_fp) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_content_.find(content_fp);
  if (it == by_content_.end()) {
    return Status::NotFound("no catalog content with fingerprint " +
                            HashToHex(content_fp));
  }
  return it->second.bytes;
}

std::vector<CatalogEntry> TreeCatalog::SnapshotEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CatalogEntry> entries;
  entries.reserve(by_name_.size());
  for (const auto& [name, entry] : by_name_) {
    entries.push_back(entry);  // by_name_ is ordered: name order for free
  }
  return entries;
}

}  // namespace cpdb

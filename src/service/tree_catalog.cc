// Copyright 2026 The ConsensusDB Authors

#include "service/tree_catalog.h"

#include <utility>

#include "common/hash.h"
#include "io/tree_text.h"

namespace cpdb {

uint64_t TreeCatalog::FingerprintTree(const AndXorTree& tree) {
  // The canonical single-line serialization, not the user's input text:
  // formatting differences must not split identical trees into distinct
  // fingerprints.
  return Fnv1a64(FormatTree(tree, /*indent=*/false));
}

Result<CatalogEntry> TreeCatalog::Insert(const std::string& name,
                                         AndXorTree tree) {
  // Check the name before paying the O(tree) serialization below
  // (InsertCanonical re-checks for its direct callers).
  if (name.empty()) {
    return Status::InvalidArgument("catalog name must not be empty");
  }
  std::string canonical = FormatTree(tree, /*indent=*/false);
  uint64_t fingerprint = Fnv1a64(canonical);
  return InsertCanonical(name, std::move(tree), std::move(canonical),
                         fingerprint);
}

Result<CatalogEntry> TreeCatalog::InsertCanonical(const std::string& name,
                                                  AndXorTree tree,
                                                  std::string canonical,
                                                  uint64_t fingerprint) {
  if (name.empty()) {
    return Status::InvalidArgument("catalog name must not be empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Whenever a fingerprint matches existing content, confirm the bytes
  // match too: the hash is 64-bit and non-cryptographic, and both the
  // dedup below and the (fingerprint, k) caches keyed on it would silently
  // serve the wrong tree's answers on a collision. The compare runs only
  // on the fingerprint-equal path, so honest traffic pays one
  // serialization per load.
  auto named = by_name_.find(name);
  if (named != by_name_.end()) {
    if (named->second.fingerprint == fingerprint &&
        FormatTree(*named->second.tree, /*indent=*/false) == canonical) {
      return named->second;  // idempotent re-load of identical content
    }
    return Status::AlreadyExists("catalog name '" + name +
                                 "' is bound to different content");
  }
  std::shared_ptr<const AndXorTree>& shared = by_fingerprint_[fingerprint];
  if (shared != nullptr &&
      FormatTree(*shared, /*indent=*/false) != canonical) {
    return Status::Internal("fingerprint collision: '" + name +
                            "' hashes like existing content it does not "
                            "equal; rename is no workaround — the content "
                            "cannot be cached safely");
  }
  if (shared == nullptr) {
    shared = std::make_shared<const AndXorTree>(std::move(tree));
  }
  CatalogEntry entry{name, fingerprint, shared};
  by_name_.emplace(name, entry);
  return entry;
}

Result<CatalogEntry> TreeCatalog::InsertFromText(const std::string& name,
                                                 const std::string& text) {
  CPDB_ASSIGN_OR_RETURN(AndXorTree tree, ParseTree(text));
  return Insert(name, std::move(tree));
}

Status TreeCatalog::UnknownTreeError(const std::string& name) {
  return Status::NotFound("no catalog tree named '" + name + "'");
}

Result<CatalogEntry> TreeCatalog::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return UnknownTreeError(name);
  }
  return it->second;
}

size_t TreeCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_name_.size();
}

std::vector<CatalogEntry> TreeCatalog::SnapshotEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CatalogEntry> entries;
  entries.reserve(by_name_.size());
  for (const auto& [name, entry] : by_name_) {
    entries.push_back(entry);  // by_name_ is ordered: name order for free
  }
  return entries;
}

}  // namespace cpdb

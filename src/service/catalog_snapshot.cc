// Copyright 2026 The ConsensusDB Authors

#include "service/catalog_snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <utility>

#include "common/hash.h"
#include "io/mmap_file.h"
#include "io/table_io.h"
#include "io/tree_text.h"
#include "model/canonical.h"
#include "service/query_scheduler.h"

namespace cpdb {
namespace {

constexpr size_t kHeaderBytes = 32;    // magic + version + reserved + counts
constexpr size_t kChecksumBytes = 8;   // trailing u64
// The smallest possible record of each kind — the divisor that lets the
// decoder reject a forged count before iterating: `count` records need at
// least count * minimum bytes, so a count exceeding remaining/minimum can
// never fit, however the records are shaped. v2 tree records carry one
// extra u64 (the structural key) over v1's.
constexpr size_t kMinTreeRecordBytesV1 = 4 + 8 + 8;      // empty name/content
constexpr size_t kMinTreeRecordBytesV2 = 4 + 8 + 8 + 8;  // + struct key
constexpr size_t kMinDistRecordBytes = 8 + 4 + 8;   // zero keys
constexpr size_t kMinKeyBlockBytes = 4 + 8;         // key id + one double
constexpr int kMaxSnapshotK = 1 << 20;  // the scheduler's own k ceiling

// --- little-endian primitives (explicit byte shifts: the format must not
// depend on host endianness or on struct layout) -------------------------

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xffffffffULL));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

void AppendDoubleBits(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

/// Bounds-checked forward-only reader over the snapshot bytes. Every Read*
/// checks the remaining payload *before* advancing, so a truncated or
/// forged file can never walk the cursor out of the buffer — the property
/// the ASan leg of the torture matrix pins.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = static_cast<uint32_t>(data_[pos_]) |
         (static_cast<uint32_t>(data_[pos_ + 1]) << 8) |
         (static_cast<uint32_t>(data_[pos_ + 2]) << 16) |
         (static_cast<uint32_t>(data_[pos_ + 3]) << 24);
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (remaining() < 8) return false;
    ReadU32(&lo);
    ReadU32(&hi);
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }

  bool ReadDoubleBits(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool ReadBytes(size_t n, std::string* out) {
    if (remaining() < n) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status Truncated(const std::string& what) {
  return Status::ParseError("catalog snapshot truncated: " + what);
}

}  // namespace

std::string EncodeCatalogSnapshot(const CatalogSnapshot& snapshot) {
  // Sort views, not the caller's vectors: encoding is a const observation.
  std::vector<const SnapshotTree*> trees;
  trees.reserve(snapshot.trees.size());
  for (const SnapshotTree& t : snapshot.trees) trees.push_back(&t);
  std::sort(trees.begin(), trees.end(),
            [](const SnapshotTree* a, const SnapshotTree* b) {
              return a->name < b->name;
            });

  std::vector<const SnapshotDistribution*> dists;
  dists.reserve(snapshot.distributions.size());
  for (const SnapshotDistribution& d : snapshot.distributions) {
    dists.push_back(&d);
  }
  std::sort(dists.begin(), dists.end(),
            [](const SnapshotDistribution* a, const SnapshotDistribution* b) {
              if (a->struct_key != b->struct_key) {
                return a->struct_key < b->struct_key;
              }
              return a->k < b->k;
            });

  std::string out;
  out.append(kCatalogSnapshotMagic, sizeof(kCatalogSnapshotMagic));
  AppendU32(&out, kCatalogSnapshotVersion);
  AppendU32(&out, 0);  // reserved
  AppendU64(&out, static_cast<uint64_t>(trees.size()));
  AppendU64(&out, static_cast<uint64_t>(dists.size()));

  for (const SnapshotTree* t : trees) {
    AppendU32(&out, static_cast<uint32_t>(t->name.size()));
    out.append(t->name);
    AppendU64(&out, t->content_fp.value());
    AppendU64(&out, t->struct_key.value());
    AppendU64(&out, static_cast<uint64_t>(t->content.size()));
    out.append(t->content);
  }

  for (const SnapshotDistribution* d : dists) {
    AppendU64(&out, d->struct_key.value());
    AppendU32(&out, static_cast<uint32_t>(d->k));
    const std::vector<KeyId>& keys = d->dist->keys();
    AppendU64(&out, static_cast<uint64_t>(keys.size()));
    for (KeyId key : keys) {
      AppendU32(&out, static_cast<uint32_t>(key));
      for (int i = 1; i <= d->k; ++i) {
        AppendDoubleBits(&out, d->dist->PrRankEq(key, i));
      }
    }
  }

  AppendU64(&out, Fnv1a64(out.data(), out.size()));
  return out;
}

Result<CatalogSnapshot> DecodeCatalogSnapshot(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);

  // 1. Shape: even an empty snapshot carries the full header and checksum.
  if (size < kHeaderBytes + kChecksumBytes) {
    return Truncated(std::to_string(size) + " bytes, but an empty snapshot is " +
                     std::to_string(kHeaderBytes + kChecksumBytes));
  }

  // 2. Magic: is this a snapshot at all?
  if (std::memcmp(bytes, kCatalogSnapshotMagic,
                  sizeof(kCatalogSnapshotMagic)) != 0) {
    return Status::ParseError("not a catalog snapshot (bad magic)");
  }

  // The record reader spans the payload only — every remaining() check is
  // against the byte before the checksum, so no record can extend into (or
  // past) the trailing u64 however its lengths are forged.
  const size_t payload_end = size - kChecksumBytes;
  Reader reader(bytes, payload_end);
  std::string magic;
  reader.ReadBytes(sizeof(kCatalogSnapshotMagic), &magic);

  // 3. Version: refuse anything newer than this build writes — a future
  // format may carry semantics this decoder would silently drop, and
  // guessing wrong corrupts answers, so unknown version => hard error.
  uint32_t version = 0;
  uint32_t reserved = 0;
  reader.ReadU32(&version);
  reader.ReadU32(&reserved);
  if (version == 0 || version > kCatalogSnapshotVersion) {
    return Status::InvalidArgument(
        "catalog snapshot format version " + std::to_string(version) +
        " is not supported by this build (newest supported: " +
        std::to_string(kCatalogSnapshotVersion) + "); refusing to guess");
  }
  if (reserved != 0) {
    return Status::ParseError(
        "catalog snapshot reserved header field is nonzero");
  }

  // 4. Checksum, before trusting any count or length: Fnv1a64 over every
  // byte up to the trailing u64. Catches bit rot, truncation-with-padding,
  // and bytes appended after the original checksum (the checksum is *at*
  // size-8, so growing the file moves where we look).
  {
    uint64_t computed = Fnv1a64(bytes, size - kChecksumBytes);
    Reader tail(bytes + size - kChecksumBytes, kChecksumBytes);
    uint64_t stored = 0;
    tail.ReadU64(&stored);
    if (computed != stored) {
      return Status::ParseError(
          "catalog snapshot checksum mismatch (file corrupted): stored " +
          HashToHex(stored) + ", computed " + HashToHex(computed));
    }
  }

  uint64_t tree_count = 0;
  uint64_t dist_count = 0;
  reader.ReadU64(&tree_count);
  reader.ReadU64(&dist_count);

  // 5. Counts vs payload: a record count whose minimum encoding exceeds the
  // remaining bytes is forged — reject before looping (this is the
  // entry-count-overflow defense; the division cannot overflow).
  const size_t min_tree_record_bytes =
      version >= 2 ? kMinTreeRecordBytesV2 : kMinTreeRecordBytesV1;
  const size_t payload_remaining = reader.remaining();
  if (tree_count > payload_remaining / min_tree_record_bytes) {
    return Status::ParseError(
        "catalog snapshot tree count " + std::to_string(tree_count) +
        " cannot fit in the remaining " + std::to_string(payload_remaining) +
        " payload bytes");
  }
  if (dist_count > payload_remaining / kMinDistRecordBytes) {
    return Status::ParseError(
        "catalog snapshot distribution count " + std::to_string(dist_count) +
        " cannot fit in the remaining " + std::to_string(payload_remaining) +
        " payload bytes");
  }

  CatalogSnapshot snapshot;
  snapshot.trees.reserve(static_cast<size_t>(tree_count));
  std::set<std::string> seen_names;
  // v1 dist records address trees by content fingerprint; v2 by structural
  // key. Both maps note whether the stored content is already canonical —
  // the condition under which a v1 fingerprint-keyed fold may legally be
  // remapped to the shape key.
  struct TreeRef {
    const SnapshotTree* record;
    bool content_is_canonical;
  };
  std::map<uint64_t, TreeRef> by_fingerprint;
  std::map<uint64_t, TreeRef> by_struct_key;

  for (uint64_t index = 0; index < tree_count; ++index) {
    const std::string where = "tree record " + std::to_string(index);
    SnapshotTree record;
    uint32_t name_len = 0;
    if (!reader.ReadU32(&name_len) || reader.remaining() < name_len) {
      return Truncated(where + " name");
    }
    reader.ReadBytes(name_len, &record.name);
    uint64_t fingerprint = 0;
    uint64_t stored_struct_key = 0;
    uint64_t content_len = 0;
    if (!reader.ReadU64(&fingerprint) ||
        (version >= 2 && !reader.ReadU64(&stored_struct_key)) ||
        !reader.ReadU64(&content_len)) {
      return Truncated(where);
    }
    if (content_len > reader.remaining()) {
      return Truncated(where + " tree text");
    }
    reader.ReadBytes(static_cast<size_t>(content_len), &record.content);

    // Semantic validation. Names and content go through exactly the checks
    // line-by-line loading applies, plus the format's own invariants: the
    // fingerprint must hash the content bytes, the bytes must be the
    // round-trip serialization of the tree they parse to (so ContentFp
    // stays injective over formatted texts — a hand-crafted denormalized
    // record would corrupt the catalog's content dedup), and in v2 the
    // stored structural key must hash the canonical re-orientation.
    if (record.name.empty()) {
      return Status::ParseError(where + ": catalog name must not be empty");
    }
    if (!seen_names.insert(record.name).second) {
      return Status::ParseError(where + ": duplicate catalog name '" +
                                record.name + "'");
    }
    if (fingerprint != Fnv1a64(record.content)) {
      return Status::ParseError(
          where + " ('" + record.name +
          "'): stored fingerprint does not hash the stored tree text");
    }
    record.content_fp = ContentFp(fingerprint);
    Result<AndXorTree> parsed = ParseTree(record.content);
    if (!parsed.ok()) {
      return Status::ParseError(where + " ('" + record.name +
                                "'): embedded tree does not parse: " +
                                parsed.status().message());
    }
    if (FormatTree(*parsed, /*indent=*/false) != record.content) {
      return Status::ParseError(
          where + " ('" + record.name +
          "'): stored tree text is not in canonical form");
    }
    // The structural key is never trusted: recompute it from the parsed
    // tree (v1 has nothing else to go by; in v2 a forged key would route
    // the binding to the wrong shard and the wrong cache lines).
    Result<AndXorTree> canonical = CanonicalizeTree(*parsed);
    if (!canonical.ok()) {
      return Status::ParseError(where + " ('" + record.name +
                                "'): embedded tree does not canonicalize: " +
                                canonical.status().message());
    }
    const std::string canonical_bytes =
        FormatTree(*canonical, /*indent=*/false);
    const bool content_is_canonical = canonical_bytes == record.content;
    record.struct_key = StructKey(Fnv1a64(canonical_bytes));
    if (version >= 2 && stored_struct_key != record.struct_key.value()) {
      return Status::ParseError(
          where + " ('" + record.name +
          "'): stored structural key does not hash the canonical form of "
          "the stored tree");
    }
    record.tree =
        std::make_shared<const AndXorTree>(std::move(parsed).ValueOrDie());
    snapshot.trees.push_back(std::move(record));
    const TreeRef ref{&snapshot.trees.back(), content_is_canonical};
    by_fingerprint.emplace(fingerprint, ref);
    by_struct_key.emplace(snapshot.trees.back().struct_key.value(), ref);
  }

  snapshot.distributions.reserve(static_cast<size_t>(dist_count));
  std::set<std::pair<uint64_t, int>> seen_dists;

  for (uint64_t index = 0; index < dist_count; ++index) {
    const std::string where = "distribution record " + std::to_string(index);
    uint64_t dist_key = 0;
    uint32_t k = 0;
    uint64_t key_count = 0;
    if (!reader.ReadU64(&dist_key) || !reader.ReadU32(&k) ||
        !reader.ReadU64(&key_count)) {
      return Truncated(where);
    }
    if (k < 1 || k > static_cast<uint32_t>(kMaxSnapshotK)) {
      return Status::ParseError(where + ": k " + std::to_string(k) +
                                " out of range [1, " +
                                std::to_string(kMaxSnapshotK) + "]");
    }
    const size_t key_block = kMinKeyBlockBytes +
                             (static_cast<size_t>(k) - 1) * sizeof(uint64_t);
    if (key_count > reader.remaining() / key_block) {
      return Truncated(where + ": key count " + std::to_string(key_count) +
                       " cannot fit in the remaining payload");
    }
    // v1 addresses the owning tree by content fingerprint, v2 by
    // structural key; a dangling reference is a defect in both.
    const std::map<uint64_t, TreeRef>& dist_index =
        version >= 2 ? by_struct_key : by_fingerprint;
    auto tree_it = dist_index.find(dist_key);
    if (tree_it == dist_index.end()) {
      return Status::ParseError(
          where + ": distribution for " +
          std::string(version >= 2 ? "structural key " : "fingerprint ") +
          HashToHex(dist_key) +
          ", which no tree record in this snapshot carries");
    }
    if (!seen_dists.emplace(dist_key, static_cast<int>(k)).second) {
      return Status::ParseError(
          where + ": duplicate (" +
          std::string(version >= 2 ? "structural key" : "fingerprint") +
          ", k) = (" + HashToHex(dist_key) + ", " + std::to_string(k) + ")");
    }

    RankDistributionBuilder builder(static_cast<int>(k));
    KeyId previous_key = 0;
    for (uint64_t key_index = 0; key_index < key_count; ++key_index) {
      uint32_t raw_key = 0;
      if (!reader.ReadU32(&raw_key)) {
        return Truncated(where + " keys");
      }
      const KeyId key = static_cast<KeyId>(raw_key);
      if (key_index > 0 && key <= previous_key) {
        return Status::ParseError(
            where + ": keys are not strictly ascending");
      }
      previous_key = key;
      builder.EnsureKey(key);
      for (uint32_t i = 1; i <= k; ++i) {
        double pr = 0.0;
        if (!reader.ReadDoubleBits(&pr)) {
          return Truncated(where + " probabilities");
        }
        if (!std::isfinite(pr) || pr < 0.0 || pr > 1.0) {
          return Status::ParseError(
              where + ": Pr(r = " + std::to_string(i) +
              ") is not a probability");
        }
        builder.Add(key, static_cast<int>(i), pr);
      }
    }
    // The distribution must cover exactly its tree's keys: a mismatched set
    // would serve zeros for keys the engine would rank. (Canonicalization
    // permutes children, never leaves, so the key set is orientation-
    // independent and this check is valid under both addressings.)
    RankDistribution dist = std::move(builder).Build();
    if (dist.keys() != tree_it->second.record->tree->Keys()) {
      return Status::ParseError(
          where + ": distribution keys do not match the keys of its tree ('" +
          tree_it->second.record->name + "')");
    }
    if (version < 2 && !tree_it->second.content_is_canonical) {
      // A v1 fold persisted for a non-canonical orientation: the re-keyed
      // cache serves only canonical-orientation folds, and remapping this
      // one could differ in the last bit. Fully validated above, then
      // dropped — the restarted replica recomputes it on first use.
      continue;
    }
    SnapshotDistribution record;
    record.struct_key = version >= 2 ? StructKey(dist_key)
                                     : tree_it->second.record->struct_key;
    record.k = static_cast<int>(k);
    record.dist = std::make_shared<const RankDistribution>(std::move(dist));
    snapshot.distributions.push_back(std::move(record));
  }

  // 6. The cursor must land exactly on the checksum: bytes between the last
  // record and the trailing u64 are garbage even when the file's author
  // re-stamped a checksum over them.
  if (reader.pos() != payload_end) {
    return Status::ParseError(
        "catalog snapshot has " + std::to_string(payload_end - reader.pos()) +
        " bytes of trailing garbage after the last record");
  }

  return snapshot;
}

CatalogSnapshot BuildCatalogSnapshot(const TreeCatalog& catalog,
                                     const QueryScheduler* scheduler) {
  CatalogSnapshot snapshot;
  std::set<uint64_t> struct_keys;
  for (CatalogEntry& entry : catalog.SnapshotEntries()) {
    SnapshotTree record;
    record.name = std::move(entry.name);
    record.content_fp = entry.content_fp;
    record.struct_key = entry.struct_key;
    // The stored bytes are the binding's wire identity — what kLoad
    // carried, which ContentFp hashes — not the canonical orientation the
    // entry's shared tree holds; the catalog retains them for exactly this
    // round trip.
    Result<std::string> content = catalog.ContentBytes(entry.content_fp);
    if (!content.ok()) continue;  // unreachable for a live entry
    record.content = std::move(content).ValueOrDie();
    record.tree = std::move(entry.tree);
    struct_keys.insert(record.struct_key.value());
    snapshot.trees.push_back(std::move(record));
  }
  if (scheduler != nullptr) {
    for (RankDistCache::RetainedEntry& entry :
         scheduler->RetainedRankDistributions()) {
      // The cache can only hold keys of catalog content, but be defensive:
      // the decoder rejects a distribution with no tree record, so never
      // write one.
      if (struct_keys.count(entry.struct_key.value()) == 0) continue;
      SnapshotDistribution record;
      record.struct_key = entry.struct_key;
      record.k = entry.k;
      record.dist = std::move(entry.dist);
      snapshot.distributions.push_back(std::move(record));
    }
  }
  return snapshot;
}

Status InstallCatalogSnapshot(const CatalogSnapshot& snapshot,
                              TreeCatalog* catalog,
                              QueryScheduler* scheduler) {
  for (const SnapshotTree& record : snapshot.trees) {
    // Through InsertCanonical — the seam every line-by-line load ends in —
    // so identities, dedup, and AlreadyExists/rebind semantics are the
    // catalog's own, not a snapshot-specific reimplementation. The content
    // bytes carry the wire identity; the catalog re-canonicalizes the tree
    // itself, so the record's orientation does not matter.
    Result<CatalogEntry> inserted =
        catalog->InsertCanonical(record.name, AndXorTree(*record.tree),
                                 record.content, record.content_fp);
    if (!inserted.ok()) return inserted.status();
  }
  if (scheduler != nullptr) {
    for (const SnapshotDistribution& record : snapshot.distributions) {
      scheduler->SeedRankDistribution(record.struct_key, record.k,
                                      record.dist);
    }
  }
  return Status::OK();
}

Status WriteCatalogSnapshotFile(const std::string& path,
                                const CatalogSnapshot& snapshot) {
  return WriteStringToFile(path, EncodeCatalogSnapshot(snapshot));
}

Result<CatalogSnapshot> ReadCatalogSnapshotFile(const std::string& path) {
  CPDB_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeCatalogSnapshot(bytes.data(), bytes.size());
}

Result<CatalogSnapshot> MmapCatalogSnapshotFile(const std::string& path) {
  CPDB_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  return DecodeCatalogSnapshot(file.data(), file.size());
}

}  // namespace cpdb

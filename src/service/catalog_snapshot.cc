// Copyright 2026 The ConsensusDB Authors

#include "service/catalog_snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <utility>

#include "common/hash.h"
#include "io/mmap_file.h"
#include "io/table_io.h"
#include "io/tree_text.h"
#include "service/query_scheduler.h"

namespace cpdb {
namespace {

constexpr size_t kHeaderBytes = 32;    // magic + version + reserved + counts
constexpr size_t kChecksumBytes = 8;   // trailing u64
// The smallest possible record of each kind — the divisor that lets the
// decoder reject a forged count before iterating: `count` records need at
// least count * minimum bytes, so a count exceeding remaining/minimum can
// never fit, however the records are shaped.
constexpr size_t kMinTreeRecordBytes = 4 + 8 + 8;   // empty name/canonical
constexpr size_t kMinDistRecordBytes = 8 + 4 + 8;   // zero keys
constexpr size_t kMinKeyBlockBytes = 4 + 8;         // key id + one double
constexpr int kMaxSnapshotK = 1 << 20;  // the scheduler's own k ceiling

// --- little-endian primitives (explicit byte shifts: the format must not
// depend on host endianness or on struct layout) -------------------------

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xffffffffULL));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

void AppendDoubleBits(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

/// Bounds-checked forward-only reader over the snapshot bytes. Every Read*
/// checks the remaining payload *before* advancing, so a truncated or
/// forged file can never walk the cursor out of the buffer — the property
/// the ASan leg of the torture matrix pins.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = static_cast<uint32_t>(data_[pos_]) |
         (static_cast<uint32_t>(data_[pos_ + 1]) << 8) |
         (static_cast<uint32_t>(data_[pos_ + 2]) << 16) |
         (static_cast<uint32_t>(data_[pos_ + 3]) << 24);
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (remaining() < 8) return false;
    ReadU32(&lo);
    ReadU32(&hi);
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }

  bool ReadDoubleBits(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool ReadBytes(size_t n, std::string* out) {
    if (remaining() < n) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status Truncated(const std::string& what) {
  return Status::ParseError("catalog snapshot truncated: " + what);
}

}  // namespace

std::string EncodeCatalogSnapshot(const CatalogSnapshot& snapshot) {
  // Sort views, not the caller's vectors: encoding is a const observation.
  std::vector<const SnapshotTree*> trees;
  trees.reserve(snapshot.trees.size());
  for (const SnapshotTree& t : snapshot.trees) trees.push_back(&t);
  std::sort(trees.begin(), trees.end(),
            [](const SnapshotTree* a, const SnapshotTree* b) {
              return a->name < b->name;
            });

  std::vector<const SnapshotDistribution*> dists;
  dists.reserve(snapshot.distributions.size());
  for (const SnapshotDistribution& d : snapshot.distributions) {
    dists.push_back(&d);
  }
  std::sort(dists.begin(), dists.end(),
            [](const SnapshotDistribution* a, const SnapshotDistribution* b) {
              if (a->fingerprint != b->fingerprint) {
                return a->fingerprint < b->fingerprint;
              }
              return a->k < b->k;
            });

  std::string out;
  out.append(kCatalogSnapshotMagic, sizeof(kCatalogSnapshotMagic));
  AppendU32(&out, kCatalogSnapshotVersion);
  AppendU32(&out, 0);  // reserved
  AppendU64(&out, static_cast<uint64_t>(trees.size()));
  AppendU64(&out, static_cast<uint64_t>(dists.size()));

  for (const SnapshotTree* t : trees) {
    AppendU32(&out, static_cast<uint32_t>(t->name.size()));
    out.append(t->name);
    AppendU64(&out, t->fingerprint);
    AppendU64(&out, static_cast<uint64_t>(t->canonical.size()));
    out.append(t->canonical);
  }

  for (const SnapshotDistribution* d : dists) {
    AppendU64(&out, d->fingerprint);
    AppendU32(&out, static_cast<uint32_t>(d->k));
    const std::vector<KeyId>& keys = d->dist->keys();
    AppendU64(&out, static_cast<uint64_t>(keys.size()));
    for (KeyId key : keys) {
      AppendU32(&out, static_cast<uint32_t>(key));
      for (int i = 1; i <= d->k; ++i) {
        AppendDoubleBits(&out, d->dist->PrRankEq(key, i));
      }
    }
  }

  AppendU64(&out, Fnv1a64(out.data(), out.size()));
  return out;
}

Result<CatalogSnapshot> DecodeCatalogSnapshot(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);

  // 1. Shape: even an empty snapshot carries the full header and checksum.
  if (size < kHeaderBytes + kChecksumBytes) {
    return Truncated(std::to_string(size) + " bytes, but an empty snapshot is " +
                     std::to_string(kHeaderBytes + kChecksumBytes));
  }

  // 2. Magic: is this a snapshot at all?
  if (std::memcmp(bytes, kCatalogSnapshotMagic,
                  sizeof(kCatalogSnapshotMagic)) != 0) {
    return Status::ParseError("not a catalog snapshot (bad magic)");
  }

  // The record reader spans the payload only — every remaining() check is
  // against the byte before the checksum, so no record can extend into (or
  // past) the trailing u64 however its lengths are forged.
  const size_t payload_end = size - kChecksumBytes;
  Reader reader(bytes, payload_end);
  std::string magic;
  reader.ReadBytes(sizeof(kCatalogSnapshotMagic), &magic);

  // 3. Version: refuse anything newer than this build writes — a future
  // format may carry semantics this decoder would silently drop, and
  // guessing wrong corrupts answers, so unknown version => hard error.
  uint32_t version = 0;
  uint32_t reserved = 0;
  reader.ReadU32(&version);
  reader.ReadU32(&reserved);
  if (version == 0 || version > kCatalogSnapshotVersion) {
    return Status::InvalidArgument(
        "catalog snapshot format version " + std::to_string(version) +
        " is not supported by this build (newest supported: " +
        std::to_string(kCatalogSnapshotVersion) + "); refusing to guess");
  }
  if (reserved != 0) {
    return Status::ParseError(
        "catalog snapshot reserved header field is nonzero");
  }

  // 4. Checksum, before trusting any count or length: Fnv1a64 over every
  // byte up to the trailing u64. Catches bit rot, truncation-with-padding,
  // and bytes appended after the original checksum (the checksum is *at*
  // size-8, so growing the file moves where we look).
  {
    uint64_t computed = Fnv1a64(bytes, size - kChecksumBytes);
    Reader tail(bytes + size - kChecksumBytes, kChecksumBytes);
    uint64_t stored = 0;
    tail.ReadU64(&stored);
    if (computed != stored) {
      return Status::ParseError(
          "catalog snapshot checksum mismatch (file corrupted): stored " +
          HashToHex(stored) + ", computed " + HashToHex(computed));
    }
  }

  uint64_t tree_count = 0;
  uint64_t dist_count = 0;
  reader.ReadU64(&tree_count);
  reader.ReadU64(&dist_count);

  // 5. Counts vs payload: a record count whose minimum encoding exceeds the
  // remaining bytes is forged — reject before looping (this is the
  // entry-count-overflow defense; the division cannot overflow).
  const size_t payload_remaining = reader.remaining();
  if (tree_count > payload_remaining / kMinTreeRecordBytes) {
    return Status::ParseError(
        "catalog snapshot tree count " + std::to_string(tree_count) +
        " cannot fit in the remaining " + std::to_string(payload_remaining) +
        " payload bytes");
  }
  if (dist_count > payload_remaining / kMinDistRecordBytes) {
    return Status::ParseError(
        "catalog snapshot distribution count " + std::to_string(dist_count) +
        " cannot fit in the remaining " + std::to_string(payload_remaining) +
        " payload bytes");
  }

  CatalogSnapshot snapshot;
  snapshot.trees.reserve(static_cast<size_t>(tree_count));
  std::set<std::string> seen_names;
  std::map<uint64_t, const SnapshotTree*> by_fingerprint;

  for (uint64_t index = 0; index < tree_count; ++index) {
    const std::string where = "tree record " + std::to_string(index);
    SnapshotTree record;
    uint32_t name_len = 0;
    if (!reader.ReadU32(&name_len) || reader.remaining() < name_len) {
      return Truncated(where + " name");
    }
    reader.ReadBytes(name_len, &record.name);
    uint64_t canonical_len = 0;
    if (!reader.ReadU64(&record.fingerprint) ||
        !reader.ReadU64(&canonical_len)) {
      return Truncated(where);
    }
    if (canonical_len > reader.remaining()) {
      return Truncated(where + " canonical tree text");
    }
    reader.ReadBytes(static_cast<size_t>(canonical_len), &record.canonical);

    // Semantic validation. Names and content go through exactly the checks
    // line-by-line loading applies, plus the format's own invariants: the
    // fingerprint must hash the canonical bytes, and the bytes must be the
    // canonical serialization of the tree they parse to (InsertCanonical's
    // contract — a hand-crafted non-canonical record would corrupt the
    // catalog's content dedup).
    if (record.name.empty()) {
      return Status::ParseError(where + ": catalog name must not be empty");
    }
    if (!seen_names.insert(record.name).second) {
      return Status::ParseError(where + ": duplicate catalog name '" +
                                record.name + "'");
    }
    if (record.fingerprint != Fnv1a64(record.canonical)) {
      return Status::ParseError(
          where + " ('" + record.name +
          "'): stored fingerprint does not hash the stored tree text");
    }
    Result<AndXorTree> parsed = ParseTree(record.canonical);
    if (!parsed.ok()) {
      return Status::ParseError(where + " ('" + record.name +
                                "'): embedded tree does not parse: " +
                                parsed.status().message());
    }
    if (FormatTree(*parsed, /*indent=*/false) != record.canonical) {
      return Status::ParseError(
          where + " ('" + record.name +
          "'): stored tree text is not in canonical form");
    }
    record.tree =
        std::make_shared<const AndXorTree>(std::move(parsed).ValueOrDie());
    snapshot.trees.push_back(std::move(record));
    by_fingerprint.emplace(snapshot.trees.back().fingerprint,
                           &snapshot.trees.back());
  }

  snapshot.distributions.reserve(static_cast<size_t>(dist_count));
  std::set<std::pair<uint64_t, int>> seen_dists;

  for (uint64_t index = 0; index < dist_count; ++index) {
    const std::string where = "distribution record " + std::to_string(index);
    uint64_t fingerprint = 0;
    uint32_t k = 0;
    uint64_t key_count = 0;
    if (!reader.ReadU64(&fingerprint) || !reader.ReadU32(&k) ||
        !reader.ReadU64(&key_count)) {
      return Truncated(where);
    }
    if (k < 1 || k > static_cast<uint32_t>(kMaxSnapshotK)) {
      return Status::ParseError(where + ": k " + std::to_string(k) +
                                " out of range [1, " +
                                std::to_string(kMaxSnapshotK) + "]");
    }
    const size_t key_block = kMinKeyBlockBytes +
                             (static_cast<size_t>(k) - 1) * sizeof(uint64_t);
    if (key_count > reader.remaining() / key_block) {
      return Truncated(where + ": key count " + std::to_string(key_count) +
                       " cannot fit in the remaining payload");
    }
    auto tree_it = by_fingerprint.find(fingerprint);
    if (tree_it == by_fingerprint.end()) {
      return Status::ParseError(
          where + ": distribution for fingerprint " + HashToHex(fingerprint) +
          ", which no tree record in this snapshot carries");
    }
    if (!seen_dists.emplace(fingerprint, static_cast<int>(k)).second) {
      return Status::ParseError(where + ": duplicate (fingerprint, k) = (" +
                                HashToHex(fingerprint) + ", " +
                                std::to_string(k) + ")");
    }

    RankDistributionBuilder builder(static_cast<int>(k));
    KeyId previous_key = 0;
    for (uint64_t key_index = 0; key_index < key_count; ++key_index) {
      uint32_t raw_key = 0;
      if (!reader.ReadU32(&raw_key)) {
        return Truncated(where + " keys");
      }
      const KeyId key = static_cast<KeyId>(raw_key);
      if (key_index > 0 && key <= previous_key) {
        return Status::ParseError(
            where + ": keys are not strictly ascending");
      }
      previous_key = key;
      builder.EnsureKey(key);
      for (uint32_t i = 1; i <= k; ++i) {
        double pr = 0.0;
        if (!reader.ReadDoubleBits(&pr)) {
          return Truncated(where + " probabilities");
        }
        if (!std::isfinite(pr) || pr < 0.0 || pr > 1.0) {
          return Status::ParseError(
              where + ": Pr(r = " + std::to_string(i) +
              ") is not a probability");
        }
        builder.Add(key, static_cast<int>(i), pr);
      }
    }
    // The distribution must cover exactly its tree's keys: a mismatched set
    // would serve zeros for keys the engine would rank.
    RankDistribution dist = std::move(builder).Build();
    if (dist.keys() != tree_it->second->tree->Keys()) {
      return Status::ParseError(
          where + ": distribution keys do not match the keys of its tree ('" +
          tree_it->second->name + "')");
    }
    SnapshotDistribution record;
    record.fingerprint = fingerprint;
    record.k = static_cast<int>(k);
    record.dist = std::make_shared<const RankDistribution>(std::move(dist));
    snapshot.distributions.push_back(std::move(record));
  }

  // 6. The cursor must land exactly on the checksum: bytes between the last
  // record and the trailing u64 are garbage even when the file's author
  // re-stamped a checksum over them.
  if (reader.pos() != payload_end) {
    return Status::ParseError(
        "catalog snapshot has " + std::to_string(payload_end - reader.pos()) +
        " bytes of trailing garbage after the last record");
  }

  return snapshot;
}

CatalogSnapshot BuildCatalogSnapshot(const TreeCatalog& catalog,
                                     const QueryScheduler* scheduler) {
  CatalogSnapshot snapshot;
  std::set<uint64_t> fingerprints;
  for (CatalogEntry& entry : catalog.SnapshotEntries()) {
    SnapshotTree record;
    record.name = std::move(entry.name);
    record.fingerprint = entry.fingerprint;
    record.canonical = FormatTree(*entry.tree, /*indent=*/false);
    record.tree = std::move(entry.tree);
    fingerprints.insert(record.fingerprint);
    snapshot.trees.push_back(std::move(record));
  }
  if (scheduler != nullptr) {
    for (RankDistCache::RetainedEntry& entry :
         scheduler->RetainedRankDistributions()) {
      // The cache can only hold keys of catalog content, but be defensive:
      // the decoder rejects a distribution with no tree record, so never
      // write one.
      if (fingerprints.count(entry.fingerprint) == 0) continue;
      SnapshotDistribution record;
      record.fingerprint = entry.fingerprint;
      record.k = entry.k;
      record.dist = std::move(entry.dist);
      snapshot.distributions.push_back(std::move(record));
    }
  }
  return snapshot;
}

Status InstallCatalogSnapshot(const CatalogSnapshot& snapshot,
                              TreeCatalog* catalog,
                              QueryScheduler* scheduler) {
  for (const SnapshotTree& record : snapshot.trees) {
    // Through InsertCanonical — the seam every line-by-line load ends in —
    // so fingerprints, dedup, and AlreadyExists/rebind semantics are the
    // catalog's own, not a snapshot-specific reimplementation.
    Result<CatalogEntry> inserted = catalog->InsertCanonical(
        record.name, AndXorTree(*record.tree), record.canonical,
        record.fingerprint);
    if (!inserted.ok()) return inserted.status();
  }
  if (scheduler != nullptr) {
    for (const SnapshotDistribution& record : snapshot.distributions) {
      scheduler->SeedRankDistribution(record.fingerprint, record.k,
                                      record.dist);
    }
  }
  return Status::OK();
}

Status WriteCatalogSnapshotFile(const std::string& path,
                                const CatalogSnapshot& snapshot) {
  return WriteStringToFile(path, EncodeCatalogSnapshot(snapshot));
}

Result<CatalogSnapshot> ReadCatalogSnapshotFile(const std::string& path) {
  CPDB_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeCatalogSnapshot(bytes.data(), bytes.size());
}

Result<CatalogSnapshot> MmapCatalogSnapshotFile(const std::string& path) {
  CPDB_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  return DecodeCatalogSnapshot(file.data(), file.size());
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// CostLruCache — the shared core behind the serving layer's memo caches
// (RankDistCache, MarginalsCache): a thread-safe key -> shared_ptr<const
// Value> store with
//
//   * cost-aware LRU eviction under a byte budget. Each retained value is
//     charged a caller-supplied byte cost; whenever the charged total would
//     exceed the budget, least-recently-used entries are dropped until it
//     fits. The budget bounds *retained* state only — values being computed
//     or still referenced by in-flight queries live on through their
//     shared_ptr, so eviction can never invalidate a handle; and
//
//   * single-flight computation. Concurrent GetOrCompute misses for one key
//     run `compute` exactly once: the first caller computes (outside the
//     lock, so a fold fanning across the engine's thread pool never
//     serializes unrelated cache traffic), later callers block on that
//     in-flight computation and share its result. Under serve traffic the
//     duplicated O(L^2 k) fold this prevents is the difference between a
//     thundering herd recomputing a hot tree and one fold per key.
//
// Values must be deterministic functions of their key (the serving layer
// caches only engine results, which are schedule-deterministic) — that is
// what makes eviction and coalescing invisible in answers: recomputing an
// evicted entry reproduces it bit for bit, and a coalesced caller receives
// exactly the bytes it would have computed itself.

#ifndef CPDB_SERVICE_LRU_CACHE_H_
#define CPDB_SERVICE_LRU_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace cpdb {

/// \brief Byte budget meaning "never evict" (the default for schedulers
/// constructed without --cache-budget).
inline constexpr int64_t kUnboundedCacheBytes = -1;

/// \brief Counters describing cache behavior since construction (or the
/// last Clear). Every GetOrCompute call lands in exactly one of hits /
/// misses / coalesced, so the three sum to the call count.
struct CacheStats {
  int64_t hits = 0;       ///< entry was retained; served without computing
  int64_t misses = 0;     ///< this call ran `compute`
  int64_t coalesced = 0;  ///< waited on another caller's in-flight compute
  int64_t entries = 0;    ///< retained entries right now
  int64_t bytes = 0;      ///< charged bytes of retained entries right now
  int64_t evictions = 0;  ///< entries dropped to fit the byte budget
};

/// \brief Thread-safe single-flight memo with cost-aware LRU eviction.
///
/// Concurrency: all members may be called from any thread. `compute` and
/// `cost` run outside the internal lock; everything else (map updates, LRU
/// maintenance, eviction, counters) runs under it, so stats() snapshots are
/// consistent — in particular, bytes <= byte_budget() in every snapshot.
template <typename Key, typename Value>
class CostLruCache {
 public:
  /// \brief `cost(value)` is the byte charge for retaining `value`;
  /// `byte_budget` < 0 disables eviction, 0 retains nothing (the cache
  /// still coalesces concurrent computes — a pure single-flight gate).
  CostLruCache(int64_t byte_budget,
               std::function<int64_t(const Value&)> cost)
      : byte_budget_(byte_budget), cost_(std::move(cost)) {}

  /// \brief The value for `key`, invoking `compute` on a miss (at most once
  /// across concurrent callers) and retaining the result under the budget.
  /// The returned handle stays valid after eviction or Clear (shared
  /// ownership).
  ///
  /// If `compute` throws, the exception propagates to the computing caller
  /// and the in-flight record is abandoned (done, no value): coalesced
  /// waiters wake and retry as fresh callers rather than hanging on a
  /// flight that will never land — a transient failure must not wedge its
  /// key forever in a long-lived server. A retrying waiter counts again
  /// (as a new hit/miss/coalesced), so on this path — and only this path —
  /// the counters can exceed the call count.
  std::shared_ptr<const Value> GetOrCompute(
      const Key& key, const std::function<Value()>& compute) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        return it->second.value;
      }
      auto in_flight = inflight_.find(key);
      if (in_flight != inflight_.end()) {
        // Single-flight: somebody is already computing this key. Wait for
        // their result instead of duplicating the fold; keep a handle on
        // the flight record, which outlives its inflight_ slot.
        ++stats_.coalesced;
        std::shared_ptr<Flight> flight = in_flight->second;
        cv_.wait(lock, [&] { return flight->done; });
        if (flight->value != nullptr) return flight->value;
        continue;  // the compute threw; start over as a fresh caller
      }
      break;
    }
    ++stats_.misses;
    auto flight = std::make_shared<Flight>();
    inflight_.emplace(key, flight);
    lock.unlock();
    // Compute (and price) outside the lock: the fold may fan across a
    // thread pool and must not serialize unrelated cache traffic behind
    // it.
    std::shared_ptr<const Value> value;
    int64_t charged = 0;
    try {
      value = std::make_shared<const Value>(compute());
      charged = cost_ ? cost_(*value) : 0;
    } catch (...) {
      lock.lock();
      flight->done = true;  // value stays null: "failed", not "pending"
      inflight_.erase(key);
      cv_.notify_all();
      throw;
    }
    lock.lock();
    flight->value = value;
    flight->done = true;
    inflight_.erase(key);
    cv_.notify_all();
    // Retain under the budget. An entry whose own cost exceeds the whole
    // budget is served but never retained (retaining then instantly
    // evicting it would cycle the cache for nothing); with the budget at 0
    // that is every entry, which reduces the cache to its single-flight
    // gate. No other caller can have inserted `key` meanwhile — they would
    // have coalesced on our flight — so this insert cannot clobber.
    if (byte_budget_ < 0 || charged <= byte_budget_) {
      lru_.push_front(key);
      entries_.emplace(key, Entry{value, charged, lru_.begin()});
      stats_.bytes += charged;
      stats_.entries = static_cast<int64_t>(entries_.size());
      EvictToBudgetLocked();
    }
    return value;
  }

  /// \brief The retained entry, or nullptr without computing or waiting.
  /// A probe, not a query: no stats, and the LRU order is left untouched.
  std::shared_ptr<const Value> Peek(const Key& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : it->second.value;
  }

  /// \brief Retains `value` for `key` without computing — the seam a warm
  /// restart uses to seed a cache from persisted state. Charged and
  /// LRU-evicted exactly like a computed entry (an oversized value is
  /// silently not retained, same as GetOrCompute), but counted in no
  /// hit/miss/coalesced counter: seeding is provisioning, not traffic.
  /// A key already retained or currently in flight is left alone (the
  /// existing value wins — it was computed by the engine this process
  /// trusts); returns whether `value` was retained.
  bool Put(const Key& key, std::shared_ptr<const Value> value) {
    if (value == nullptr) return false;
    const int64_t charged = cost_ ? cost_(*value) : 0;
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.find(key) != entries_.end() ||
        inflight_.find(key) != inflight_.end()) {
      return false;
    }
    if (byte_budget_ >= 0 && charged > byte_budget_) return false;
    lru_.push_front(key);
    entries_.emplace(key, Entry{std::move(value), charged, lru_.begin()});
    stats_.bytes += charged;
    stats_.entries = static_cast<int64_t>(entries_.size());
    EvictToBudgetLocked();
    return true;
  }

  /// \brief All retained entries in key order (deterministic: the map's
  /// order, independent of insertion or LRU history) — the enumeration a
  /// snapshot save walks. Handles share ownership, so the caller's view
  /// stays valid however the cache evicts afterwards.
  std::vector<std::pair<Key, std::shared_ptr<const Value>>> Entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<Key, std::shared_ptr<const Value>>> entries;
    entries.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      entries.emplace_back(key, entry.value);
    }
    return entries;
  }

  /// \brief Counter snapshot (consistent: taken under the lock).
  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  int64_t byte_budget() const { return byte_budget_; }

  /// \brief Drops all retained entries and resets the counters. In-flight
  /// computations are not interrupted: they complete, wake their waiters,
  /// and retain their (freshly charged) results.
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    lru_.clear();
    stats_ = CacheStats();
  }

 private:
  struct Flight {
    bool done = false;
    std::shared_ptr<const Value> value;
  };
  struct Entry {
    std::shared_ptr<const Value> value;
    int64_t bytes = 0;
    typename std::list<Key>::iterator lru_it;
  };

  void EvictToBudgetLocked() {
    if (byte_budget_ < 0) return;
    while (stats_.bytes > byte_budget_ && !lru_.empty()) {
      auto it = entries_.find(lru_.back());
      stats_.bytes -= it->second.bytes;
      ++stats_.evictions;
      entries_.erase(it);
      lru_.pop_back();
    }
    stats_.entries = static_cast<int64_t>(entries_.size());
  }

  const int64_t byte_budget_;
  const std::function<int64_t(const Value&)> cost_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // front = most recently used; entries_ holds the iterator for O(1) touch.
  std::list<Key> lru_;
  std::map<Key, Entry> entries_;
  std::map<Key, std::shared_ptr<Flight>> inflight_;
  CacheStats stats_;
};

}  // namespace cpdb

#endif  // CPDB_SERVICE_LRU_CACHE_H_

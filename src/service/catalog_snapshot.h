// Copyright 2026 The ConsensusDB Authors
//
// Versioned binary catalog snapshots — the persistence layer that lets a
// restarted serving process (or a newly spawned shard replica) come up warm
// instead of re-parsing and re-folding every tree. A snapshot file holds:
//
//   * a magic + format-version header (unknown version => refuse, never
//     guess — the untangle basetree.h BASETREE_MAGIC discipline);
//   * one record per catalog binding: (name, content fingerprint, canonical
//     tree serialization). The canonical text is the format's source of
//     truth: the fingerprint is definitionally Fnv1a64 over it, so a loaded
//     catalog's fingerprints are byte-identical to a cold catalog's by
//     construction, not by trust in the file;
//   * optional precomputed (fingerprint, k) rank-distribution sections —
//     the serving layer's most expensive derived state (the O(L^2 k) fold),
//     persisted so a restarted replica's first Top-k batch hits warm;
//   * a whole-file FNV-1a checksum.
//
// This is the first input surface the process cannot trust: the bytes come
// from disk, not from our own validated structures. DecodeCatalogSnapshot
// therefore treats the file as adversarial — every length is bounds-checked
// against the remaining payload before use, every embedded tree re-parses
// and re-validates through ParseTree, every fingerprint is recomputed and
// compared, and any failure returns a typed Status without touching any
// catalog (tests/catalog_snapshot_test.cc runs the corruption torture
// matrix under ASan/UBSan).
//
// Format v1, all integers little-endian:
//
//   offset 0   8 bytes   magic "CPDBSNAP"
//   offset 8   u32       format version (1)
//   offset 12  u32       reserved (must be 0 in v1)
//   offset 16  u64       tree record count
//   offset 24  u64       distribution record count
//   ...        tree records, then distribution records (layouts below)
//   size-8     u64       FNV-1a checksum over bytes [0, size-8)
//
//   tree record:  u32 name length, name bytes, u64 fingerprint,
//                 u64 canonical length, canonical bytes
//   dist record:  u64 tree fingerprint, u32 k, u64 key count, then per key:
//                 i32 key id, then k doubles (raw IEEE-754 bits, little-
//                 endian): Pr(r(key) = i) for i = 1..k
//
// Records are written in sorted order (trees by name, distributions by
// (fingerprint, k)), so encoding is a pure function of the logical content:
// save -> load -> save reproduces the file byte for byte, independent of
// catalog load order or cache LRU history.

#ifndef CPDB_SERVICE_CATALOG_SNAPSHOT_H_
#define CPDB_SERVICE_CATALOG_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/rank_distribution.h"
#include "model/and_xor_tree.h"
#include "service/tree_catalog.h"

namespace cpdb {

class QueryScheduler;

/// \brief The 8 magic bytes opening every snapshot file.
inline constexpr char kCatalogSnapshotMagic[8] = {'C', 'P', 'D', 'B',
                                                  'S', 'N', 'A', 'P'};

/// \brief The newest format version this build reads and the only one it
/// writes. A file stamped with a larger version is refused outright — a
/// newer format may carry semantics this decoder would silently drop.
inline constexpr uint32_t kCatalogSnapshotVersion = 1;

/// \brief One persisted catalog binding. `tree` is the parsed, validated
/// form of `canonical`; `fingerprint` is Fnv1a64(canonical) (both are
/// verified on decode, supplied by the catalog on save).
struct SnapshotTree {
  std::string name;
  uint64_t fingerprint = 0;
  std::string canonical;
  std::shared_ptr<const AndXorTree> tree;
};

/// \brief One persisted precomputed rank distribution, keyed exactly like
/// RankDistCache: (tree content fingerprint, k).
struct SnapshotDistribution {
  uint64_t fingerprint = 0;
  int k = 0;
  std::shared_ptr<const RankDistribution> dist;
};

/// \brief The decoded (or to-be-encoded) logical content of a snapshot.
struct CatalogSnapshot {
  std::vector<SnapshotTree> trees;
  std::vector<SnapshotDistribution> distributions;
};

/// \brief Serializes a snapshot to the v1 byte format. Deterministic:
/// records are emitted in sorted order (trees by name, distributions by
/// (fingerprint, k)) whatever order the vectors hold, so the bytes are a
/// pure function of the logical content.
std::string EncodeCatalogSnapshot(const CatalogSnapshot& snapshot);

/// \brief Parses and fully validates `size` bytes of snapshot. On any
/// defect — truncation, bad magic, unsupported future version, checksum
/// mismatch, counts or lengths overflowing the payload, an embedded tree
/// that fails ParseTree or is not in canonical form, a fingerprint that
/// does not hash its bytes, duplicate or dangling records, non-finite
/// probabilities, trailing garbage — returns a typed Status describing the
/// first defect found. Never aborts, never returns a partially valid
/// snapshot.
Result<CatalogSnapshot> DecodeCatalogSnapshot(const void* data, size_t size);

/// \brief Captures the live serving state: every catalog binding, plus —
/// when `scheduler` is non-null — the retained entries of its
/// rank-distribution cache (filtered to fingerprints the catalog holds) as
/// the precomputed sections. Pass a null scheduler for a trees-only
/// snapshot.
CatalogSnapshot BuildCatalogSnapshot(const TreeCatalog& catalog,
                                     const QueryScheduler* scheduler);

/// \brief Installs a decoded snapshot: inserts every tree through
/// TreeCatalog::InsertCanonical — the same seam line-by-line loading ends
/// in, so fingerprints and AlreadyExists/rebind semantics are byte-identical
/// to feeding the canonical texts as individual loads — and, when
/// `scheduler` is non-null, seeds its rank-distribution cache with the
/// snapshot's precomputed sections. Into a fresh catalog this cannot fail
/// (decode already validated everything); into a pre-populated catalog a
/// name bound to different content fails with the catalog's own
/// AlreadyExists, leaving earlier entries installed — exactly as the same
/// sequence of loads would.
Status InstallCatalogSnapshot(const CatalogSnapshot& snapshot,
                              TreeCatalog* catalog, QueryScheduler* scheduler);

/// \brief Encodes and writes `snapshot` to `path` (truncating).
Status WriteCatalogSnapshotFile(const std::string& path,
                                const CatalogSnapshot& snapshot);

/// \brief The streaming-read load path: reads the whole file into memory,
/// then decodes. A missing or unreadable path is an error (a warm restart
/// must not silently fall back to a cold start).
Result<CatalogSnapshot> ReadCatalogSnapshotFile(const std::string& path);

/// \brief The mmap load path: maps the file read-only (io/mmap_file.h) and
/// decodes from the mapping — same validation, same typed errors, same
/// resulting snapshot as the read path; only how the bytes arrive differs.
Result<CatalogSnapshot> MmapCatalogSnapshotFile(const std::string& path);

}  // namespace cpdb

#endif  // CPDB_SERVICE_CATALOG_SNAPSHOT_H_

// Copyright 2026 The ConsensusDB Authors
//
// Versioned binary catalog snapshots — the persistence layer that lets a
// restarted serving process (or a newly spawned shard replica) come up warm
// instead of re-parsing and re-folding every tree. A snapshot file holds:
//
//   * a magic + format-version header (unknown version => refuse, never
//     guess — the untangle basetree.h BASETREE_MAGIC discipline);
//   * one record per catalog binding: (name, content fingerprint,
//     structural key, content serialization). The content text is the
//     format's source of truth: ContentFp is definitionally Fnv1a64 over
//     it, and StructKey is Fnv1a64 over the canonical re-orientation of
//     the tree it parses to, so a loaded catalog's identities are
//     byte-identical to a cold catalog's by construction, not by trust in
//     the file (the stored StructKey is verified against the recomputed
//     one — it exists in the file so operators and tools can read the
//     dedup identity without re-canonicalizing);
//   * optional precomputed (StructKey, k) rank-distribution sections —
//     the serving layer's most expensive derived state (the O(L^2 k) fold),
//     persisted so a restarted replica's first Top-k batch hits warm;
//   * a whole-file FNV-1a checksum.
//
// This is the first input surface the process cannot trust: the bytes come
// from disk, not from our own validated structures. DecodeCatalogSnapshot
// therefore treats the file as adversarial — every length is bounds-checked
// against the remaining payload before use, every embedded tree re-parses
// and re-validates through ParseTree, every fingerprint is recomputed and
// compared, and any failure returns a typed Status without touching any
// catalog (tests/catalog_snapshot_test.cc runs the corruption torture
// matrix under ASan/UBSan).
//
// Format v2 (the version this build writes), all integers little-endian:
//
//   offset 0   8 bytes   magic "CPDBSNAP"
//   offset 8   u32       format version (2)
//   offset 12  u32       reserved (must be 0)
//   offset 16  u64       tree record count
//   offset 24  u64       distribution record count
//   ...        tree records, then distribution records (layouts below)
//   size-8     u64       FNV-1a checksum over bytes [0, size-8)
//
//   tree record:  u32 name length, name bytes, u64 content fingerprint,
//                 u64 structural key, u64 content length, content bytes
//   dist record:  u64 structural key, u32 k, u64 key count, then per key:
//                 i32 key id, then k doubles (raw IEEE-754 bits, little-
//                 endian): Pr(r(key) = i) for i = 1..k
//
// Format v1 (still readable) differs in two ways: tree records carry no
// structural key (it is recomputed on load by canonicalizing the parsed
// tree), and dist records are keyed by content fingerprint. A v1 dist
// record is remapped to its tree's StructKey only when the stored content
// is already in canonical orientation — otherwise it is dropped (still
// fully validated) rather than seeded, because the persisted fold ran over
// an orientation the re-keyed cache will never serve, and a last-bit
// mismatch there would break bitwise determinism.
//
// Records are written in sorted order (trees by name, distributions by
// (StructKey, k)), so encoding is a pure function of the logical content:
// save -> load -> save reproduces the file byte for byte, independent of
// catalog load order or cache LRU history.

#ifndef CPDB_SERVICE_CATALOG_SNAPSHOT_H_
#define CPDB_SERVICE_CATALOG_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "core/rank_distribution.h"
#include "model/and_xor_tree.h"
#include "service/tree_catalog.h"

namespace cpdb {

class QueryScheduler;

/// \brief The 8 magic bytes opening every snapshot file.
inline constexpr char kCatalogSnapshotMagic[8] = {'C', 'P', 'D', 'B',
                                                  'S', 'N', 'A', 'P'};

/// \brief The newest format version this build reads and the only one it
/// writes. A file stamped with a larger version is refused outright — a
/// newer format may carry semantics this decoder would silently drop.
/// Version 1 (pre-structural-key) files are still read; see the format
/// notes above for how their records map into the two-level identity.
inline constexpr uint32_t kCatalogSnapshotVersion = 2;

/// \brief One persisted catalog binding. `content` is the wire-visible
/// serialization (what a kLoad of this binding carried); `tree` is its
/// parsed, validated form; `content_fp` is Fnv1a64(content) and
/// `struct_key` hashes the canonical re-orientation (all verified on
/// decode, supplied by the catalog on save).
struct SnapshotTree {
  std::string name;
  ContentFp content_fp;
  StructKey struct_key;
  std::string content;
  std::shared_ptr<const AndXorTree> tree;
};

/// \brief One persisted precomputed rank distribution, keyed exactly like
/// RankDistCache: (structural key, k).
struct SnapshotDistribution {
  StructKey struct_key;
  int k = 0;
  std::shared_ptr<const RankDistribution> dist;
};

/// \brief The decoded (or to-be-encoded) logical content of a snapshot.
struct CatalogSnapshot {
  std::vector<SnapshotTree> trees;
  std::vector<SnapshotDistribution> distributions;
};

/// \brief Serializes a snapshot to the v2 byte format. Deterministic:
/// records are emitted in sorted order (trees by name, distributions by
/// (StructKey, k)) whatever order the vectors hold, so the bytes are a
/// pure function of the logical content.
std::string EncodeCatalogSnapshot(const CatalogSnapshot& snapshot);

/// \brief Parses and fully validates `size` bytes of snapshot (v1 or v2).
/// On any defect — truncation, bad magic, unsupported future version,
/// checksum mismatch, counts or lengths overflowing the payload, an
/// embedded tree that fails ParseTree or whose stored text is not the
/// round-trip serialization, a fingerprint that does not hash its bytes, a
/// structural key that does not hash the canonical re-orientation,
/// duplicate or dangling records, non-finite probabilities, trailing
/// garbage — returns a typed Status describing the first defect found.
/// Never aborts, never returns a partially valid snapshot.
Result<CatalogSnapshot> DecodeCatalogSnapshot(const void* data, size_t size);

/// \brief Captures the live serving state: every catalog binding (with its
/// stored wire-visible content bytes), plus — when `scheduler` is non-null
/// — the retained entries of its rank-distribution cache (filtered to
/// structural keys the catalog holds) as the precomputed sections. Pass a
/// null scheduler for a trees-only snapshot.
CatalogSnapshot BuildCatalogSnapshot(const TreeCatalog& catalog,
                                     const QueryScheduler* scheduler);

/// \brief Installs a decoded snapshot: inserts every tree through
/// TreeCatalog::InsertCanonical — the same seam line-by-line loading ends
/// in, so identities, dedup, and AlreadyExists/rebind semantics are
/// byte-identical to feeding the content texts as individual loads — and,
/// when `scheduler` is non-null, seeds its rank-distribution cache with
/// the snapshot's precomputed sections. Into a fresh catalog this cannot
/// fail (decode already validated everything); into a pre-populated
/// catalog a name bound to different content fails with the catalog's own
/// AlreadyExists, leaving earlier entries installed — exactly as the same
/// sequence of loads would.
Status InstallCatalogSnapshot(const CatalogSnapshot& snapshot,
                              TreeCatalog* catalog, QueryScheduler* scheduler);

/// \brief Encodes and writes `snapshot` to `path` (truncating).
Status WriteCatalogSnapshotFile(const std::string& path,
                                const CatalogSnapshot& snapshot);

/// \brief The streaming-read load path: reads the whole file into memory,
/// then decodes. A missing or unreadable path is an error (a warm restart
/// must not silently fall back to a cold start).
Result<CatalogSnapshot> ReadCatalogSnapshotFile(const std::string& path);

/// \brief The mmap load path: maps the file read-only (io/mmap_file.h) and
/// decodes from the mapping — same validation, same typed errors, same
/// resulting snapshot as the read path; only how the bytes arrive differs.
Result<CatalogSnapshot> MmapCatalogSnapshotFile(const std::string& path);

}  // namespace cpdb

#endif  // CPDB_SERVICE_CATALOG_SNAPSHOT_H_

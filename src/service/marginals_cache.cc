// Copyright 2026 The ConsensusDB Authors

#include "service/marginals_cache.h"

namespace cpdb {

namespace {

// Size-based like RankDistribution::ApproxBytes: deterministic in the
// element count, so eviction decisions replay identically across runs.
int64_t MarginalVectorBytes(const std::vector<double>& marginals) {
  return static_cast<int64_t>(sizeof(std::vector<double>)) +
         static_cast<int64_t>(marginals.size()) *
             static_cast<int64_t>(sizeof(double));
}

}  // namespace

MarginalsCache::MarginalsCache(int64_t byte_budget)
    : cache_(byte_budget, MarginalVectorBytes) {}

std::shared_ptr<const std::vector<double>> MarginalsCache::GetOrCompute(
    StructKey struct_key,
    const std::function<std::vector<double>()>& compute) {
  return cache_.GetOrCompute(struct_key.value(), compute);
}

std::shared_ptr<const std::vector<double>> MarginalsCache::Peek(
    StructKey struct_key) const {
  return cache_.Peek(struct_key.value());
}

CacheStats MarginalsCache::stats() const { return cache_.stats(); }

void MarginalsCache::Clear() { cache_.Clear(); }

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// MarginalsCache — the sibling of RankDistCache for set-consensus traffic:
// memoizes Engine::LeafMarginals, the one tree fold every `world` query
// begins with, keyed by StructKey alone (marginals do not depend on k, and
// — like every fold — they run over the canonical orientation, so permuted
// duplicates share one entry). Before this cache the scheduler re-folded
// the marginals per request;
// with it, every mean/median world and expected-distance computation
// against one tree shares a single fold, exactly as Top-k queries share
// their rank distribution.
//
// Same contract as RankDistCache (both wrap CostLruCache): single-flight
// computation, byte-budgeted LRU eviction (a marginal vector is charged
// its size-based footprint), handles that survive eviction, and values the
// engine computes deterministically — so caching is observable only in the
// CacheStats counters, never in answers.

#ifndef CPDB_SERVICE_MARGINALS_CACHE_H_
#define CPDB_SERVICE_MARGINALS_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "service/lru_cache.h"

namespace cpdb {

/// \brief Thread-safe StructKey -> leaf-marginal-vector memo with
/// single-flight computation and byte-budgeted LRU eviction. The cached
/// vector is indexed by NodeId of the CANONICAL orientation, as produced by
/// Engine::LeafMarginals over the catalog's shared tree handle.
class MarginalsCache {
 public:
  explicit MarginalsCache(int64_t byte_budget = kUnboundedCacheBytes);

  /// \brief The marginal vector for `struct_key`, invoking `compute` on a
  /// miss — at most once across concurrent callers — and retaining the
  /// result under the budget. The handle stays valid after eviction or
  /// Clear (shared ownership).
  std::shared_ptr<const std::vector<double>> GetOrCompute(
      StructKey struct_key,
      const std::function<std::vector<double>()>& compute);

  /// \brief The retained entry, or nullptr without computing; no stats or
  /// LRU effect.
  std::shared_ptr<const std::vector<double>> Peek(StructKey struct_key) const;

  /// \brief Counter snapshot; bytes <= byte_budget() in every snapshot.
  CacheStats stats() const;

  int64_t byte_budget() const { return cache_.byte_budget(); }

  /// \brief Drops all retained entries and resets the counters.
  void Clear();

 private:
  CostLruCache<uint64_t, std::vector<double>> cache_;
};

}  // namespace cpdb

#endif  // CPDB_SERVICE_MARGINALS_CACHE_H_

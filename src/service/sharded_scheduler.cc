// Copyright 2026 The ConsensusDB Authors

#include "service/sharded_scheduler.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "service/catalog_snapshot.h"
#include "service/op_registry.h"

namespace cpdb {

namespace {

void AccumulateCacheStats(CacheStats* total, const CacheStats& part) {
  total->hits += part.hits;
  total->misses += part.misses;
  total->coalesced += part.coalesced;
  total->entries += part.entries;
  total->bytes += part.bytes;
  total->evictions += part.evictions;
}

}  // namespace

ShardedScheduler::ShardedScheduler(int num_shards,
                                   const EngineOptions& engine_options,
                                   SchedulerOptions options)
    : clock_(options.clock != nullptr ? options.clock
                                      : SteadyClock::Instance()) {
  const int n = std::max(num_shards, 1);
  shards_.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    Shard shard;
    shard.engine = std::make_unique<Engine>(engine_options);
    shard.catalog = std::make_unique<TreeCatalog>();
    shard.scheduler = std::make_unique<QueryScheduler>(
        shard.engine.get(), shard.catalog.get(), options);
    shards_.push_back(std::move(shard));
  }
}

int ShardedScheduler::ShardOfKey(StructKey key, int num_shards) {
  // SplitMix64 finalizer: a bijective remix, so the partition stays a pure
  // deterministic function of the structural key while spreading any
  // residual structure in the FNV-1a value across all 64 bits before the
  // modulo.
  uint64_t x = key.value();
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<int>(x % static_cast<uint64_t>(std::max(num_shards, 1)));
}

int ShardedScheduler::ThreadsPerShard(int total_threads, int num_shards) {
  int total = total_threads;
  if (total < 1) {
    // The ThreadPool convention: values < 1 mean the hardware concurrency.
    // Resolve it here so the split divides the real budget instead of
    // handing every shard its own full-machine pool.
    total = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  return std::max(1, total / std::max(num_shards, 1));
}

Result<CatalogEntry> ShardedScheduler::Insert(const std::string& name,
                                              AndXorTree tree) {
  // Same error (and same cheap-first ordering) as TreeCatalog::Insert.
  if (name.empty()) {
    return Status::InvalidArgument("catalog name must not be empty");
  }
  // Serialize, hash, and canonicalize once, outside the directory lock;
  // the catalog reuses the identity via InsertWithIdentity instead of
  // recomputing it.
  CPDB_ASSIGN_OR_RETURN(TreeIdentity identity,
                        TreeCatalog::ComputeIdentity(std::move(tree)));
  return InsertIdentityRouted(name, identity);
}

Result<CatalogEntry> ShardedScheduler::InsertIdentityRouted(
    const std::string& name, const TreeIdentity& identity, int* out_shard) {
  std::lock_guard<std::mutex> lock(mu_);
  // A bound name stays on its shard: re-inserting identical content lands
  // there anyway (same structural key, same shard), and different content
  // must reach the catalog that holds the name so the rebind is rejected
  // with exactly the AlreadyExists the single catalog reports. The
  // catalog insert runs under mu_ so two racing loads of one unbound name
  // cannot route to different shards; loads are the cold path (queries
  // take mu_ only for a map lookup), so the wider section is cheap.
  auto it = directory_.find(name);
  const int shard = it != directory_.end()
                        ? it->second
                        : ShardOfKey(identity.struct_key, num_shards());
  if (out_shard != nullptr) *out_shard = shard;
  Result<CatalogEntry> entry =
      shards_[static_cast<size_t>(shard)].catalog->InsertWithIdentity(
          name, identity);
  if (entry.ok()) directory_.emplace(name, shard);
  return entry;
}

Status ShardedScheduler::InstallSnapshot(const CatalogSnapshot& snapshot) {
  for (const SnapshotTree& record : snapshot.trees) {
    // Same cheap-first name check as Insert (the decoder already rejects
    // empty names; installing a hand-built snapshot gets the same error a
    // load would).
    if (record.name.empty()) {
      return Status::InvalidArgument("catalog name must not be empty");
    }
    // Through the same routed identity path kLoad takes — the directory
    // learns every binding, so queries route; keys and
    // AlreadyExists/rebind semantics are the catalog's own. ComputeIdentity
    // re-derives the wire identity from the decoded tree: the decoder
    // already verified the stored fingerprint hashes the stored bytes, and
    // FormatTree(ParseTree(bytes)) == bytes, so the identity matches the
    // record's — including struct_key, which the v2 decoder checks.
    CPDB_ASSIGN_OR_RETURN(TreeIdentity identity,
                          TreeCatalog::ComputeIdentity(AndXorTree(*record.tree)));
    Result<CatalogEntry> entry = InsertIdentityRouted(record.name, identity);
    if (!entry.ok()) return entry.status();
  }
  for (const SnapshotDistribution& record : snapshot.distributions) {
    // Each (StructKey, k) cache key lives on exactly one shard — seed it
    // there, the shard every query for that shape reaches.
    const int shard = ShardOfKey(record.struct_key, num_shards());
    shards_[static_cast<size_t>(shard)].scheduler->SeedRankDistribution(
        record.struct_key, record.k, record.dist);
  }
  return Status::OK();
}

CatalogSnapshot ShardedScheduler::BuildSnapshot(
    bool include_distributions) const {
  CatalogSnapshot snapshot;
  for (const Shard& shard : shards_) {
    CatalogSnapshot part = BuildCatalogSnapshot(
        *shard.catalog,
        include_distributions ? shard.scheduler.get() : nullptr);
    for (SnapshotTree& record : part.trees) {
      snapshot.trees.push_back(std::move(record));
    }
    for (SnapshotDistribution& record : part.distributions) {
      snapshot.distributions.push_back(std::move(record));
    }
  }
  // Merge order must not leak the shard count: names are disjoint across
  // shards and (StructKey, k) keys live on exactly one shard, so sorting
  // yields one canonical order whatever N was (the encoder would re-sort
  // anyway; sorting here makes the in-memory snapshot deterministic too).
  std::sort(snapshot.trees.begin(), snapshot.trees.end(),
            [](const SnapshotTree& a, const SnapshotTree& b) {
              return a.name < b.name;
            });
  std::sort(snapshot.distributions.begin(), snapshot.distributions.end(),
            [](const SnapshotDistribution& a, const SnapshotDistribution& b) {
              if (a.struct_key != b.struct_key) {
                return a.struct_key < b.struct_key;
              }
              return a.k < b.k;
            });
  return snapshot;
}

Result<int> ShardedScheduler::ShardForName(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = directory_.find(name);
  if (it == directory_.end()) {
    // A query failing at the routing layer produces the same error line
    // it would against a single catalog — the shared formatter makes the
    // parity structural (tests/sharded_service_test.cc pins it).
    return TreeCatalog::UnknownTreeError(name);
  }
  return it->second;
}

Result<ServiceResponse> ShardedScheduler::ExecuteLoad(
    const ServiceRequest& request, const Clock* clk, ResponseTiming* timing,
    int* out_shard) {
  // The shared front half (read + parse) runs here because routing needs
  // the content before any shard catalog is chosen; sharing it with the
  // single scheduler keeps the two paths' error statuses byte-identical
  // by construction. Spans mirror the single scheduler's load path: parse
  // (read + parse), catalog (the routed insert, serialization included —
  // the single catalog serializes inside Insert too).
  *out_shard = 0;
  Stopwatch parse_watch(clk);
  Result<AndXorTree> tree = LoadRequestTree(request);
  if (parse_watch.enabled()) {
    timing->spans.emplace_back("parse", parse_watch.ElapsedNanos());
  }
  if (!tree.ok()) return tree.status();
  Stopwatch catalog_watch(clk);
  Result<CatalogEntry> entry = [&]() -> Result<CatalogEntry> {
    // Insert()'s body, with the owning shard surfaced for attribution.
    if (request.load_name.empty()) {
      return Status::InvalidArgument("catalog name must not be empty");
    }
    CPDB_ASSIGN_OR_RETURN(TreeIdentity identity,
                          TreeCatalog::ComputeIdentity(std::move(*tree)));
    return InsertIdentityRouted(request.load_name, identity, out_shard);
  }();
  if (catalog_watch.enabled()) {
    timing->spans.emplace_back("catalog", catalog_watch.ElapsedNanos());
  }
  if (!entry.ok()) return entry.status();
  ServiceResponse response;
  response.op = ServiceRequest::Op::kLoad;
  response.tree_name = entry->name;
  response.fingerprint = entry->content_fp;
  return response;
}

void ShardedScheduler::RecordFrontend(size_t s, const ServiceRequest& request,
                                      const ResponseTiming& timing,
                                      bool ok) const {
  ServeInstruments* instruments = ShardInstruments(s);
  if (instruments == nullptr) return;
  instruments->requests_total->Increment();
  instruments->op_counter(request.op)->Increment();
  instruments->op_latency(request.op)->Record(timing.total_ns);
  for (const auto& [stage, nanos] : timing.spans) {
    if (LatencyHistogram* hist = instruments->stage(stage)) {
      hist->Record(nanos);
    }
  }
  if (!ok) instruments->request_errors_total->Increment();
}

ServiceResponse ShardedScheduler::StatsResponse() const {
  ServiceResponse response;
  response.op = ServiceRequest::Op::kStats;
  response.shard_stats = PerShardStats();
  for (const ShardCacheStats& shard : response.shard_stats) {
    AccumulateCacheStats(&response.stats, shard.rank_dist);
    AccumulateCacheStats(&response.marginals_stats, shard.marginals);
    // Exact sums: StructKey routing makes names, contents, and shapes all
    // disjoint across shards, so the fleet-wide dedup ratio is the ratio
    // of the sums.
    response.catalog.names += shard.catalog.names;
    response.catalog.contents += shard.catalog.contents;
    response.catalog.shapes += shard.catalog.shapes;
  }
  return response;
}

std::vector<Result<ServiceResponse>> ShardedScheduler::ExecuteBatch(
    const std::vector<ServiceRequest>& requests) {
  std::vector<Result<ServiceResponse>> responses(
      requests.size(),
      Result<ServiceResponse>(Status::Internal("request not executed")));

  // The front-end timing gate mirrors the per-shard schedulers': live when
  // metrics are on or the batch asked for a trace, inert otherwise.
  bool any_trace = false;
  for (const ServiceRequest& request : requests) any_trace |= request.trace;
  const Clock* clk = TimingClock(any_trace);

  const OpRegistry& ops = OpRegistry::Get();

  // Loads first, in request order — the batch contract. Loads stay on the
  // front-end thread: they are rare, order-sensitive on names, and each
  // one decides the routing for every query that follows. Their metrics
  // attribute to the shard that owns the loaded content, so the merged
  // scrape matches a single scheduler's exactly.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (ops.spec(requests[i].op).batch_phase == kLoadPhase) {
      ResponseTiming timing;
      int shard = 0;
      responses[i] = ExecuteLoad(requests[i], clk, &timing, &shard);
      for (const auto& [stage, nanos] : timing.spans) {
        timing.total_ns += nanos;
      }
      RecordFrontend(static_cast<size_t>(shard), requests[i], timing,
                     responses[i].ok());
      if (responses[i].ok() && !timing.spans.empty()) {
        timing.trace = requests[i].trace;
        responses[i]->timing = std::move(timing);
      }
    }
  }

  // Partition queries by owning shard, preserving slot order within each
  // sub-batch — per-key request order is what keeps each shard's cache
  // counters identical to the single scheduler's. Unknown names fail
  // their slot here, exactly as the single scheduler's Lookup would —
  // including the metrics trail such a failure leaves (a catalog span, an
  // op-latency record, an error count), which lands on shard 0 since no
  // shard owns the name.
  std::vector<std::vector<ServiceRequest>> sub_batches(shards_.size());
  std::vector<std::vector<size_t>> sub_slots(shards_.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const ServiceRequest& request = requests[i];
    if (ops.spec(request.op).routing != OpRouting::kTreeAddressed) continue;
    Stopwatch catalog_watch(clk);
    Result<int> shard = ShardForName(request.tree_name);
    if (!shard.ok()) {
      ResponseTiming timing;
      if (catalog_watch.enabled()) {
        timing.total_ns = catalog_watch.ElapsedNanos();
        timing.spans.emplace_back("catalog", timing.total_ns);
      }
      RecordFrontend(0, request, timing, /*ok=*/false);
      responses[i] = shard.status();
      continue;
    }
    sub_batches[static_cast<size_t>(*shard)].push_back(request);
    sub_slots[static_cast<size_t>(*shard)].push_back(i);
  }

  // Fan the sub-batches concurrently: one helper thread per non-empty
  // shard beyond the first, which runs on the calling thread (a 1-shard
  // front-end spawns nothing and degenerates to the plain scheduler).
  // Each sub-batch executes on its shard's own engine/caches, so the only
  // shared state the helpers touch is their private results slot. The
  // helpers are created per batch on purpose: the steady-state threads
  // live in the shard engines' pools, and one short-lived dispatcher
  // thread per busy shard is noise next to the folds it dispatches.
  std::vector<std::vector<Result<ServiceResponse>>> shard_results(
      shards_.size());
  // A throw anywhere in the fan-out must fail slots, not the process: an
  // exception escaping a helper's thread entry — or unwinding past
  // joinable threads — is std::terminate, unacceptable in a long-lived
  // server. The library reports errors via Status, but allocation can
  // throw from any of it.
  auto run_shard = [this, &sub_batches, &shard_results](size_t s) {
    try {
      shard_results[s] = shards_[s].scheduler->ExecuteBatch(sub_batches[s]);
    } catch (const std::exception& e) {
      shard_results[s].assign(
          sub_batches[s].size(),
          Result<ServiceResponse>(Status::Internal(
              std::string("shard execution failed: ") + e.what())));
    } catch (...) {
      shard_results[s].assign(
          sub_batches[s].size(),
          Result<ServiceResponse>(Status::Internal("shard execution failed")));
    }
  };
  std::vector<std::thread> helpers;
  // Joins whatever was spawned on every exit path (spawning helper K can
  // throw bad_alloc while helpers 0..K-1 run); the joinable() check makes
  // the normal-path explicit join below idempotent.
  struct JoinHelpers {
    std::vector<std::thread>* threads;
    ~JoinHelpers() {
      for (std::thread& helper : *threads) {
        if (helper.joinable()) helper.join();
      }
    }
  } join_guard{&helpers};
  int first_busy = -1;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (sub_batches[s].empty()) continue;
    if (first_busy < 0) {
      first_busy = static_cast<int>(s);
      continue;
    }
    try {
      helpers.emplace_back(run_shard, s);
    } catch (...) {
      // Thread exhaustion degrades this shard to the calling thread —
      // slower, never fatal (run_shard itself cannot throw).
      run_shard(s);
    }
  }
  if (first_busy >= 0) run_shard(static_cast<size_t>(first_busy));
  for (std::thread& helper : helpers) helper.join();

  // Reassemble in input order.
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (size_t j = 0; j < sub_slots[s].size(); ++j) {
      responses[sub_slots[s][j]] = std::move(shard_results[s][j]);
    }
  }

  // Admin phases in declared order — stats next-to-last (the aggregate
  // describes the batch that just ran), metrics last of all, exactly like
  // the single scheduler: the scrape answers for everything the batch did.
  // By the time either runs every helper has joined, so the shard
  // registries are quiescent and the merged snapshot is the sum of what a
  // single scheduler would have recorded. The probes themselves count
  // against shard 0, like every front-end op no shard owns.
  for (int phase : {kStatsPhase, kMetricsPhase}) {
    for (size_t i = 0; i < requests.size(); ++i) {
      if (ops.spec(requests[i].op).batch_phase != phase) continue;
      responses[i] = ExecuteAdminOne(requests[i], clk);
    }
  }
  return responses;
}

// The OpHost surface the registry's admin hooks execute against on the
// sharded front end: stats and metrics merge per-shard state; the load
// primitive is the routed insert path. The tree-addressed primitives are
// never consulted — tree ops always execute on the owning shard's own
// scheduler (through its SchedulerOpHost), so this host returns nothing
// for them. Lives in namespace cpdb so the header's friend declaration
// names exactly this class.
class ShardedOpHost : public OpHost {
 public:
  explicit ShardedOpHost(ShardedScheduler* sharded) : sharded_(sharded) {}

  const Engine* engine() const override { return nullptr; }

  std::shared_ptr<const RankDistribution> GatedDistFor(
      const CatalogEntry& entry, const ServiceRequest& request) override {
    (void)entry;
    (void)request;
    return nullptr;
  }

  std::shared_ptr<const RankDistribution> RankDistFor(const CatalogEntry& entry,
                                                      int k) override {
    (void)entry;
    (void)k;
    return nullptr;
  }

  std::shared_ptr<const std::vector<double>> MarginalsFor(
      const CatalogEntry& entry) override {
    (void)entry;
    return nullptr;
  }

  ServiceResponse StatsNow() override { return sharded_->StatsResponse(); }

  Result<MetricsSnapshot> MetricsNow() override {
    if (sharded_->ShardInstruments(0) == nullptr) {
      // Byte-identical to the single scheduler's refusal.
      return MetricsDisabledError();
    }
    return sharded_->MetricsSnapshotNow();
  }

  Result<ServiceResponse> ExecuteLoadOp(const ServiceRequest& request,
                                        const Clock* clk,
                                        ResponseTiming* timing) override {
    // The batch/one paths call ExecuteLoad directly for its shard
    // attribution; this hook exists for completeness of the host surface.
    int shard = 0;
    return sharded_->ExecuteLoad(request, clk, timing, &shard);
  }

 private:
  ShardedScheduler* sharded_;
};

Result<ServiceResponse> ShardedScheduler::ExecuteAdminOne(
    const ServiceRequest& request, const Clock* clk) {
  const OpSpec& spec = OpRegistry::Get().spec(request.op);
  ShardedOpHost host(this);
  ServeInstruments* instruments = ShardInstruments(0);
  // Count before executing (a metrics scrape includes its own count,
  // matching the single scheduler's count-at-entry); record the latency
  // after — a scrape describes the work before it, never itself.
  if (instruments != nullptr) {
    instruments->requests_total->Increment();
    instruments->op_counter(request.op)->Increment();
  }
  Stopwatch watch(clk);
  Result<ServiceResponse> response = spec.execute_admin(host, request);
  if (watch.enabled() && response.ok()) {
    response->timing.total_ns = watch.ElapsedNanos();
    response->timing.trace = request.trace;
    if (instruments != nullptr) {
      instruments->op_latency(request.op)->Record(response->timing.total_ns);
    }
  }
  if (instruments != nullptr && !response.ok()) {
    instruments->request_errors_total->Increment();
  }
  return response;
}

MetricsSnapshot ShardedScheduler::MetricsSnapshotNow() const {
  MetricsSnapshot merged = shards_[0].scheduler->MetricsSnapshotNow();
  for (size_t s = 1; s < shards_.size(); ++s) {
    merged.MergeFrom(shards_[s].scheduler->MetricsSnapshotNow());
  }
  return merged;
}

std::vector<MetricsSnapshot> ShardedScheduler::PerShardMetricsSnapshots()
    const {
  std::vector<MetricsSnapshot> snapshots;
  snapshots.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    snapshots.push_back(shard.scheduler->MetricsSnapshotNow());
  }
  return snapshots;
}

Result<ServiceResponse> ShardedScheduler::ExecuteOne(
    const ServiceRequest& request) {
  const Clock* clk = TimingClock(request.trace);
  // Dispatch is by the registry's routing trait — three shapes of
  // execution, not one branch per op. Adding an op touches the registry
  // table, never this switch.
  switch (OpRegistry::Get().spec(request.op).routing) {
    case OpRouting::kCatalogGlobal: {
      ResponseTiming timing;
      int shard = 0;
      Result<ServiceResponse> response =
          ExecuteLoad(request, clk, &timing, &shard);
      for (const auto& [stage, nanos] : timing.spans) {
        timing.total_ns += nanos;
      }
      RecordFrontend(static_cast<size_t>(shard), request, timing,
                     response.ok());
      if (response.ok() && !timing.spans.empty()) {
        timing.trace = request.trace;
        response->timing = std::move(timing);
      }
      return response;
    }
    case OpRouting::kAdmin:
      return ExecuteAdminOne(request, clk);
    case OpRouting::kTreeAddressed: {
      Stopwatch catalog_watch(clk);
      Result<int> shard = ShardForName(request.tree_name);
      if (!shard.ok()) {
        // The same metrics trail the single scheduler leaves for an
        // unknown tree: a catalog span, an op-latency record, an error
        // count — against shard 0, which fields every ownerless request.
        ResponseTiming timing;
        if (catalog_watch.enabled()) {
          timing.total_ns = catalog_watch.ElapsedNanos();
          timing.spans.emplace_back("catalog", timing.total_ns);
        }
        RecordFrontend(0, request, timing, /*ok=*/false);
        return shard.status();
      }
      // The owning shard's scheduler does its own counting and timing, so
      // the front-end lookup above deliberately records nothing on
      // success — one request, one set of records.
      return shards_[static_cast<size_t>(*shard)].scheduler->ExecuteOne(
          request);
    }
  }
  return Status::Internal("unknown request op");
}

void ShardedScheduler::ExecuteStreaming(
    const std::function<bool(ServiceRequest*)>& next,
    const std::function<void(const Result<ServiceResponse>&)>& emit) {
  ServiceRequest request;
  // The same loop shape as QueryScheduler::ExecuteStreaming — the
  // interleaving contract (emit response N before pulling request N+1)
  // lives in the loop, not in which shard answers.
  while (next(&request)) {
    emit(ExecuteOne(request));
  }
}

CacheStats ShardedScheduler::cache_stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    AccumulateCacheStats(&total, shard.scheduler->cache_stats());
  }
  return total;
}

CacheStats ShardedScheduler::marginals_stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    AccumulateCacheStats(&total, shard.scheduler->marginals_stats());
  }
  return total;
}

std::vector<ShardCacheStats> ShardedScheduler::PerShardStats() const {
  std::vector<ShardCacheStats> stats;
  stats.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    stats.push_back(ShardCacheStats{shard.scheduler->cache_stats(),
                                    shard.scheduler->marginals_stats(),
                                    shard.catalog->Counts()});
  }
  return stats;
}

}  // namespace cpdb

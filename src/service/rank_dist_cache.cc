// Copyright 2026 The ConsensusDB Authors

#include "service/rank_dist_cache.h"

namespace cpdb {

RankDistCache::RankDistCache(int64_t byte_budget)
    : cache_(byte_budget,
             [](const RankDistribution& dist) { return dist.ApproxBytes(); }) {}

std::shared_ptr<const RankDistribution> RankDistCache::GetOrCompute(
    StructKey struct_key, int k,
    const std::function<RankDistribution()>& compute) {
  return cache_.GetOrCompute(Key(struct_key.value(), k), compute);
}

std::shared_ptr<const RankDistribution> RankDistCache::Peek(
    StructKey struct_key, int k) const {
  return cache_.Peek(Key(struct_key.value(), k));
}

bool RankDistCache::Seed(StructKey struct_key, int k,
                         std::shared_ptr<const RankDistribution> dist) {
  return cache_.Put(Key(struct_key.value(), k), std::move(dist));
}

std::vector<RankDistCache::RetainedEntry> RankDistCache::RetainedEntries()
    const {
  std::vector<RetainedEntry> entries;
  for (auto& [key, dist] : cache_.Entries()) {
    entries.push_back(
        RetainedEntry{StructKey(key.first), key.second, std::move(dist)});
  }
  return entries;
}

CacheStats RankDistCache::stats() const { return cache_.stats(); }

void RankDistCache::Clear() { cache_.Clear(); }

}  // namespace cpdb

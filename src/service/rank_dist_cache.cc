// Copyright 2026 The ConsensusDB Authors

#include "service/rank_dist_cache.h"

namespace cpdb {

std::shared_ptr<const RankDistribution> RankDistCache::GetOrCompute(
    uint64_t fingerprint, int k,
    const std::function<RankDistribution()>& compute) {
  const Key key(fingerprint, k);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.misses;
  }
  // Compute outside the lock: the fold may fan across a thread pool and
  // must not serialize unrelated cache traffic behind it.
  auto computed = std::make_shared<const RankDistribution>(compute());
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(key, computed);
  if (inserted) stats_.entries = static_cast<int64_t>(entries_.size());
  // If a racing thread inserted first, serve its (bitwise identical) copy
  // so every caller shares one allocation.
  return it->second;
}

std::shared_ptr<const RankDistribution> RankDistCache::Peek(
    uint64_t fingerprint, int k) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key(fingerprint, k));
  return it == entries_.end() ? nullptr : it->second;
}

CacheStats RankDistCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RankDistCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = CacheStats();
}

}  // namespace cpdb

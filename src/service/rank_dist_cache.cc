// Copyright 2026 The ConsensusDB Authors

#include "service/rank_dist_cache.h"

namespace cpdb {

RankDistCache::RankDistCache(int64_t byte_budget)
    : cache_(byte_budget,
             [](const RankDistribution& dist) { return dist.ApproxBytes(); }) {}

std::shared_ptr<const RankDistribution> RankDistCache::GetOrCompute(
    uint64_t fingerprint, int k,
    const std::function<RankDistribution()>& compute) {
  return cache_.GetOrCompute(Key(fingerprint, k), compute);
}

std::shared_ptr<const RankDistribution> RankDistCache::Peek(
    uint64_t fingerprint, int k) const {
  return cache_.Peek(Key(fingerprint, k));
}

bool RankDistCache::Seed(uint64_t fingerprint, int k,
                         std::shared_ptr<const RankDistribution> dist) {
  return cache_.Put(Key(fingerprint, k), std::move(dist));
}

std::vector<RankDistCache::RetainedEntry> RankDistCache::RetainedEntries()
    const {
  std::vector<RetainedEntry> entries;
  for (auto& [key, dist] : cache_.Entries()) {
    entries.push_back(RetainedEntry{key.first, key.second, std::move(dist)});
  }
  return entries;
}

CacheStats RankDistCache::stats() const { return cache_.stats(); }

void RankDistCache::Clear() { cache_.Clear(); }

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "service/query_scheduler.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/hash.h"
#include "core/set_consensus.h"
#include "core/topk_metrics.h"
#include "io/table_io.h"
#include "io/tree_text.h"
#include "model/builders.h"
#include "model/possible_worlds.h"

namespace cpdb {

namespace {

const char* OpName(ServiceRequest::Op op) {
  switch (op) {
    case ServiceRequest::Op::kLoad:
      return "load";
    case ServiceRequest::Op::kTopK:
      return "topk";
    case ServiceRequest::Op::kWorld:
      return "world";
    case ServiceRequest::Op::kStats:
      return "stats";
    case ServiceRequest::Op::kMetrics:
      return "metrics";
  }
  return "?";
}

// The trace flag is accepted by every op (it modifies the response
// envelope, not the answer), parsed with the same strictness as every
// other enum-valued field.
Status ParseTraceField(const RequestLine& line, ServiceRequest* request) {
  const std::string* trace = line.Find("trace");
  if (trace == nullptr) return Status::OK();
  if (*trace == "on") {
    request->trace = true;
  } else if (*trace != "off") {
    return Status::InvalidArgument("unknown trace '" + *trace +
                                   "' (expected on or off)");
  }
  return Status::OK();
}

// Strict field-set check: a request naming a field its op does not take is
// an error, never ignored (a typo'd "metrc=kendall" must not silently run
// the default metric).
Status CheckAllowedFields(const RequestLine& line,
                          std::initializer_list<const char*> allowed) {
  for (const RequestField& f : line.fields) {
    bool known = f.name == "op";
    for (const char* name : allowed) known = known || f.name == name;
    if (!known) {
      return Status::InvalidArgument("unknown field '" + f.name + "' for op=" +
                                     *line.Find("op"));
    }
  }
  return Status::OK();
}

Result<std::string> RequiredField(const RequestLine& line,
                                  const std::string& name) {
  const std::string* value = line.Find(name);
  if (value == nullptr) {
    // The op field may itself be the missing one; never dereference it.
    const std::string* op = line.Find("op");
    return Status::InvalidArgument(
        (op != nullptr ? "op=" + *op + " " : "request ") + "requires field '" +
        name + "'");
  }
  return *value;
}

std::string KeysCsv(const std::vector<KeyId>& keys) {
  std::string csv;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) csv += ',';
    csv += std::to_string(keys[i]);
  }
  return csv;
}

void AppendCacheFields(const CacheStats& stats, const std::string& prefix,
                       std::vector<RequestField>* fields) {
  auto add = [&](const char* name, int64_t value) {
    fields->push_back({prefix + name, std::to_string(value)});
  };
  add("hits", stats.hits);
  add("misses", stats.misses);
  add("coalesced", stats.coalesced);
  add("entries", stats.entries);
  add("evictions", stats.evictions);
  add("bytes", stats.bytes);
}

}  // namespace

Result<ServiceRequest> ServiceRequestFromLine(const RequestLine& line) {
  CPDB_ASSIGN_OR_RETURN(std::string op, RequiredField(line, "op"));
  ServiceRequest request;
  Status trace_status = ParseTraceField(line, &request);
  if (!trace_status.ok()) return trace_status;
  if (op == "load") {
    request.op = ServiceRequest::Op::kLoad;
    Status allowed =
        CheckAllowedFields(line, {"name", "file", "format", "trace"});
    if (!allowed.ok()) return allowed;
    CPDB_ASSIGN_OR_RETURN(request.load_name, RequiredField(line, "name"));
    CPDB_ASSIGN_OR_RETURN(request.load_file, RequiredField(line, "file"));
    if (const std::string* format = line.Find("format")) {
      if (*format != "tree" && *format != "bid") {
        return Status::InvalidArgument("unknown format '" + *format +
                                       "' (expected tree or bid)");
      }
      request.load_format = *format;
    }
    return request;
  }
  if (op == "topk") {
    request.op = ServiceRequest::Op::kTopK;
    Status allowed =
        CheckAllowedFields(line, {"tree", "k", "metric", "answer", "trace"});
    if (!allowed.ok()) return allowed;
    CPDB_ASSIGN_OR_RETURN(request.tree_name, RequiredField(line, "tree"));
    CPDB_ASSIGN_OR_RETURN(std::string k_text, RequiredField(line, "k"));
    CPDB_ASSIGN_OR_RETURN(long long k, ParseStrictInt("k", k_text));
    if (k < 1 || k > (1 << 20)) {
      return Status::InvalidArgument("k out of range, got '" + k_text + "'");
    }
    request.k = static_cast<int>(k);
    if (const std::string* metric = line.Find("metric")) {
      CPDB_ASSIGN_OR_RETURN(request.metric, ParseTopKMetricName(*metric));
    }
    if (const std::string* answer = line.Find("answer")) {
      CPDB_ASSIGN_OR_RETURN(request.answer, ParseTopKAnswerName(*answer));
    }
    return request;
  }
  if (op == "world") {
    request.op = ServiceRequest::Op::kWorld;
    Status allowed =
        CheckAllowedFields(line, {"tree", "metric", "answer", "trace"});
    if (!allowed.ok()) return allowed;
    CPDB_ASSIGN_OR_RETURN(request.tree_name, RequiredField(line, "tree"));
    if (const std::string* metric = line.Find("metric")) {
      if (*metric != "symdiff") {
        return Status::InvalidArgument("op=world supports metric=symdiff, got '" +
                                       *metric + "'");
      }
    }
    if (const std::string* answer = line.Find("answer")) {
      if (*answer == "median") {
        request.median_world = true;
      } else if (*answer != "mean") {
        return Status::InvalidArgument("unknown answer '" + *answer +
                                       "' (expected mean or median)");
      }
    }
    return request;
  }
  if (op == "stats") {
    request.op = ServiceRequest::Op::kStats;
    Status allowed = CheckAllowedFields(line, {"trace"});
    if (!allowed.ok()) return allowed;
    return request;
  }
  if (op == "metrics") {
    request.op = ServiceRequest::Op::kMetrics;
    Status allowed = CheckAllowedFields(line, {"format", "trace"});
    if (!allowed.ok()) return allowed;
    if (const std::string* format = line.Find("format")) {
      if (*format != "kv" && *format != "prom") {
        return Status::InvalidArgument("unknown format '" + *format +
                                       "' (expected kv or prom)");
      }
      request.metrics_format = *format;
    }
    return request;
  }
  return Status::InvalidArgument(
      "unknown op '" + op + "' (expected load, topk, world, stats or metrics)");
}

std::vector<RequestField> ResponseToFields(const ServiceResponse& response) {
  std::vector<RequestField> fields;
  fields.push_back({"op", OpName(response.op)});
  switch (response.op) {
    case ServiceRequest::Op::kLoad:
      fields.push_back({"name", response.tree_name});
      fields.push_back({"fingerprint", HashToHex(response.fingerprint)});
      break;
    case ServiceRequest::Op::kTopK:
      fields.push_back({"tree", response.tree_name});
      fields.push_back({"metric", response.metric});
      fields.push_back({"answer", response.answer});
      fields.push_back({"k", std::to_string(response.k)});
      fields.push_back({"keys", KeysCsv(response.keys)});
      fields.push_back(
          {"expected", FormatRoundTripDouble(response.expected_distance)});
      break;
    case ServiceRequest::Op::kWorld:
      fields.push_back({"tree", response.tree_name});
      fields.push_back({"metric", response.metric});
      fields.push_back({"answer", response.answer});
      fields.push_back({"keys", KeysCsv(response.keys)});
      fields.push_back(
          {"expected", FormatRoundTripDouble(response.expected_distance)});
      break;
    case ServiceRequest::Op::kStats:
      // The aggregate fields come first and are identical in meaning
      // whether the answer came from one engine or a sharded front-end;
      // the per-shard breakdown (when present) trails them, so clients
      // reading only the totals never notice the shard layout.
      AppendCacheFields(response.stats, "", &fields);
      AppendCacheFields(response.marginals_stats, "marg_", &fields);
      // The two-level-identity fields: distinct shapes behind the bound
      // names, and contents-per-shape — the catalog's duplication factor
      // (1 for a duplicate-free catalog). Documented-additive, like the
      // marg_* block was when the marginals cache landed.
      fields.push_back({"shapes", std::to_string(response.catalog.shapes)});
      fields.push_back(
          {"dedup_ratio",
           FormatRoundTripDouble(
               response.catalog.shapes == 0
                   ? 1.0
                   : static_cast<double>(response.catalog.contents) /
                         static_cast<double>(response.catalog.shapes))});
      if (!response.shard_stats.empty()) {
        fields.push_back(
            {"shards", std::to_string(response.shard_stats.size())});
        for (size_t s = 0; s < response.shard_stats.size(); ++s) {
          const std::string prefix = "s" + std::to_string(s) + "_";
          AppendCacheFields(response.shard_stats[s].rank_dist, prefix,
                            &fields);
          AppendCacheFields(response.shard_stats[s].marginals,
                            prefix + "marg_", &fields);
          fields.push_back(
              {prefix + "shapes",
               std::to_string(response.shard_stats[s].catalog.shapes)});
        }
      }
      break;
    case ServiceRequest::Op::kMetrics:
      fields.push_back({"format", response.metrics_format});
      if (response.metrics_format == "prom") {
        // One multi-line exposition body in one field: FormatResponseLine
        // escapes the newlines, so the framing survives; clients unescape
        // via ParseResponseLine and hand the body to any Prometheus
        // scraper verbatim.
        fields.push_back({"body", MetricsToPrometheusText(response.metrics)});
      } else {
        for (auto& [name, value] : MetricsToKvPairs(response.metrics)) {
          fields.push_back({name, value});
        }
      }
      break;
  }
  // Trace fields trail every op's answer fields, strictly additive: a
  // trace=on response with its trace_* fields stripped is byte-identical
  // to the trace=off response (the differential suite pins this).
  if (response.timing.trace) {
    fields.push_back(
        {"trace_total_ns", std::to_string(response.timing.total_ns)});
    for (const auto& [stage, nanos] : response.timing.spans) {
      fields.push_back({"trace_" + stage + "_ns", std::to_string(nanos)});
    }
  }
  return fields;
}

ServeInstruments::ServeInstruments() {
  requests_total =
      registry.AddCounter("cpdb_requests_total", "Requests received, any op.");
  request_errors_total = registry.AddCounter(
      "cpdb_request_errors_total", "Requests answered with an error line.");
  load_requests = registry.AddCounter("cpdb_load_requests_total",
                                      "op=load requests received.");
  topk_requests = registry.AddCounter("cpdb_topk_requests_total",
                                      "op=topk requests received.");
  world_requests = registry.AddCounter("cpdb_world_requests_total",
                                       "op=world requests received.");
  stats_requests = registry.AddCounter("cpdb_stats_requests_total",
                                       "op=stats requests received.");
  metrics_requests = registry.AddCounter("cpdb_metrics_requests_total",
                                         "op=metrics requests received.");
  load_latency = registry.AddHistogram("cpdb_load_latency_nanoseconds",
                                       "op=load service latency.");
  topk_latency = registry.AddHistogram("cpdb_topk_latency_nanoseconds",
                                       "op=topk service latency.");
  world_latency = registry.AddHistogram("cpdb_world_latency_nanoseconds",
                                        "op=world service latency.");
  stats_latency = registry.AddHistogram("cpdb_stats_latency_nanoseconds",
                                        "op=stats service latency.");
  metrics_latency = registry.AddHistogram("cpdb_metrics_latency_nanoseconds",
                                          "op=metrics service latency.");
  stage_parse = registry.AddHistogram(
      "cpdb_stage_parse_latency_nanoseconds",
      "Parse durations: request lines and load-file trees.");
  stage_catalog =
      registry.AddHistogram("cpdb_stage_catalog_latency_nanoseconds",
                            "Catalog insert and lookup durations.");
  stage_cache = registry.AddHistogram(
      "cpdb_stage_cache_latency_nanoseconds",
      "Memo-cache routing durations (folds on miss included).");
  stage_fold = registry.AddHistogram("cpdb_stage_fold_latency_nanoseconds",
                                     "Engine evaluation durations.");
  stage_format = registry.AddHistogram(
      "cpdb_stage_format_latency_nanoseconds",
      "Response formatting durations (recorded by the transport).");
}

Counter* ServeInstruments::op_counter(ServiceRequest::Op op) {
  switch (op) {
    case ServiceRequest::Op::kLoad:
      return load_requests;
    case ServiceRequest::Op::kTopK:
      return topk_requests;
    case ServiceRequest::Op::kWorld:
      return world_requests;
    case ServiceRequest::Op::kStats:
      return stats_requests;
    case ServiceRequest::Op::kMetrics:
      return metrics_requests;
  }
  return requests_total;
}

LatencyHistogram* ServeInstruments::op_latency(ServiceRequest::Op op) {
  switch (op) {
    case ServiceRequest::Op::kLoad:
      return load_latency;
    case ServiceRequest::Op::kTopK:
      return topk_latency;
    case ServiceRequest::Op::kWorld:
      return world_latency;
    case ServiceRequest::Op::kStats:
      return stats_latency;
    case ServiceRequest::Op::kMetrics:
      return metrics_latency;
  }
  return topk_latency;
}

LatencyHistogram* ServeInstruments::stage(const std::string& name) {
  if (name == "parse") return stage_parse;
  if (name == "catalog") return stage_catalog;
  if (name == "cache") return stage_cache;
  if (name == "fold") return stage_fold;
  if (name == "format") return stage_format;
  return nullptr;
}

void AppendCacheStatsMetrics(const CacheStats& stats,
                             const std::string& prefix, MetricsSnapshot* out) {
  auto add = [&](const char* name, MetricSample::Kind kind, int64_t value,
                 const char* help) {
    MetricSample sample;
    sample.name = prefix + name;
    sample.help = help;
    sample.kind = kind;
    sample.value = value;
    out->samples.push_back(std::move(sample));
  };
  add("hits_total", MetricSample::Kind::kCounter, stats.hits, "Cache hits.");
  add("misses_total", MetricSample::Kind::kCounter, stats.misses,
      "Cache misses (entry computed).");
  add("coalesced_total", MetricSample::Kind::kCounter, stats.coalesced,
      "Lookups coalesced onto an in-flight compute.");
  add("evictions_total", MetricSample::Kind::kCounter, stats.evictions,
      "Entries evicted under the byte budget.");
  add("entries", MetricSample::Kind::kGauge, stats.entries,
      "Entries currently retained.");
  add("bytes", MetricSample::Kind::kGauge, stats.bytes,
      "Bytes currently charged against the budget.");
}

std::string FormatSlowQueryLine(int64_t line_number,
                                const std::string& raw_request,
                                const ResponseTiming& timing) {
  std::string out = "slow-query\tline=" + std::to_string(line_number);
  out += "\ttotal_ms=" +
         FormatRoundTripDouble(static_cast<double>(timing.total_ns) / 1e6);
  for (const auto& [stage, nanos] : timing.spans) {
    out += "\t" + stage + "_ns=" + std::to_string(nanos);
  }
  out += "\trequest=" + EscapeFieldValue(raw_request);
  return out;
}

QueryScheduler::QueryScheduler(const Engine* engine, TreeCatalog* catalog,
                               SchedulerOptions options)
    : engine_(engine),
      catalog_(catalog),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SteadyClock::Instance()),
      instruments_(options.enable_metrics ? std::make_unique<ServeInstruments>()
                                          : nullptr),
      cache_(options.cache_budget_bytes),
      marginals_cache_(options.cache_budget_bytes) {}

Result<AndXorTree> LoadRequestTree(const ServiceRequest& request) {
  CPDB_ASSIGN_OR_RETURN(std::string content,
                        ReadFileToString(request.load_file));
  if (request.load_format == "tree") {
    return ParseTree(content);
  }
  CPDB_ASSIGN_OR_RETURN(std::vector<Block> blocks, ParseBidTable(content));
  return MakeBlockIndependent(blocks);
}

namespace {

// Appends a finished span to `timing` — only when the stopwatch was live,
// so untimed requests accumulate nothing (not even empty vectors' churn).
void AddSpan(ResponseTiming* timing, const char* stage,
             const Stopwatch& stopwatch) {
  if (!stopwatch.enabled()) return;
  timing->spans.emplace_back(stage, stopwatch.ElapsedNanos());
}

}  // namespace

Result<ServiceResponse> QueryScheduler::ExecuteLoadTimed(
    const ServiceRequest& request, const Clock* clk, ResponseTiming* timing) {
  Stopwatch parse_watch(clk);
  Result<AndXorTree> tree = LoadRequestTree(request);
  AddSpan(timing, "parse", parse_watch);
  if (!tree.ok()) return tree.status();
  Stopwatch catalog_watch(clk);
  Result<CatalogEntry> entry =
      catalog_->Insert(request.load_name, std::move(*tree));
  AddSpan(timing, "catalog", catalog_watch);
  if (!entry.ok()) return entry.status();
  ServiceResponse response;
  response.op = ServiceRequest::Op::kLoad;
  response.tree_name = entry->name;
  response.fingerprint = entry->content_fp;
  return response;
}

std::shared_ptr<const RankDistribution> QueryScheduler::DistFor(
    const CatalogEntry& entry, const ServiceRequest& request) {
  // A request that can only fail (bad k, unsupported metric/answer pair)
  // must not populate the cache: the engine rejects such queries *before*
  // paying the fold, and the scheduler keeps that property. The engine
  // call downstream reports the actual error.
  if (!options_.use_cache || request.k < 1 ||
      !Engine::ValidateConsensusRequest(request.metric, request.answer).ok()) {
    return nullptr;
  }
  // Keyed by struct_key: permuted duplicates resolve to one entry. The
  // fold itself runs over the catalog's canonical tree with the catalog's
  // precompiled per-shape program, so a miss pays the O(L^2 k) fold but
  // never a compile.
  const AndXorTree& tree = *entry.tree;
  const int k = request.k;
  return cache_.GetOrCompute(entry.struct_key, k, [this, &tree, k, &entry] {
    return engine_->ComputeRankDistribution(tree, k, entry.program.get());
  });
}

std::shared_ptr<const std::vector<double>> QueryScheduler::MarginalsFor(
    const CatalogEntry& entry) {
  const AndXorTree& tree = *entry.tree;
  if (!options_.use_cache) {
    return std::make_shared<const std::vector<double>>(
        engine_->LeafMarginals(tree, entry.program.get()));
  }
  return marginals_cache_.GetOrCompute(entry.struct_key, [this, &tree, &entry] {
    return engine_->LeafMarginals(tree, entry.program.get());
  });
}

Result<ServiceResponse> QueryScheduler::ExecuteWorld(
    const CatalogEntry& entry, const ServiceRequest& request,
    const Clock* clk, ResponseTiming* timing) {
  const AndXorTree& tree = *entry.tree;
  // One marginal fold — shared through the cache with every other world
  // query against this content — serves the answer and its expected
  // distance via the engine's marginals-reuse entry point.
  Stopwatch cache_watch(clk);
  std::shared_ptr<const std::vector<double>> marginals = MarginalsFor(entry);
  AddSpan(timing, "cache", cache_watch);
  Stopwatch fold_watch(clk);
  Result<Engine::WorldResult> world_result =
      engine_->ConsensusWorldWithMarginals(tree, *marginals,
                                           request.median_world);
  AddSpan(timing, "fold", fold_watch);
  if (!world_result.ok()) return world_result.status();
  Engine::WorldResult& world = *world_result;
  ServiceResponse response;
  response.op = ServiceRequest::Op::kWorld;
  response.tree_name = request.tree_name;
  response.metric = "symdiff";
  response.answer = request.median_world ? "median" : "mean";
  response.expected_distance = world.expected_distance;
  for (const TupleAlternative& tuple : WorldTuples(tree, world.leaf_ids)) {
    response.keys.push_back(tuple.key);
  }
  return response;
}

ServiceResponse QueryScheduler::StatsResponse() const {
  ServiceResponse response;
  response.op = ServiceRequest::Op::kStats;
  response.stats = cache_.stats();
  response.marginals_stats = marginals_cache_.stats();
  response.catalog = catalog_->Counts();
  return response;
}

MetricsSnapshot QueryScheduler::MetricsSnapshotNow() const {
  MetricsSnapshot snapshot = instruments_->registry.Snapshot();
  // The registry holds the serve-path instruments; the engine counters and
  // the cache counters live in their own structs and are re-exported into
  // the same scrape, so one op=metrics answer covers the whole shard.
  MetricsSnapshot extra;
  const EngineObsCounters engine_counters = engine_->obs_counters();
  const CatalogCounts catalog_counts = catalog_->Counts();
  MetricSample fold_compiles;
  fold_compiles.name = "cpdb_fold_compiles_total";
  fold_compiles.help =
      "FlatTree compilations performed: the catalog's one-per-shape compiles "
      "plus the engine's on-demand ones.";
  fold_compiles.kind = MetricSample::Kind::kCounter;
  fold_compiles.value =
      engine_counters.fold_compiles + catalog_->fold_compiles();
  extra.samples.push_back(std::move(fold_compiles));
  MetricSample catalog_entries;
  catalog_entries.name = "cpdb_catalog_entries";
  catalog_entries.help = "Names bound in the tree catalog.";
  catalog_entries.kind = MetricSample::Kind::kGauge;
  catalog_entries.value = catalog_counts.names;
  extra.samples.push_back(std::move(catalog_entries));
  MetricSample catalog_shapes;
  catalog_shapes.name = "cpdb_catalog_shapes";
  catalog_shapes.help =
      "Distinct tree structures (canonical orientations) in the catalog.";
  catalog_shapes.kind = MetricSample::Kind::kGauge;
  catalog_shapes.value = catalog_counts.shapes;
  extra.samples.push_back(std::move(catalog_shapes));
  MetricSample arena_highwater;
  arena_highwater.name = "cpdb_poly_arena_highwater_bytes";
  arena_highwater.help =
      "Peak thread-local fold-arena capacity observed on any engine thread.";
  arena_highwater.kind = MetricSample::Kind::kGauge;
  arena_highwater.value = engine_counters.arena_highwater_bytes;
  extra.samples.push_back(std::move(arena_highwater));
  AppendCacheStatsMetrics(cache_.stats(), "cpdb_rankdist_cache_", &extra);
  AppendCacheStatsMetrics(marginals_cache_.stats(), "cpdb_marginals_cache_",
                          &extra);
  std::sort(extra.samples.begin(), extra.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  snapshot.MergeFrom(extra);
  return snapshot;
}

Result<ServiceResponse> QueryScheduler::ExecuteMetricsOp(
    const ServiceRequest& request, const Clock* clk) {
  if (instruments_ == nullptr) {
    return Status::InvalidArgument(
        "op=metrics requires metrics enabled (serve without --metrics=off)");
  }
  // The scrape is timed whole (no stages), and its latency is recorded
  // *after* the snapshot is taken: a scrape describes the work before it,
  // never itself.
  Stopwatch watch(clk);
  ServiceResponse response;
  response.op = ServiceRequest::Op::kMetrics;
  response.metrics_format = request.metrics_format;
  response.metrics = MetricsSnapshotNow();
  if (watch.enabled()) {
    response.timing.total_ns = watch.ElapsedNanos();
    response.timing.trace = request.trace;
    instruments_->metrics_latency->Record(response.timing.total_ns);
  }
  return response;
}

void QueryScheduler::FinishTiming(const ServiceRequest& request,
                                  ResponseTiming* timing,
                                  Result<ServiceResponse>* response) {
  timing->total_ns = 0;
  for (const auto& [stage, nanos] : timing->spans) timing->total_ns += nanos;
  if (instruments_ != nullptr && !timing->spans.empty()) {
    instruments_->op_latency(request.op)->Record(timing->total_ns);
    for (const auto& [stage, nanos] : timing->spans) {
      if (LatencyHistogram* hist = instruments_->stage(stage)) {
        hist->Record(nanos);
      }
    }
  }
  // Attach timing to every timed ok response — not just traced ones: the
  // transport's slow-query log reads total_ns off the response. The wire
  // is unaffected because ResponseToFields only renders trace_* fields
  // when timing.trace (the request said trace=on) is set.
  if (response->ok() && !timing->spans.empty()) {
    timing->trace = request.trace;
    (*response)->timing = std::move(*timing);
  }
}

std::vector<Result<ServiceResponse>> QueryScheduler::ExecuteBatch(
    const std::vector<ServiceRequest>& requests) {
  std::vector<Result<ServiceResponse>> responses(
      requests.size(),
      Result<ServiceResponse>(Status::Internal("request not executed")));

  // Timing is live when metrics are on or any request asked for a trace;
  // otherwise `clk` is null and every Stopwatch below is inert (zero clock
  // reads). Instrumentation never touches answer bytes either way.
  bool any_trace = false;
  for (const ServiceRequest& request : requests) any_trace |= request.trace;
  const Clock* clk = TimingClock(any_trace);
  ServeInstruments* instruments = instruments_.get();
  if (instruments != nullptr) {
    instruments->requests_total->Increment(
        static_cast<int64_t>(requests.size()));
    for (const ServiceRequest& request : requests) {
      instruments->op_counter(request.op)->Increment();
    }
  }
  std::vector<ResponseTiming> timings(requests.size());

  // Loads first, in request order: a batch is a unit of work, so queries
  // may reference trees loaded anywhere in the same batch.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].op == ServiceRequest::Op::kLoad) {
      responses[i] = ExecuteLoadTimed(requests[i], clk, &timings[i]);
    }
  }

  // Resolve query trees; unknown names fail their slot only.
  std::vector<size_t> topk_slots;
  std::vector<CatalogEntry> topk_entries;
  std::vector<size_t> world_slots;
  std::vector<CatalogEntry> world_entries;
  for (size_t i = 0; i < requests.size(); ++i) {
    const ServiceRequest& request = requests[i];
    if (request.op != ServiceRequest::Op::kTopK &&
        request.op != ServiceRequest::Op::kWorld) {
      continue;
    }
    Stopwatch catalog_watch(clk);
    Result<CatalogEntry> entry = catalog_->Lookup(request.tree_name);
    AddSpan(&timings[i], "catalog", catalog_watch);
    if (!entry.ok()) {
      responses[i] = entry.status();
      continue;
    }
    if (request.op == ServiceRequest::Op::kTopK) {
      topk_slots.push_back(i);
      topk_entries.push_back(*std::move(entry));
    } else {
      world_slots.push_back(i);
      world_entries.push_back(*std::move(entry));
    }
  }

  // The deduplication step: route every Top-k query's rank-distribution
  // precompute through the (fingerprint, k) cache, in slot order, so the
  // first query of each pair computes the fold and the rest hit — within
  // this batch and across batches alike. The handles keep cached entries
  // alive for the duration of the engine call even if entries are evicted
  // or the cache is Cleared concurrently.
  std::vector<std::shared_ptr<const RankDistribution>> dists(
      topk_slots.size());
  for (size_t j = 0; j < topk_slots.size(); ++j) {
    Stopwatch cache_watch(clk);
    dists[j] = DistFor(topk_entries[j], requests[topk_slots[j]]);
    AddSpan(&timings[topk_slots[j]], "cache", cache_watch);
  }

  // One engine submission for all Top-k slots: whole queries fan across
  // the pool, cached distributions are shared read-only.
  std::vector<Engine::ConsensusQuery> queries(topk_slots.size());
  for (size_t j = 0; j < topk_slots.size(); ++j) {
    const ServiceRequest& request = requests[topk_slots[j]];
    queries[j] = {topk_entries[j].tree.get(), request.k, request.metric,
                  request.answer, dists[j].get(),
                  topk_entries[j].program.get()};
  }
  Stopwatch fold_watch(clk);
  std::vector<Result<TopKResult>> results =
      engine_->EvaluateConsensusBatch(queries);
  // The whole submission is one engine call, so every Top-k slot records
  // the same fold duration — per-slot attribution inside a fused batch
  // would be fiction. The count (one fold span per slot) is what the
  // sharded-parity tests rely on; values are side-band by contract.
  const int64_t batch_fold_nanos = fold_watch.ElapsedNanos();
  for (size_t j = 0; j < topk_slots.size(); ++j) {
    const size_t slot = topk_slots[j];
    if (fold_watch.enabled()) {
      timings[slot].spans.emplace_back("fold", batch_fold_nanos);
    }
    if (!results[j].ok()) {
      responses[slot] = results[j].status();
      continue;
    }
    const ServiceRequest& request = requests[slot];
    ServiceResponse response;
    response.op = ServiceRequest::Op::kTopK;
    response.tree_name = request.tree_name;
    response.k = request.k;
    response.metric = TopKMetricName(request.metric);
    response.answer = TopKAnswerName(request.answer);
    response.keys = results[j]->keys;
    response.expected_distance = results[j]->expected_distance;
    responses[slot] = std::move(response);
  }

  // Set-consensus worlds: one shared marginal fold per content fingerprint
  // serves every world query's answer and expected distance.
  for (size_t j = 0; j < world_slots.size(); ++j) {
    const size_t slot = world_slots[j];
    responses[slot] =
        ExecuteWorld(world_entries[j], requests[slot], clk, &timings[slot]);
  }

  // Close out load/query timing — histogram records and error counts land
  // *before* the stats/metrics passes below, so a scrape in this batch
  // describes all of the batch's query work, sharded or not.
  for (size_t i = 0; i < requests.size(); ++i) {
    const ServiceRequest::Op op = requests[i].op;
    if (op == ServiceRequest::Op::kStats ||
        op == ServiceRequest::Op::kMetrics) {
      continue;
    }
    FinishTiming(requests[i], &timings[i], &responses[i]);
    if (instruments != nullptr && !responses[i].ok()) {
      instruments->request_errors_total->Increment();
    }
  }

  // Stats next-to-last: the counters describe the batch that just ran.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].op == ServiceRequest::Op::kStats) {
      Stopwatch stats_watch(clk);
      ServiceResponse response = StatsResponse();
      if (stats_watch.enabled()) {
        response.timing.total_ns = stats_watch.ElapsedNanos();
        response.timing.trace = requests[i].trace;
        if (instruments != nullptr) {
          instruments->stats_latency->Record(response.timing.total_ns);
        }
      }
      responses[i] = std::move(response);
    }
  }

  // Metrics last of all: a scrape in a batch answers for everything the
  // batch did (including its stats probes), regardless of slot order.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].op == ServiceRequest::Op::kMetrics) {
      responses[i] = ExecuteMetricsOp(requests[i], clk);
      if (instruments != nullptr && !responses[i].ok()) {
        instruments->request_errors_total->Increment();
      }
    }
  }
  return responses;
}

Result<ServiceResponse> QueryScheduler::ExecuteOne(
    const ServiceRequest& request) {
  const Clock* clk = TimingClock(request.trace);
  ServeInstruments* instruments = instruments_.get();
  if (instruments != nullptr) {
    instruments->requests_total->Increment();
    instruments->op_counter(request.op)->Increment();
  }
  Result<ServiceResponse> result = [&]() -> Result<ServiceResponse> {
    ResponseTiming timing;
    switch (request.op) {
      case ServiceRequest::Op::kLoad: {
        Result<ServiceResponse> response =
            ExecuteLoadTimed(request, clk, &timing);
        FinishTiming(request, &timing, &response);
        return response;
      }
      case ServiceRequest::Op::kStats: {
        Stopwatch stats_watch(clk);
        ServiceResponse response = StatsResponse();
        if (stats_watch.enabled()) {
          response.timing.total_ns = stats_watch.ElapsedNanos();
          response.timing.trace = request.trace;
          if (instruments != nullptr) {
            instruments->stats_latency->Record(response.timing.total_ns);
          }
        }
        return response;
      }
      case ServiceRequest::Op::kMetrics:
        return ExecuteMetricsOp(request, clk);
      case ServiceRequest::Op::kTopK: {
        Stopwatch catalog_watch(clk);
        Result<CatalogEntry> entry = catalog_->Lookup(request.tree_name);
        AddSpan(&timing, "catalog", catalog_watch);
        if (!entry.ok()) {
          Result<ServiceResponse> response(entry.status());
          FinishTiming(request, &timing, &response);
          return response;
        }
        Stopwatch cache_watch(clk);
        std::shared_ptr<const RankDistribution> dist = DistFor(*entry, request);
        AddSpan(&timing, "cache", cache_watch);
        // With a cached (or freshly computed and now shared) distribution
        // the engine runs only the metric tail; without one it runs the
        // full query. Both paths are the bitwise-identical code
        // ExecuteBatch submits per slot.
        Stopwatch fold_watch(clk);
        Result<TopKResult> result =
            dist != nullptr
                ? engine_->ConsensusTopKWithDist(*entry->tree, *dist,
                                                 request.metric, request.answer,
                                                 entry->program.get())
                : engine_->ConsensusTopK(*entry->tree, request.k,
                                         request.metric, request.answer,
                                         entry->program.get());
        AddSpan(&timing, "fold", fold_watch);
        Result<ServiceResponse> response(Status::Internal("unset"));
        if (!result.ok()) {
          response = Result<ServiceResponse>(result.status());
        } else {
          ServiceResponse answer;
          answer.op = ServiceRequest::Op::kTopK;
          answer.tree_name = request.tree_name;
          answer.k = request.k;
          answer.metric = TopKMetricName(request.metric);
          answer.answer = TopKAnswerName(request.answer);
          answer.keys = result->keys;
          answer.expected_distance = result->expected_distance;
          response = std::move(answer);
        }
        FinishTiming(request, &timing, &response);
        return response;
      }
      case ServiceRequest::Op::kWorld: {
        Stopwatch catalog_watch(clk);
        Result<CatalogEntry> entry = catalog_->Lookup(request.tree_name);
        AddSpan(&timing, "catalog", catalog_watch);
        Result<ServiceResponse> response =
            entry.ok() ? ExecuteWorld(*entry, request, clk, &timing)
                       : Result<ServiceResponse>(entry.status());
        FinishTiming(request, &timing, &response);
        return response;
      }
    }
    return Status::Internal("unknown request op");
  }();
  if (instruments != nullptr && !result.ok()) {
    instruments->request_errors_total->Increment();
  }
  return result;
}

void QueryScheduler::ExecuteStreaming(
    const std::function<bool(ServiceRequest*)>& next,
    const std::function<void(const Result<ServiceResponse>&)>& emit) {
  ServiceRequest request;
  // The contract is the loop shape itself: each response is emitted before
  // the next request is pulled, so a client driving `next` from a pipe has
  // answer N in hand while composing request N+1.
  while (next(&request)) {
    emit(ExecuteOne(request));
  }
}

}  // namespace cpdb

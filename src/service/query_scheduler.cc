// Copyright 2026 The ConsensusDB Authors

#include "service/query_scheduler.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "io/table_io.h"
#include "io/tree_text.h"
#include "model/builders.h"
#include "service/op_registry.h"

namespace cpdb {

ServeInstruments::ServeInstruments() {
  requests_total =
      registry.AddCounter("cpdb_requests_total", "Requests received, any op.");
  request_errors_total = registry.AddCounter(
      "cpdb_request_errors_total", "Requests answered with an error line.");
  // The per-op instruments are generated from the registry's wire names in
  // table order — existing ops first, so every historical instrument keeps
  // its exact name and help text, and a new op's pair appears the moment
  // its row is registered.
  const std::vector<OpSpec>& specs = OpRegistry::Get().specs();
  op_requests.reserve(specs.size());
  for (const OpSpec& spec : specs) {
    op_requests.push_back(
        registry.AddCounter("cpdb_" + std::string(spec.name) + "_requests_total",
                            "op=" + std::string(spec.name) + " requests received."));
  }
  op_latencies.reserve(specs.size());
  for (const OpSpec& spec : specs) {
    op_latencies.push_back(registry.AddHistogram(
        "cpdb_" + std::string(spec.name) + "_latency_nanoseconds",
        "op=" + std::string(spec.name) + " service latency."));
  }
  stage_parse = registry.AddHistogram(
      "cpdb_stage_parse_latency_nanoseconds",
      "Parse durations: request lines and load-file trees.");
  stage_catalog =
      registry.AddHistogram("cpdb_stage_catalog_latency_nanoseconds",
                            "Catalog insert and lookup durations.");
  stage_cache = registry.AddHistogram(
      "cpdb_stage_cache_latency_nanoseconds",
      "Memo-cache routing durations (folds on miss included).");
  stage_fold = registry.AddHistogram("cpdb_stage_fold_latency_nanoseconds",
                                     "Engine evaluation durations.");
  stage_format = registry.AddHistogram(
      "cpdb_stage_format_latency_nanoseconds",
      "Response formatting durations (recorded by the transport).");
}

LatencyHistogram* ServeInstruments::stage(const std::string& name) {
  if (name == "parse") return stage_parse;
  if (name == "catalog") return stage_catalog;
  if (name == "cache") return stage_cache;
  if (name == "fold") return stage_fold;
  if (name == "format") return stage_format;
  return nullptr;
}

void AppendCacheStatsMetrics(const CacheStats& stats,
                             const std::string& prefix, MetricsSnapshot* out) {
  auto add = [&](const char* name, MetricSample::Kind kind, int64_t value,
                 const char* help) {
    MetricSample sample;
    sample.name = prefix + name;
    sample.help = help;
    sample.kind = kind;
    sample.value = value;
    out->samples.push_back(std::move(sample));
  };
  add("hits_total", MetricSample::Kind::kCounter, stats.hits, "Cache hits.");
  add("misses_total", MetricSample::Kind::kCounter, stats.misses,
      "Cache misses (entry computed).");
  add("coalesced_total", MetricSample::Kind::kCounter, stats.coalesced,
      "Lookups coalesced onto an in-flight compute.");
  add("evictions_total", MetricSample::Kind::kCounter, stats.evictions,
      "Entries evicted under the byte budget.");
  add("entries", MetricSample::Kind::kGauge, stats.entries,
      "Entries currently retained.");
  add("bytes", MetricSample::Kind::kGauge, stats.bytes,
      "Bytes currently charged against the budget.");
}

std::string FormatSlowQueryLine(int64_t line_number,
                                const std::string& raw_request,
                                const ResponseTiming& timing) {
  std::string out = "slow-query\tline=" + std::to_string(line_number);
  out += "\ttotal_ms=" +
         FormatRoundTripDouble(static_cast<double>(timing.total_ns) / 1e6);
  for (const auto& [stage, nanos] : timing.spans) {
    out += "\t" + stage + "_ns=" + std::to_string(nanos);
  }
  out += "\trequest=" + EscapeFieldValue(raw_request);
  return out;
}

QueryScheduler::QueryScheduler(const Engine* engine, TreeCatalog* catalog,
                               SchedulerOptions options)
    : engine_(engine),
      catalog_(catalog),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SteadyClock::Instance()),
      instruments_(options.enable_metrics ? std::make_unique<ServeInstruments>()
                                          : nullptr),
      cache_(options.cache_budget_bytes),
      marginals_cache_(options.cache_budget_bytes) {}

Result<AndXorTree> LoadRequestTree(const ServiceRequest& request) {
  CPDB_ASSIGN_OR_RETURN(std::string content,
                        ReadFileToString(request.load_file));
  if (request.load_format == "tree") {
    return ParseTree(content);
  }
  CPDB_ASSIGN_OR_RETURN(std::vector<Block> blocks, ParseBidTable(content));
  return MakeBlockIndependent(blocks);
}

Result<ServiceResponse> QueryScheduler::ExecuteLoadTimed(
    const ServiceRequest& request, const Clock* clk, ResponseTiming* timing) {
  Stopwatch parse_watch(clk);
  Result<AndXorTree> tree = LoadRequestTree(request);
  AddSpan(timing, "parse", parse_watch);
  if (!tree.ok()) return tree.status();
  Stopwatch catalog_watch(clk);
  Result<CatalogEntry> entry =
      catalog_->Insert(request.load_name, std::move(*tree));
  AddSpan(timing, "catalog", catalog_watch);
  if (!entry.ok()) return entry.status();
  ServiceResponse response;
  response.op = ServiceRequest::Op::kLoad;
  response.tree_name = entry->name;
  response.fingerprint = entry->content_fp;
  return response;
}

std::shared_ptr<const RankDistribution> QueryScheduler::DistFor(
    const CatalogEntry& entry, const ServiceRequest& request) {
  // A request that can only fail (bad k, unsupported metric/answer pair)
  // must not populate the cache: the engine rejects such queries *before*
  // paying the fold, and the scheduler keeps that property. The engine
  // call downstream reports the actual error.
  if (!options_.use_cache || request.k < 1 ||
      !Engine::ValidateConsensusRequest(request.metric, request.answer).ok()) {
    return nullptr;
  }
  // Keyed by struct_key: permuted duplicates resolve to one entry. The
  // fold itself runs over the catalog's canonical tree with the catalog's
  // precompiled per-shape program, so a miss pays the O(L^2 k) fold but
  // never a compile.
  const AndXorTree& tree = *entry.tree;
  const int k = request.k;
  return cache_.GetOrCompute(entry.struct_key, k, [this, &tree, k, &entry] {
    return engine_->ComputeRankDistribution(tree, k, entry.program.get());
  });
}

std::shared_ptr<const RankDistribution> QueryScheduler::RankDistFor(
    const CatalogEntry& entry, int k) {
  const AndXorTree& tree = *entry.tree;
  if (!options_.use_cache) {
    return std::make_shared<const RankDistribution>(
        engine_->ComputeRankDistribution(tree, k, entry.program.get()));
  }
  // Same (StructKey, k) keying as the consensus path's DistFor, so a
  // baseline probe and a Top-k query against the same content share one
  // fold — in either order.
  return cache_.GetOrCompute(entry.struct_key, k, [this, &tree, k, &entry] {
    return engine_->ComputeRankDistribution(tree, k, entry.program.get());
  });
}

std::shared_ptr<const std::vector<double>> QueryScheduler::MarginalsFor(
    const CatalogEntry& entry) {
  const AndXorTree& tree = *entry.tree;
  if (!options_.use_cache) {
    return std::make_shared<const std::vector<double>>(
        engine_->LeafMarginals(tree, entry.program.get()));
  }
  return marginals_cache_.GetOrCompute(entry.struct_key, [this, &tree, &entry] {
    return engine_->LeafMarginals(tree, entry.program.get());
  });
}

ServiceResponse QueryScheduler::StatsResponse() const {
  ServiceResponse response;
  response.op = ServiceRequest::Op::kStats;
  response.stats = cache_.stats();
  response.marginals_stats = marginals_cache_.stats();
  response.catalog = catalog_->Counts();
  return response;
}

MetricsSnapshot QueryScheduler::MetricsSnapshotNow() const {
  MetricsSnapshot snapshot = instruments_->registry.Snapshot();
  // The registry holds the serve-path instruments; the engine counters and
  // the cache counters live in their own structs and are re-exported into
  // the same scrape, so one op=metrics answer covers the whole shard.
  MetricsSnapshot extra;
  const EngineObsCounters engine_counters = engine_->obs_counters();
  const CatalogCounts catalog_counts = catalog_->Counts();
  MetricSample fold_compiles;
  fold_compiles.name = "cpdb_fold_compiles_total";
  fold_compiles.help =
      "FlatTree compilations performed: the catalog's one-per-shape compiles "
      "plus the engine's on-demand ones.";
  fold_compiles.kind = MetricSample::Kind::kCounter;
  fold_compiles.value =
      engine_counters.fold_compiles + catalog_->fold_compiles();
  extra.samples.push_back(std::move(fold_compiles));
  MetricSample catalog_entries;
  catalog_entries.name = "cpdb_catalog_entries";
  catalog_entries.help = "Names bound in the tree catalog.";
  catalog_entries.kind = MetricSample::Kind::kGauge;
  catalog_entries.value = catalog_counts.names;
  extra.samples.push_back(std::move(catalog_entries));
  MetricSample catalog_shapes;
  catalog_shapes.name = "cpdb_catalog_shapes";
  catalog_shapes.help =
      "Distinct tree structures (canonical orientations) in the catalog.";
  catalog_shapes.kind = MetricSample::Kind::kGauge;
  catalog_shapes.value = catalog_counts.shapes;
  extra.samples.push_back(std::move(catalog_shapes));
  MetricSample arena_highwater;
  arena_highwater.name = "cpdb_poly_arena_highwater_bytes";
  arena_highwater.help =
      "Peak thread-local fold-arena capacity observed on any engine thread.";
  arena_highwater.kind = MetricSample::Kind::kGauge;
  arena_highwater.value = engine_counters.arena_highwater_bytes;
  extra.samples.push_back(std::move(arena_highwater));
  AppendCacheStatsMetrics(cache_.stats(), "cpdb_rankdist_cache_", &extra);
  AppendCacheStatsMetrics(marginals_cache_.stats(), "cpdb_marginals_cache_",
                          &extra);
  std::sort(extra.samples.begin(), extra.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  snapshot.MergeFrom(extra);
  return snapshot;
}

void QueryScheduler::FinishTiming(const ServiceRequest& request,
                                  ResponseTiming* timing,
                                  Result<ServiceResponse>* response) {
  timing->total_ns = 0;
  for (const auto& [stage, nanos] : timing->spans) timing->total_ns += nanos;
  if (instruments_ != nullptr && !timing->spans.empty()) {
    instruments_->op_latency(request.op)->Record(timing->total_ns);
    for (const auto& [stage, nanos] : timing->spans) {
      if (LatencyHistogram* hist = instruments_->stage(stage)) {
        hist->Record(nanos);
      }
    }
  }
  // Attach timing to every timed ok response — not just traced ones: the
  // transport's slow-query log reads total_ns off the response. The wire
  // is unaffected because ResponseToFields only renders trace_* fields
  // when timing.trace (the request said trace=on) is set.
  if (response->ok() && !timing->spans.empty()) {
    timing->trace = request.trace;
    (*response)->timing = std::move(*timing);
  }
}

// The OpHost surface the registry's hooks execute against when the op runs
// on this (single-engine) scheduler: straight forwarding onto the private
// primitives. Lives in namespace cpdb so the header's friend declaration
// names exactly this class.
class SchedulerOpHost : public OpHost {
 public:
  explicit SchedulerOpHost(QueryScheduler* scheduler)
      : scheduler_(scheduler) {}

  const Engine* engine() const override { return scheduler_->engine_; }

  std::shared_ptr<const RankDistribution> GatedDistFor(
      const CatalogEntry& entry, const ServiceRequest& request) override {
    return scheduler_->DistFor(entry, request);
  }

  std::shared_ptr<const RankDistribution> RankDistFor(const CatalogEntry& entry,
                                                      int k) override {
    return scheduler_->RankDistFor(entry, k);
  }

  std::shared_ptr<const std::vector<double>> MarginalsFor(
      const CatalogEntry& entry) override {
    return scheduler_->MarginalsFor(entry);
  }

  ServiceResponse StatsNow() override { return scheduler_->StatsResponse(); }

  Result<MetricsSnapshot> MetricsNow() override {
    if (scheduler_->instruments_ == nullptr) return MetricsDisabledError();
    return scheduler_->MetricsSnapshotNow();
  }

  Result<ServiceResponse> ExecuteLoadOp(const ServiceRequest& request,
                                        const Clock* clk,
                                        ResponseTiming* timing) override {
    return scheduler_->ExecuteLoadTimed(request, clk, timing);
  }

 private:
  QueryScheduler* scheduler_;
};

namespace {

// The shared admin-op wrapper (stats, metrics — any kAdmin row): one
// whole-op measurement, no stages, recorded *after* the hook runs so a
// metrics scrape describes the work before it, never itself. A refused op
// (e.g. metrics while disabled) records nothing — the caller counts the
// error.
Result<ServiceResponse> ExecuteAdminTimed(const OpSpec& spec, OpHost& host,
                                          const ServiceRequest& request,
                                          const Clock* clk,
                                          ServeInstruments* instruments) {
  Stopwatch watch(clk);
  Result<ServiceResponse> response = spec.execute_admin(host, request);
  if (watch.enabled() && response.ok()) {
    (*response).timing.total_ns = watch.ElapsedNanos();
    (*response).timing.trace = request.trace;
    if (instruments != nullptr) {
      instruments->op_latency(spec.op)->Record((*response).timing.total_ns);
    }
  }
  return response;
}

}  // namespace

std::vector<Result<ServiceResponse>> QueryScheduler::ExecuteBatch(
    const std::vector<ServiceRequest>& requests) {
  std::vector<Result<ServiceResponse>> responses(
      requests.size(),
      Result<ServiceResponse>(Status::Internal("request not executed")));
  const OpRegistry& ops = OpRegistry::Get();
  SchedulerOpHost host(this);

  // Timing is live when metrics are on or any request asked for a trace;
  // otherwise `clk` is null and every Stopwatch below is inert (zero clock
  // reads). Instrumentation never touches answer bytes either way.
  bool any_trace = false;
  for (const ServiceRequest& request : requests) any_trace |= request.trace;
  const Clock* clk = TimingClock(any_trace);
  ServeInstruments* instruments = instruments_.get();
  if (instruments != nullptr) {
    instruments->requests_total->Increment(
        static_cast<int64_t>(requests.size()));
    for (const ServiceRequest& request : requests) {
      instruments->op_counter(request.op)->Increment();
    }
  }
  std::vector<ResponseTiming> timings(requests.size());

  // Loads first, in request order: a batch is a unit of work, so queries
  // may reference trees loaded anywhere in the same batch.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (ops.spec(requests[i].op).batch_phase == kLoadPhase) {
      responses[i] = host.ExecuteLoadOp(requests[i], clk, &timings[i]);
    }
  }

  // Resolve every tree-addressed slot's tree; unknown names fail their
  // slot only. Slots whose spec fuses into the consensus batch are split
  // from the ones executing their own hook.
  std::vector<size_t> fused_slots;
  std::vector<CatalogEntry> fused_entries;
  std::vector<size_t> direct_slots;
  std::vector<CatalogEntry> direct_entries;
  for (size_t i = 0; i < requests.size(); ++i) {
    const OpSpec& spec = ops.spec(requests[i].op);
    if (spec.routing != OpRouting::kTreeAddressed) continue;
    Stopwatch catalog_watch(clk);
    Result<CatalogEntry> entry = catalog_->Lookup(requests[i].tree_name);
    AddSpan(&timings[i], "catalog", catalog_watch);
    if (!entry.ok()) {
      responses[i] = entry.status();
      continue;
    }
    if (spec.fuse_consensus_batch) {
      fused_slots.push_back(i);
      fused_entries.push_back(*std::move(entry));
    } else {
      direct_slots.push_back(i);
      direct_entries.push_back(*std::move(entry));
    }
  }

  // The deduplication step: route every Top-k query's rank-distribution
  // precompute through the (fingerprint, k) cache, in slot order, so the
  // first query of each pair computes the fold and the rest hit — within
  // this batch and across batches alike. The handles keep cached entries
  // alive for the duration of the engine call even if entries are evicted
  // or the cache is Cleared concurrently.
  std::vector<std::shared_ptr<const RankDistribution>> dists(
      fused_slots.size());
  for (size_t j = 0; j < fused_slots.size(); ++j) {
    Stopwatch cache_watch(clk);
    dists[j] = DistFor(fused_entries[j], requests[fused_slots[j]]);
    AddSpan(&timings[fused_slots[j]], "cache", cache_watch);
  }

  // One engine submission for all fused slots: whole queries fan across
  // the pool, cached distributions are shared read-only.
  std::vector<Engine::ConsensusQuery> queries(fused_slots.size());
  for (size_t j = 0; j < fused_slots.size(); ++j) {
    const ServiceRequest& request = requests[fused_slots[j]];
    queries[j] = {fused_entries[j].tree.get(), request.k, request.metric,
                  request.answer, dists[j].get(),
                  fused_entries[j].program.get()};
  }
  Stopwatch fold_watch(clk);
  std::vector<Result<TopKResult>> results =
      engine_->EvaluateConsensusBatch(queries);
  // The whole submission is one engine call, so every fused slot records
  // the same fold duration — per-slot attribution inside a fused batch
  // would be fiction. The count (one fold span per slot) is what the
  // sharded-parity tests rely on; values are side-band by contract.
  const int64_t batch_fold_nanos = fold_watch.ElapsedNanos();
  for (size_t j = 0; j < fused_slots.size(); ++j) {
    const size_t slot = fused_slots[j];
    if (fold_watch.enabled()) {
      timings[slot].spans.emplace_back("fold", batch_fold_nanos);
    }
    if (!results[j].ok()) {
      responses[slot] = results[j].status();
      continue;
    }
    responses[slot] = ConsensusTopKResponse(requests[slot], *results[j]);
  }

  // The direct tree-addressed slots (worlds, the analytics ops) run their
  // own execute hooks after the fused finalize, in slot order — each
  // routes its precompute through the caches inside the hook.
  for (size_t j = 0; j < direct_slots.size(); ++j) {
    const size_t slot = direct_slots[j];
    responses[slot] = ops.spec(requests[slot].op)
                          .execute_tree(host, direct_entries[j],
                                        requests[slot], clk, &timings[slot]);
  }

  // Close out load/query timing — histogram records and error counts land
  // *before* the admin passes below, so a scrape in this batch describes
  // all of the batch's query work, sharded or not.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (ops.spec(requests[i].op).batch_phase >= kStatsPhase) continue;
    FinishTiming(requests[i], &timings[i], &responses[i]);
    if (instruments != nullptr && !responses[i].ok()) {
      instruments->request_errors_total->Increment();
    }
  }

  // Admin phases in declared order — stats next-to-last (the counters
  // describe the batch that just ran), metrics last of all (a scrape in a
  // batch answers for everything the batch did, its stats probes
  // included), regardless of slot order.
  for (int phase : {kStatsPhase, kMetricsPhase}) {
    for (size_t i = 0; i < requests.size(); ++i) {
      const OpSpec& spec = ops.spec(requests[i].op);
      if (spec.batch_phase != phase) continue;
      responses[i] =
          ExecuteAdminTimed(spec, host, requests[i], clk, instruments);
      if (instruments != nullptr && !responses[i].ok()) {
        instruments->request_errors_total->Increment();
      }
    }
  }
  return responses;
}

Result<ServiceResponse> QueryScheduler::ExecuteOne(
    const ServiceRequest& request) {
  const OpSpec& spec = OpRegistry::Get().spec(request.op);
  SchedulerOpHost host(this);
  const Clock* clk = TimingClock(request.trace);
  ServeInstruments* instruments = instruments_.get();
  if (instruments != nullptr) {
    instruments->requests_total->Increment();
    instruments->op_counter(request.op)->Increment();
  }
  // Dispatch is by routing trait — three shapes of execution, not one
  // branch per op. Adding an op touches the registry table, never this
  // switch.
  Result<ServiceResponse> result = [&]() -> Result<ServiceResponse> {
    ResponseTiming timing;
    switch (spec.routing) {
      case OpRouting::kCatalogGlobal: {
        Result<ServiceResponse> response =
            host.ExecuteLoadOp(request, clk, &timing);
        FinishTiming(request, &timing, &response);
        return response;
      }
      case OpRouting::kAdmin:
        return ExecuteAdminTimed(spec, host, request, clk, instruments);
      case OpRouting::kTreeAddressed: {
        Stopwatch catalog_watch(clk);
        Result<CatalogEntry> entry = catalog_->Lookup(request.tree_name);
        AddSpan(&timing, "catalog", catalog_watch);
        Result<ServiceResponse> response =
            entry.ok() ? spec.execute_tree(host, *entry, request, clk, &timing)
                       : Result<ServiceResponse>(entry.status());
        FinishTiming(request, &timing, &response);
        return response;
      }
    }
    return Status::Internal("unknown request op");
  }();
  if (instruments != nullptr && !result.ok()) {
    instruments->request_errors_total->Increment();
  }
  return result;
}

void QueryScheduler::ExecuteStreaming(
    const std::function<bool(ServiceRequest*)>& next,
    const std::function<void(const Result<ServiceResponse>&)>& emit) {
  ServiceRequest request;
  // The contract is the loop shape itself: each response is emitted before
  // the next request is pulled, so a client driving `next` from a pipe has
  // answer N in hand while composing request N+1.
  while (next(&request)) {
    emit(ExecuteOne(request));
  }
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "service/query_scheduler.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "common/hash.h"
#include "core/set_consensus.h"
#include "core/topk_metrics.h"
#include "io/table_io.h"
#include "io/tree_text.h"
#include "model/builders.h"
#include "model/possible_worlds.h"

namespace cpdb {

namespace {

const char* OpName(ServiceRequest::Op op) {
  switch (op) {
    case ServiceRequest::Op::kLoad:
      return "load";
    case ServiceRequest::Op::kTopK:
      return "topk";
    case ServiceRequest::Op::kWorld:
      return "world";
    case ServiceRequest::Op::kStats:
      return "stats";
  }
  return "?";
}

// Strict field-set check: a request naming a field its op does not take is
// an error, never ignored (a typo'd "metrc=kendall" must not silently run
// the default metric).
Status CheckAllowedFields(const RequestLine& line,
                          std::initializer_list<const char*> allowed) {
  for (const RequestField& f : line.fields) {
    bool known = f.name == "op";
    for (const char* name : allowed) known = known || f.name == name;
    if (!known) {
      return Status::InvalidArgument("unknown field '" + f.name + "' for op=" +
                                     *line.Find("op"));
    }
  }
  return Status::OK();
}

Result<std::string> RequiredField(const RequestLine& line,
                                  const std::string& name) {
  const std::string* value = line.Find(name);
  if (value == nullptr) {
    // The op field may itself be the missing one; never dereference it.
    const std::string* op = line.Find("op");
    return Status::InvalidArgument(
        (op != nullptr ? "op=" + *op + " " : "request ") + "requires field '" +
        name + "'");
  }
  return *value;
}

std::string FormatDistance(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

std::string KeysCsv(const std::vector<KeyId>& keys) {
  std::string csv;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) csv += ',';
    csv += std::to_string(keys[i]);
  }
  return csv;
}

}  // namespace

Result<ServiceRequest> ServiceRequestFromLine(const RequestLine& line) {
  CPDB_ASSIGN_OR_RETURN(std::string op, RequiredField(line, "op"));
  ServiceRequest request;
  if (op == "load") {
    request.op = ServiceRequest::Op::kLoad;
    Status allowed = CheckAllowedFields(line, {"name", "file", "format"});
    if (!allowed.ok()) return allowed;
    CPDB_ASSIGN_OR_RETURN(request.load_name, RequiredField(line, "name"));
    CPDB_ASSIGN_OR_RETURN(request.load_file, RequiredField(line, "file"));
    if (const std::string* format = line.Find("format")) {
      if (*format != "tree" && *format != "bid") {
        return Status::InvalidArgument("unknown format '" + *format +
                                       "' (expected tree or bid)");
      }
      request.load_format = *format;
    }
    return request;
  }
  if (op == "topk") {
    request.op = ServiceRequest::Op::kTopK;
    Status allowed =
        CheckAllowedFields(line, {"tree", "k", "metric", "answer"});
    if (!allowed.ok()) return allowed;
    CPDB_ASSIGN_OR_RETURN(request.tree_name, RequiredField(line, "tree"));
    CPDB_ASSIGN_OR_RETURN(std::string k_text, RequiredField(line, "k"));
    CPDB_ASSIGN_OR_RETURN(long long k, ParseStrictInt("k", k_text));
    if (k < 1 || k > (1 << 20)) {
      return Status::InvalidArgument("k out of range, got '" + k_text + "'");
    }
    request.k = static_cast<int>(k);
    if (const std::string* metric = line.Find("metric")) {
      CPDB_ASSIGN_OR_RETURN(request.metric, ParseTopKMetricName(*metric));
    }
    if (const std::string* answer = line.Find("answer")) {
      CPDB_ASSIGN_OR_RETURN(request.answer, ParseTopKAnswerName(*answer));
    }
    return request;
  }
  if (op == "world") {
    request.op = ServiceRequest::Op::kWorld;
    Status allowed = CheckAllowedFields(line, {"tree", "metric", "answer"});
    if (!allowed.ok()) return allowed;
    CPDB_ASSIGN_OR_RETURN(request.tree_name, RequiredField(line, "tree"));
    if (const std::string* metric = line.Find("metric")) {
      if (*metric != "symdiff") {
        return Status::InvalidArgument("op=world supports metric=symdiff, got '" +
                                       *metric + "'");
      }
    }
    if (const std::string* answer = line.Find("answer")) {
      if (*answer == "median") {
        request.median_world = true;
      } else if (*answer != "mean") {
        return Status::InvalidArgument("unknown answer '" + *answer +
                                       "' (expected mean or median)");
      }
    }
    return request;
  }
  if (op == "stats") {
    request.op = ServiceRequest::Op::kStats;
    Status allowed = CheckAllowedFields(line, {});
    if (!allowed.ok()) return allowed;
    return request;
  }
  return Status::InvalidArgument("unknown op '" + op +
                                 "' (expected load, topk, world or stats)");
}

std::vector<RequestField> ResponseToFields(const ServiceResponse& response) {
  std::vector<RequestField> fields;
  fields.push_back({"op", OpName(response.op)});
  switch (response.op) {
    case ServiceRequest::Op::kLoad:
      fields.push_back({"name", response.tree_name});
      fields.push_back({"fingerprint", HashToHex(response.fingerprint)});
      break;
    case ServiceRequest::Op::kTopK:
      fields.push_back({"tree", response.tree_name});
      fields.push_back({"metric", response.metric});
      fields.push_back({"answer", response.answer});
      fields.push_back({"k", std::to_string(response.k)});
      fields.push_back({"keys", KeysCsv(response.keys)});
      fields.push_back(
          {"expected", FormatDistance(response.expected_distance)});
      break;
    case ServiceRequest::Op::kWorld:
      fields.push_back({"tree", response.tree_name});
      fields.push_back({"metric", response.metric});
      fields.push_back({"answer", response.answer});
      fields.push_back({"keys", KeysCsv(response.keys)});
      fields.push_back(
          {"expected", FormatDistance(response.expected_distance)});
      break;
    case ServiceRequest::Op::kStats:
      fields.push_back({"hits", std::to_string(response.stats.hits)});
      fields.push_back({"misses", std::to_string(response.stats.misses)});
      fields.push_back({"entries", std::to_string(response.stats.entries)});
      break;
  }
  return fields;
}

QueryScheduler::QueryScheduler(const Engine* engine, TreeCatalog* catalog,
                               SchedulerOptions options)
    : engine_(engine), catalog_(catalog), options_(options) {}

namespace {

Result<ServiceResponse> ExecuteLoad(TreeCatalog* catalog,
                                    const ServiceRequest& request) {
  CPDB_ASSIGN_OR_RETURN(std::string content,
                        ReadFileToString(request.load_file));
  Result<CatalogEntry> entry = Status::Internal("unreachable");
  if (request.load_format == "tree") {
    entry = catalog->InsertFromText(request.load_name, content);
  } else {
    CPDB_ASSIGN_OR_RETURN(std::vector<Block> blocks, ParseBidTable(content));
    CPDB_ASSIGN_OR_RETURN(AndXorTree tree, MakeBlockIndependent(blocks));
    entry = catalog->Insert(request.load_name, std::move(tree));
  }
  if (!entry.ok()) return entry.status();
  ServiceResponse response;
  response.op = ServiceRequest::Op::kLoad;
  response.tree_name = entry->name;
  response.fingerprint = entry->fingerprint;
  return response;
}

}  // namespace

std::vector<Result<ServiceResponse>> QueryScheduler::ExecuteBatch(
    const std::vector<ServiceRequest>& requests) {
  std::vector<Result<ServiceResponse>> responses(
      requests.size(),
      Result<ServiceResponse>(Status::Internal("request not executed")));

  // Loads first, in request order: a batch is a unit of work, so queries
  // may reference trees loaded anywhere in the same batch.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].op == ServiceRequest::Op::kLoad) {
      responses[i] = ExecuteLoad(catalog_, requests[i]);
    }
  }

  // Resolve query trees; unknown names fail their slot only.
  std::vector<size_t> topk_slots;
  std::vector<CatalogEntry> topk_entries;
  std::vector<size_t> world_slots;
  std::vector<CatalogEntry> world_entries;
  for (size_t i = 0; i < requests.size(); ++i) {
    const ServiceRequest& request = requests[i];
    if (request.op != ServiceRequest::Op::kTopK &&
        request.op != ServiceRequest::Op::kWorld) {
      continue;
    }
    Result<CatalogEntry> entry = catalog_->Lookup(request.tree_name);
    if (!entry.ok()) {
      responses[i] = entry.status();
      continue;
    }
    if (request.op == ServiceRequest::Op::kTopK) {
      topk_slots.push_back(i);
      topk_entries.push_back(*std::move(entry));
    } else {
      world_slots.push_back(i);
      world_entries.push_back(*std::move(entry));
    }
  }

  // The deduplication step: route every Top-k query's rank-distribution
  // precompute through the (fingerprint, k) cache, in slot order, so the
  // first query of each pair computes the fold and the rest hit — within
  // this batch and across batches alike. The handles keep cached entries
  // alive for the duration of the engine call even if the cache is Cleared
  // concurrently.
  std::vector<std::shared_ptr<const RankDistribution>> dists(
      topk_slots.size());
  if (options_.use_cache) {
    for (size_t j = 0; j < topk_slots.size(); ++j) {
      const ServiceRequest& request = requests[topk_slots[j]];
      // A request that can only fail (bad k, unsupported metric/answer
      // pair) must not populate the cache: the engine rejects such
      // queries *before* paying the fold, and the scheduler keeps that
      // property. The engine call below reports the actual error.
      if (request.k < 1 ||
          !Engine::ValidateConsensusRequest(request.metric, request.answer)
               .ok()) {
        continue;
      }
      const CatalogEntry& entry = topk_entries[j];
      const AndXorTree& tree = *entry.tree;
      const int k = request.k;
      dists[j] = cache_.GetOrCompute(entry.fingerprint, k, [&] {
        return engine_->ComputeRankDistribution(tree, k);
      });
    }
  }

  // One engine submission for all Top-k slots: whole queries fan across
  // the pool, cached distributions are shared read-only.
  std::vector<Engine::ConsensusQuery> queries(topk_slots.size());
  for (size_t j = 0; j < topk_slots.size(); ++j) {
    const ServiceRequest& request = requests[topk_slots[j]];
    queries[j] = {topk_entries[j].tree.get(), request.k, request.metric,
                  request.answer, dists[j].get()};
  }
  std::vector<Result<TopKResult>> results =
      engine_->EvaluateConsensusBatch(queries);
  for (size_t j = 0; j < topk_slots.size(); ++j) {
    const size_t slot = topk_slots[j];
    if (!results[j].ok()) {
      responses[slot] = results[j].status();
      continue;
    }
    const ServiceRequest& request = requests[slot];
    ServiceResponse response;
    response.op = ServiceRequest::Op::kTopK;
    response.tree_name = request.tree_name;
    response.k = request.k;
    response.metric = TopKMetricName(request.metric);
    response.answer = TopKAnswerName(request.answer);
    response.keys = results[j]->keys;
    response.expected_distance = results[j]->expected_distance;
    responses[slot] = std::move(response);
  }

  // Set-consensus worlds: one parallel marginal fold serves the answer and
  // its expected distance, exactly like the CLI's consensus-world path.
  for (size_t j = 0; j < world_slots.size(); ++j) {
    const size_t slot = world_slots[j];
    const ServiceRequest& request = requests[slot];
    const AndXorTree& tree = *world_entries[j].tree;
    std::vector<double> marginal = engine_->LeafMarginals(tree);
    std::vector<NodeId> world =
        request.median_world ? MedianWorldSymDiffFromMarginals(tree, marginal)
                             : MeanWorldSymDiffFromMarginals(tree, marginal);
    ServiceResponse response;
    response.op = ServiceRequest::Op::kWorld;
    response.tree_name = request.tree_name;
    response.metric = "symdiff";
    response.answer = request.median_world ? "median" : "mean";
    response.expected_distance =
        ExpectedSymDiffDistanceFromMarginals(tree, marginal, world);
    for (const TupleAlternative& tuple : WorldTuples(tree, world)) {
      response.keys.push_back(tuple.key);
    }
    responses[slot] = std::move(response);
  }

  // Stats last: the counters describe the batch that just ran.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].op == ServiceRequest::Op::kStats) {
      ServiceResponse response;
      response.op = ServiceRequest::Op::kStats;
      response.stats = cache_.stats();
      responses[i] = std::move(response);
    }
  }
  return responses;
}

}  // namespace cpdb

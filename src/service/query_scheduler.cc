// Copyright 2026 The ConsensusDB Authors

#include "service/query_scheduler.h"

#include <memory>
#include <utility>

#include "common/hash.h"
#include "core/set_consensus.h"
#include "core/topk_metrics.h"
#include "io/table_io.h"
#include "io/tree_text.h"
#include "model/builders.h"
#include "model/possible_worlds.h"

namespace cpdb {

namespace {

const char* OpName(ServiceRequest::Op op) {
  switch (op) {
    case ServiceRequest::Op::kLoad:
      return "load";
    case ServiceRequest::Op::kTopK:
      return "topk";
    case ServiceRequest::Op::kWorld:
      return "world";
    case ServiceRequest::Op::kStats:
      return "stats";
  }
  return "?";
}

// Strict field-set check: a request naming a field its op does not take is
// an error, never ignored (a typo'd "metrc=kendall" must not silently run
// the default metric).
Status CheckAllowedFields(const RequestLine& line,
                          std::initializer_list<const char*> allowed) {
  for (const RequestField& f : line.fields) {
    bool known = f.name == "op";
    for (const char* name : allowed) known = known || f.name == name;
    if (!known) {
      return Status::InvalidArgument("unknown field '" + f.name + "' for op=" +
                                     *line.Find("op"));
    }
  }
  return Status::OK();
}

Result<std::string> RequiredField(const RequestLine& line,
                                  const std::string& name) {
  const std::string* value = line.Find(name);
  if (value == nullptr) {
    // The op field may itself be the missing one; never dereference it.
    const std::string* op = line.Find("op");
    return Status::InvalidArgument(
        (op != nullptr ? "op=" + *op + " " : "request ") + "requires field '" +
        name + "'");
  }
  return *value;
}

std::string KeysCsv(const std::vector<KeyId>& keys) {
  std::string csv;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) csv += ',';
    csv += std::to_string(keys[i]);
  }
  return csv;
}

void AppendCacheFields(const CacheStats& stats, const std::string& prefix,
                       std::vector<RequestField>* fields) {
  auto add = [&](const char* name, int64_t value) {
    fields->push_back({prefix + name, std::to_string(value)});
  };
  add("hits", stats.hits);
  add("misses", stats.misses);
  add("coalesced", stats.coalesced);
  add("entries", stats.entries);
  add("evictions", stats.evictions);
  add("bytes", stats.bytes);
}

}  // namespace

Result<ServiceRequest> ServiceRequestFromLine(const RequestLine& line) {
  CPDB_ASSIGN_OR_RETURN(std::string op, RequiredField(line, "op"));
  ServiceRequest request;
  if (op == "load") {
    request.op = ServiceRequest::Op::kLoad;
    Status allowed = CheckAllowedFields(line, {"name", "file", "format"});
    if (!allowed.ok()) return allowed;
    CPDB_ASSIGN_OR_RETURN(request.load_name, RequiredField(line, "name"));
    CPDB_ASSIGN_OR_RETURN(request.load_file, RequiredField(line, "file"));
    if (const std::string* format = line.Find("format")) {
      if (*format != "tree" && *format != "bid") {
        return Status::InvalidArgument("unknown format '" + *format +
                                       "' (expected tree or bid)");
      }
      request.load_format = *format;
    }
    return request;
  }
  if (op == "topk") {
    request.op = ServiceRequest::Op::kTopK;
    Status allowed =
        CheckAllowedFields(line, {"tree", "k", "metric", "answer"});
    if (!allowed.ok()) return allowed;
    CPDB_ASSIGN_OR_RETURN(request.tree_name, RequiredField(line, "tree"));
    CPDB_ASSIGN_OR_RETURN(std::string k_text, RequiredField(line, "k"));
    CPDB_ASSIGN_OR_RETURN(long long k, ParseStrictInt("k", k_text));
    if (k < 1 || k > (1 << 20)) {
      return Status::InvalidArgument("k out of range, got '" + k_text + "'");
    }
    request.k = static_cast<int>(k);
    if (const std::string* metric = line.Find("metric")) {
      CPDB_ASSIGN_OR_RETURN(request.metric, ParseTopKMetricName(*metric));
    }
    if (const std::string* answer = line.Find("answer")) {
      CPDB_ASSIGN_OR_RETURN(request.answer, ParseTopKAnswerName(*answer));
    }
    return request;
  }
  if (op == "world") {
    request.op = ServiceRequest::Op::kWorld;
    Status allowed = CheckAllowedFields(line, {"tree", "metric", "answer"});
    if (!allowed.ok()) return allowed;
    CPDB_ASSIGN_OR_RETURN(request.tree_name, RequiredField(line, "tree"));
    if (const std::string* metric = line.Find("metric")) {
      if (*metric != "symdiff") {
        return Status::InvalidArgument("op=world supports metric=symdiff, got '" +
                                       *metric + "'");
      }
    }
    if (const std::string* answer = line.Find("answer")) {
      if (*answer == "median") {
        request.median_world = true;
      } else if (*answer != "mean") {
        return Status::InvalidArgument("unknown answer '" + *answer +
                                       "' (expected mean or median)");
      }
    }
    return request;
  }
  if (op == "stats") {
    request.op = ServiceRequest::Op::kStats;
    Status allowed = CheckAllowedFields(line, {});
    if (!allowed.ok()) return allowed;
    return request;
  }
  return Status::InvalidArgument("unknown op '" + op +
                                 "' (expected load, topk, world or stats)");
}

std::vector<RequestField> ResponseToFields(const ServiceResponse& response) {
  std::vector<RequestField> fields;
  fields.push_back({"op", OpName(response.op)});
  switch (response.op) {
    case ServiceRequest::Op::kLoad:
      fields.push_back({"name", response.tree_name});
      fields.push_back({"fingerprint", HashToHex(response.fingerprint)});
      break;
    case ServiceRequest::Op::kTopK:
      fields.push_back({"tree", response.tree_name});
      fields.push_back({"metric", response.metric});
      fields.push_back({"answer", response.answer});
      fields.push_back({"k", std::to_string(response.k)});
      fields.push_back({"keys", KeysCsv(response.keys)});
      fields.push_back(
          {"expected", FormatRoundTripDouble(response.expected_distance)});
      break;
    case ServiceRequest::Op::kWorld:
      fields.push_back({"tree", response.tree_name});
      fields.push_back({"metric", response.metric});
      fields.push_back({"answer", response.answer});
      fields.push_back({"keys", KeysCsv(response.keys)});
      fields.push_back(
          {"expected", FormatRoundTripDouble(response.expected_distance)});
      break;
    case ServiceRequest::Op::kStats:
      // The aggregate fields come first and are identical in meaning
      // whether the answer came from one engine or a sharded front-end;
      // the per-shard breakdown (when present) trails them, so clients
      // reading only the totals never notice the shard layout.
      AppendCacheFields(response.stats, "", &fields);
      AppendCacheFields(response.marginals_stats, "marg_", &fields);
      if (!response.shard_stats.empty()) {
        fields.push_back(
            {"shards", std::to_string(response.shard_stats.size())});
        for (size_t s = 0; s < response.shard_stats.size(); ++s) {
          const std::string prefix = "s" + std::to_string(s) + "_";
          AppendCacheFields(response.shard_stats[s].rank_dist, prefix,
                            &fields);
          AppendCacheFields(response.shard_stats[s].marginals,
                            prefix + "marg_", &fields);
        }
      }
      break;
  }
  return fields;
}

QueryScheduler::QueryScheduler(const Engine* engine, TreeCatalog* catalog,
                               SchedulerOptions options)
    : engine_(engine),
      catalog_(catalog),
      options_(options),
      cache_(options.cache_budget_bytes),
      marginals_cache_(options.cache_budget_bytes) {}

Result<AndXorTree> LoadRequestTree(const ServiceRequest& request) {
  CPDB_ASSIGN_OR_RETURN(std::string content,
                        ReadFileToString(request.load_file));
  if (request.load_format == "tree") {
    return ParseTree(content);
  }
  CPDB_ASSIGN_OR_RETURN(std::vector<Block> blocks, ParseBidTable(content));
  return MakeBlockIndependent(blocks);
}

namespace {

Result<ServiceResponse> ExecuteLoad(TreeCatalog* catalog,
                                    const ServiceRequest& request) {
  CPDB_ASSIGN_OR_RETURN(AndXorTree tree, LoadRequestTree(request));
  Result<CatalogEntry> entry =
      catalog->Insert(request.load_name, std::move(tree));
  if (!entry.ok()) return entry.status();
  ServiceResponse response;
  response.op = ServiceRequest::Op::kLoad;
  response.tree_name = entry->name;
  response.fingerprint = entry->fingerprint;
  return response;
}

}  // namespace

std::shared_ptr<const RankDistribution> QueryScheduler::DistFor(
    const CatalogEntry& entry, const ServiceRequest& request) {
  // A request that can only fail (bad k, unsupported metric/answer pair)
  // must not populate the cache: the engine rejects such queries *before*
  // paying the fold, and the scheduler keeps that property. The engine
  // call downstream reports the actual error.
  if (!options_.use_cache || request.k < 1 ||
      !Engine::ValidateConsensusRequest(request.metric, request.answer).ok()) {
    return nullptr;
  }
  const AndXorTree& tree = *entry.tree;
  const int k = request.k;
  return cache_.GetOrCompute(entry.fingerprint, k, [this, &tree, k] {
    return engine_->ComputeRankDistribution(tree, k);
  });
}

std::shared_ptr<const std::vector<double>> QueryScheduler::MarginalsFor(
    const CatalogEntry& entry) {
  const AndXorTree& tree = *entry.tree;
  if (!options_.use_cache) {
    return std::make_shared<const std::vector<double>>(
        engine_->LeafMarginals(tree));
  }
  return marginals_cache_.GetOrCompute(entry.fingerprint, [this, &tree] {
    return engine_->LeafMarginals(tree);
  });
}

Result<ServiceResponse> QueryScheduler::ExecuteWorld(
    const CatalogEntry& entry, const ServiceRequest& request) {
  const AndXorTree& tree = *entry.tree;
  // One marginal fold — shared through the cache with every other world
  // query against this content — serves the answer and its expected
  // distance via the engine's marginals-reuse entry point.
  std::shared_ptr<const std::vector<double>> marginals = MarginalsFor(entry);
  CPDB_ASSIGN_OR_RETURN(
      Engine::WorldResult world,
      engine_->ConsensusWorldWithMarginals(tree, *marginals,
                                           request.median_world));
  ServiceResponse response;
  response.op = ServiceRequest::Op::kWorld;
  response.tree_name = request.tree_name;
  response.metric = "symdiff";
  response.answer = request.median_world ? "median" : "mean";
  response.expected_distance = world.expected_distance;
  for (const TupleAlternative& tuple : WorldTuples(tree, world.leaf_ids)) {
    response.keys.push_back(tuple.key);
  }
  return response;
}

ServiceResponse QueryScheduler::StatsResponse() const {
  ServiceResponse response;
  response.op = ServiceRequest::Op::kStats;
  response.stats = cache_.stats();
  response.marginals_stats = marginals_cache_.stats();
  return response;
}

std::vector<Result<ServiceResponse>> QueryScheduler::ExecuteBatch(
    const std::vector<ServiceRequest>& requests) {
  std::vector<Result<ServiceResponse>> responses(
      requests.size(),
      Result<ServiceResponse>(Status::Internal("request not executed")));

  // Loads first, in request order: a batch is a unit of work, so queries
  // may reference trees loaded anywhere in the same batch.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].op == ServiceRequest::Op::kLoad) {
      responses[i] = ExecuteLoad(catalog_, requests[i]);
    }
  }

  // Resolve query trees; unknown names fail their slot only.
  std::vector<size_t> topk_slots;
  std::vector<CatalogEntry> topk_entries;
  std::vector<size_t> world_slots;
  std::vector<CatalogEntry> world_entries;
  for (size_t i = 0; i < requests.size(); ++i) {
    const ServiceRequest& request = requests[i];
    if (request.op != ServiceRequest::Op::kTopK &&
        request.op != ServiceRequest::Op::kWorld) {
      continue;
    }
    Result<CatalogEntry> entry = catalog_->Lookup(request.tree_name);
    if (!entry.ok()) {
      responses[i] = entry.status();
      continue;
    }
    if (request.op == ServiceRequest::Op::kTopK) {
      topk_slots.push_back(i);
      topk_entries.push_back(*std::move(entry));
    } else {
      world_slots.push_back(i);
      world_entries.push_back(*std::move(entry));
    }
  }

  // The deduplication step: route every Top-k query's rank-distribution
  // precompute through the (fingerprint, k) cache, in slot order, so the
  // first query of each pair computes the fold and the rest hit — within
  // this batch and across batches alike. The handles keep cached entries
  // alive for the duration of the engine call even if entries are evicted
  // or the cache is Cleared concurrently.
  std::vector<std::shared_ptr<const RankDistribution>> dists(
      topk_slots.size());
  for (size_t j = 0; j < topk_slots.size(); ++j) {
    dists[j] = DistFor(topk_entries[j], requests[topk_slots[j]]);
  }

  // One engine submission for all Top-k slots: whole queries fan across
  // the pool, cached distributions are shared read-only.
  std::vector<Engine::ConsensusQuery> queries(topk_slots.size());
  for (size_t j = 0; j < topk_slots.size(); ++j) {
    const ServiceRequest& request = requests[topk_slots[j]];
    queries[j] = {topk_entries[j].tree.get(), request.k, request.metric,
                  request.answer, dists[j].get()};
  }
  std::vector<Result<TopKResult>> results =
      engine_->EvaluateConsensusBatch(queries);
  for (size_t j = 0; j < topk_slots.size(); ++j) {
    const size_t slot = topk_slots[j];
    if (!results[j].ok()) {
      responses[slot] = results[j].status();
      continue;
    }
    const ServiceRequest& request = requests[slot];
    ServiceResponse response;
    response.op = ServiceRequest::Op::kTopK;
    response.tree_name = request.tree_name;
    response.k = request.k;
    response.metric = TopKMetricName(request.metric);
    response.answer = TopKAnswerName(request.answer);
    response.keys = results[j]->keys;
    response.expected_distance = results[j]->expected_distance;
    responses[slot] = std::move(response);
  }

  // Set-consensus worlds: one shared marginal fold per content fingerprint
  // serves every world query's answer and expected distance.
  for (size_t j = 0; j < world_slots.size(); ++j) {
    const size_t slot = world_slots[j];
    responses[slot] = ExecuteWorld(world_entries[j], requests[slot]);
  }

  // Stats last: the counters describe the batch that just ran.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].op == ServiceRequest::Op::kStats) {
      responses[i] = StatsResponse();
    }
  }
  return responses;
}

Result<ServiceResponse> QueryScheduler::ExecuteOne(
    const ServiceRequest& request) {
  switch (request.op) {
    case ServiceRequest::Op::kLoad:
      return ExecuteLoad(catalog_, request);
    case ServiceRequest::Op::kStats:
      return StatsResponse();
    case ServiceRequest::Op::kTopK: {
      CPDB_ASSIGN_OR_RETURN(CatalogEntry entry,
                            catalog_->Lookup(request.tree_name));
      std::shared_ptr<const RankDistribution> dist = DistFor(entry, request);
      // With a cached (or freshly computed and now shared) distribution the
      // engine runs only the metric tail; without one it runs the full
      // query. Both paths are the bitwise-identical code ExecuteBatch
      // submits per slot.
      Result<TopKResult> result =
          dist != nullptr
              ? engine_->ConsensusTopKWithDist(*entry.tree, *dist,
                                               request.metric, request.answer)
              : engine_->ConsensusTopK(*entry.tree, request.k, request.metric,
                                       request.answer);
      if (!result.ok()) return result.status();
      ServiceResponse response;
      response.op = ServiceRequest::Op::kTopK;
      response.tree_name = request.tree_name;
      response.k = request.k;
      response.metric = TopKMetricName(request.metric);
      response.answer = TopKAnswerName(request.answer);
      response.keys = result->keys;
      response.expected_distance = result->expected_distance;
      return response;
    }
    case ServiceRequest::Op::kWorld: {
      CPDB_ASSIGN_OR_RETURN(CatalogEntry entry,
                            catalog_->Lookup(request.tree_name));
      return ExecuteWorld(entry, request);
    }
  }
  return Status::Internal("unknown request op");
}

void QueryScheduler::ExecuteStreaming(
    const std::function<bool(ServiceRequest*)>& next,
    const std::function<void(const Result<ServiceResponse>&)>& emit) {
  ServiceRequest request;
  // The contract is the loop shape itself: each response is emitted before
  // the next request is pulled, so a client driving `next` from a pipe has
  // answer N in hand while composing request N+1.
  while (next(&request)) {
    emit(ExecuteOne(request));
  }
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// RankDistCache — memoizes the rank-distribution fold, the shared O(L^2 k)
// precompute behind every consensus Top-k metric, across queries that hit
// the same tree. Keys are (tree fingerprint, k): the fingerprint comes from
// the TreeCatalog's stable content hash, so cache identity follows tree
// *content*, never names or pointers. Because the engine's fold is
// schedule-deterministic, a cached distribution is bit-for-bit the one a
// fresh computation would produce — serving from the cache can change
// latency only, never answers (tests/service_test.cc pins this for all
// four metrics).

#ifndef CPDB_SERVICE_RANK_DIST_CACHE_H_
#define CPDB_SERVICE_RANK_DIST_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "core/rank_distribution.h"

namespace cpdb {

/// \brief Counters describing cache behavior since construction (or the
/// last Clear). hits + misses equals the number of GetOrCompute calls.
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t entries = 0;
};

/// \brief Thread-safe (fingerprint, k) -> RankDistribution memo.
///
/// Concurrency: GetOrCompute may race; `compute` runs outside the lock (it
/// typically fans a ParallelFor across the engine's pool), so two threads
/// missing the same key may both compute. The first insert wins and both
/// callers observe identical bits — compute is deterministic — so the race
/// costs duplicated work at worst, never divergent answers.
class RankDistCache {
 public:
  /// \brief The distribution for (fingerprint, k), invoking `compute` on a
  /// miss and retaining the result. The returned handle stays valid after
  /// Clear (shared ownership).
  std::shared_ptr<const RankDistribution> GetOrCompute(
      uint64_t fingerprint, int k,
      const std::function<RankDistribution()>& compute);

  /// \brief The cached entry, or nullptr without computing. Does not count
  /// toward hit/miss stats (it is a probe, not a query).
  std::shared_ptr<const RankDistribution> Peek(uint64_t fingerprint,
                                               int k) const;

  /// \brief Counter snapshot.
  CacheStats stats() const;

  /// \brief Drops all entries and resets the counters.
  void Clear();

 private:
  using Key = std::pair<uint64_t, int>;
  mutable std::mutex mu_;
  std::map<Key, std::shared_ptr<const RankDistribution>> entries_;
  CacheStats stats_;
};

}  // namespace cpdb

#endif  // CPDB_SERVICE_RANK_DIST_CACHE_H_

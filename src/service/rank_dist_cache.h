// Copyright 2026 The ConsensusDB Authors
//
// RankDistCache — memoizes the rank-distribution fold, the shared O(L^2 k)
// precompute behind every consensus Top-k metric, across queries that hit
// the same tree SHAPE. Keys are (StructKey, k): the structural key comes
// from the TreeCatalog's two-level identity (the content hash of the
// canonical orientation), so cache identity follows tree *structure* —
// never names, pointers, or commutative child order; permuted duplicates
// share one entry. Because the engine's fold is
// schedule-deterministic, a cached distribution is bit-for-bit the one a
// fresh computation would produce — serving from the cache can change
// latency only, never answers (tests/service_test.cc pins this for all
// four metrics; tests/cache_eviction_test.cc pins it across evictions).
//
// A thin typed wrapper over CostLruCache (service/lru_cache.h), which
// supplies the three properties a long-lived serving process needs:
// single-flight computation (concurrent misses for one key fold once),
// cost-aware LRU eviction under a byte budget (entries are charged
// RankDistribution::ApproxBytes(), so a server under key churn holds
// bounded memory), and shared immutable handles that survive eviction.

#ifndef CPDB_SERVICE_RANK_DIST_CACHE_H_
#define CPDB_SERVICE_RANK_DIST_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "core/rank_distribution.h"
#include "service/lru_cache.h"

namespace cpdb {

/// \brief Thread-safe (StructKey, k) -> RankDistribution memo with
/// single-flight computation and byte-budgeted LRU eviction.
class RankDistCache {
 public:
  /// \brief `byte_budget` caps the charged bytes of retained entries
  /// (RankDistribution::ApproxBytes() each); kUnboundedCacheBytes (the
  /// default) never evicts, 0 retains nothing but still coalesces
  /// concurrent computes.
  explicit RankDistCache(int64_t byte_budget = kUnboundedCacheBytes);

  /// \brief The distribution for (struct_key, k), invoking `compute` on a
  /// miss — at most once across concurrent callers for one key — and
  /// retaining the result under the budget. The returned handle stays
  /// valid after eviction or Clear (shared ownership).
  std::shared_ptr<const RankDistribution> GetOrCompute(
      StructKey struct_key, int k,
      const std::function<RankDistribution()>& compute);

  /// \brief The retained entry, or nullptr without computing. Does not
  /// count toward the stats and does not touch the LRU order (a probe, not
  /// a query).
  std::shared_ptr<const RankDistribution> Peek(StructKey struct_key,
                                               int k) const;

  /// \brief Retains a precomputed distribution for (struct_key, k) — the
  /// warm-restart seam catalog snapshots use to seed a fresh cache. The
  /// caller vouches that `dist` is exactly what the engine would compute
  /// for that key (snapshot loading rebuilds it from values saved off a
  /// live cache, so the promise is structural). Charged and evicted like a
  /// computed entry; no hit/miss counter moves; an existing entry wins.
  /// Returns whether the distribution was retained.
  bool Seed(StructKey struct_key, int k,
            std::shared_ptr<const RankDistribution> dist);

  /// \brief One retained entry: its (struct_key, k) key and the shared
  /// distribution handle.
  struct RetainedEntry {
    StructKey struct_key;
    int k = 0;
    std::shared_ptr<const RankDistribution> dist;
  };

  /// \brief All retained entries in (struct_key, k) order — deterministic
  /// regardless of LRU history, which is what makes a snapshot saved from
  /// a live cache byte-stable. Handles share ownership.
  std::vector<RetainedEntry> RetainedEntries() const;

  /// \brief Counter snapshot; bytes <= byte_budget() in every snapshot.
  CacheStats stats() const;

  int64_t byte_budget() const { return cache_.byte_budget(); }

  /// \brief Drops all retained entries and resets the counters.
  void Clear();

 private:
  using Key = std::pair<uint64_t, int>;
  CostLruCache<Key, RankDistribution> cache_;
};

}  // namespace cpdb

#endif  // CPDB_SERVICE_RANK_DIST_CACHE_H_

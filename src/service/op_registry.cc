// Copyright 2026 The ConsensusDB Authors

#include "service/op_registry.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "core/aggregates.h"
#include "core/ranking_baselines.h"
#include "core/topk_metrics.h"
#include "model/possible_worlds.h"

namespace cpdb {

void AddSpan(ResponseTiming* timing, const char* stage,
             const Stopwatch& stopwatch) {
  if (!stopwatch.enabled()) return;
  timing->spans.emplace_back(stage, stopwatch.ElapsedNanos());
}

Status MetricsDisabledError() {
  return Status::InvalidArgument(
      "op=metrics requires metrics enabled (serve without --metrics=off)");
}

ServiceResponse ConsensusTopKResponse(const ServiceRequest& request,
                                      const TopKResult& result) {
  ServiceResponse response;
  response.op = ServiceRequest::Op::kTopK;
  response.tree_name = request.tree_name;
  response.k = request.k;
  response.metric = TopKMetricName(request.metric);
  response.answer = TopKAnswerName(request.answer);
  response.keys = result.keys;
  response.expected_distance = result.expected_distance;
  return response;
}

namespace {

// ---------------------------------------------------------------------------
// Shared parse helpers (the strict-validation conventions every op's schema
// reuses).

// Strict field-set check: a request naming a field its op does not take is
// an error, never ignored (a typo'd "metrc=kendall" must not silently run
// the default metric).
Status CheckAllowedFields(const RequestLine& line,
                          std::initializer_list<const char*> allowed) {
  for (const RequestField& f : line.fields) {
    bool known = f.name == "op";
    for (const char* name : allowed) known = known || f.name == name;
    if (!known) {
      return Status::InvalidArgument("unknown field '" + f.name + "' for op=" +
                                     *line.Find("op"));
    }
  }
  return Status::OK();
}

Result<std::string> RequiredField(const RequestLine& line,
                                  const std::string& name) {
  const std::string* value = line.Find(name);
  if (value == nullptr) {
    // The op field may itself be the missing one; never dereference it.
    const std::string* op = line.Find("op");
    return Status::InvalidArgument(
        (op != nullptr ? "op=" + *op + " " : "request ") + "requires field '" +
        name + "'");
  }
  return *value;
}

// The k range check shared by every op carrying a rank cutoff.
Result<int> ParseKField(const RequestLine& line) {
  CPDB_ASSIGN_OR_RETURN(std::string k_text, RequiredField(line, "k"));
  CPDB_ASSIGN_OR_RETURN(long long k, ParseStrictInt("k", k_text));
  if (k < 1 || k > (1 << 20)) {
    return Status::InvalidArgument("k out of range, got '" + k_text + "'");
  }
  return static_cast<int>(k);
}

// ---------------------------------------------------------------------------
// Shared format helpers.

std::string KeysCsv(const std::vector<KeyId>& keys) {
  std::string csv;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) csv += ',';
    csv += std::to_string(keys[i]);
  }
  return csv;
}

std::string DoublesCsv(const std::vector<double>& values) {
  std::string csv;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) csv += ',';
    csv += FormatRoundTripDouble(values[i]);
  }
  return csv;
}

std::string CountsCsv(const std::vector<int64_t>& counts) {
  std::string csv;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) csv += ',';
    csv += std::to_string(counts[i]);
  }
  return csv;
}

void AppendCacheFields(const CacheStats& stats, const std::string& prefix,
                       std::vector<RequestField>* fields) {
  auto add = [&](const char* name, int64_t value) {
    fields->push_back({prefix + name, std::to_string(value)});
  };
  add("hits", stats.hits);
  add("misses", stats.misses);
  add("coalesced", stats.coalesced);
  add("entries", stats.entries);
  add("evictions", stats.evictions);
  add("bytes", stats.bytes);
}

// ---------------------------------------------------------------------------
// op=load

Status ParseLoad(const RequestLine& line, ServiceRequest* request) {
  Status allowed = CheckAllowedFields(line, {"name", "file", "format", "trace"});
  if (!allowed.ok()) return allowed;
  CPDB_ASSIGN_OR_RETURN(request->load_name, RequiredField(line, "name"));
  CPDB_ASSIGN_OR_RETURN(request->load_file, RequiredField(line, "file"));
  if (const std::string* format = line.Find("format")) {
    if (*format != "tree" && *format != "bid") {
      return Status::InvalidArgument("unknown format '" + *format +
                                     "' (expected tree or bid)");
    }
    request->load_format = *format;
  }
  return Status::OK();
}

void FormatLoad(const ServiceResponse& response,
                std::vector<RequestField>* fields) {
  fields->push_back({"name", response.tree_name});
  fields->push_back({"fingerprint", HashToHex(response.fingerprint)});
}

// ---------------------------------------------------------------------------
// op=topk

Status ParseTopK(const RequestLine& line, ServiceRequest* request) {
  Status allowed =
      CheckAllowedFields(line, {"tree", "k", "metric", "answer", "trace"});
  if (!allowed.ok()) return allowed;
  CPDB_ASSIGN_OR_RETURN(request->tree_name, RequiredField(line, "tree"));
  CPDB_ASSIGN_OR_RETURN(request->k, ParseKField(line));
  if (const std::string* metric = line.Find("metric")) {
    CPDB_ASSIGN_OR_RETURN(request->metric, ParseTopKMetricName(*metric));
  }
  if (const std::string* answer = line.Find("answer")) {
    CPDB_ASSIGN_OR_RETURN(request->answer, ParseTopKAnswerName(*answer));
  }
  return Status::OK();
}

Result<ServiceResponse> ExecuteTopKTree(OpHost& host, const CatalogEntry& entry,
                                        const ServiceRequest& request,
                                        const Clock* clk,
                                        ResponseTiming* timing) {
  Stopwatch cache_watch(clk);
  std::shared_ptr<const RankDistribution> dist =
      host.GatedDistFor(entry, request);
  AddSpan(timing, "cache", cache_watch);
  // With a cached (or freshly computed and now shared) distribution the
  // engine runs only the metric tail; without one it runs the full query.
  // Both paths are the bitwise-identical code ExecuteBatch submits per
  // fused slot.
  Stopwatch fold_watch(clk);
  Result<TopKResult> result =
      dist != nullptr
          ? host.engine()->ConsensusTopKWithDist(*entry.tree, *dist,
                                                 request.metric, request.answer,
                                                 entry.program.get())
          : host.engine()->ConsensusTopK(*entry.tree, request.k, request.metric,
                                         request.answer, entry.program.get());
  AddSpan(timing, "fold", fold_watch);
  if (!result.ok()) return result.status();
  return ConsensusTopKResponse(request, *result);
}

void FormatTopK(const ServiceResponse& response,
                std::vector<RequestField>* fields) {
  fields->push_back({"tree", response.tree_name});
  fields->push_back({"metric", response.metric});
  fields->push_back({"answer", response.answer});
  fields->push_back({"k", std::to_string(response.k)});
  fields->push_back({"keys", KeysCsv(response.keys)});
  fields->push_back(
      {"expected", FormatRoundTripDouble(response.expected_distance)});
}

// ---------------------------------------------------------------------------
// op=world

Status ParseWorld(const RequestLine& line, ServiceRequest* request) {
  Status allowed =
      CheckAllowedFields(line, {"tree", "metric", "answer", "trace"});
  if (!allowed.ok()) return allowed;
  CPDB_ASSIGN_OR_RETURN(request->tree_name, RequiredField(line, "tree"));
  if (const std::string* metric = line.Find("metric")) {
    if (*metric != "symdiff") {
      return Status::InvalidArgument("op=world supports metric=symdiff, got '" +
                                     *metric + "'");
    }
  }
  if (const std::string* answer = line.Find("answer")) {
    if (*answer == "median") {
      request->median_world = true;
    } else if (*answer != "mean") {
      return Status::InvalidArgument("unknown answer '" + *answer +
                                     "' (expected mean or median)");
    }
  }
  return Status::OK();
}

Result<ServiceResponse> ExecuteWorldTree(OpHost& host,
                                         const CatalogEntry& entry,
                                         const ServiceRequest& request,
                                         const Clock* clk,
                                         ResponseTiming* timing) {
  const AndXorTree& tree = *entry.tree;
  // One marginal fold — shared through the cache with every other world
  // query against this content — serves the answer and its expected
  // distance via the engine's marginals-reuse entry point.
  Stopwatch cache_watch(clk);
  std::shared_ptr<const std::vector<double>> marginals =
      host.MarginalsFor(entry);
  AddSpan(timing, "cache", cache_watch);
  Stopwatch fold_watch(clk);
  Result<Engine::WorldResult> world_result =
      host.engine()->ConsensusWorldWithMarginals(tree, *marginals,
                                                 request.median_world);
  AddSpan(timing, "fold", fold_watch);
  if (!world_result.ok()) return world_result.status();
  Engine::WorldResult& world = *world_result;
  ServiceResponse response;
  response.op = ServiceRequest::Op::kWorld;
  response.tree_name = request.tree_name;
  response.metric = "symdiff";
  response.answer = request.median_world ? "median" : "mean";
  response.expected_distance = world.expected_distance;
  for (const TupleAlternative& tuple : WorldTuples(tree, world.leaf_ids)) {
    response.keys.push_back(tuple.key);
  }
  return response;
}

void FormatWorld(const ServiceResponse& response,
                 std::vector<RequestField>* fields) {
  fields->push_back({"tree", response.tree_name});
  fields->push_back({"metric", response.metric});
  fields->push_back({"answer", response.answer});
  fields->push_back({"keys", KeysCsv(response.keys)});
  fields->push_back(
      {"expected", FormatRoundTripDouble(response.expected_distance)});
}

// ---------------------------------------------------------------------------
// op=stats

Status ParseStats(const RequestLine& line, ServiceRequest* request) {
  (void)request;
  return CheckAllowedFields(line, {"trace"});
}

Result<ServiceResponse> ExecuteStatsAdmin(OpHost& host,
                                          const ServiceRequest& request) {
  (void)request;
  return host.StatsNow();
}

void FormatStats(const ServiceResponse& response,
                 std::vector<RequestField>* fields) {
  // The aggregate fields come first and are identical in meaning whether
  // the answer came from one engine or a sharded front-end; the per-shard
  // breakdown (when present) trails them, so clients reading only the
  // totals never notice the shard layout.
  AppendCacheFields(response.stats, "", fields);
  AppendCacheFields(response.marginals_stats, "marg_", fields);
  // The two-level-identity fields: distinct shapes behind the bound names,
  // and contents-per-shape — the catalog's duplication factor (1 for a
  // duplicate-free catalog). Documented-additive, like the marg_* block
  // was when the marginals cache landed.
  fields->push_back({"shapes", std::to_string(response.catalog.shapes)});
  fields->push_back(
      {"dedup_ratio",
       FormatRoundTripDouble(
           response.catalog.shapes == 0
               ? 1.0
               : static_cast<double>(response.catalog.contents) /
                     static_cast<double>(response.catalog.shapes))});
  if (!response.shard_stats.empty()) {
    fields->push_back({"shards", std::to_string(response.shard_stats.size())});
    for (size_t s = 0; s < response.shard_stats.size(); ++s) {
      const std::string prefix = "s" + std::to_string(s) + "_";
      AppendCacheFields(response.shard_stats[s].rank_dist, prefix, fields);
      AppendCacheFields(response.shard_stats[s].marginals, prefix + "marg_",
                        fields);
      fields->push_back(
          {prefix + "shapes",
           std::to_string(response.shard_stats[s].catalog.shapes)});
    }
  }
}

// ---------------------------------------------------------------------------
// op=metrics

Status ParseMetrics(const RequestLine& line, ServiceRequest* request) {
  Status allowed = CheckAllowedFields(line, {"format", "trace"});
  if (!allowed.ok()) return allowed;
  if (const std::string* format = line.Find("format")) {
    if (*format != "kv" && *format != "prom") {
      return Status::InvalidArgument("unknown format '" + *format +
                                     "' (expected kv or prom)");
    }
    request->metrics_format = *format;
  }
  return Status::OK();
}

Result<ServiceResponse> ExecuteMetricsAdmin(OpHost& host,
                                            const ServiceRequest& request) {
  CPDB_ASSIGN_OR_RETURN(MetricsSnapshot snapshot, host.MetricsNow());
  ServiceResponse response;
  response.op = ServiceRequest::Op::kMetrics;
  response.metrics_format = request.metrics_format;
  response.metrics = std::move(snapshot);
  return response;
}

void FormatMetrics(const ServiceResponse& response,
                   std::vector<RequestField>* fields) {
  fields->push_back({"format", response.metrics_format});
  if (response.metrics_format == "prom") {
    // One multi-line exposition body in one field: FormatResponseLine
    // escapes the newlines, so the framing survives; clients unescape via
    // ParseResponseLine and hand the body to any Prometheus scraper
    // verbatim.
    fields->push_back({"body", MetricsToPrometheusText(response.metrics)});
  } else {
    for (auto& [name, value] : MetricsToKvPairs(response.metrics)) {
      fields->push_back({name, value});
    }
  }
}

// ---------------------------------------------------------------------------
// op=marginals — per-key presence marginals, MarginalsCache-backed.

Status ParseMarginals(const RequestLine& line, ServiceRequest* request) {
  Status allowed = CheckAllowedFields(line, {"tree", "trace"});
  if (!allowed.ok()) return allowed;
  CPDB_ASSIGN_OR_RETURN(request->tree_name, RequiredField(line, "tree"));
  return Status::OK();
}

Result<ServiceResponse> ExecuteMarginalsTree(OpHost& host,
                                             const CatalogEntry& entry,
                                             const ServiceRequest& request,
                                             const Clock* clk,
                                             ResponseTiming* timing) {
  const AndXorTree& tree = *entry.tree;
  Stopwatch cache_watch(clk);
  std::shared_ptr<const std::vector<double>> marginals =
      host.MarginalsFor(entry);
  AddSpan(timing, "cache", cache_watch);
  // Per-key marginal = the sum of the key's alternative-leaf marginals in
  // DFS leaf order — exactly tree.KeyMarginal's accumulation, so the
  // response bytes match the offline `marginals` command for canonical
  // content while the fold itself is served by the cache. One pass over
  // the leaves: each key's contributions arrive in the same DFS order the
  // per-key fold would add them, so the sums are bitwise identical while
  // the scan is O(leaves), not O(keys * leaves).
  Stopwatch fold_watch(clk);
  ServiceResponse response;
  response.op = ServiceRequest::Op::kMarginals;
  response.tree_name = request.tree_name;
  response.keys = tree.Keys();
  std::unordered_map<KeyId, size_t> slot_of_key;
  slot_of_key.reserve(response.keys.size());
  for (size_t i = 0; i < response.keys.size(); ++i) {
    slot_of_key.emplace(response.keys[i], i);
  }
  response.values.assign(response.keys.size(), 0.0);
  for (NodeId l : tree.LeafIds()) {
    response.values[slot_of_key.at(tree.node(l).leaf.key)] +=
        (*marginals)[static_cast<size_t>(l)];
  }
  AddSpan(timing, "fold", fold_watch);
  return response;
}

void FormatMarginals(const ServiceResponse& response,
                     std::vector<RequestField>* fields) {
  fields->push_back({"tree", response.tree_name});
  fields->push_back({"keys", KeysCsv(response.keys)});
  fields->push_back({"marginals", DoublesCsv(response.values)});
}

// ---------------------------------------------------------------------------
// op=aggregate — label group-by COUNT consensus (core/aggregates).

Status ParseAggregate(const RequestLine& line, ServiceRequest* request) {
  Status allowed = CheckAllowedFields(line, {"tree", "trace"});
  if (!allowed.ok()) return allowed;
  CPDB_ASSIGN_OR_RETURN(request->tree_name, RequiredField(line, "tree"));
  return Status::OK();
}

Result<ServiceResponse> ExecuteAggregateTree(OpHost& host,
                                             const CatalogEntry& entry,
                                             const ServiceRequest& request,
                                             const Clock* clk,
                                             ResponseTiming* timing) {
  const AndXorTree& tree = *entry.tree;
  Stopwatch cache_watch(clk);
  std::shared_ptr<const std::vector<double>> marginals =
      host.MarginalsFor(entry);
  AddSpan(timing, "cache", cache_watch);
  Stopwatch fold_watch(clk);
  Result<ServiceResponse> out = [&]() -> Result<ServiceResponse> {
    CPDB_ASSIGN_OR_RETURN(GroupByInstance instance,
                          GroupByInstanceFromTree(tree, *marginals));
    std::vector<double> mean = MeanAggregate(instance);
    CPDB_ASSIGN_OR_RETURN(std::vector<int64_t> median,
                          ClosestPossibleAggregate(instance));
    ServiceResponse response;
    response.op = ServiceRequest::Op::kAggregate;
    response.tree_name = request.tree_name;
    response.values = std::move(mean);
    response.group_counts = std::move(median);
    return response;
  }();
  AddSpan(timing, "fold", fold_watch);
  return out;
}

void FormatAggregate(const ServiceResponse& response,
                     std::vector<RequestField>* fields) {
  fields->push_back({"tree", response.tree_name});
  fields->push_back({"groups", std::to_string(response.values.size())});
  fields->push_back({"mean", DoublesCsv(response.values)});
  fields->push_back({"median", CountsCsv(response.group_counts)});
}

// ---------------------------------------------------------------------------
// op=baseline — the comparison semantics (core/ranking_baselines).

Status ParseBaseline(const RequestLine& line, ServiceRequest* request) {
  Status allowed = CheckAllowedFields(line, {"tree", "k", "method", "trace"});
  if (!allowed.ok()) return allowed;
  CPDB_ASSIGN_OR_RETURN(request->tree_name, RequiredField(line, "tree"));
  CPDB_ASSIGN_OR_RETURN(request->k, ParseKField(line));
  if (const std::string* method = line.Find("method")) {
    if (*method != "escore" && *method != "erank" && *method != "global" &&
        *method != "prf") {
      return Status::InvalidArgument(
          "unknown method '" + *method +
          "' (expected escore, erank, global or prf)");
    }
    request->baseline_method = *method;
  }
  return Status::OK();
}

Result<ServiceResponse> ExecuteBaselineTree(OpHost& host,
                                            const CatalogEntry& entry,
                                            const ServiceRequest& request,
                                            const Clock* clk,
                                            ResponseTiming* timing) {
  const AndXorTree& tree = *entry.tree;
  ServiceResponse response;
  response.op = ServiceRequest::Op::kBaseline;
  response.tree_name = request.tree_name;
  response.method = request.baseline_method;
  response.k = request.k;
  if (request.baseline_method == "global" || request.baseline_method == "prf") {
    // The distribution-backed semantics share the consensus path's
    // (StructKey, k) cache entries: a baseline probe after a topk query
    // (or vice versa) pays the O(L^2 k) fold once.
    Stopwatch cache_watch(clk);
    std::shared_ptr<const RankDistribution> dist =
        host.RankDistFor(entry, request.k);
    AddSpan(timing, "cache", cache_watch);
    Stopwatch fold_watch(clk);
    response.keys = request.baseline_method == "global"
                        ? GlobalTopK(*dist)
                        : TopKByPRF(*dist, PrfUpsilonHWeights(request.k));
    AddSpan(timing, "fold", fold_watch);
    return response;
  }
  Stopwatch fold_watch(clk);
  if (request.baseline_method == "escore") {
    response.keys = TopKByExpectedScore(tree, request.k);
  } else {  // erank: the engine's parallel expected-rank form
    response.keys = TopKByExpectedRankFromRanks(
        tree.Keys(), host.engine()->ExpectedRanks(tree), request.k);
  }
  AddSpan(timing, "fold", fold_watch);
  return response;
}

void FormatBaseline(const ServiceResponse& response,
                    std::vector<RequestField>* fields) {
  fields->push_back({"tree", response.tree_name});
  fields->push_back({"method", response.method});
  fields->push_back({"k", std::to_string(response.k)});
  fields->push_back({"keys", KeysCsv(response.keys)});
}

// ---------------------------------------------------------------------------
// op=hardness — structural hardness statistics (core/hardness).

Status ParseHardness(const RequestLine& line, ServiceRequest* request) {
  Status allowed = CheckAllowedFields(line, {"tree", "trace"});
  if (!allowed.ok()) return allowed;
  CPDB_ASSIGN_OR_RETURN(request->tree_name, RequiredField(line, "tree"));
  return Status::OK();
}

Result<ServiceResponse> ExecuteHardnessTree(OpHost& host,
                                            const CatalogEntry& entry,
                                            const ServiceRequest& request,
                                            const Clock* clk,
                                            ResponseTiming* timing) {
  (void)host;
  Stopwatch fold_watch(clk);
  ServiceResponse response;
  response.op = ServiceRequest::Op::kHardness;
  response.tree_name = request.tree_name;
  response.hardness = ComputeTreeHardness(*entry.tree);
  AddSpan(timing, "fold", fold_watch);
  return response;
}

void FormatHardness(const ServiceResponse& response,
                    std::vector<RequestField>* fields) {
  const TreeHardness& h = response.hardness;
  fields->push_back({"tree", response.tree_name});
  fields->push_back({"nodes", std::to_string(h.nodes)});
  fields->push_back({"leaves", std::to_string(h.leaves)});
  fields->push_back({"keys", std::to_string(h.keys)});
  fields->push_back({"dup_keys", std::to_string(h.duplicated_keys)});
  fields->push_back(
      {"max_leaves_per_key", std::to_string(h.max_leaves_per_key)});
  fields->push_back({"tuple_independent", h.tuple_independent ? "1" : "0"});
  fields->push_back({"block_independent", h.block_independent ? "1" : "0"});
}

}  // namespace

// ---------------------------------------------------------------------------
// The table.

OpRegistry::OpRegistry() {
  auto add = [this](OpSpec spec) {
    // specs()[i].op == Op(i): the enum is the table index, which is what
    // lets ServeInstruments and spec() use O(1) array lookups.
    specs_.push_back(spec);
  };
  {
    OpSpec spec;
    spec.op = ServiceRequest::Op::kLoad;
    spec.name = "load";
    spec.routing = OpRouting::kCatalogGlobal;
    spec.batch_phase = kLoadPhase;
    spec.parse = ParseLoad;
    spec.format = FormatLoad;
    add(spec);
  }
  {
    OpSpec spec;
    spec.op = ServiceRequest::Op::kTopK;
    spec.name = "topk";
    spec.routing = OpRouting::kTreeAddressed;
    spec.batch_phase = kQueryPhase;
    spec.fuse_consensus_batch = true;
    spec.uses_rank_dist_cache = true;
    spec.parse = ParseTopK;
    spec.execute_tree = ExecuteTopKTree;
    spec.format = FormatTopK;
    add(spec);
  }
  {
    OpSpec spec;
    spec.op = ServiceRequest::Op::kWorld;
    spec.name = "world";
    spec.routing = OpRouting::kTreeAddressed;
    spec.batch_phase = kQueryPhase;
    spec.uses_marginals_cache = true;
    spec.parse = ParseWorld;
    spec.execute_tree = ExecuteWorldTree;
    spec.format = FormatWorld;
    add(spec);
  }
  {
    OpSpec spec;
    spec.op = ServiceRequest::Op::kStats;
    spec.name = "stats";
    spec.routing = OpRouting::kAdmin;
    spec.batch_phase = kStatsPhase;
    spec.parse = ParseStats;
    spec.execute_admin = ExecuteStatsAdmin;
    spec.format = FormatStats;
    add(spec);
  }
  {
    OpSpec spec;
    spec.op = ServiceRequest::Op::kMetrics;
    spec.name = "metrics";
    spec.routing = OpRouting::kAdmin;
    spec.batch_phase = kMetricsPhase;
    spec.parse = ParseMetrics;
    spec.execute_admin = ExecuteMetricsAdmin;
    spec.format = FormatMetrics;
    add(spec);
  }
  {
    OpSpec spec;
    spec.op = ServiceRequest::Op::kMarginals;
    spec.name = "marginals";
    spec.routing = OpRouting::kTreeAddressed;
    spec.batch_phase = kQueryPhase;
    spec.uses_marginals_cache = true;
    spec.parse = ParseMarginals;
    spec.execute_tree = ExecuteMarginalsTree;
    spec.format = FormatMarginals;
    add(spec);
  }
  {
    OpSpec spec;
    spec.op = ServiceRequest::Op::kAggregate;
    spec.name = "aggregate";
    spec.routing = OpRouting::kTreeAddressed;
    spec.batch_phase = kQueryPhase;
    spec.uses_marginals_cache = true;
    spec.parse = ParseAggregate;
    spec.execute_tree = ExecuteAggregateTree;
    spec.format = FormatAggregate;
    add(spec);
  }
  {
    OpSpec spec;
    spec.op = ServiceRequest::Op::kBaseline;
    spec.name = "baseline";
    spec.routing = OpRouting::kTreeAddressed;
    spec.batch_phase = kQueryPhase;
    spec.uses_rank_dist_cache = true;  // method=global|prf
    spec.parse = ParseBaseline;
    spec.execute_tree = ExecuteBaselineTree;
    spec.format = FormatBaseline;
    add(spec);
  }
  {
    OpSpec spec;
    spec.op = ServiceRequest::Op::kHardness;
    spec.name = "hardness";
    spec.routing = OpRouting::kTreeAddressed;
    spec.batch_phase = kQueryPhase;
    spec.parse = ParseHardness;
    spec.execute_tree = ExecuteHardnessTree;
    spec.format = FormatHardness;
    add(spec);
  }
  // "a, b, c or d" — the unknown-op error's enumeration, derived from the
  // table so it can never go stale.
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (i > 0) expected_ops_ += i + 1 == specs_.size() ? " or " : ", ";
    expected_ops_ += specs_[i].name;
  }
}

const OpRegistry& OpRegistry::Get() {
  static const OpRegistry* registry = new OpRegistry();
  return *registry;
}

const OpSpec* OpRegistry::FindByName(const std::string& name) const {
  for (const OpSpec& spec : specs_) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

Status OpRegistry::UnknownOpError(const std::string& op) const {
  return Status::InvalidArgument("unknown op '" + op + "' (expected " +
                                 expected_ops_ + ")");
}

// ---------------------------------------------------------------------------
// The two protocol mappers are table walks over the registry.

Result<ServiceRequest> ServiceRequestFromLine(const RequestLine& line) {
  CPDB_ASSIGN_OR_RETURN(std::string op, RequiredField(line, "op"));
  ServiceRequest request;
  // The trace flag is accepted by every op (it modifies the response
  // envelope, not the answer), parsed with the same strictness as every
  // other enum-valued field.
  if (const std::string* trace = line.Find("trace")) {
    if (*trace == "on") {
      request.trace = true;
    } else if (*trace != "off") {
      return Status::InvalidArgument("unknown trace '" + *trace +
                                     "' (expected on or off)");
    }
  }
  const OpSpec* spec = OpRegistry::Get().FindByName(op);
  if (spec == nullptr) return OpRegistry::Get().UnknownOpError(op);
  request.op = spec->op;
  Status parsed = spec->parse(line, &request);
  if (!parsed.ok()) return parsed;
  return request;
}

std::vector<RequestField> ResponseToFields(const ServiceResponse& response) {
  const OpSpec& spec = OpRegistry::Get().spec(response.op);
  std::vector<RequestField> fields;
  fields.push_back({"op", spec.name});
  spec.format(response, &fields);
  // Trace fields trail every op's answer fields, strictly additive: a
  // trace=on response with its trace_* fields stripped is byte-identical
  // to the trace=off response (the differential suite pins this).
  if (response.timing.trace) {
    fields.push_back(
        {"trace_total_ns", std::to_string(response.timing.total_ns)});
    for (const auto& [stage, nanos] : response.timing.spans) {
      fields.push_back({"trace_" + stage + "_ns", std::to_string(nanos)});
    }
  }
  return fields;
}

}  // namespace cpdb

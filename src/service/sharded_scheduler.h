// Copyright 2026 The ConsensusDB Authors
//
// ShardedScheduler — the partitioned serving front-end, the first step from
// one process toward replicated serving. The observation it exploits is
// that consensus answers are embarrassingly partitionable by tree shape:
// every expensive precompute (the rank-distribution fold, the leaf-marginal
// fold) is keyed by *structural key* — the canonical-orientation hash — so
// requests against disjoint shapes never share state, and permuted
// duplicates of one shape always land on the same shard, where they share
// one fold program and one set of cache lines. The front-end therefore owns
// N shard contexts — each a private Engine (with its own thread pool),
// TreeCatalog, and QueryScheduler (with its own RankDistCache /
// MarginalsCache) — and:
//
//   * routes every kLoad to the shard owning the loaded content's
//     structural key (deterministic key-hash partitioning; a name
//     already bound stays on its shard so rebind conflicts surface exactly
//     as the single catalog reports them);
//   * routes every tree-addressed op (kTopK, kWorld, and the analytics
//     ops — the OpRegistry's kTreeAddressed rows) to the shard owning its
//     tree, fanning the per-shard sub-batches across threads — sub-batches
//     execute concurrently, each on its shard's engine — and reassembles
//     the per-slot Results in input order;
//   * answers the admin ops (the registry's kAdmin rows) on the front end:
//     kStats with the *sum* of the shards' cache counters plus the
//     per-shard breakdown (ServiceResponse::shard_stats), kMetrics with
//     the shards' registries merged.
//
// The dispatch is a generic walk of the OpRegistry (service/op_registry.h):
// the fan-out keys on each op's routing trait and batch phase, never on the
// op itself, so a new tree-addressed op shards correctly with no change
// here.
//
// Determinism: because the partitioning is a pure function of structural
// keys, every (StructKey, k) cache key lives on exactly one
// shard, and requests for it arrive there in the same slot order the
// single-engine QueryScheduler would process them. Combined with the
// engine's schedule determinism, answers are bitwise identical to a
// single-engine QueryScheduler for every op, metric, thread count, shard
// count, and cache budget — sharding is observable only in throughput and
// in the kStats shard breakdown (tests/sharded_service_test.cc pins this,
// including aggregate counter totals for unbounded budgets; a *finite*
// budget applies per shard cache, so eviction-driven counters may
// legitimately differ across shard counts while answers never do).
//
// Scope: shards are in-process today (contexts, not processes). The
// interface is deliberately the QueryScheduler's — ExecuteBatch /
// ExecuteOne / ExecuteStreaming with per-slot Results — so replacing a
// shard context with a remote replica changes the transport, not the
// partitioning or the callers.

#ifndef CPDB_SERVICE_SHARDED_SCHEDULER_H_
#define CPDB_SERVICE_SHARDED_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/engine.h"
#include "service/query_scheduler.h"
#include "service/tree_catalog.h"

namespace cpdb {

struct CatalogSnapshot;

/// \brief Executes request batches partitioned across N private
/// (Engine, TreeCatalog, QueryScheduler) shard contexts.
///
/// Thread-compatible like the QueryScheduler it fans out to: concurrent
/// ExecuteBatch / ExecuteOne calls are safe (the name directory has its own
/// mutex; shard contexts are internally locked), though batches racing on
/// `load` of conflicting content may observe AlreadyExists.
class ShardedScheduler {
 public:
  /// \brief Builds `num_shards` contexts (clamped to >= 1), each with its
  /// own Engine(engine_options) — callers wanting a fixed total thread
  /// count split it with ThreadsPerShard — and a QueryScheduler configured
  /// with `options` (so a cache budget applies to each shard's caches).
  ShardedScheduler(int num_shards, const EngineOptions& engine_options,
                   SchedulerOptions options = SchedulerOptions());

  /// \brief The shard owning structural key `key`: a deterministic pure
  /// function of (key, num_shards), identical across processes and runs.
  /// The key — already a canonical-orientation hash — is remixed through a
  /// finalizer before the modulo so shard balance never leans on FNV-1a's
  /// low-bit behavior. Routing by StructKey (not ContentFp) pins every
  /// permuted duplicate of one shape to one shard, so the whole fleet
  /// compiles each shape once and shares its cache entries.
  static int ShardOfKey(StructKey key, int num_shards);

  /// \brief The per-shard engine-thread count for a total budget:
  /// max(1, total / num_shards), with total < 1 first resolved to the
  /// hardware concurrency (the ThreadPool convention). The floor division
  /// drops any remainder, and the floor of 1 means more shards than
  /// threads raises the effective total to num_shards — every shard
  /// engine needs at least one thread to exist. The CLI's
  /// `serve --shards=N --threads=T` sizes each shard engine with this.
  static int ThreadsPerShard(int total_threads, int num_shards);

  /// \brief Registers `tree` under `name` in the owning shard's catalog —
  /// the direct seam tests and benchmarks use to seed shards without going
  /// through kLoad files. Same semantics as TreeCatalog::Insert
  /// (idempotent for identical content, AlreadyExists on a rebind).
  Result<CatalogEntry> Insert(const std::string& name, AndXorTree tree);

  /// \brief Installs a decoded catalog snapshot (service/catalog_snapshot.h)
  /// across the shards: every tree routes to the shard owning its
  /// structural key through the same directory-updating path kLoad takes —
  /// so query routing, dedup, and AlreadyExists/rebind semantics are
  /// identical to loading the same trees line-by-line — and every persisted
  /// rank distribution seeds the cache of the shard that owns its key.
  /// The per-shard placement is a pure function of content, so a snapshot
  /// saved at --shards=M restores correctly at --shards=N for any M, N.
  Status InstallSnapshot(const CatalogSnapshot& snapshot);

  /// \brief Captures the merged serving state of all shards as one
  /// snapshot: the union of the shard catalogs (disjoint by construction —
  /// each name lives on exactly one shard) plus, when
  /// `include_distributions` is set, the union of the shards' retained
  /// rank-distribution caches (disjoint too: each (StructKey, k) lives on
  /// one shard). The result is independent of shard count:
  /// entries are merged and sorted, so saving at --shards=M and at
  /// --shards=N produces byte-identical files for the same logical state.
  CatalogSnapshot BuildSnapshot(bool include_distributions) const;

  /// \brief Executes a batch with QueryScheduler::ExecuteBatch semantics:
  /// loads apply first in request order, per-request failures land in
  /// their slot, kStats reports post-batch counters. Shard sub-batches run
  /// concurrently; results[i] answers requests[i] regardless of which
  /// shard served it.
  std::vector<Result<ServiceResponse>> ExecuteBatch(
      const std::vector<ServiceRequest>& requests);

  /// \brief Executes one request on its owning shard — the unit of the
  /// streaming path, with QueryScheduler::ExecuteOne's order-sensitive
  /// semantics (queries see only earlier loads; kStats is point-in-time).
  Result<ServiceResponse> ExecuteOne(const ServiceRequest& request);

  /// \brief The incremental serve loop, same interleaving contract as
  /// QueryScheduler::ExecuteStreaming: request N's response is emitted
  /// before request N+1 is pulled, no matter which shards serve them.
  void ExecuteStreaming(
      const std::function<bool(ServiceRequest*)>& next,
      const std::function<void(const Result<ServiceResponse>&)>& emit);

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// \brief Aggregate rank-distribution cache counters: the sum over
  /// shards (each shard's snapshot is consistent; the sum is taken shard
  /// by shard, like any fleet-wide metric roll-up).
  CacheStats cache_stats() const;

  /// \brief Aggregate marginals cache counters (sum over shards).
  CacheStats marginals_stats() const;

  /// \brief Per-shard counter snapshots, in shard order.
  std::vector<ShardCacheStats> PerShardStats() const;

  /// \brief The fleet metrics scrape: the shards' snapshots merged
  /// (counters and gauges sum, histograms merge bucket-wise) — a pure
  /// function of the per-shard snapshots, independent of shard count or
  /// merge order. This is what op=metrics answers when sharded. Must not
  /// be called with metrics disabled.
  MetricsSnapshot MetricsSnapshotNow() const;

  /// \brief Each shard's own scrape, in shard order — the seam the parity
  /// test uses to pin merged == bucket-wise sum of per-shard.
  std::vector<MetricsSnapshot> PerShardMetricsSnapshots() const;

  /// \brief The instruments front-end work records into (shard 0's — the
  /// shard that fields every ownerless request), or nullptr when metrics
  /// are off. The transport records its parse/format stages here, exactly
  /// as it records into a single scheduler's instruments().
  ServeInstruments* frontend_instruments() const {
    return shards_[0].scheduler->instruments();
  }

  /// \brief The injected clock (never null; defaults to SteadyClock).
  const Clock* clock() const { return clock_; }

 private:
  /// The registry's admin hooks execute against the front end through a
  /// private OpHost adapter (service/op_registry.h) defined in the .cc —
  /// the primitives below are its surface.
  friend class ShardedOpHost;

  struct Shard {
    std::unique_ptr<Engine> engine;
    std::unique_ptr<TreeCatalog> catalog;
    std::unique_ptr<QueryScheduler> scheduler;
  };

  /// Front-end load execution with stage spans (parse, catalog). Requests
  /// and timing attribute to the shard owning the loaded content
  /// (*out_shard; 0 when the load fails before routing) — so summing the
  /// shards' registries reproduces the single scheduler's counts exactly.
  Result<ServiceResponse> ExecuteLoad(const ServiceRequest& request,
                                      const Clock* clk, ResponseTiming* timing,
                                      int* out_shard);

  /// The shared back half of Insert, ExecuteLoad, and InstallSnapshot:
  /// routes by the directory (bound names stay on their shard) or the
  /// StructKey partition, inserts via the shard catalog's
  /// InsertWithIdentity, and records the binding — all under mu_, so
  /// racing loads of one unbound name cannot route to different shards.
  /// The identity is computed once on the front end (outside mu_) so the
  /// locked section does only map work plus the catalog's own insert.
  /// `out_shard` (optional) receives the shard the name routed to.
  Result<CatalogEntry> InsertIdentityRouted(const std::string& name,
                                            const TreeIdentity& identity,
                                            int* out_shard = nullptr);

  /// The shard bound to `name`, or NotFound with the same message
  /// TreeCatalog::Lookup reports — routing must not change error lines.
  Result<int> ShardForName(const std::string& name) const;

  ServiceResponse StatsResponse() const;

  /// Executes one kAdmin registry row (stats, metrics) against the merged
  /// front-end state: the request counts against shard 0 *before* the hook
  /// runs (a metrics scrape includes its own count, matching the single
  /// scheduler's count-at-entry), and its latency is recorded after —
  /// a scrape describes the work before it, never itself. Refusals (the
  /// hook's own in-band errors, e.g. metrics while disabled) are
  /// byte-identical to the single scheduler's by construction.
  Result<ServiceResponse> ExecuteAdminOne(const ServiceRequest& request,
                                          const Clock* clk);

  /// Shard `s`'s instruments (nullptr when metrics are off). Front-end
  /// work — loads, routing failures, stats/metrics ops — is recorded here
  /// against its owning shard (shard 0 when no shard owns it), keeping
  /// "merged scrape == what a single scheduler would have recorded" exact.
  ServeInstruments* ShardInstruments(size_t s) const {
    return shards_[s].scheduler->instruments();
  }

  /// Counts one front-end request (and its optional error/latency/stage
  /// records) into shard `s`'s registry; no-op when metrics are off.
  void RecordFrontend(size_t s, const ServiceRequest& request,
                      const ResponseTiming& timing, bool ok) const;

  /// The front-end timing gate, same rule as the per-shard schedulers:
  /// live when metrics are on or this batch asked for a trace.
  const Clock* TimingClock(bool any_trace) const {
    return (ShardInstruments(0) != nullptr || any_trace) ? clock_ : nullptr;
  }

  std::vector<Shard> shards_;
  const Clock* clock_;
  // Guards directory_: name -> owning shard. Names route to the shard
  // owning their content's structural key; the directory exists because
  // queries address trees by name and the key is only known to the shard
  // that loaded it.
  mutable std::mutex mu_;
  std::map<std::string, int> directory_;
};

}  // namespace cpdb

#endif  // CPDB_SERVICE_SHARDED_SCHEDULER_H_

// Copyright 2026 The ConsensusDB Authors
//
// OpRegistry — the declarative table behind the serve protocol. Every op
// the protocol speaks is ONE OpSpec row declaring:
//
//   * its wire name (the single name↔enum map: parse, echo, error
//     messages, and the auto-generated per-op instruments all read it);
//   * its parameter schema (a strict parse hook — unknown fields, unknown
//     enum values, and out-of-range integers are errors, never defaults);
//   * its routing trait — how a sharded front-end places the request:
//       kTreeAddressed  routes by the named tree's StructKey to the
//                       owning shard (topk, world, marginals, aggregate,
//                       baseline, hardness);
//       kCatalogGlobal  executes on the front end, which computes the
//                       identity and inserts into the owning shard (load);
//       kAdmin          executes on the front end by merging per-shard
//                       state (stats, metrics);
//   * its batch phase — the position ExecuteBatch runs it in (loads
//     before queries before stats before metrics);
//   * its cache usage (which of the scheduler's memo caches the op routes
//     its precompute through);
//   * an execute hook against an abstract OpHost (Engine + caches +
//     catalog + merged admin state), and
//   * a deterministic response formatter.
//
// QueryScheduler::ExecuteBatch/ExecuteOne/ExecuteStreaming and the
// ShardedScheduler fan-out are generic walks of this table: adding an op
// means adding one row here (plus its core/engine computation), not
// editing six dispatch sites. The wire error for an unknown op enumerates
// the valid names from the table, so the message can never go stale.
//
// Determinism contract: every execute hook computes through
// schedule-deterministic Engine forms, so answers are bitwise identical
// for any thread count, shard count, or cache budget — the differential
// suite (tests/op_registry_test.cc) pins this, and pins the four
// analytics ops against their offline CLI twins to the byte.

#ifndef CPDB_SERVICE_OP_REGISTRY_H_
#define CPDB_SERVICE_OP_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "service/query_scheduler.h"
#include "service/tree_catalog.h"

namespace cpdb {

/// \brief How a sharded front-end places a request (and which execute hook
/// an OpSpec provides).
enum class OpRouting {
  /// Addressed to one catalog tree by name: routed to the shard owning the
  /// tree's StructKey and executed there through `execute_tree`.
  kTreeAddressed,
  /// Touches the catalog as a whole: executed on the front-end thread
  /// (which routes the result to the owning shard) through the host's
  /// load primitive.
  kCatalogGlobal,
  /// Introspection: executed on the front end by merging per-shard state
  /// through `execute_admin`.
  kAdmin,
};

/// \brief ExecuteBatch phase slots, in execution order. Loads first (a
/// batch is a unit of work: queries may reference trees loaded later in
/// the same batch), then queries, then stats (describing the batch that
/// just ran), then metrics (describing everything, stats probes included).
enum OpBatchPhase : int {
  kLoadPhase = 0,
  kQueryPhase = 1,
  kStatsPhase = 2,
  kMetricsPhase = 3,
};

/// \brief The execution surface an OpSpec hook runs against. QueryScheduler
/// adapts itself behind this for single-engine execution; ShardedScheduler
/// adapts its merged front-end state for the admin and load hooks
/// (tree-addressed hooks always run on the owning shard's scheduler, so a
/// sharded host never implements the tree primitives).
class OpHost {
 public:
  virtual ~OpHost() = default;

  /// The engine tree-addressed hooks evaluate against.
  virtual const Engine* engine() const = 0;

  /// The rank distribution for a *valid* consensus request, through the
  /// RankDistCache when enabled: nullptr when caching is off or the request
  /// can only fail (the engine rejects it before paying the fold, and the
  /// cache must not be populated for it).
  virtual std::shared_ptr<const RankDistribution> GatedDistFor(
      const CatalogEntry& entry, const ServiceRequest& request) = 0;

  /// The rank distribution at cutoff k unconditionally — through the
  /// RankDistCache when enabled, computed fresh otherwise. The baseline
  /// rankings (method=global|prf) route here.
  virtual std::shared_ptr<const RankDistribution> RankDistFor(
      const CatalogEntry& entry, int k) = 0;

  /// The tree's leaf marginals through the MarginalsCache (computed fresh
  /// when caching is off). world, marginals, and aggregate route here.
  virtual std::shared_ptr<const std::vector<double>> MarginalsFor(
      const CatalogEntry& entry) = 0;

  /// The kStats answer as of now (merged across shards by a sharded host).
  virtual ServiceResponse StatsNow() = 0;

  /// The full metrics scrape, or the in-band refusal
  /// (MetricsDisabledError) when metrics are off.
  virtual Result<MetricsSnapshot> MetricsNow() = 0;

  /// The load path with stage spans (parse, catalog); a sharded host
  /// computes the identity up front and inserts into the owning shard.
  virtual Result<ServiceResponse> ExecuteLoadOp(const ServiceRequest& request,
                                                const Clock* clk,
                                                ResponseTiming* timing) = 0;
};

/// \brief One op, declaratively. The function members are stateless hooks
/// (plain function pointers — the table is immutable and shareable across
/// threads without synchronization).
struct OpSpec {
  ServiceRequest::Op op = ServiceRequest::Op::kTopK;

  /// The wire name: `op=<name>` on requests and responses, and the stem of
  /// the auto-registered instruments (cpdb_<name>_requests_total,
  /// cpdb_<name>_latency_nanoseconds).
  const char* name = "";

  OpRouting routing = OpRouting::kTreeAddressed;
  int batch_phase = kQueryPhase;

  /// Query-phase trait: the slot carries a consensus Top-k query that
  /// ExecuteBatch folds into its single fused
  /// Engine::EvaluateConsensusBatch submission (rank distribution via
  /// GatedDistFor, one shared fold span). Only kTopK sets it.
  bool fuse_consensus_batch = false;

  /// Cache usage, declared for documentation, tests, and tooling: which of
  /// the scheduler's memo caches the op's precompute routes through.
  bool uses_rank_dist_cache = false;
  bool uses_marginals_cache = false;

  /// Maps a tokenized protocol line (op field already matched to this
  /// spec; trace already parsed) onto `request`. Strict: unknown fields
  /// for this op, unknown enum values, and out-of-range integers are
  /// errors.
  Status (*parse)(const RequestLine& line, ServiceRequest* request) = nullptr;

  /// Executes a kTreeAddressed op against its resolved catalog entry,
  /// recording cache/fold spans on `timing` (clk null = inert watches).
  /// Null for non-tree ops.
  Result<ServiceResponse> (*execute_tree)(OpHost& host,
                                          const CatalogEntry& entry,
                                          const ServiceRequest& request,
                                          const Clock* clk,
                                          ResponseTiming* timing) = nullptr;

  /// Executes a kAdmin op against the host's merged state. The caller owns
  /// whole-op timing and instrument records. Null for non-admin ops.
  Result<ServiceResponse> (*execute_admin)(OpHost& host,
                                           const ServiceRequest& request) =
      nullptr;

  /// Appends the op's answer fields after the leading op=<name> field.
  /// Deterministic: field order and value formatting
  /// (FormatRoundTripDouble for doubles) are fixed here.
  void (*format)(const ServiceResponse& response,
                 std::vector<RequestField>* fields) = nullptr;
};

/// \brief The immutable op table, built once. Registration order is the
/// instrument-registration and documentation order: load, topk, world,
/// stats, metrics, marginals, aggregate, baseline, hardness — existing
/// ops first so historical scrape layouts keep their prefix.
class OpRegistry {
 public:
  static const OpRegistry& Get();

  /// All specs in registration order; specs()[i].op == Op(i).
  const std::vector<OpSpec>& specs() const { return specs_; }

  /// The spec for an op value (total: every enum value has a row).
  const OpSpec& spec(ServiceRequest::Op op) const {
    return specs_[static_cast<size_t>(op)];
  }

  /// The spec registered under a wire name, or nullptr.
  const OpSpec* FindByName(const std::string& name) const;

  /// "load, topk, ..., baseline or hardness" — the valid-op enumeration
  /// for the unknown-op error, derived from the table.
  const std::string& ExpectedOpsList() const { return expected_ops_; }

  /// The in-band error for an unrecognized op field value, enumerating
  /// every registered wire name.
  Status UnknownOpError(const std::string& op) const;

 private:
  OpRegistry();
  std::vector<OpSpec> specs_;
  std::string expected_ops_;
};

/// \brief Appends a finished span to `timing` — only when the stopwatch
/// was live, so untimed requests accumulate nothing.
void AddSpan(ResponseTiming* timing, const char* stage,
             const Stopwatch& stopwatch);

/// \brief Builds the kTopK ok response for a finished consensus result —
/// shared by the fused batch finalizer and the one-at-a-time execute hook,
/// so the two paths' answer fields cannot drift.
ServiceResponse ConsensusTopKResponse(const ServiceRequest& request,
                                      const TopKResult& result);

/// \brief The in-band refusal both hosts answer for op=metrics when
/// metrics are disabled — defined once so the single-engine and sharded
/// paths stay byte-identical by construction.
Status MetricsDisabledError();

}  // namespace cpdb

#endif  // CPDB_SERVICE_OP_REGISTRY_H_

// Copyright 2026 The ConsensusDB Authors

#include "model/and_xor_tree.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace cpdb {

namespace {
constexpr double kProbEps = 1e-9;
}  // namespace

NodeId AndXorTree::AddLeaf(const TupleAlternative& alt) {
  TreeNode n;
  n.kind = NodeKind::kLeaf;
  n.leaf = alt;
  nodes_.push_back(std::move(n));
  validated_ = false;
  return static_cast<NodeId>(nodes_.size()) - 1;
}

NodeId AndXorTree::AddAnd(std::vector<NodeId> children) {
  TreeNode n;
  n.kind = NodeKind::kAnd;
  n.children = std::move(children);
  nodes_.push_back(std::move(n));
  validated_ = false;
  return static_cast<NodeId>(nodes_.size()) - 1;
}

NodeId AndXorTree::AddXor(std::vector<NodeId> children,
                          std::vector<double> edge_probs) {
  TreeNode n;
  n.kind = NodeKind::kXor;
  n.children = std::move(children);
  n.edge_probs = std::move(edge_probs);
  nodes_.push_back(std::move(n));
  validated_ = false;
  return static_cast<NodeId>(nodes_.size()) - 1;
}

Status AndXorTree::ValidateStructure() const {
  if (root_ == kInvalidNode || root_ < 0 || root_ >= NumNodes()) {
    return Status::InvalidArgument("tree has no valid root");
  }
  std::vector<int> parent_count(nodes_.size(), 0);
  // Iterative DFS from the root; `visited` guards against sharing/cycles.
  std::vector<bool> visited(nodes_.size(), false);
  std::vector<NodeId> stack = {root_};
  visited[static_cast<size_t>(root_)] = true;
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[static_cast<size_t>(id)];
    if (n.kind == NodeKind::kLeaf) {
      if (!n.children.empty()) {
        return Status::InvalidArgument("leaf node has children");
      }
      continue;
    }
    if (n.children.empty()) {
      return Status::InvalidArgument("inner node " + std::to_string(id) +
                                     " has no children");
    }
    if (n.kind == NodeKind::kXor) {
      if (n.edge_probs.size() != n.children.size()) {
        return Status::InvalidArgument(
            "xor node " + std::to_string(id) +
            " has mismatched children/probability counts");
      }
      double sum = 0.0;
      for (double p : n.edge_probs) {
        if (p < -kProbEps) {
          return Status::InvalidArgument("negative edge probability at node " +
                                         std::to_string(id));
        }
        sum += p;
      }
      if (sum > 1.0 + kProbEps) {
        return Status::InvalidArgument(
            "edge probabilities at xor node " + std::to_string(id) +
            " sum to " + std::to_string(sum) + " > 1");
      }
    }
    for (NodeId c : n.children) {
      if (c < 0 || c >= NumNodes()) {
        return Status::InvalidArgument("child id out of range at node " +
                                       std::to_string(id));
      }
      ++parent_count[static_cast<size_t>(c)];
      if (parent_count[static_cast<size_t>(c)] > 1) {
        return Status::InvalidArgument(
            "node " + std::to_string(c) +
            " has multiple parents; the structure must be a tree");
      }
      if (visited[static_cast<size_t>(c)]) {
        return Status::InvalidArgument("cycle detected at node " +
                                       std::to_string(c));
      }
      visited[static_cast<size_t>(c)] = true;
      stack.push_back(c);
    }
  }
  return Status::OK();
}

Status AndXorTree::ValidateKeyConstraint() const {
  // The LCA condition of Definition 1 is equivalent to: for every AND node,
  // the key sets of its children's subtrees are pairwise disjoint. We DFS
  // post-order, merging child key sets small-to-large.
  std::vector<std::set<KeyId>> key_sets(nodes_.size());
  // Post-order via two-phase stack.
  std::vector<std::pair<NodeId, bool>> stack = {{root_, false}};
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[static_cast<size_t>(id)];
    if (!expanded) {
      stack.push_back({id, true});
      for (NodeId c : n.children) stack.push_back({c, false});
      continue;
    }
    auto& keys = key_sets[static_cast<size_t>(id)];
    if (n.kind == NodeKind::kLeaf) {
      keys.insert(n.leaf.key);
      continue;
    }
    for (NodeId c : n.children) {
      auto& child_keys = key_sets[static_cast<size_t>(c)];
      if (keys.size() < child_keys.size()) keys.swap(child_keys);
      for (KeyId k : child_keys) {
        bool inserted = keys.insert(k).second;
        if (!inserted && n.kind == NodeKind::kAnd) {
          return Status::InvalidArgument(
              "key constraint violated: key " + std::to_string(k) +
              " appears in two children of AND node " + std::to_string(id));
        }
      }
      child_keys.clear();
    }
  }
  return Status::OK();
}

Status AndXorTree::Validate() {
  CPDB_RETURN_NOT_OK(ValidateStructure());
  CPDB_RETURN_NOT_OK(ValidateKeyConstraint());
  // Rebuild the leaf index in deterministic DFS order (children
  // left-to-right) and the parent pointers.
  leaf_ids_.clear();
  parents_.assign(nodes_.size(), kInvalidNode);
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[static_cast<size_t>(id)];
    if (n.kind == NodeKind::kLeaf) {
      leaf_ids_.push_back(id);
      continue;
    }
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      parents_[static_cast<size_t>(*it)] = id;
      stack.push_back(*it);
    }
  }
  validated_ = true;
  return Status::OK();
}

std::vector<double> AndXorTree::LeafMarginals() const {
  std::vector<double> marginal(nodes_.size(), 0.0);
  if (root_ == kInvalidNode) return marginal;
  // DFS carrying the product of XOR edge probabilities on the path.
  std::vector<std::pair<NodeId, double>> stack = {{root_, 1.0}};
  while (!stack.empty()) {
    auto [id, p] = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[static_cast<size_t>(id)];
    if (n.kind == NodeKind::kLeaf) {
      marginal[static_cast<size_t>(id)] = p;
      continue;
    }
    for (size_t i = 0; i < n.children.size(); ++i) {
      double edge = n.kind == NodeKind::kXor ? n.edge_probs[i] : 1.0;
      stack.push_back({n.children[i], p * edge});
    }
  }
  return marginal;
}

double AndXorTree::LeafMarginal(NodeId leaf) const {
  // Root-to-leaf path via the parent index filled in by Validate().
  std::vector<NodeId> path;
  for (NodeId v = leaf; v != kInvalidNode;
       v = parents_[static_cast<size_t>(v)]) {
    path.push_back(v);
  }
  // Multiply edges top-down — the accumulation order of LeafMarginals()'s
  // DFS, which is what makes the two bitwise interchangeable.
  double p = 1.0;
  for (size_t i = path.size(); i-- > 1;) {
    const TreeNode& parent = nodes_[static_cast<size_t>(path[i])];
    if (parent.kind != NodeKind::kXor) continue;
    for (size_t c = 0; c < parent.children.size(); ++c) {
      if (parent.children[c] == path[i - 1]) {
        p *= parent.edge_probs[c];
        break;
      }
    }
  }
  return p;
}

std::vector<KeyId> AndXorTree::Keys() const {
  std::set<KeyId> keys;
  for (NodeId l : leaf_ids_) keys.insert(node(l).leaf.key);
  return std::vector<KeyId>(keys.begin(), keys.end());
}

double AndXorTree::KeyMarginal(KeyId key) const {
  std::vector<double> marginal = LeafMarginals();
  double p = 0.0;
  for (NodeId l : leaf_ids_) {
    if (node(l).leaf.key == key) p += marginal[static_cast<size_t>(l)];
  }
  return p;
}

double AndXorTree::PairPresenceProbability(NodeId leaf1, NodeId leaf2) const {
  if (leaf1 == leaf2) {
    std::vector<double> marginal = LeafMarginals();
    return marginal[static_cast<size_t>(leaf1)];
  }
  // Root paths, leaf first.
  auto path_of = [&](NodeId leaf) {
    std::vector<NodeId> path;
    for (NodeId v = leaf; v != kInvalidNode; v = parents_[static_cast<size_t>(v)]) {
      path.push_back(v);
    }
    return path;  // leaf ... root
  };
  std::vector<NodeId> p1 = path_of(leaf1);
  std::vector<NodeId> p2 = path_of(leaf2);
  // Find the LCA: longest common suffix of the two root paths.
  size_t i1 = p1.size(), i2 = p2.size();
  while (i1 > 0 && i2 > 0 && p1[i1 - 1] == p2[i2 - 1]) {
    --i1;
    --i2;
  }
  NodeId lca = p1[i1];  // first shared node walking down; i1 < p1.size()
  // If the LCA is a XOR node, the two leaves descend through different
  // children and can never coexist.
  if (node(lca).kind == NodeKind::kXor) return 0.0;

  // Product of XOR edge probabilities along the union of the two paths.
  auto edge_prob = [&](NodeId child) {
    NodeId parent = parents_[static_cast<size_t>(child)];
    const TreeNode& p = node(parent);
    if (p.kind != NodeKind::kXor) return 1.0;
    for (size_t i = 0; i < p.children.size(); ++i) {
      if (p.children[i] == child) return p.edge_probs[i];
    }
    return 0.0;
  };
  double prob = 1.0;
  // Distinct parts of both paths (below the LCA), then the shared part once.
  for (size_t i = 0; i < i1; ++i) prob *= edge_prob(p1[i]);
  for (size_t i = 0; i < i2; ++i) prob *= edge_prob(p2[i]);
  for (size_t i = i1; i < p1.size(); ++i) {
    if (p1[i] != root_) prob *= edge_prob(p1[i]);
  }
  return prob;
}

std::string AndXorTree::ToString() const {
  std::ostringstream os;
  if (root_ == kInvalidNode) return "(empty tree)";
  // Pre-order with indentation.
  std::vector<std::pair<NodeId, int>> stack = {{root_, 0}};
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[static_cast<size_t>(id)];
    for (int i = 0; i < depth; ++i) os << "  ";
    switch (n.kind) {
      case NodeKind::kLeaf:
        os << "leaf key=" << n.leaf.key << " score=" << n.leaf.score;
        if (n.leaf.label >= 0) os << " label=" << n.leaf.label;
        os << "\n";
        break;
      case NodeKind::kAnd:
        os << "and\n";
        break;
      case NodeKind::kXor:
        os << "xor";
        for (double p : n.edge_probs) os << " " << p;
        os << "\n";
        break;
    }
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back({*it, depth + 1});
    }
  }
  return os.str();
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "model/possible_worlds.h"

#include <algorithm>
#include <utility>

namespace cpdb {

namespace {

// Recursively enumerates the worlds of the subtree rooted at `id`.
// Exponential; every level checks the `max_worlds` guard.
Status EnumerateRec(const AndXorTree& tree, NodeId id, size_t max_worlds,
                    std::vector<World>* out) {
  const TreeNode& n = tree.node(id);
  out->clear();
  switch (n.kind) {
    case NodeKind::kLeaf: {
      out->push_back(World{{id}, 1.0});
      return Status::OK();
    }
    case NodeKind::kXor: {
      double leftover = 1.0;
      for (size_t i = 0; i < n.children.size(); ++i) {
        double p = n.edge_probs[i];
        leftover -= p;
        if (p <= 0.0) continue;
        std::vector<World> child_worlds;
        CPDB_RETURN_NOT_OK(
            EnumerateRec(tree, n.children[i], max_worlds, &child_worlds));
        for (World& w : child_worlds) {
          w.prob *= p;
          if (w.prob > 0.0) out->push_back(std::move(w));
          if (out->size() > max_worlds) {
            return Status::ResourceExhausted("world enumeration exceeds limit");
          }
        }
      }
      if (leftover > 0.0) out->push_back(World{{}, leftover});
      return Status::OK();
    }
    case NodeKind::kAnd: {
      out->push_back(World{{}, 1.0});
      for (NodeId c : n.children) {
        std::vector<World> child_worlds;
        CPDB_RETURN_NOT_OK(EnumerateRec(tree, c, max_worlds, &child_worlds));
        std::vector<World> merged;
        if (out->size() * child_worlds.size() > max_worlds) {
          return Status::ResourceExhausted("world enumeration exceeds limit");
        }
        merged.reserve(out->size() * child_worlds.size());
        for (const World& a : *out) {
          for (const World& b : child_worlds) {
            World w;
            w.prob = a.prob * b.prob;
            if (w.prob <= 0.0) continue;
            w.leaf_ids.reserve(a.leaf_ids.size() + b.leaf_ids.size());
            w.leaf_ids.insert(w.leaf_ids.end(), a.leaf_ids.begin(),
                              a.leaf_ids.end());
            w.leaf_ids.insert(w.leaf_ids.end(), b.leaf_ids.begin(),
                              b.leaf_ids.end());
            merged.push_back(std::move(w));
          }
        }
        *out = std::move(merged);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable node kind");
}

}  // namespace

Result<std::vector<World>> EnumerateWorlds(const AndXorTree& tree,
                                           size_t max_worlds) {
  std::vector<World> worlds;
  CPDB_RETURN_NOT_OK(EnumerateRec(tree, tree.root(), max_worlds, &worlds));
  for (World& w : worlds) std::sort(w.leaf_ids.begin(), w.leaf_ids.end());
  return worlds;
}

std::vector<NodeId> SampleWorld(const AndXorTree& tree, Rng* rng) {
  std::vector<NodeId> result;
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    const TreeNode& n = tree.node(id);
    switch (n.kind) {
      case NodeKind::kLeaf:
        result.push_back(id);
        break;
      case NodeKind::kAnd:
        for (NodeId c : n.children) stack.push_back(c);
        break;
      case NodeKind::kXor: {
        double u = rng->Uniform01();
        double acc = 0.0;
        for (size_t i = 0; i < n.children.size(); ++i) {
          acc += n.edge_probs[i];
          if (u < acc) {
            stack.push_back(n.children[i]);
            break;
          }
        }
        // Falling through without a pick realizes the empty set.
        break;
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<TupleAlternative> WorldTuples(const AndXorTree& tree,
                                          const std::vector<NodeId>& leaf_ids) {
  std::vector<TupleAlternative> tuples;
  tuples.reserve(leaf_ids.size());
  for (NodeId id : leaf_ids) tuples.push_back(tree.node(id).leaf);
  std::sort(tuples.begin(), tuples.end(),
            [](const TupleAlternative& a, const TupleAlternative& b) {
              return a.score > b.score;
            });
  return tuples;
}

std::vector<KeyId> TopKOfWorld(const AndXorTree& tree,
                               const std::vector<NodeId>& leaf_ids, int k) {
  std::vector<TupleAlternative> tuples = WorldTuples(tree, leaf_ids);
  std::vector<KeyId> answer;
  int limit = std::min<int>(k, static_cast<int>(tuples.size()));
  answer.reserve(static_cast<size_t>(limit));
  for (int i = 0; i < limit; ++i) answer.push_back(tuples[static_cast<size_t>(i)].key);
  return answer;
}

}  // namespace cpdb

#include "model/flat_tree.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace cpdb {

namespace {

// Compile-time slot allocator: LIFO free list over a dense id space. LIFO
// keeps recycled rows hot in cache (the row a parent just consumed is the
// first one handed back out).
class SlotAllocator {
 public:
  int32_t Alloc() {
    if (!free_.empty()) {
      int32_t s = free_.back();
      free_.pop_back();
      return s;
    }
    return next_++;
  }
  void Release(int32_t slot) { free_.push_back(slot); }
  int32_t high_water() const { return next_; }

 private:
  std::vector<int32_t> free_;
  int32_t next_ = 0;
};

const char* KindName(FlatOpKind kind) {
  switch (kind) {
    case FlatOpKind::kLeaf:
      return "leaf";
    case FlatOpKind::kXorInit:
      return "xor_init";
    case FlatOpKind::kXorAccum:
      return "xor_accum";
    case FlatOpKind::kMul:
      return "mul";
  }
  return "?";
}

}  // namespace

FlatTree FlatTree::Compile(const AndXorTree& tree) {
  FlatTree flat;
  if (tree.root() == kInvalidNode) return flat;

  // Iterative DFS with an interleaved consume-and-free schedule: a parent
  // consumes each child's result immediately after that child completes
  // (instead of waiting for all siblings), so at most one child result per
  // ancestor level is live at a time and the slot high-water mark is
  // O(depth) even for wide AND/XOR fan-outs. XOR output rows are allocated
  // lazily at the first child's completion for the same reason — a chain of
  // XOR nodes must not pre-allocate an accumulator per level on the way
  // down.
  struct Frame {
    NodeId id;
    size_t next_child;
    int32_t acc_slot;  // AND: running product; XOR: accumulator; -1 if none
    double path_prob;  // product of XOR edge probs root -> this node
  };

  SlotAllocator slots;
  std::vector<Frame> stack;
  stack.push_back(Frame{tree.root(), 0, -1, 1.0});
  int32_t last_slot = -1;  // result slot of the most recently completed node

  while (!stack.empty()) {
    Frame& f = stack.back();
    const TreeNode& n = tree.node(f.id);

    if (n.kind == NodeKind::kLeaf) {
      int32_t s = slots.Alloc();
      flat.ops_.push_back(FlatOp{FlatOpKind::kLeaf, s, -1, -1, f.id, 0.0});
      flat.leaves_.push_back(FlatLeaf{
          n.leaf.key, n.leaf.score, n.leaf.label, f.id,
          static_cast<int32_t>(flat.ops_.size()) - 1, f.path_prob});
      last_slot = s;
      stack.pop_back();
      continue;
    }

    if (f.next_child > 0) {
      // The child evaluated on the previous iteration finished in last_slot;
      // fold it into this node and recycle its row.
      if (n.kind == NodeKind::kXor) {
        if (f.acc_slot < 0) {
          // First child done: materialize the accumulator seeded with the
          // leftover mass 1 - sum(edge_probs). Same subtraction order as the
          // pointer fold.
          double leftover = 1.0;
          for (double p : n.edge_probs) leftover -= p;
          f.acc_slot = slots.Alloc();
          flat.ops_.push_back(FlatOp{FlatOpKind::kXorInit, f.acc_slot, -1, -1,
                                     f.id, leftover});
        }
        flat.ops_.push_back(FlatOp{FlatOpKind::kXorAccum, f.acc_slot, -1,
                                   last_slot, f.id,
                                   n.edge_probs[f.next_child - 1]});
        slots.Release(last_slot);
      } else if (f.next_child == 1) {
        // AND's first child IS the running product; no op emitted.
        f.acc_slot = last_slot;
      } else {
        int32_t out = slots.Alloc();
        flat.ops_.push_back(FlatOp{FlatOpKind::kMul, out, f.acc_slot,
                                   last_slot, f.id, 0.0});
        slots.Release(f.acc_slot);
        slots.Release(last_slot);
        f.acc_slot = out;
      }
    }

    if (f.next_child < n.children.size()) {
      const NodeId child = n.children[f.next_child];
      // Leaf marginals multiply only at XOR edges; the pointer walk's
      // AND-edge factor is exactly 1.0 and p * 1.0 == p bitwise, so
      // skipping it preserves LeafMarginal()'s bits.
      const double child_prob = n.kind == NodeKind::kXor
                                    ? f.path_prob * n.edge_probs[f.next_child]
                                    : f.path_prob;
      ++f.next_child;
      // Note: push_back may invalidate `f`; it is not used past this point.
      stack.push_back(Frame{child, 0, -1, child_prob});
      continue;
    }

    last_slot = f.acc_slot;
    stack.pop_back();
  }

  flat.root_slot_ = last_slot;
  flat.num_slots_ = slots.high_water();
  return flat;
}

void FlatTree::EvalGeneratingFunction(
    int max_dx, int max_dy,
    const std::function<void(int leaf_index, double* row)>& leaf_init,
    double* out, PolyArena* arena) const {
  const int row_len = (max_dx + 1) * (max_dy + 1);
  arena->Reserve(num_slots_, row_len);

  int leaf_index = 0;
  for (const FlatOp& op : ops_) {
    double* o = arena->Row(op.out_slot);
    switch (op.kind) {
      case FlatOpKind::kLeaf:
        std::fill(o, o + row_len, 0.0);
        leaf_init(leaf_index++, o);
        break;
      case FlatOpKind::kXorInit:
        std::fill(o, o + row_len, 0.0);
        o[0] = op.weight;
        break;
      case FlatOpKind::kXorAccum:
        AddScaledRow(o, arena->Row(op.arg_slot), op.weight, row_len);
        break;
      case FlatOpKind::kMul:
        std::fill(o, o + row_len, 0.0);
        ConvolveRowsTruncated(arena->Row(op.lhs_slot), arena->Row(op.arg_slot),
                              o, max_dx, max_dy);
        break;
    }
  }

  if (root_slot_ >= 0) {
    const double* root = arena->Row(root_slot_);
    std::copy(root, root + row_len, out);
  } else {
    std::fill(out, out + row_len, 0.0);
  }
}

std::string FlatTree::ToString() const {
  std::string s;
  char line[160];
  std::snprintf(line, sizeof(line),
                "flat_tree ops=%zu leaves=%zu slots=%d root_slot=%d\n",
                ops_.size(), leaves_.size(), num_slots_, root_slot_);
  s += line;
  s += "  op   kind       out  lhs  arg  node  weight\n";
  for (size_t i = 0; i < ops_.size(); ++i) {
    const FlatOp& op = ops_[i];
    std::snprintf(line, sizeof(line), "  %-4zu %-10s %-4d %-4d %-4d %-5d %.17g\n",
                  i, KindName(op.kind), op.out_slot, op.lhs_slot, op.arg_slot,
                  op.node, op.weight);
    s += line;
  }
  s += "  leaf key  score                  label  node  op    marginal\n";
  for (size_t i = 0; i < leaves_.size(); ++i) {
    const FlatLeaf& leaf = leaves_[i];
    std::snprintf(line, sizeof(line),
                  "  %-4zu %-4d %-22.17g %-6d %-5d %-5d %.17g\n", i, leaf.key,
                  leaf.score, leaf.label, leaf.node, leaf.op_index,
                  leaf.marginal);
    s += line;
  }
  return s;
}

PolyArena& FlatFoldScratch() {
  thread_local PolyArena arena;
  return arena;
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "model/builders.h"

namespace cpdb {

Result<AndXorTree> MakeTupleIndependent(
    const std::vector<IndependentTuple>& tuples) {
  AndXorTree tree;
  std::vector<NodeId> tops;
  tops.reserve(tuples.size());
  for (const IndependentTuple& t : tuples) {
    NodeId leaf = tree.AddLeaf(t.alt);
    tops.push_back(tree.AddXor({leaf}, {t.prob}));
  }
  if (tops.empty()) {
    return Status::InvalidArgument("tuple-independent table must be non-empty");
  }
  tree.SetRoot(tops.size() == 1 ? tops[0] : tree.AddAnd(std::move(tops)));
  CPDB_RETURN_NOT_OK(tree.Validate());
  return tree;
}

Result<AndXorTree> MakeBlockIndependent(const std::vector<Block>& blocks) {
  AndXorTree tree;
  std::vector<NodeId> tops;
  tops.reserve(blocks.size());
  for (const Block& block : blocks) {
    if (block.empty()) {
      return Status::InvalidArgument("empty block in block-independent table");
    }
    std::vector<NodeId> leaves;
    std::vector<double> probs;
    leaves.reserve(block.size());
    probs.reserve(block.size());
    for (const BlockAlternative& alt : block) {
      leaves.push_back(tree.AddLeaf(alt.alt));
      probs.push_back(alt.prob);
    }
    tops.push_back(tree.AddXor(std::move(leaves), std::move(probs)));
  }
  if (tops.empty()) {
    return Status::InvalidArgument("block-independent table must be non-empty");
  }
  tree.SetRoot(tops.size() == 1 ? tops[0] : tree.AddAnd(std::move(tops)));
  CPDB_RETURN_NOT_OK(tree.Validate());
  return tree;
}

Result<AndXorTree> MakeAttributeUncertain(
    const std::vector<std::vector<double>>& probs) {
  std::vector<Block> blocks;
  blocks.reserve(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    Block block;
    for (size_t j = 0; j < probs[i].size(); ++j) {
      if (probs[i][j] == 0.0) continue;
      TupleAlternative alt;
      alt.key = static_cast<KeyId>(i);
      alt.label = static_cast<int32_t>(j);
      // A stable tie-free synthetic score so ranking queries remain
      // well-defined on these tables too.
      alt.score = static_cast<double>(i) + static_cast<double>(j) * 1e-6;
      block.push_back({alt, probs[i][j]});
    }
    if (block.empty()) {
      return Status::InvalidArgument("tuple " + std::to_string(i) +
                                     " has no positive-probability label");
    }
    blocks.push_back(std::move(block));
  }
  return MakeBlockIndependent(blocks);
}

}  // namespace cpdb

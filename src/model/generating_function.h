// Copyright 2026 The ConsensusDB Authors
//
// The generating-function fold over and/xor trees (Section 3.3, Theorem 1).
// Every probability computation in the paper instantiates this one fold with
// a different polynomial type and leaf-to-polynomial assignment:
//
//   * leaf v:        F_v = s(v)                         (the leaf's monomial)
//   * XOR node v:    F_v = (1 - sum_h p(v, v_h)) + sum_h p(v, v_h) F_{v_h}
//   * AND node v:    F_v = prod_h F_{v_h}
//
// Theorem 1: the coefficient of prod_j x_j^{i_j} in F_root is the total
// probability of the possible worlds containing exactly i_j leaves tagged
// with variable x_j, for all j.
//
// This header is the generic pointer-tree fold; model/flat_tree.h compiles
// the same recurrence into a flat instruction stream over arena rows for the
// hot paths, with this template retained as the differential reference.

#ifndef CPDB_MODEL_GENERATING_FUNCTION_H_
#define CPDB_MODEL_GENERATING_FUNCTION_H_

#include <optional>
#include <utility>
#include <vector>

#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief Instrumentation for EvalGeneratingFunction's slot recycling.
struct GenFunFoldStats {
  /// Peak number of simultaneously live intermediate polynomials. Bounded by
  /// O(tree depth), not O(nodes): a child's slot is recycled the moment its
  /// parent consumes it (a 20000-deep XOR chain peaks at 2).
  int max_live_slots = 0;
};

/// \brief Evaluates the generating function of `tree`.
///
/// \param tree       a validated and/xor tree.
/// \param leaf_poly  functor NodeId -> PolyT giving each leaf's polynomial
///                   (typically a variable monomial or the constant 1).
/// \param make_const functor double -> PolyT building a constant polynomial
///                   with the right truncation bounds.
/// \param stats      optional: receives the live-slot high-water mark.
///
/// PolyT must support operator*(PolyT, PolyT), AddScaled(PolyT, double) and
/// AddConstant(double). The fold is iterative (explicit frame stack) so
/// arbitrarily deep trees do not overflow the call stack.
///
/// Memory: intermediate polynomials live in a recycled slot pool. Each
/// parent consumes a child's result as soon as that child's subtree
/// completes — XOR children are AddScaled into the accumulator one by one,
/// AND children are multiplied into the running product left-to-right — and
/// the consumed slot is immediately freed for reuse, so peak memory is
/// O(max live slots × poly bytes) instead of the historical
/// O(nodes × poly bytes). The combination order (AND left-to-right products,
/// XOR leftover-then-AddScaled in child order) is unchanged, so results are
/// bitwise identical to the retained-everything fold.
template <typename PolyT, typename LeafPolyFn, typename MakeConstFn>
PolyT EvalGeneratingFunction(const AndXorTree& tree, LeafPolyFn&& leaf_poly,
                             MakeConstFn&& make_const,
                             GenFunFoldStats* stats = nullptr) {
  // Slot pool with a LIFO free list; slot.size() only grows when every slot
  // is live, so it is exactly the live high-water mark.
  std::vector<std::optional<PolyT>> slot;
  std::vector<int> free_slots;
  auto alloc = [&]() {
    if (!free_slots.empty()) {
      int s = free_slots.back();
      free_slots.pop_back();
      return s;
    }
    slot.emplace_back();
    return static_cast<int>(slot.size()) - 1;
  };
  auto release = [&](int s) {
    slot[static_cast<size_t>(s)].reset();
    free_slots.push_back(s);
  };

  struct Frame {
    NodeId id;
    size_t next_child;
    int acc;  // AND: running product slot; XOR: accumulator slot; -1 if none
  };
  std::vector<Frame> stack = {Frame{tree.root(), 0, -1}};
  int last = -1;  // result slot of the most recently completed subtree

  while (!stack.empty()) {
    Frame& f = stack.back();
    const TreeNode& n = tree.node(f.id);

    if (n.kind == NodeKind::kLeaf) {
      int s = alloc();
      slot[static_cast<size_t>(s)] = leaf_poly(f.id);
      last = s;
      stack.pop_back();
      continue;
    }

    if (f.next_child > 0) {
      // The child that just completed sits in `last`; consume and free it.
      if (n.kind == NodeKind::kXor) {
        if (f.acc < 0) {
          // Accumulator is materialized lazily, at the first child's
          // completion, so a descending chain of XOR nodes holds no slots.
          double leftover = 1.0;
          for (double p : n.edge_probs) leftover -= p;
          f.acc = alloc();
          slot[static_cast<size_t>(f.acc)] = make_const(leftover);
        }
        slot[static_cast<size_t>(f.acc)]->AddScaled(
            *slot[static_cast<size_t>(last)], n.edge_probs[f.next_child - 1]);
        release(last);
      } else if (f.next_child == 1) {
        f.acc = last;  // AND adopts its first child's slot as the product.
      } else {
        int out = alloc();
        slot[static_cast<size_t>(out)] = *slot[static_cast<size_t>(f.acc)] *
                                         *slot[static_cast<size_t>(last)];
        release(f.acc);
        release(last);
        f.acc = out;
      }
    }

    if (f.next_child < n.children.size()) {
      const NodeId child = n.children[f.next_child];
      ++f.next_child;
      // push_back may invalidate `f`; it is not used past this point.
      stack.push_back(Frame{child, 0, -1});
      continue;
    }

    last = f.acc;
    stack.pop_back();
  }

  if (stats != nullptr) stats->max_live_slots = static_cast<int>(slot.size());
  return PolyT(std::move(*slot[static_cast<size_t>(last)]));
}

}  // namespace cpdb

#endif  // CPDB_MODEL_GENERATING_FUNCTION_H_

// Copyright 2026 The ConsensusDB Authors
//
// The generating-function fold over and/xor trees (Section 3.3, Theorem 1).
// Every probability computation in the paper instantiates this one fold with
// a different polynomial type and leaf-to-polynomial assignment:
//
//   * leaf v:        F_v = s(v)                         (the leaf's monomial)
//   * XOR node v:    F_v = (1 - sum_h p(v, v_h)) + sum_h p(v, v_h) F_{v_h}
//   * AND node v:    F_v = prod_h F_{v_h}
//
// Theorem 1: the coefficient of prod_j x_j^{i_j} in F_root is the total
// probability of the possible worlds containing exactly i_j leaves tagged
// with variable x_j, for all j.

#ifndef CPDB_MODEL_GENERATING_FUNCTION_H_
#define CPDB_MODEL_GENERATING_FUNCTION_H_

#include <utility>
#include <vector>

#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief Evaluates the generating function of `tree`.
///
/// \param tree       a validated and/xor tree.
/// \param leaf_poly  functor NodeId -> PolyT giving each leaf's polynomial
///                   (typically a variable monomial or the constant 1).
/// \param make_const functor double -> PolyT building a constant polynomial
///                   with the right truncation bounds.
///
/// PolyT must support operator*(PolyT, PolyT), AddScaled(PolyT, double) and
/// AddConstant(double). The fold is iterative (explicit post-order stack) so
/// arbitrarily deep trees do not overflow the call stack.
template <typename PolyT, typename LeafPolyFn, typename MakeConstFn>
PolyT EvalGeneratingFunction(const AndXorTree& tree, LeafPolyFn&& leaf_poly,
                             MakeConstFn&& make_const) {
  std::vector<PolyT> value;
  value.reserve(static_cast<size_t>(tree.NumNodes()));
  // `value` is indexed by a dense post-order slot per node id.
  std::vector<int> slot(static_cast<size_t>(tree.NumNodes()), -1);

  std::vector<std::pair<NodeId, bool>> stack = {{tree.root(), false}};
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    const TreeNode& n = tree.node(id);
    if (!expanded) {
      if (n.kind == NodeKind::kLeaf) {
        slot[static_cast<size_t>(id)] = static_cast<int>(value.size());
        value.push_back(leaf_poly(id));
        continue;
      }
      stack.push_back({id, true});
      for (NodeId c : n.children) stack.push_back({c, false});
      continue;
    }
    if (n.kind == NodeKind::kAnd) {
      PolyT acc = std::move(value[static_cast<size_t>(
          slot[static_cast<size_t>(n.children[0])])]);
      for (size_t i = 1; i < n.children.size(); ++i) {
        acc = acc * value[static_cast<size_t>(
                  slot[static_cast<size_t>(n.children[i])])];
      }
      slot[static_cast<size_t>(id)] = static_cast<int>(value.size());
      value.push_back(std::move(acc));
    } else {  // kXor
      double leftover = 1.0;
      for (double p : n.edge_probs) leftover -= p;
      PolyT acc = make_const(leftover);
      for (size_t i = 0; i < n.children.size(); ++i) {
        acc.AddScaled(value[static_cast<size_t>(
                          slot[static_cast<size_t>(n.children[i])])],
                      n.edge_probs[i]);
      }
      slot[static_cast<size_t>(id)] = static_cast<int>(value.size());
      value.push_back(std::move(acc));
    }
  }
  return std::move(value[static_cast<size_t>(
      slot[static_cast<size_t>(tree.root())])]);
}

}  // namespace cpdb

#endif  // CPDB_MODEL_GENERATING_FUNCTION_H_

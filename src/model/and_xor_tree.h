// Copyright 2026 The ConsensusDB Authors
//
// The probabilistic and/xor tree (Definition 1 of the paper): a tree whose
// leaves are tuple alternatives and whose inner nodes are marked AND
// (co-existence: the union of the children's random sets) or XOR (mutual
// exclusion: one child chosen with its edge probability, or nothing with the
// leftover probability). The model strictly generalizes tuple-independent
// tables, x-tuples / p-or-sets, and block-independent disjoint (BID) tables.

#ifndef CPDB_MODEL_AND_XOR_TREE_H_
#define CPDB_MODEL_AND_XOR_TREE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "model/types.h"

namespace cpdb {

/// \brief Kind of a tree node.
enum class NodeKind { kLeaf, kAnd, kXor };

/// \brief Index of a node within its AndXorTree.
using NodeId = int32_t;

inline constexpr NodeId kInvalidNode = -1;

/// \brief One node of an and/xor tree.
struct TreeNode {
  NodeKind kind = NodeKind::kLeaf;
  /// Payload; meaningful only when kind == kLeaf.
  TupleAlternative leaf;
  /// Child node ids; meaningful only for inner nodes.
  std::vector<NodeId> children;
  /// Edge probabilities Pr(u, v) parallel to `children`; meaningful only for
  /// XOR nodes. The leftover 1 - sum produces the empty set.
  std::vector<double> edge_probs;
};

/// \brief A probabilistic and/xor tree.
///
/// Built incrementally with AddLeaf / AddAnd / AddXor, then sealed with
/// SetRoot. Validate() checks Definition 1's constraints:
///  * probability constraint — XOR edge probabilities are non-negative and
///    sum to at most 1 per node;
///  * key constraint — the LCA of two leaves holding the same key is an XOR
///    node (equivalently: the children of an AND node span disjoint key
///    sets);
///  * structural sanity — the nodes reachable from the root form a tree
///    (every node has at most one parent), inner nodes have children, and
///    XOR nodes have one probability per child.
class AndXorTree {
 public:
  AndXorTree() = default;

  /// \brief Adds a leaf holding `alt`; returns its NodeId.
  NodeId AddLeaf(const TupleAlternative& alt);

  /// \brief Adds an AND node over existing nodes; returns its NodeId.
  NodeId AddAnd(std::vector<NodeId> children);

  /// \brief Adds a XOR node over existing nodes with the given edge
  /// probabilities (parallel vectors); returns its NodeId.
  NodeId AddXor(std::vector<NodeId> children, std::vector<double> edge_probs);

  void SetRoot(NodeId root) { root_ = root; }
  NodeId root() const { return root_; }

  const TreeNode& node(NodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  int NumNodes() const { return static_cast<int>(nodes_.size()); }

  /// \brief Node ids of all leaves reachable from the root, in DFS order.
  const std::vector<NodeId>& LeafIds() const { return leaf_ids_; }
  int NumLeaves() const { return static_cast<int>(leaf_ids_.size()); }

  /// \brief Checks all Definition 1 constraints; also (re)computes the leaf
  /// index. Must be called (and succeed) before using the query helpers
  /// below.
  Status Validate();

  /// \brief Pr(leaf present): the product of the XOR edge probabilities on
  /// the root-to-leaf path. Indexed by NodeId; non-leaf entries are 0.
  /// Requires a prior successful Validate().
  std::vector<double> LeafMarginals() const;

  /// \brief Pr(`leaf` present) for a single leaf, multiplying the XOR edge
  /// probabilities root-to-leaf — the same order as LeafMarginals(), so the
  /// value is bitwise identical to LeafMarginals()[leaf]. O(path length)
  /// per call; the per-leaf unit the engine's chunked set-consensus paths
  /// distribute. Requires a prior successful Validate().
  double LeafMarginal(NodeId leaf) const;

  /// \brief Distinct keys appearing in the tree, sorted ascending.
  std::vector<KeyId> Keys() const;

  /// \brief Pr(some alternative of `key` is present); the per-leaf marginals
  /// of a key sum because its alternatives are mutually exclusive (key
  /// constraint).
  double KeyMarginal(KeyId key) const;

  /// \brief Pr(both leaves present in the same world): 0 when they sit under
  /// different children of a XOR node; otherwise the product of the XOR edge
  /// probabilities on the union of the two root paths (shared prefix counted
  /// once). Requires a prior successful Validate().
  double PairPresenceProbability(NodeId leaf1, NodeId leaf2) const;

  /// \brief Multi-line debug rendering of the tree.
  std::string ToString() const;

 private:
  Status ValidateStructure() const;
  Status ValidateKeyConstraint() const;

  std::vector<TreeNode> nodes_;
  NodeId root_ = kInvalidNode;
  std::vector<NodeId> leaf_ids_;   // filled by Validate()
  std::vector<NodeId> parents_;    // filled by Validate(); root's parent is
                                   // kInvalidNode
  bool validated_ = false;
};

}  // namespace cpdb

#endif  // CPDB_MODEL_AND_XOR_TREE_H_

// Copyright 2026 The ConsensusDB Authors
//
// Basic value types of the probabilistic data model (Section 3.1 of the
// paper). A probabilistic relation R^P(K; A) has a certain key attribute K
// (the "possible worlds key") and an uncertain value attribute A. The
// certain tuples sharing a key value are that probabilistic tuple's
// *alternatives*; at most one alternative of a key appears in any possible
// world.

#ifndef CPDB_MODEL_TYPES_H_
#define CPDB_MODEL_TYPES_H_

#include <cstdint>
#include <functional>

namespace cpdb {

/// \brief Identifier of a probabilistic tuple (the possible-worlds key K).
using KeyId = int32_t;

/// \brief One alternative of a probabilistic tuple: a (key, value) pair.
///
/// The value attribute is carried in two typed fields so one leaf type
/// serves every query class in the paper:
///  * `score` — numeric value used by Top-k ranking queries (Section 5);
///  * `label` — categorical value used by group-by aggregates (Section 6.1)
///    and clustering (Section 6.2); -1 when unused.
struct TupleAlternative {
  KeyId key = 0;
  double score = 0.0;
  int32_t label = -1;

  friend bool operator==(const TupleAlternative& a,
                         const TupleAlternative& b) {
    return a.key == b.key && a.score == b.score && a.label == b.label;
  }
};

}  // namespace cpdb

#endif  // CPDB_MODEL_TYPES_H_

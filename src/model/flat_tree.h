#ifndef CPDB_MODEL_FLAT_TREE_H_
#define CPDB_MODEL_FLAT_TREE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/and_xor_tree.h"
#include "model/types.h"
#include "poly/poly_arena.h"

// A flattened, cache-friendly compilation of a validated AndXorTree.
//
// The pointer-tree generating-function fold (EvalGeneratingFunction in
// model/generating_function.h) re-walks parent/child pointers and allocates a
// fresh coefficient vector per node on every evaluation. FlatTree::Compile
// walks the tree ONCE and emits:
//
//   * an instruction stream of fixed-stride FlatOp records in evaluation
//     (post-order) order — evaluating the fold becomes one linear pass over
//     a contiguous array, no pointer chasing;
//   * compile-time slot lifetimes: each op names which scratch rows it reads
//     and writes, slot ids are assigned from a LIFO free list, and a child's
//     row is recycled the moment its parent consumes it, so num_slots() is
//     the fold's live high-water mark (O(depth), not O(nodes)) and all
//     scratch lives in one reusable PolyArena buffer;
//   * a leaf table (FlatLeaf) in left-to-right DFS order — identical to
//     AndXorTree::LeafIds() order — carrying (key, score, label, node id)
//     so per-target leaf classification is a linear scan over a packed
//     array, plus each leaf's precomputed marginal probability;
//   * precomputed XOR leftover mass per node (stored on the kXorInit op).
//
// Bitwise contract: EvalGeneratingFunction here performs the same arithmetic
// operations in the same order as the pointer fold — leaves combine into XOR
// accumulators via AddScaledRow in child order, AND children combine
// left-to-right via ConvolveRowsTruncated — so for identical leaf
// polynomials the resulting coefficients are bit-identical. Only the memory
// layout and allocation strategy change. The pointer fold is retained as the
// differential reference (tests/flat_tree_test.cc).
//
// A compiled FlatTree is immutable and safe to share across threads; each
// evaluating thread supplies its own PolyArena (see FlatFoldScratch()).

namespace cpdb {

enum class FlatOpKind : int32_t {
  kLeaf,      // zero row out_slot, then caller's leaf_init writes the monomial
  kXorInit,   // zero row out_slot, set coefficient 0 to `weight` (leftover)
  kXorAccum,  // row out_slot += weight * row arg_slot; frees arg_slot
  kMul,       // row out_slot = conv(row lhs_slot, row arg_slot); frees both
};

/// One fixed-stride instruction of the flattened fold.
struct FlatOp {
  FlatOpKind kind;
  int32_t out_slot;  // row written (kXorAccum: accumulated into)
  int32_t lhs_slot;  // kMul: left operand row; otherwise -1
  int32_t arg_slot;  // kMul: right operand row; kXorAccum: child row; else -1
  NodeId node;       // originating AndXorTree node (debugging / dump-flat)
  double weight;     // kXorInit: XOR leftover mass; kXorAccum: edge prob
};

/// One leaf record, in left-to-right DFS order (== AndXorTree::LeafIds()).
struct FlatLeaf {
  KeyId key;
  double score;
  int32_t label;
  NodeId node;       // originating AndXorTree node id
  int32_t op_index;  // index of this leaf's kLeaf op in ops()
  double marginal;   // Pr[leaf present]; bitwise == AndXorTree::LeafMarginal
};

class FlatTree {
 public:
  /// Compiles a validated tree. The tree must have passed Validate(); an
  /// unvalidated/empty tree yields an empty FlatTree (no ops, no leaves).
  static FlatTree Compile(const AndXorTree& tree);

  int num_leaves() const { return static_cast<int>(leaves_.size()); }
  int num_slots() const { return num_slots_; }
  int32_t root_slot() const { return root_slot_; }
  const std::vector<FlatOp>& ops() const { return ops_; }
  const std::vector<FlatLeaf>& leaves() const { return leaves_; }

  /// Runs the generating-function fold over coefficient rows of logical
  /// shape (max_dx + 1) × (max_dy + 1), row-major (Poly2 layout; Poly1 is
  /// max_dy == 0). For each leaf, in leaf-table order, `leaf_init(i, row)`
  /// is called with a zeroed row to write leaf i's polynomial. The root
  /// polynomial's coefficients are copied into `out` (length
  /// (max_dx + 1) * (max_dy + 1)). `arena` provides the scratch rows and is
  /// resized to this fold's geometry; pass FlatFoldScratch() on hot paths.
  void EvalGeneratingFunction(
      int max_dx, int max_dy,
      const std::function<void(int leaf_index, double* row)>& leaf_init,
      double* out, PolyArena* arena) const;

  /// Human-readable record table (op stream + leaf table), for
  /// `cpdb_cli dump-flat` and debugging.
  std::string ToString() const;

 private:
  std::vector<FlatOp> ops_;
  std::vector<FlatLeaf> leaves_;
  int32_t num_slots_ = 0;
  int32_t root_slot_ = -1;
};

/// This thread's reusable fold scratch. Hot paths evaluate many same-shaped
/// folds back to back (one per leaf, one per pairwise cell); routing them
/// all through one thread_local arena means zero-allocation steady state,
/// including across Engine::ParallelFor task boundaries on a pool thread.
PolyArena& FlatFoldScratch();

}  // namespace cpdb

#endif  // CPDB_MODEL_FLAT_TREE_H_

// Copyright 2026 The ConsensusDB Authors
//
// Possible-world semantics utilities: exhaustive enumeration (exponential,
// guarded by a limit — the ground truth for every exactness test) and
// Monte-Carlo world sampling (the ground truth for mid-size cross-checks and
// the engine behind sampling-based baselines such as U-Top-k).

#ifndef CPDB_MODEL_POSSIBLE_WORLDS_H_
#define CPDB_MODEL_POSSIBLE_WORLDS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief One possible world: the set of present leaves and its probability.
struct World {
  /// Present leaves as sorted NodeIds of the generating tree.
  std::vector<NodeId> leaf_ids;
  double prob = 0.0;
};

/// \brief Enumerates all possible worlds of positive probability.
///
/// Worlds with probability exactly zero are dropped. Fails with
/// ResourceExhausted if more than `max_worlds` worlds would be produced at
/// any intermediate step. The returned probabilities sum to 1 up to FP
/// rounding.
Result<std::vector<World>> EnumerateWorlds(const AndXorTree& tree,
                                           size_t max_worlds = 1 << 20);

/// \brief Draws one world according to the tree's distribution.
/// Returns sorted leaf NodeIds.
std::vector<NodeId> SampleWorld(const AndXorTree& tree, Rng* rng);

/// \brief Extracts the tuples of a world, sorted by score descending
/// (the ranking order used by Top-k queries; scores are assumed tie-free).
std::vector<TupleAlternative> WorldTuples(const AndXorTree& tree,
                                          const std::vector<NodeId>& leaf_ids);

/// \brief The Top-k answer of a world: keys of the min(k, |pw|) highest
/// scoring tuples, in rank order.
std::vector<KeyId> TopKOfWorld(const AndXorTree& tree,
                               const std::vector<NodeId>& leaf_ids, int k);

}  // namespace cpdb

#endif  // CPDB_MODEL_POSSIBLE_WORLDS_H_

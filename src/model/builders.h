// Copyright 2026 The ConsensusDB Authors
//
// Convenience constructors for the special cases of the and/xor tree model
// that prior work studied (Section 3.1/3.2 of the paper): tuple-independent
// tables, block-independent disjoint (BID) tables, and x-tuples.

#ifndef CPDB_MODEL_BUILDERS_H_
#define CPDB_MODEL_BUILDERS_H_

#include <vector>

#include "common/result.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief One independent probabilistic tuple: a single alternative that is
/// present with probability `prob` and absent otherwise.
struct IndependentTuple {
  TupleAlternative alt;
  double prob = 1.0;
};

/// \brief One alternative of a BID block / x-tuple, with its probability.
struct BlockAlternative {
  TupleAlternative alt;
  double prob = 1.0;
};

/// \brief A block of mutually exclusive alternatives. In a BID table all
/// alternatives share a key; in an x-tuple they may have distinct keys.
/// Probabilities must sum to at most 1; the leftover is "block absent".
using Block = std::vector<BlockAlternative>;

/// \brief Builds a validated tree for a tuple-independent table:
/// AND over one XOR(leaf) per tuple.
Result<AndXorTree> MakeTupleIndependent(const std::vector<IndependentTuple>& tuples);

/// \brief Builds a validated tree for a set of independent blocks (covers
/// both the BID model and x-tuples): AND over one XOR per block.
Result<AndXorTree> MakeBlockIndependent(const std::vector<Block>& blocks);

/// \brief A group-by-count style table: n independent tuples, tuple i taking
/// label j with probability probs[i][j] (rows sum to <= 1; leftover means
/// the tuple is absent). Keys are 0..n-1, labels are column indices.
Result<AndXorTree> MakeAttributeUncertain(
    const std::vector<std::vector<double>>& probs);

}  // namespace cpdb

#endif  // CPDB_MODEL_BUILDERS_H_

// Copyright 2026 The ConsensusDB Authors
//
// Structural canonicalization: the orientation-normal form underneath the
// two-level identity model.
//
// AND and XOR are commutative — permuting an AND node's children, or an XOR
// node's (probability, child) pairs, does not change the distribution over
// possible worlds — yet the canonical *serialization* (io/tree_text.h) is
// order-sensitive, so permuted presentations of one structure hash to
// distinct ContentFps. CanonicalizeTree rewrites a tree into a deterministic
// canonical ORIENTATION: every commutative child list is sorted by a
// bottom-up structural hash of the subtree, with hash ties broken by a
// recursive structural comparison (kind, leaf fields, probabilities, and
// children in canonical order). The comparison returns "equal" only for
// structurally identical subtrees — the same criterion as comparing
// canonical subtree bytes (FormatTree is injective on validated trees) —
// so the induced order is a deterministic total order without
// materializing the bytes per node.
//
// Properties (pinned by tests/canonical_test.cc):
//  * orbit collapse — any commutative permutation of a tree canonicalizes
//    to the same orientation, hence the same serialization;
//  * sensitivity — changing any leaf key/score/label, edge probability, or
//    the shape itself changes the canonical serialization;
//  * idempotence — Canonicalize(Canonicalize(t)) == Canonicalize(t);
//  * answer preservation — the possible-worlds distribution is untouched,
//    and for an input already in canonical orientation the rebuilt tree has
//    identical NodeIds (nodes are re-added in ParseTree's post-order), so
//    folds over it are bitwise identical to folds over the input.
//
// StructKey (common/hash.h) is defined as the content fingerprint OF THIS
// ORIENTATION: Fnv1a64(FormatTree(CanonicalizeTree(t), /*indent=*/false)).
// The catalog computes it via TreeCatalog::ComputeIdentity.

#ifndef CPDB_MODEL_CANONICAL_H_
#define CPDB_MODEL_CANONICAL_H_

#include <cstdint>

#include "common/result.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief Rewrites `tree` into its canonical orientation: commutative AND /
/// XOR child lists sorted by bottom-up structural hash (ties broken by
/// structural comparison). The input must be a valid Definition 1 tree
/// (Validate() is run on a copy and its error propagated); the returned
/// tree is validated and its nodes are numbered in serialization post-order.
Result<AndXorTree> CanonicalizeTree(const AndXorTree& tree);

/// \brief Bottom-up structural hash of the subtree rooted at `node` —
/// invariant under commutative child permutations. Exposed for tests; the
/// identity the stack keys on is StructKey, not this value.
uint64_t StructuralHash(const AndXorTree& tree, NodeId node);

}  // namespace cpdb

#endif  // CPDB_MODEL_CANONICAL_H_

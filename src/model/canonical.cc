// Copyright 2026 The ConsensusDB Authors

#include "model/canonical.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace cpdb {
namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Hash helpers feed bytes in explicit little-endian order so the structural
// hash — and therefore the canonical orientation it induces — is identical
// across platforms, matching the portability contract of ContentFp.
uint64_t HashByte(uint64_t h, unsigned char b) { return Fnv1a64(&b, 1, h); }

uint64_t HashU32(uint64_t h, uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  return Fnv1a64(b, sizeof(b), h);
}

uint64_t HashU64(uint64_t h, uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  return Fnv1a64(b, sizeof(b), h);
}

// Bottom-up pass over one tree: for every reachable node, the structural
// hash of its subtree and (for inner nodes) the canonical permutation of its
// child positions.
class Canonicalizer {
 public:
  explicit Canonicalizer(const AndXorTree& tree)
      : tree_(tree), info_(static_cast<size_t>(tree.NumNodes())) {}

  void Visit(NodeId id) {
    const TreeNode& n = tree_.node(id);
    NodeInfo& ci = info_[static_cast<size_t>(id)];
    if (n.kind == NodeKind::kLeaf) {
      uint64_t h = HashByte(kFnv1a64OffsetBasis, 'L');
      h = HashU32(h, static_cast<uint32_t>(n.leaf.key));
      h = HashU64(h, DoubleBits(n.leaf.score));
      ci.hash = HashU32(h, static_cast<uint32_t>(n.leaf.label));
      return;
    }
    for (NodeId child : n.children) Visit(child);
    ci.order.resize(n.children.size());
    std::iota(ci.order.begin(), ci.order.end(), 0);
    std::sort(ci.order.begin(), ci.order.end(), [&](int x, int y) {
      const NodeId cx = n.children[static_cast<size_t>(x)];
      const NodeId cy = n.children[static_cast<size_t>(y)];
      const uint64_t hx = info_[static_cast<size_t>(cx)].hash;
      const uint64_t hy = info_[static_cast<size_t>(cy)].hash;
      if (hx != hy) return hx < hy;
      const int c = Compare(cx, cy);
      if (c != 0) return c < 0;
      if (n.kind == NodeKind::kXor) {
        const uint64_t px = DoubleBits(n.edge_probs[static_cast<size_t>(x)]);
        const uint64_t py = DoubleBits(n.edge_probs[static_cast<size_t>(y)]);
        if (px != py) return px < py;
      }
      // Identical (probability, subtree) pairs: keep input order, making the
      // sort the identity permutation on an already-canonical node.
      return x < y;
    });
    uint64_t h = HashByte(kFnv1a64OffsetBasis,
                          n.kind == NodeKind::kAnd ? 'A' : 'X');
    for (int idx : ci.order) {
      if (n.kind == NodeKind::kXor) {
        h = HashU64(h, DoubleBits(n.edge_probs[static_cast<size_t>(idx)]));
      }
      h = HashU64(h, info_[static_cast<size_t>(
                              n.children[static_cast<size_t>(idx)])].hash);
    }
    ci.hash = h;
  }

  uint64_t hash(NodeId id) const {
    return info_[static_cast<size_t>(id)].hash;
  }

  // Rebuilds the subtree rooted at `id` into `out` in canonical child order,
  // adding nodes strictly post-order (every child before its parent) — the
  // same numbering ParseTree assigns, so re-serializing and re-parsing the
  // canonical orientation reproduces this exact tree, NodeIds included.
  NodeId Rebuild(NodeId id, AndXorTree* out) const {
    const TreeNode& n = tree_.node(id);
    if (n.kind == NodeKind::kLeaf) return out->AddLeaf(n.leaf);
    std::vector<NodeId> children;
    std::vector<double> probs;
    children.reserve(n.children.size());
    for (int idx : info_[static_cast<size_t>(id)].order) {
      children.push_back(
          Rebuild(n.children[static_cast<size_t>(idx)], out));
      if (n.kind == NodeKind::kXor) {
        probs.push_back(n.edge_probs[static_cast<size_t>(idx)]);
      }
    }
    return n.kind == NodeKind::kAnd
               ? out->AddAnd(std::move(children))
               : out->AddXor(std::move(children), std::move(probs));
  }

 private:
  struct NodeInfo {
    uint64_t hash = 0;
    std::vector<int> order;  // canonical permutation of child positions
  };

  // Deterministic total order on subtrees in canonical orientation; returns
  // 0 only for structurally identical subtrees (same canonical bytes), so a
  // hash tie between distinct structures still sorts deterministically.
  int Compare(NodeId a, NodeId b) const {
    const TreeNode& na = tree_.node(a);
    const TreeNode& nb = tree_.node(b);
    if (na.kind != nb.kind) {
      return static_cast<int>(na.kind) < static_cast<int>(nb.kind) ? -1 : 1;
    }
    if (na.kind == NodeKind::kLeaf) {
      if (na.leaf.key != nb.leaf.key) {
        return na.leaf.key < nb.leaf.key ? -1 : 1;
      }
      const uint64_t sa = DoubleBits(na.leaf.score);
      const uint64_t sb = DoubleBits(nb.leaf.score);
      if (sa != sb) return sa < sb ? -1 : 1;
      if (na.leaf.label != nb.leaf.label) {
        return na.leaf.label < nb.leaf.label ? -1 : 1;
      }
      return 0;
    }
    if (na.children.size() != nb.children.size()) {
      return na.children.size() < nb.children.size() ? -1 : 1;
    }
    const std::vector<int>& oa = info_[static_cast<size_t>(a)].order;
    const std::vector<int>& ob = info_[static_cast<size_t>(b)].order;
    for (size_t i = 0; i < na.children.size(); ++i) {
      const int c = Compare(na.children[static_cast<size_t>(oa[i])],
                            nb.children[static_cast<size_t>(ob[i])]);
      if (c != 0) return c;
      if (na.kind == NodeKind::kXor) {
        const uint64_t pa = DoubleBits(na.edge_probs[static_cast<size_t>(oa[i])]);
        const uint64_t pb = DoubleBits(nb.edge_probs[static_cast<size_t>(ob[i])]);
        if (pa != pb) return pa < pb ? -1 : 1;
      }
    }
    return 0;
  }

  const AndXorTree& tree_;
  std::vector<NodeInfo> info_;
};

}  // namespace

Result<AndXorTree> CanonicalizeTree(const AndXorTree& tree) {
  if (tree.root() == kInvalidNode) {
    return Status::InvalidArgument(
        "cannot canonicalize a tree with no root");
  }
  // Validate on a copy: CanonicalizeTree takes a const view, and validation
  // (re)computes the leaf index as a side effect.
  AndXorTree input = tree;
  CPDB_RETURN_NOT_OK(input.Validate());
  Canonicalizer canon(input);
  canon.Visit(input.root());
  AndXorTree out;
  out.SetRoot(canon.Rebuild(input.root(), &out));
  Status st = out.Validate();
  if (!st.ok()) {
    return Status::Internal("canonicalized tree failed validation: " +
                            st.message());
  }
  return out;
}

uint64_t StructuralHash(const AndXorTree& tree, NodeId node) {
  Canonicalizer canon(tree);
  canon.Visit(node);
  return canon.hash(node);
}

}  // namespace cpdb

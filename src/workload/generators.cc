// Copyright 2026 The ConsensusDB Authors

#include "workload/generators.h"

#include <algorithm>
#include <numeric>

namespace cpdb {

namespace {

/// Hands out globally distinct scores in random order.
class ScorePool {
 public:
  ScorePool(int capacity, Rng* rng) {
    scores_.resize(static_cast<size_t>(capacity));
    std::iota(scores_.begin(), scores_.end(), 1);
    rng->Shuffle(&scores_);
  }
  double Next() {
    double s = static_cast<double>(scores_.back());
    scores_.pop_back();
    return s;
  }

 private:
  std::vector<int> scores_;
};

}  // namespace

Result<AndXorTree> RandomTupleIndependent(int num_keys, Rng* rng) {
  ScorePool scores(num_keys, rng);
  std::vector<IndependentTuple> tuples;
  tuples.reserve(static_cast<size_t>(num_keys));
  for (int i = 0; i < num_keys; ++i) {
    IndependentTuple t;
    t.alt.key = i;
    t.alt.score = scores.Next();
    t.prob = rng->Uniform(0.05, 0.95);
    tuples.push_back(t);
  }
  return MakeTupleIndependent(tuples);
}

std::vector<Block> RandomBidBlocks(const RandomTreeOptions& opts, Rng* rng) {
  ScorePool scores(opts.num_keys * opts.max_alternatives, rng);
  std::vector<Block> blocks;
  blocks.reserve(static_cast<size_t>(opts.num_keys));
  for (int key = 0; key < opts.num_keys; ++key) {
    int alts = static_cast<int>(rng->UniformInt(1, opts.max_alternatives));
    double mass = rng->Uniform(opts.min_xor_mass, 1.0);
    // Random probability split of `mass` over the alternatives.
    std::vector<double> cuts(static_cast<size_t>(alts));
    double total = 0.0;
    for (double& c : cuts) {
      c = rng->Uniform(0.1, 1.0);
      total += c;
    }
    Block block;
    for (int a = 0; a < alts; ++a) {
      BlockAlternative alt;
      alt.alt.key = key;
      alt.alt.score = scores.Next();
      alt.alt.label = static_cast<int32_t>(rng->UniformInt(0, 7));
      alt.prob = mass * cuts[static_cast<size_t>(a)] / total;
      block.push_back(alt);
    }
    blocks.push_back(std::move(block));
  }
  return blocks;
}

Result<AndXorTree> RandomBid(const RandomTreeOptions& opts, Rng* rng) {
  return MakeBlockIndependent(RandomBidBlocks(opts, rng));
}

namespace {

// Recursive structure generator for RandomAndXorTree. Builds a subtree over
// the key ids in [begin, end) of `keys`; returns the subtree root.
NodeId BuildRandom(AndXorTree* tree, const RandomTreeOptions& opts,
                   const std::vector<KeyId>& keys, size_t begin, size_t end,
                   int depth, ScorePool* scores, Rng* rng) {
  size_t count = end - begin;
  if (depth >= opts.max_depth || count == 1) {
    if (count == 1) {
      // Terminal block: a XOR over 1..max_alternatives alternatives of the key.
      int alts = static_cast<int>(rng->UniformInt(1, opts.max_alternatives));
      double mass = rng->Uniform(opts.min_xor_mass, 1.0);
      std::vector<NodeId> leaves;
      std::vector<double> probs;
      for (int a = 0; a < alts; ++a) {
        TupleAlternative alt;
        alt.key = keys[begin];
        alt.score = scores->Next();
        alt.label = static_cast<int32_t>(rng->UniformInt(0, 7));
        leaves.push_back(tree->AddLeaf(alt));
        probs.push_back(mass / alts);
      }
      return tree->AddXor(std::move(leaves), std::move(probs));
    }
    // Depth exhausted with several keys left: independent AND of terminals.
    std::vector<NodeId> children;
    for (size_t i = begin; i < end; ++i) {
      children.push_back(
          BuildRandom(tree, opts, keys, i, i + 1, opts.max_depth, scores, rng));
    }
    return tree->AddAnd(std::move(children));
  }

  if (rng->Bernoulli(opts.xor_prob)) {
    // XOR node: 2-3 children, each re-deriving the same key range (legal:
    // the key constraint only restricts AND nodes).
    int fanout = static_cast<int>(rng->UniformInt(2, 3));
    double mass = rng->Uniform(opts.min_xor_mass, 1.0);
    std::vector<NodeId> children;
    std::vector<double> probs;
    for (int c = 0; c < fanout; ++c) {
      children.push_back(
          BuildRandom(tree, opts, keys, begin, end, depth + 1, scores, rng));
      probs.push_back(mass / fanout);
    }
    return tree->AddXor(std::move(children), std::move(probs));
  }
  // AND node: split the key range into 2..min(4, count) disjoint parts.
  size_t parts =
      static_cast<size_t>(rng->UniformInt(2, static_cast<int64_t>(std::min<size_t>(4, count))));
  std::vector<size_t> bounds = {begin, end};
  while (bounds.size() < parts + 1) {
    size_t cut = static_cast<size_t>(rng->UniformInt(
        static_cast<int64_t>(begin) + 1, static_cast<int64_t>(end) - 1));
    bounds.push_back(cut);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  std::vector<NodeId> children;
  for (size_t i = 0; i + 1 < bounds.size(); ++i) {
    children.push_back(BuildRandom(tree, opts, keys, bounds[i], bounds[i + 1],
                                   depth + 1, scores, rng));
  }
  if (children.size() == 1) return children[0];
  return tree->AddAnd(std::move(children));
}

}  // namespace

Result<AndXorTree> RandomAndXorTree(const RandomTreeOptions& opts, Rng* rng) {
  if (opts.num_keys < 1) {
    return Status::InvalidArgument("num_keys must be >= 1");
  }
  // Leaf count can exceed num_keys * max_alternatives because XOR branches
  // re-derive keys; budget generously for the score pool.
  int xor_levels = opts.max_depth;
  int budget = opts.num_keys * opts.max_alternatives;
  for (int i = 0; i < xor_levels && budget < (1 << 22); ++i) budget *= 3;
  ScorePool scores(std::min(budget, 1 << 22), rng);

  AndXorTree tree;
  std::vector<KeyId> keys(static_cast<size_t>(opts.num_keys));
  std::iota(keys.begin(), keys.end(), 0);
  NodeId root =
      BuildRandom(&tree, opts, keys, 0, keys.size(), 0, &scores, rng);
  tree.SetRoot(root);
  CPDB_RETURN_NOT_OK(tree.Validate());
  return tree;
}

std::vector<std::vector<double>> RandomGroupByMatrix(int num_tuples,
                                                     int num_groups,
                                                     double zipf_theta,
                                                     double absence_prob,
                                                     Rng* rng) {
  std::vector<std::vector<double>> probs(
      static_cast<size_t>(num_tuples),
      std::vector<double>(static_cast<size_t>(num_groups), 0.0));
  for (int i = 0; i < num_tuples; ++i) {
    // Each tuple concentrates on a few labels around a Zipf-drawn favorite.
    int support = static_cast<int>(rng->UniformInt(1, std::min(4, num_groups)));
    double present_mass = 1.0 - rng->Uniform(0.0, 2.0 * absence_prob);
    present_mass = std::max(0.05, std::min(1.0, present_mass));
    std::vector<double> weights(static_cast<size_t>(support));
    double total = 0.0;
    for (double& w : weights) {
      w = rng->Uniform(0.2, 1.0);
      total += w;
    }
    for (int s = 0; s < support; ++s) {
      int g = static_cast<int>(rng->Zipf(num_groups, zipf_theta));
      probs[static_cast<size_t>(i)][static_cast<size_t>(g)] +=
          present_mass * weights[static_cast<size_t>(s)] / total;
    }
  }
  return probs;
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Synthetic workload generators. The paper evaluates nothing empirically
// (pure theory), so these generators define the instance families used by
// our benchmark harness and randomized property tests:
//  * tuple-independent tables with controllable presence probabilities;
//  * BID tables (blocks of mutually exclusive alternatives);
//  * deep random and/xor trees exercising the full correlation model;
//  * group-by matrices with Zipf-skewed label distributions.
//
// All scores generated within one instance are globally distinct, matching
// the paper's tie-free assumption (Section 5).

#ifndef CPDB_WORKLOAD_GENERATORS_H_
#define CPDB_WORKLOAD_GENERATORS_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "model/builders.h"

namespace cpdb {

/// \brief Options for random tree generation.
struct RandomTreeOptions {
  /// Number of distinct keys (probabilistic tuples).
  int num_keys = 16;
  /// Max alternatives per key for block generators.
  int max_alternatives = 3;
  /// Max nesting depth for RandomAndXorTree.
  int max_depth = 4;
  /// Probability that an inner node of RandomAndXorTree is a XOR node.
  double xor_prob = 0.5;
  /// Lower bound on the mass assigned at XOR nodes (leftover is absence).
  double min_xor_mass = 0.5;
};

/// \brief A tuple-independent table with presence probabilities drawn
/// uniformly from [0.05, 0.95] and distinct scores.
Result<AndXorTree> RandomTupleIndependent(int num_keys, Rng* rng);

/// \brief BID blocks: each key gets 1..max_alternatives alternatives with a
/// random probability vector of total mass in [min_xor_mass, 1].
std::vector<Block> RandomBidBlocks(const RandomTreeOptions& opts, Rng* rng);

/// \brief A validated BID tree built from RandomBidBlocks.
Result<AndXorTree> RandomBid(const RandomTreeOptions& opts, Rng* rng);

/// \brief A random deep and/xor tree over `opts.num_keys` keys.
///
/// AND nodes partition their key set between children (key constraint);
/// XOR children redraw structure over the same key set, which creates the
/// strong cross-tuple correlations that only the and/xor model captures.
Result<AndXorTree> RandomAndXorTree(const RandomTreeOptions& opts, Rng* rng);

/// \brief An n-by-m group-by matrix: row i gives tuple i's label
/// distribution (row sums <= 1; leftover is absence with probability
/// `absence_prob` on average). `zipf_theta` skews label popularity.
std::vector<std::vector<double>> RandomGroupByMatrix(int num_tuples,
                                                     int num_groups,
                                                     double zipf_theta,
                                                     double absence_prob,
                                                     Rng* rng);

}  // namespace cpdb

#endif  // CPDB_WORKLOAD_GENERATORS_H_

// Copyright 2026 The ConsensusDB Authors

#include "poly/poly2.h"

#include "poly/poly_arena.h"

#include <cassert>
#include <sstream>

namespace cpdb {

Poly2::Poly2(int max_dx, int max_dy) : max_dx_(max_dx), max_dy_(max_dy) {
  assert(max_dx >= 0 && max_dy >= 0);
  coeffs_.assign(static_cast<size_t>(max_dx + 1) * static_cast<size_t>(max_dy + 1),
                 0.0);
}

Poly2 Poly2::Constant(int max_dx, int max_dy, double c) {
  Poly2 p(max_dx, max_dy);
  p.coeffs_[0] = c;
  return p;
}

Poly2 Poly2::Monomial(int max_dx, int max_dy, int i, int j, double c) {
  Poly2 p(max_dx, max_dy);
  if (i >= 0 && i <= max_dx && j >= 0 && j <= max_dy) p.coeffs_[p.Index(i, j)] = c;
  return p;
}

double Poly2::Coeff(int i, int j) const {
  if (i < 0 || i > max_dx_ || j < 0 || j > max_dy_) return 0.0;
  return coeffs_[Index(i, j)];
}

void Poly2::SetCoeff(int i, int j, double c) {
  if (i < 0 || i > max_dx_ || j < 0 || j > max_dy_) return;
  coeffs_[Index(i, j)] = c;
}

double Poly2::Eval(double x, double y) const {
  // Horner in x of Horner-in-y row evaluations.
  double acc = 0.0;
  for (int i = max_dx_; i >= 0; --i) {
    double row = 0.0;
    for (int j = max_dy_; j >= 0; --j) row = row * y + coeffs_[Index(i, j)];
    acc = acc * x + row;
  }
  return acc;
}

double Poly2::SumCoeffs() const {
  double s = 0.0;
  for (double c : coeffs_) s += c;
  return s;
}

Poly2& Poly2::operator+=(const Poly2& other) {
  assert(max_dx_ == other.max_dx_ && max_dy_ == other.max_dy_);
  for (size_t i = 0; i < coeffs_.size(); ++i) coeffs_[i] += other.coeffs_[i];
  return *this;
}

Poly2& Poly2::operator*=(double scalar) {
  for (double& c : coeffs_) c *= scalar;
  return *this;
}

Poly2 operator*(const Poly2& a, const Poly2& b) {
  assert(a.max_dx_ == b.max_dx_ && a.max_dy_ == b.max_dy_);
  Poly2 out(a.max_dx_, a.max_dy_);
  // Shared vectorized kernel over the row-major coefficient layout. Bitwise
  // identical to the historical quad loop: same nonzero terms accumulated
  // into each cell in the same (ia, ja) order; the relaxed zero-skip only
  // admits ±0.0 terms, which cannot move a bit of a zero-initialized
  // accumulator (see poly/poly_arena.h).
  ConvolveRowsTruncated(a.coeffs_.data(), b.coeffs_.data(), out.coeffs_.data(),
                        a.max_dx_, a.max_dy_);
  return out;
}

void Poly2::AddScaled(const Poly2& other, double scale) {
  assert(max_dx_ == other.max_dx_ && max_dy_ == other.max_dy_);
  for (size_t i = 0; i < coeffs_.size(); ++i) coeffs_[i] += scale * other.coeffs_[i];
}

std::string Poly2::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (int i = 0; i <= max_dx_; ++i) {
    for (int j = 0; j <= max_dy_; ++j) {
      double c = coeffs_[Index(i, j)];
      if (c == 0.0) continue;
      if (!first) os << " + ";
      os << c;
      if (i == 1) os << " x";
      if (i > 1) os << " x^" << i;
      if (j == 1) os << " y";
      if (j > 1) os << " y^" << j;
      first = false;
    }
  }
  if (first) os << "0";
  return os.str();
}

}  // namespace cpdb

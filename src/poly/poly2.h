// Copyright 2026 The ConsensusDB Authors
//
// Dense bivariate polynomials with per-variable degree truncation. Used for
// the two-variable generating functions of the paper:
//  * rank distributions (Example 3): variables (x, y) truncated at (k, 1);
//  * expected Jaccard distance (Lemma 1): variables (x, y) truncated at
//    (|W|, n - |W|);
//  * pairwise co-occurrence probabilities for Kendall tau and clustering.

#ifndef CPDB_POLY_POLY2_H_
#define CPDB_POLY_POLY2_H_

#include <string>
#include <vector>

namespace cpdb {

/// \brief A polynomial in two variables (x, y) over double coefficients,
/// truncated at max degrees (max_dx, max_dy).
///
/// Coefficients are stored densely in row-major order; Coeff(i, j) is the
/// coefficient of x^i y^j. Binary operations require identical truncation
/// bounds on both operands.
class Poly2 {
 public:
  Poly2(int max_dx, int max_dy);

  static Poly2 Constant(int max_dx, int max_dy, double c);

  /// \brief The monomial c * x^i y^j (zero if (i, j) exceeds the bounds).
  static Poly2 Monomial(int max_dx, int max_dy, int i, int j, double c);

  int max_dx() const { return max_dx_; }
  int max_dy() const { return max_dy_; }

  double Coeff(int i, int j) const;
  void SetCoeff(int i, int j, double c);

  /// \brief Evaluation at a point; for probability generating functions
  /// Eval(1, 1) is the total retained mass.
  double Eval(double x, double y) const;

  /// \brief Sum of all coefficients (= Eval(1, 1) without rounding drift
  /// from powering).
  double SumCoeffs() const;

  Poly2& operator+=(const Poly2& other);
  Poly2& operator*=(double scalar);

  friend Poly2 operator+(Poly2 a, const Poly2& b) { return a += b; }
  friend Poly2 operator*(Poly2 a, double s) { return a *= s; }
  friend Poly2 operator*(double s, Poly2 a) { return a *= s; }
  friend Poly2 operator*(const Poly2& a, const Poly2& b);

  /// \brief Adds `scale * other` into this polynomial.
  void AddScaled(const Poly2& other, double scale);

  void AddConstant(double c) { coeffs_[0] += c; }

  std::string ToString() const;

 private:
  size_t Index(int i, int j) const {
    return static_cast<size_t>(i) * static_cast<size_t>(max_dy_ + 1) +
           static_cast<size_t>(j);
  }

  int max_dx_;
  int max_dy_;
  std::vector<double> coeffs_;
};

}  // namespace cpdb

#endif  // CPDB_POLY_POLY2_H_

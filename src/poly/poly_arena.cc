#include "poly/poly_arena.h"

namespace cpdb {

void AddScaledRow(double* CPDB_RESTRICT out, const double* CPDB_RESTRICT src,
                  double scale, int n) {
  for (int i = 0; i < n; ++i) out[i] += scale * src[i];
}

void ConvolveRowsTruncated(const double* CPDB_RESTRICT a,
                           const double* CPDB_RESTRICT b,
                           double* CPDB_RESTRICT out, int max_dx, int max_dy) {
  const int stride = max_dy + 1;
  for (int ia = 0; ia <= max_dx; ++ia) {
    const double* CPDB_RESTRICT arow = a + static_cast<size_t>(ia) * stride;
    // Row-granularity zero skip: the fold's leaf factors are monomials, so
    // most a rows are entirely zero and cost one scan instead of a pass
    // over b. Skipping a zero row only drops ±0.0 terms (see header).
    bool all_zero = true;
    for (int j = 0; j < stride; ++j) {
      if (arow[j] != 0.0) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) continue;
    const int b_rows = max_dx - ia + 1;
    for (int ja = 0; ja <= max_dy; ++ja) {
      const double ca = arow[ja];
      if (ca == 0.0) continue;
      double* CPDB_RESTRICT obase = out + static_cast<size_t>(ia) * stride + ja;
      if (ja == 0) {
        // The whole admissible b region is a contiguous prefix, and since
        // the flat index is linear — Index(ia+ib, jb) = Index(ia,0) +
        // Index(ib, jb) — the output region is the same-length contiguous
        // run starting at a's own flat index. One FMA-friendly loop.
        const int nb = b_rows * stride;
        for (int t = 0; t < nb; ++t) obase[t] += ca * b[t];
      } else {
        // ja > 0: the admissible jb range shrinks to avoid y-truncation
        // wraparound, so accumulate per b row with a bounded inner loop.
        const int jb_max = max_dy - ja;
        for (int ib = 0; ib < b_rows; ++ib) {
          const double* CPDB_RESTRICT brow =
              b + static_cast<size_t>(ib) * stride;
          double* CPDB_RESTRICT orow = obase + static_cast<size_t>(ib) * stride;
          for (int jb = 0; jb <= jb_max; ++jb) orow[jb] += ca * brow[jb];
        }
      }
    }
  }
}

void PolyArena::Reserve(int num_slots, int row_len) {
  num_slots_ = num_slots;
  row_len_ = row_len;
  const size_t need = static_cast<size_t>(num_slots) * row_len;
  if (buf_.size() < need) buf_.resize(need);
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Sparse multivariate polynomials. The paper's generating-function theorem
// (Theorem 1) is stated for an arbitrary number of variables; Poly1/Poly2
// cover the hot paths, and SparsePoly provides the general case (used for
// multi-set intersection queries and as the reference implementation in
// tests).

#ifndef CPDB_POLY_SPARSE_POLY_H_
#define CPDB_POLY_SPARSE_POLY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cpdb {

/// \brief A polynomial in `num_vars` variables with sparse coefficient
/// storage and optional truncation by total degree.
///
/// Exponent vectors are dense (length num_vars). Coefficients are held in an
/// ordered map so iteration (and ToString) is deterministic.
class SparsePoly {
 public:
  /// \brief Monomial exponent vector: exponents[v] is the power of variable v.
  using Exponents = std::vector<uint32_t>;

  /// \brief Zero polynomial. `max_total_degree < 0` means no truncation.
  explicit SparsePoly(int num_vars, int max_total_degree = -1);

  static SparsePoly Constant(int num_vars, double c, int max_total_degree = -1);

  /// \brief The monomial c * prod_v x_v^{exponents[v]}.
  static SparsePoly Monomial(int num_vars, const Exponents& exponents, double c,
                             int max_total_degree = -1);

  int num_vars() const { return num_vars_; }
  int max_total_degree() const { return max_total_degree_; }

  double Coeff(const Exponents& exponents) const;
  void AddTerm(const Exponents& exponents, double c);

  /// \brief Number of stored (non-zero) terms.
  size_t NumTerms() const { return terms_.size(); }

  /// \brief Sum of all coefficients (evaluation at all-ones).
  double SumCoeffs() const;

  double Eval(const std::vector<double>& point) const;

  SparsePoly& operator+=(const SparsePoly& other);
  SparsePoly& operator*=(double scalar);

  friend SparsePoly operator+(SparsePoly a, const SparsePoly& b) { return a += b; }
  friend SparsePoly operator*(SparsePoly a, double s) { return a *= s; }
  friend SparsePoly operator*(double s, SparsePoly a) { return a *= s; }
  friend SparsePoly operator*(const SparsePoly& a, const SparsePoly& b);

  void AddScaled(const SparsePoly& other, double scale);
  void AddConstant(double c);

  /// \brief Drops terms with |coefficient| <= eps (numerical noise control
  /// after long products).
  void Prune(double eps = 0.0);

  const std::map<Exponents, double>& terms() const { return terms_; }

  std::string ToString() const;

 private:
  int num_vars_;
  int max_total_degree_;
  std::map<Exponents, double> terms_;
};

}  // namespace cpdb

#endif  // CPDB_POLY_SPARSE_POLY_H_

// Copyright 2026 The ConsensusDB Authors
//
// Dense univariate polynomials with degree truncation. These are the
// workhorse of the generating-function method of Section 3.3 of the paper:
// the coefficient of x^i in the tree's generating function equals the total
// probability of the possible worlds with exactly i leaves tagged x
// (Theorem 1). Truncation makes every query output-sensitive: a Top-k
// computation only ever needs degrees 0..k.

#ifndef CPDB_POLY_POLY1_H_
#define CPDB_POLY_POLY1_H_

#include <cstddef>
#include <string>
#include <vector>

namespace cpdb {

/// \brief A univariate polynomial over double coefficients, truncated at a
/// fixed maximum degree.
///
/// All arithmetic discards terms of degree greater than `max_degree()`.
/// Binary operations require both operands to share the same truncation
/// bound; this is enforced in debug builds and documents intent in release
/// builds.
class Poly1 {
 public:
  /// \brief The zero polynomial truncated at `max_degree`.
  explicit Poly1(int max_degree);

  /// \brief The constant polynomial `c` truncated at `max_degree`.
  static Poly1 Constant(int max_degree, double c);

  /// \brief The monomial `c * x^degree`; terms beyond the truncation bound
  /// yield the zero polynomial.
  static Poly1 Monomial(int max_degree, int degree, double c);

  /// \brief The affine polynomial `a + b*x` (the typical per-leaf factor
  /// `Pr(not t) + Pr(t) x` of a tuple-independent generating function).
  static Poly1 Affine(int max_degree, double a, double b);

  int max_degree() const { return max_degree_; }

  /// \brief Coefficient of x^i (0 for i outside [0, max_degree]).
  double Coeff(int i) const;

  /// \brief Sets the coefficient of x^i; out-of-range i is ignored
  /// (consistent with truncation semantics).
  void SetCoeff(int i, double c);

  /// \brief Largest i with a non-zero coefficient, or -1 for the zero
  /// polynomial.
  int Degree() const;

  /// \brief Sum of all stored coefficients, i.e. evaluation at x = 1.
  /// For a probability generating function this is the total retained mass.
  double SumCoeffs() const;

  /// \brief Evaluates the polynomial at `x` by Horner's rule.
  double Eval(double x) const;

  Poly1& operator+=(const Poly1& other);
  Poly1& operator-=(const Poly1& other);
  Poly1& operator*=(double scalar);
  Poly1& operator*=(const Poly1& other);

  friend Poly1 operator+(Poly1 a, const Poly1& b) { return a += b; }
  friend Poly1 operator-(Poly1 a, const Poly1& b) { return a -= b; }
  friend Poly1 operator*(Poly1 a, double s) { return a *= s; }
  friend Poly1 operator*(double s, Poly1 a) { return a *= s; }
  friend Poly1 operator*(const Poly1& a, const Poly1& b);

  /// \brief Adds `scale * other` into this polynomial.
  void AddScaled(const Poly1& other, double scale);

  /// \brief Adds the constant `c` to the degree-0 coefficient.
  void AddConstant(double c) { coeffs_[0] += c; }

  /// \brief All coefficients, indexed by degree; size is max_degree() + 1.
  const std::vector<double>& coeffs() const { return coeffs_; }

  /// \brief Human-readable form, e.g. "0.3 + 0.7 x^2".
  std::string ToString() const;

 private:
  int max_degree_;
  std::vector<double> coeffs_;  // coeffs_[i] is the coefficient of x^i
};

}  // namespace cpdb

#endif  // CPDB_POLY_POLY1_H_

// Copyright 2026 The ConsensusDB Authors

#include "poly/poly1.h"

#include "poly/poly_arena.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace cpdb {

Poly1::Poly1(int max_degree) : max_degree_(max_degree) {
  assert(max_degree >= 0);
  coeffs_.assign(static_cast<size_t>(max_degree) + 1, 0.0);
}

Poly1 Poly1::Constant(int max_degree, double c) {
  Poly1 p(max_degree);
  p.coeffs_[0] = c;
  return p;
}

Poly1 Poly1::Monomial(int max_degree, int degree, double c) {
  Poly1 p(max_degree);
  if (degree >= 0 && degree <= max_degree) p.coeffs_[static_cast<size_t>(degree)] = c;
  return p;
}

Poly1 Poly1::Affine(int max_degree, double a, double b) {
  Poly1 p(max_degree);
  p.coeffs_[0] = a;
  if (max_degree >= 1) p.coeffs_[1] = b;
  return p;
}

double Poly1::Coeff(int i) const {
  if (i < 0 || i > max_degree_) return 0.0;
  return coeffs_[static_cast<size_t>(i)];
}

void Poly1::SetCoeff(int i, double c) {
  if (i < 0 || i > max_degree_) return;
  coeffs_[static_cast<size_t>(i)] = c;
}

int Poly1::Degree() const {
  for (int i = max_degree_; i >= 0; --i) {
    if (coeffs_[static_cast<size_t>(i)] != 0.0) return i;
  }
  return -1;
}

double Poly1::SumCoeffs() const {
  double s = 0.0;
  for (double c : coeffs_) s += c;
  return s;
}

double Poly1::Eval(double x) const {
  double acc = 0.0;
  for (int i = max_degree_; i >= 0; --i) acc = acc * x + coeffs_[static_cast<size_t>(i)];
  return acc;
}

Poly1& Poly1::operator+=(const Poly1& other) {
  assert(max_degree_ == other.max_degree_);
  for (size_t i = 0; i < coeffs_.size(); ++i) coeffs_[i] += other.coeffs_[i];
  return *this;
}

Poly1& Poly1::operator-=(const Poly1& other) {
  assert(max_degree_ == other.max_degree_);
  for (size_t i = 0; i < coeffs_.size(); ++i) coeffs_[i] -= other.coeffs_[i];
  return *this;
}

Poly1& Poly1::operator*=(double scalar) {
  for (double& c : coeffs_) c *= scalar;
  return *this;
}

Poly1 operator*(const Poly1& a, const Poly1& b) {
  assert(a.max_degree_ == b.max_degree_);
  Poly1 out(a.max_degree_);
  // Shared vectorized kernel (Poly1 is the max_dy == 0 case). Bitwise
  // identical to the historical degree-bounded loop: the kernel visits the
  // same nonzero terms in the same order and only admits extra ±0.0 terms,
  // which cannot move a bit of a zero-initialized accumulator (see
  // poly/poly_arena.h).
  ConvolveRowsTruncated(a.coeffs_.data(), b.coeffs_.data(), out.coeffs_.data(),
                        a.max_degree_, 0);
  return out;
}

Poly1& Poly1::operator*=(const Poly1& other) {
  *this = *this * other;
  return *this;
}

void Poly1::AddScaled(const Poly1& other, double scale) {
  assert(max_degree_ == other.max_degree_);
  for (size_t i = 0; i < coeffs_.size(); ++i) coeffs_[i] += scale * other.coeffs_[i];
}

std::string Poly1::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (int i = 0; i <= max_degree_; ++i) {
    double c = coeffs_[static_cast<size_t>(i)];
    if (c == 0.0) continue;
    if (!first) os << " + ";
    os << c;
    if (i == 1) os << " x";
    if (i > 1) os << " x^" << i;
    first = false;
  }
  if (first) os << "0";
  return os.str();
}

}  // namespace cpdb

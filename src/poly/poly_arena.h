#ifndef CPDB_POLY_POLY_ARENA_H_
#define CPDB_POLY_POLY_ARENA_H_

#include <cstddef>
#include <vector>

// Arena scratch for the flattened generating-function fold, plus the shared
// raw-row convolution kernels that Poly1/Poly2 multiplication and the flat
// fold both compile down to.
//
// The pointer-tree fold heap-allocates one coefficient vector per tree node.
// The flat fold instead works on a fixed number of equally sized coefficient
// rows ("slots") whose lifetimes were computed when the tree was compiled
// (see model/flat_tree.h): a child's row is recycled the moment its parent
// consumes it, so the working set is O(max live slots), not O(nodes). The
// arena owns one contiguous buffer of num_slots × row_len doubles and is
// grow-only: repeated folds over same-shaped problems reuse the same
// allocation, so a steady-state serving loop performs no per-query heap
// traffic for polynomial scratch.

namespace cpdb {

#if defined(__GNUC__) || defined(__clang__)
#define CPDB_RESTRICT __restrict__
#else
#define CPDB_RESTRICT
#endif

/// out[i] += scale * src[i] for i in [0, n). Matches Poly1/Poly2::AddScaled
/// elementwise (ascending index order), so substituting it for those loops
/// cannot change a single output bit.
void AddScaledRow(double* CPDB_RESTRICT out, const double* CPDB_RESTRICT src,
                  double scale, int n);

/// Truncated bivariate convolution, accumulated into `out`:
///
///   out[ia+ib, ja+jb] += a[ia, ja] * b[ib, jb]
///
/// over all index pairs with ia+ib <= max_dx and ja+jb <= max_dy, where rows
/// are laid out row-major with stride (max_dy + 1) — exactly Poly2's layout
/// (Poly1 is the max_dy == 0 special case). `out` must be distinct from both
/// operands and is accumulated into, not overwritten; callers zero it first.
///
/// Bitwise contract: the result is bit-identical to the historical
/// Poly2::operator* nested loop (and Poly1's degree-limited variant). Two
/// loop-shape changes are made for vectorization, and neither can move a bit:
///
///  1. a-elements are visited in the same ascending (ia, ja) row-major order
///     as before and each contributes at most one term per output cell, so
///     the sequence of nonzero terms accumulated into any given out cell is
///     unchanged.
///  2. Zero skipping moves from per-b-element tests (`if (cb == 0) continue`,
///     and Poly1's Degree() bounds) to a-row granularity. The extra terms
///     this admits are all of the form acc += ca * 0.0, i.e. adding ±0.0.
///     Every out cell starts at +0.0 and is only ever += into; under
///     round-to-nearest an accumulator that starts at +0.0 can never become
///     -0.0 (x + y is -0.0 only when both operands are -0.0, and exact
///     cancellation yields +0.0), and adding ±0.0 to a value that is not
///     -0.0 returns it unchanged. So the admitted terms are bitwise no-ops.
///
/// The ja == 0 column is the hot case (every leaf polynomial the fold builds
/// is a monomial with a single nonzero in column 0 or 1): there the inner
/// accumulation collapses to one contiguous fused-multiply-add loop over
/// (max_dx - ia + 1) * stride doubles, which autovectorizes.
///
/// Coefficients are assumed finite (parse-time validation rejects
/// non-finite inputs); with an Inf operand the relaxed zero-skip could
/// manufacture NaNs the old loop avoided.
void ConvolveRowsTruncated(const double* CPDB_RESTRICT a,
                           const double* CPDB_RESTRICT b,
                           double* CPDB_RESTRICT out, int max_dx, int max_dy);

/// A pool of equally sized coefficient rows backing one flat fold.
///
/// Reserve(num_slots, row_len) establishes the current geometry; Row(slot)
/// returns the backing storage for a slot id in [0, num_slots). Rows are
/// handed out uninitialized — the flat instruction stream zeroes every row
/// before first use — and the underlying buffer only ever grows, so a
/// thread_local arena reaches zero-allocation steady state after the largest
/// fold shape it has seen.
class PolyArena {
 public:
  PolyArena() = default;

  // Movable, not copyable: an arena is scratch identity, not a value.
  PolyArena(const PolyArena&) = delete;
  PolyArena& operator=(const PolyArena&) = delete;
  PolyArena(PolyArena&&) = default;
  PolyArena& operator=(PolyArena&&) = default;

  /// Sets the row geometry for subsequent Row() calls, growing the backing
  /// buffer if this fold needs more than any previous one. Contents of the
  /// rows are unspecified afterwards.
  void Reserve(int num_slots, int row_len);

  double* Row(int slot) {
    return buf_.data() + static_cast<size_t>(slot) * row_len_;
  }
  const double* Row(int slot) const {
    return buf_.data() + static_cast<size_t>(slot) * row_len_;
  }

  int num_slots() const { return num_slots_; }
  int row_len() const { return row_len_; }

  /// Bytes currently held by the backing buffer (high-water, not the last
  /// Reserve geometry) — exposed for tests pinning the working-set claim.
  size_t CapacityBytes() const { return buf_.capacity() * sizeof(double); }

 private:
  std::vector<double> buf_;
  int num_slots_ = 0;
  int row_len_ = 0;
};

}  // namespace cpdb

#endif  // CPDB_POLY_POLY_ARENA_H_

// Copyright 2026 The ConsensusDB Authors

#include "poly/sparse_poly.h"

#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace cpdb {

namespace {
uint32_t TotalDegree(const SparsePoly::Exponents& e) {
  uint32_t d = 0;
  for (uint32_t x : e) d += x;
  return d;
}
}  // namespace

SparsePoly::SparsePoly(int num_vars, int max_total_degree)
    : num_vars_(num_vars), max_total_degree_(max_total_degree) {
  assert(num_vars >= 0);
}

SparsePoly SparsePoly::Constant(int num_vars, double c, int max_total_degree) {
  SparsePoly p(num_vars, max_total_degree);
  if (c != 0.0) p.terms_[Exponents(static_cast<size_t>(num_vars), 0)] = c;
  return p;
}

SparsePoly SparsePoly::Monomial(int num_vars, const Exponents& exponents, double c,
                                int max_total_degree) {
  SparsePoly p(num_vars, max_total_degree);
  assert(exponents.size() == static_cast<size_t>(num_vars));
  p.AddTerm(exponents, c);
  return p;
}

double SparsePoly::Coeff(const Exponents& exponents) const {
  auto it = terms_.find(exponents);
  return it == terms_.end() ? 0.0 : it->second;
}

void SparsePoly::AddTerm(const Exponents& exponents, double c) {
  if (c == 0.0) return;
  if (max_total_degree_ >= 0 &&
      TotalDegree(exponents) > static_cast<uint32_t>(max_total_degree_)) {
    return;
  }
  terms_[exponents] += c;
}

double SparsePoly::SumCoeffs() const {
  double s = 0.0;
  for (const auto& [e, c] : terms_) s += c;
  return s;
}

double SparsePoly::Eval(const std::vector<double>& point) const {
  assert(point.size() == static_cast<size_t>(num_vars_));
  double acc = 0.0;
  for (const auto& [e, c] : terms_) {
    double term = c;
    for (int v = 0; v < num_vars_; ++v) {
      for (uint32_t p = 0; p < e[static_cast<size_t>(v)]; ++p) {
        term *= point[static_cast<size_t>(v)];
      }
    }
    acc += term;
  }
  return acc;
}

SparsePoly& SparsePoly::operator+=(const SparsePoly& other) {
  assert(num_vars_ == other.num_vars_);
  for (const auto& [e, c] : other.terms_) AddTerm(e, c);
  return *this;
}

SparsePoly& SparsePoly::operator*=(double scalar) {
  if (scalar == 0.0) {
    terms_.clear();
    return *this;
  }
  for (auto& [e, c] : terms_) c *= scalar;
  return *this;
}

SparsePoly operator*(const SparsePoly& a, const SparsePoly& b) {
  assert(a.num_vars_ == b.num_vars_);
  // Keep the tighter truncation of the two operands.
  int trunc = a.max_total_degree_;
  if (trunc < 0 || (b.max_total_degree_ >= 0 && b.max_total_degree_ < trunc)) {
    trunc = b.max_total_degree_;
  }
  SparsePoly out(a.num_vars_, trunc);
  SparsePoly::Exponents e(static_cast<size_t>(a.num_vars_));
  for (const auto& [ea, ca] : a.terms_) {
    for (const auto& [eb, cb] : b.terms_) {
      for (size_t v = 0; v < e.size(); ++v) e[v] = ea[v] + eb[v];
      out.AddTerm(e, ca * cb);
    }
  }
  return out;
}

void SparsePoly::AddScaled(const SparsePoly& other, double scale) {
  assert(num_vars_ == other.num_vars_);
  if (scale == 0.0) return;
  for (const auto& [e, c] : other.terms_) AddTerm(e, c * scale);
}

void SparsePoly::AddConstant(double c) {
  AddTerm(Exponents(static_cast<size_t>(num_vars_), 0), c);
}

void SparsePoly::Prune(double eps) {
  for (auto it = terms_.begin(); it != terms_.end();) {
    if (std::fabs(it->second) <= eps) {
      it = terms_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string SparsePoly::ToString() const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  for (const auto& [e, c] : terms_) {
    if (!first) os << " + ";
    os << c;
    for (int v = 0; v < num_vars_; ++v) {
      uint32_t p = e[static_cast<size_t>(v)];
      if (p == 0) continue;
      os << " x" << v;
      if (p > 1) os << "^" << p;
    }
    first = false;
  }
  return os.str();
}

}  // namespace cpdb

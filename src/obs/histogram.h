// Copyright 2026 The ConsensusDB Authors
//
// A log2-bucketed latency histogram for the serve path. Design constraints,
// in the order they were chosen:
//
//   * Fixed bucket boundaries. Bucket i covers durations d (nanoseconds)
//     with 2^(i-1) < d <= 2^i (bucket 0 covers d <= 1 ns; the last bucket
//     is the +Inf overflow). The boundaries are compile-time constants, so
//     two histograms — recorded on different shards, processes, or runs —
//     always agree on what a bucket means, and merging is bucket-wise
//     integer addition. Nothing adapts to the data: adaptive boundaries
//     would make the merged output depend on recording order.
//
//   * Integer nanoseconds throughout. Counts and sums are int64, so
//     merging is associative and commutative — the merged snapshot is a
//     pure function of the multiset of recorded durations, independent of
//     which shard recorded what in which order. (A double sum would make
//     shard layout visible in the last ulp.)
//
//   * Cheap enough for the hot path. Record is a handful of relaxed
//     atomic adds (plus two CAS loops for min/max), no locks, no
//     allocation — per-shard instances record concurrently and are merged
//     only at scrape time.
//
// Snapshot consistency: under concurrent recording a snapshot may observe
// a Record mid-flight (count updated, bucket not yet). Scrapes are
// monitoring reads, not barriers; every test that asserts exact values
// snapshots quiescent histograms.

#ifndef CPDB_OBS_HISTOGRAM_H_
#define CPDB_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace cpdb {

/// \brief Number of buckets, including the final +Inf overflow bucket.
/// Buckets 0..kLatencyHistogramBuckets-2 have upper bounds 2^0 .. 2^38
/// nanoseconds (2^38 ns ~ 4.6 minutes — far beyond any sane request);
/// anything larger lands in the overflow bucket.
inline constexpr int kLatencyHistogramBuckets = 40;

/// \brief The bucket index for a duration: the smallest i with
/// nanos <= 2^i (0 for nanos <= 1), clamped to the overflow bucket. A pure
/// function — the single definition of what the boundaries are.
int LatencyBucketIndex(int64_t nanos);

/// \brief The inclusive upper bound of bucket i in nanoseconds (2^i), or
/// -1 for the +Inf overflow bucket.
int64_t LatencyBucketUpperNanos(int index);

/// \brief A point-in-time copy of a histogram — plain data, mergeable and
/// comparable. The unit of cross-shard aggregation: scraping a sharded
/// server merges per-shard snapshots bucket-wise.
struct HistogramSnapshot {
  int64_t count = 0;      ///< recorded durations
  int64_t sum_nanos = 0;  ///< exact integer sum of recorded durations
  int64_t min_nanos = 0;  ///< smallest recorded duration (0 when count == 0)
  int64_t max_nanos = 0;  ///< largest recorded duration (0 when count == 0)
  std::array<int64_t, kLatencyHistogramBuckets> buckets{};  ///< per-bucket
                                                            ///< (not
                                                            ///< cumulative)

  /// \brief Bucket-wise merge: counts and sums add, min/max combine. The
  /// result equals a histogram that recorded both operands' durations —
  /// in any order.
  void Merge(const HistogramSnapshot& other);

  friend bool operator==(const HistogramSnapshot& a,
                         const HistogramSnapshot& b) {
    return a.count == b.count && a.sum_nanos == b.sum_nanos &&
           a.min_nanos == b.min_nanos && a.max_nanos == b.max_nanos &&
           a.buckets == b.buckets;
  }
  friend bool operator!=(const HistogramSnapshot& a,
                         const HistogramSnapshot& b) {
    return !(a == b);
  }
};

/// \brief The live, thread-safe histogram. Record from any thread;
/// Snapshot at scrape time.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// \brief Records one duration (negative values are clamped to 0 — a
  /// duration is nonnegative by construction, see Stopwatch).
  void Record(int64_t nanos);

  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_nanos_{0};
  std::atomic<int64_t> min_nanos_;  // INT64_MAX until the first Record
  std::atomic<int64_t> max_nanos_{0};
  std::array<std::atomic<int64_t>, kLatencyHistogramBuckets> buckets_;
};

}  // namespace cpdb

#endif  // CPDB_OBS_HISTOGRAM_H_

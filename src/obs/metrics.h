// Copyright 2026 The ConsensusDB Authors
//
// MetricsRegistry — the deterministic metrics surface of the serve path.
// A registry is a named set of instruments (monotonic counters, gauges,
// log2 latency histograms); a scrape produces a MetricsSnapshot — plain
// data, sorted by metric name — which renders to either wire format the
// `op=metrics` request speaks:
//
//   * kv   — flat `name=value` pairs in the existing response-line framing
//            (MetricsToKvPairs), one field per scalar and a fixed family of
//            fields per histogram;
//   * prom — the Prometheus text exposition format (MetricsToPrometheusText)
//            with HELP/TYPE comments and cumulative `le` histogram buckets.
//
// Determinism is the design center, same as everywhere else in this repo:
// metric *names* are fixed at registration, export order is sorted by
// name, histogram boundaries are compile-time constants, and every value
// is an int64 — so the structure of a scrape is bitwise reproducible, and
// with an injected FakeClock the values are too. Merging (MergeFrom) sums
// counters and gauges and merges histograms bucket-wise, which is how a
// sharded front-end presents one fleet view over per-shard registries: the
// merged scrape is a pure function of the shards' snapshots, independent
// of shard count or merge order (tests/sharded_service_test.cc pins merged
// == bucket-wise sum of per-shard).
//
// The registry intentionally has no labels: a label set would smuggle
// unbounded cardinality and formatting ambiguity into the wire contract.
// Dimensions that matter (per-op, per-stage) are distinct flat names.
//
// The existing CacheStats counters are re-exported through this surface by
// service/query_scheduler.h's AppendCacheStatsMetrics — the `stats` op and
// the `metrics` op read the same structs, and a golden-name test pins the
// exported names so the two can never drift apart silently.

#ifndef CPDB_OBS_METRICS_H_
#define CPDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace cpdb {

/// \brief A monotonic counter (Prometheus "counter"). Thread-safe.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief A last-value / high-water gauge (Prometheus "gauge").
/// Thread-safe.
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  /// \brief Raises the gauge to `value` if larger — the high-water-mark
  /// update (e.g. peak arena scratch bytes).
  void UpdateMax(int64_t value) {
    int64_t seen = value_.load(std::memory_order_relaxed);
    while (value > seen && !value_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief One scraped metric — plain data.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;
  int64_t value = 0;       ///< counter / gauge reading
  HistogramSnapshot hist;  ///< histogram reading (kind == kHistogram)
};

/// \brief A scrape: samples sorted by name. Mergeable across shards.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// \brief The sample named `name`, or nullptr. Binary search (samples
  /// are sorted by name).
  const MetricSample* Find(const std::string& name) const;

  /// \brief Folds `other` in: same-name samples combine (counters and
  /// gauges add, histograms merge bucket-wise; the kinds must match — a
  /// mismatch aborts, it is a programming error, not data), unmatched
  /// names are unioned. Keeps the sorted order. Commutative and
  /// associative, so a fleet merge is independent of shard order.
  void MergeFrom(const MetricsSnapshot& other);
};

/// \brief A named set of instruments. Registration returns stable pointers
/// (the registry owns the instruments); names must be unique and must
/// match [a-zA-Z_][a-zA-Z0-9_]* — valid simultaneously as a protocol field
/// name and a Prometheus metric name. Registration is not thread-safe
/// (instruments are registered at construction time, before serving);
/// recording through the returned pointers and Snapshot() are.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* AddCounter(const std::string& name, const std::string& help);
  Gauge* AddGauge(const std::string& name, const std::string& help);
  LatencyHistogram* AddHistogram(const std::string& name,
                                 const std::string& help);

  /// \brief Scrapes every instrument; samples sorted by name.
  MetricsSnapshot Snapshot() const;

 private:
  struct Instrument;
  std::map<std::string, std::unique_ptr<Instrument>> instruments_;
};

/// \brief Renders a snapshot as flat (name, value) string pairs — the
/// `op=metrics format=kv` body. Counters and gauges produce one pair;
/// a histogram named H produces H_count, H_sum_ns, H_min_ns, H_max_ns,
/// then one H_b<i> pair per *nonzero* bucket (i is the bucket index;
/// bucket i's upper bound is 2^i ns, the last index is the +Inf overflow).
/// Zero buckets are elided so a scrape stays proportional to what was
/// observed, not to the bucket table; the elision is deterministic (a
/// bucket is present iff its count is nonzero).
std::vector<std::pair<std::string, std::string>> MetricsToKvPairs(
    const MetricsSnapshot& snapshot);

/// \brief Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): HELP/TYPE comment pairs, counters/gauges as single
/// samples, histograms as cumulative `le`-labeled bucket series (nonzero-
/// increment buckets plus the mandatory le="+Inf") with _sum and _count.
/// Values are integer nanoseconds — the metric names carry the unit.
std::string MetricsToPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace cpdb

#endif  // CPDB_OBS_METRICS_H_

// Copyright 2026 The ConsensusDB Authors

#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace cpdb {

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

[[noreturn]] void RegistryMisuse(const char* what, const std::string& name) {
  // Registration happens at construction time with compile-time constant
  // names; a bad name or a duplicate is a programming error a test hits on
  // its first run, never a data-dependent condition worth a Status.
  std::fprintf(stderr, "MetricsRegistry: %s: '%s'\n", what, name.c_str());
  std::abort();
}

}  // namespace

const MetricSample* MetricsSnapshot::Find(const std::string& name) const {
  auto it = std::lower_bound(
      samples.begin(), samples.end(), name,
      [](const MetricSample& s, const std::string& n) { return s.name < n; });
  if (it == samples.end() || it->name != name) return nullptr;
  return &*it;
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  std::vector<MetricSample> merged;
  merged.reserve(samples.size() + other.samples.size());
  size_t i = 0;
  size_t j = 0;
  while (i < samples.size() || j < other.samples.size()) {
    if (j >= other.samples.size() ||
        (i < samples.size() && samples[i].name < other.samples[j].name)) {
      merged.push_back(std::move(samples[i++]));
      continue;
    }
    if (i >= samples.size() || other.samples[j].name < samples[i].name) {
      merged.push_back(other.samples[j++]);
      continue;
    }
    MetricSample combined = std::move(samples[i++]);
    const MetricSample& rhs = other.samples[j++];
    if (combined.kind != rhs.kind) {
      RegistryMisuse("merge of mismatched kinds", combined.name);
    }
    if (combined.kind == MetricSample::Kind::kHistogram) {
      combined.hist.Merge(rhs.hist);
    } else {
      // Counters sum by definition. Gauges in this registry are additive
      // too (each shard reports its own retained bytes / peak scratch; the
      // fleet view is the total) — see the header contract.
      combined.value += rhs.value;
    }
    merged.push_back(std::move(combined));
  }
  samples = std::move(merged);
}

struct MetricsRegistry::Instrument {
  std::string help;
  MetricSample::Kind kind = MetricSample::Kind::kCounter;
  // Exactly one of these is set, per kind.
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<LatencyHistogram> histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     const std::string& help) {
  if (!ValidMetricName(name)) RegistryMisuse("invalid metric name", name);
  auto instrument = std::make_unique<Instrument>();
  instrument->help = help;
  instrument->kind = MetricSample::Kind::kCounter;
  instrument->counter = std::make_unique<Counter>();
  Counter* handle = instrument->counter.get();
  if (!instruments_.emplace(name, std::move(instrument)).second) {
    RegistryMisuse("duplicate metric name", name);
  }
  return handle;
}

Gauge* MetricsRegistry::AddGauge(const std::string& name,
                                 const std::string& help) {
  if (!ValidMetricName(name)) RegistryMisuse("invalid metric name", name);
  auto instrument = std::make_unique<Instrument>();
  instrument->help = help;
  instrument->kind = MetricSample::Kind::kGauge;
  instrument->gauge = std::make_unique<Gauge>();
  Gauge* handle = instrument->gauge.get();
  if (!instruments_.emplace(name, std::move(instrument)).second) {
    RegistryMisuse("duplicate metric name", name);
  }
  return handle;
}

LatencyHistogram* MetricsRegistry::AddHistogram(const std::string& name,
                                                const std::string& help) {
  if (!ValidMetricName(name)) RegistryMisuse("invalid metric name", name);
  auto instrument = std::make_unique<Instrument>();
  instrument->help = help;
  instrument->kind = MetricSample::Kind::kHistogram;
  instrument->histogram = std::make_unique<LatencyHistogram>();
  LatencyHistogram* handle = instrument->histogram.get();
  if (!instruments_.emplace(name, std::move(instrument)).second) {
    RegistryMisuse("duplicate metric name", name);
  }
  return handle;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.samples.reserve(instruments_.size());
  // std::map iterates in name order — the sorted-export contract for free.
  for (const auto& [name, instrument] : instruments_) {
    MetricSample sample;
    sample.name = name;
    sample.help = instrument->help;
    sample.kind = instrument->kind;
    switch (instrument->kind) {
      case MetricSample::Kind::kCounter:
        sample.value = instrument->counter->value();
        break;
      case MetricSample::Kind::kGauge:
        sample.value = instrument->gauge->value();
        break;
      case MetricSample::Kind::kHistogram:
        sample.hist = instrument->histogram->Snapshot();
        break;
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

std::vector<std::pair<std::string, std::string>> MetricsToKvPairs(
    const MetricsSnapshot& snapshot) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.kind != MetricSample::Kind::kHistogram) {
      pairs.emplace_back(sample.name, std::to_string(sample.value));
      continue;
    }
    const HistogramSnapshot& hist = sample.hist;
    pairs.emplace_back(sample.name + "_count", std::to_string(hist.count));
    pairs.emplace_back(sample.name + "_sum_ns",
                       std::to_string(hist.sum_nanos));
    pairs.emplace_back(sample.name + "_min_ns",
                       std::to_string(hist.min_nanos));
    pairs.emplace_back(sample.name + "_max_ns",
                       std::to_string(hist.max_nanos));
    for (int i = 0; i < kLatencyHistogramBuckets; ++i) {
      const int64_t count = hist.buckets[static_cast<size_t>(i)];
      if (count == 0) continue;
      pairs.emplace_back(sample.name + "_b" + std::to_string(i),
                         std::to_string(count));
    }
  }
  return pairs;
}

std::string MetricsToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricSample& sample : snapshot.samples) {
    out += "# HELP " + sample.name + " " + sample.help + "\n";
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        out += "# TYPE " + sample.name + " counter\n";
        out += sample.name + " " + std::to_string(sample.value) + "\n";
        break;
      case MetricSample::Kind::kGauge:
        out += "# TYPE " + sample.name + " gauge\n";
        out += sample.name + " " + std::to_string(sample.value) + "\n";
        break;
      case MetricSample::Kind::kHistogram: {
        out += "# TYPE " + sample.name + " histogram\n";
        // Cumulative `le` buckets; zero-increment buckets are elided
        // (legal exposition: `le` label sets may be sparse) except the
        // mandatory +Inf, which always equals _count.
        int64_t cumulative = 0;
        for (int i = 0; i < kLatencyHistogramBuckets - 1; ++i) {
          const int64_t count = sample.hist.buckets[static_cast<size_t>(i)];
          if (count == 0) continue;
          cumulative += count;
          out += sample.name + "_bucket{le=\"" +
                 std::to_string(LatencyBucketUpperNanos(i)) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += sample.name + "_bucket{le=\"+Inf\"} " +
               std::to_string(sample.hist.count) + "\n";
        out += sample.name + "_sum " + std::to_string(sample.hist.sum_nanos) +
               "\n";
        out += sample.name + "_count " + std::to_string(sample.hist.count) +
               "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "obs/histogram.h"

#include <algorithm>
#include <limits>

namespace cpdb {

int LatencyBucketIndex(int64_t nanos) {
  if (nanos <= 1) return 0;
  // Smallest i with nanos <= 2^i, i.e. the bit width of (nanos - 1).
  const uint64_t v = static_cast<uint64_t>(nanos - 1);
  const int index = 64 - __builtin_clzll(v);
  return std::min(index, kLatencyHistogramBuckets - 1);
}

int64_t LatencyBucketUpperNanos(int index) {
  if (index < 0 || index >= kLatencyHistogramBuckets - 1) return -1;
  return int64_t{1} << index;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum_nanos += other.sum_nanos;
  min_nanos = std::min(min_nanos, other.min_nanos);
  max_nanos = std::max(max_nanos, other.max_nanos);
  for (int i = 0; i < kLatencyHistogramBuckets; ++i) {
    buckets[static_cast<size_t>(i)] += other.buckets[static_cast<size_t>(i)];
  }
}

LatencyHistogram::LatencyHistogram()
    : min_nanos_(std::numeric_limits<int64_t>::max()) {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

void LatencyHistogram::Record(int64_t nanos) {
  const int64_t d = nanos > 0 ? nanos : 0;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(d, std::memory_order_relaxed);
  buckets_[static_cast<size_t>(LatencyBucketIndex(d))].fetch_add(
      1, std::memory_order_relaxed);
  // CAS-min / CAS-max: contention is rare (the loop runs only while this
  // Record is actually improving the extreme).
  int64_t seen = min_nanos_.load(std::memory_order_relaxed);
  while (d < seen && !min_nanos_.compare_exchange_weak(
                         seen, d, std::memory_order_relaxed)) {
  }
  seen = max_nanos_.load(std::memory_order_relaxed);
  while (d > seen && !max_nanos_.compare_exchange_weak(
                         seen, d, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum_nanos = sum_nanos_.load(std::memory_order_relaxed);
  const int64_t min = min_nanos_.load(std::memory_order_relaxed);
  snapshot.min_nanos =
      min == std::numeric_limits<int64_t>::max() ? 0 : min;
  snapshot.max_nanos = max_nanos_.load(std::memory_order_relaxed);
  for (int i = 0; i < kLatencyHistogramBuckets; ++i) {
    snapshot.buckets[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  return snapshot;
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// The injectable monotonic clock behind every timing read in the serving
// layer. No service code calls std::chrono::*_clock::now() directly — the
// clock-hygiene lint (tools/check_clock_hygiene.sh, run in CI) fails the
// build if such a call appears outside src/obs/ — because a direct call is
// an untestable timing read: latency histograms, trace spans, and the
// slow-query log would then carry values no test can pin, and the
// determinism suites this repo lives by (bitwise wire parity across thread
// counts, shard counts, and cache budgets) could never cover the
// observability surface. Instead:
//
//   * production code receives a `const Clock*` (SteadyClock::Instance(),
//     the std::chrono::steady_clock adapter) through its options struct;
//   * tests inject a FakeClock whose reads are a pure function of the
//     test's Set/Advance calls (optionally auto-advancing per read), so a
//     recorded duration — and therefore every histogram bucket, trace
//     field, and slow-query decision — is exactly reproducible.
//
// Readings are int64 nanoseconds on an arbitrary epoch: only differences
// are meaningful, which is all the observability layer ever computes.

#ifndef CPDB_OBS_CLOCK_H_
#define CPDB_OBS_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cpdb {

/// \brief A monotonic nanosecond clock. Implementations must be safe to
/// read from any thread.
class Clock {
 public:
  virtual ~Clock() = default;

  /// \brief Nanoseconds since the clock's (arbitrary) epoch; nondecreasing
  /// across calls observed by one thread.
  virtual int64_t NowNanos() const = 0;
};

/// \brief The real monotonic clock (std::chrono::steady_clock). This is the
/// ONLY place in the tree allowed to read a std::chrono clock; everything
/// else injects.
class SteadyClock final : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// \brief The process-wide instance — the default every options struct
  /// resolves a null clock pointer to.
  static const Clock* Instance() {
    static const SteadyClock kInstance;
    return &kInstance;
  }
};

/// \brief A manually driven clock for tests: reads return the value the
/// test last Set (plus any Advance calls), so durations — and everything
/// derived from them — are deterministic. Thread-safe: concurrent readers
/// see some linearization of the writer's updates.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(int64_t start_nanos = 0) : now_(start_nanos) {}

  int64_t NowNanos() const override {
    // With auto-advance, each read ticks the clock forward by a fixed
    // step *after* returning — so N reads observe start, start+step, ...,
    // start+(N-1)*step: spans become exact functions of the read count,
    // which is what the trace-determinism tests pin.
    const int64_t step = auto_advance_.load(std::memory_order_relaxed);
    if (step == 0) return now_.load(std::memory_order_relaxed);
    return now_.fetch_add(step, std::memory_order_relaxed);
  }

  /// \brief Jumps the clock to an absolute reading.
  void Set(int64_t nanos) { now_.store(nanos, std::memory_order_relaxed); }

  /// \brief Moves the clock forward by `nanos` (use a nonnegative value;
  /// the clock is supposed to be monotonic).
  void Advance(int64_t nanos) {
    now_.fetch_add(nanos, std::memory_order_relaxed);
  }

  /// \brief Makes every NowNanos() read advance the clock by `step` after
  /// returning (0 — the default — disables auto-advance).
  void set_auto_advance(int64_t step) {
    auto_advance_.store(step, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<int64_t> now_;
  std::atomic<int64_t> auto_advance_{0};
};

/// \brief A span timer over an injected clock. Constructed with nullptr it
/// is fully inert — zero clock reads, ElapsedNanos() == 0 — which is how
/// the serve path keeps metrics-off / trace-off requests free of timing
/// overhead without branching at every site.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock)
      : clock_(clock), start_(clock != nullptr ? clock->NowNanos() : 0) {}

  /// \brief Nanoseconds since construction (clamped to >= 0 so a
  /// misbehaving clock can never produce a negative duration downstream);
  /// 0 when constructed with a null clock.
  int64_t ElapsedNanos() const {
    if (clock_ == nullptr) return 0;
    const int64_t elapsed = clock_->NowNanos() - start_;
    return elapsed > 0 ? elapsed : 0;
  }

  bool enabled() const { return clock_ != nullptr; }

 private:
  const Clock* clock_;
  int64_t start_;
};

}  // namespace cpdb

#endif  // CPDB_OBS_CLOCK_H_

// Copyright 2026 The ConsensusDB Authors

#include "engine/engine.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "core/jaccard.h"  // IsBlockIndependent
#include "core/rank_distribution_fast.h"
#include "core/set_consensus.h"
#include "core/topk_footrule.h"
#include "core/topk_intersection.h"
#include "core/topk_kendall.h"
#include "core/topk_metrics.h"
#include "model/flat_tree.h"
#include "model/possible_worlds.h"

namespace cpdb {

namespace {

// SplitMix64 over (seed, chunk): decorrelates per-chunk Rng streams while
// staying a pure function of the user seed and the chunk index.
uint64_t ChunkSeed(uint64_t seed, int64_t chunk) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(chunk) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* TopKAnswerName(TopKAnswer answer) {
  switch (answer) {
    case TopKAnswer::kMean:
      return "mean";
    case TopKAnswer::kMedian:
      return "median";
    case TopKAnswer::kMeanUnrestricted:
      return "any-size";
    case TopKAnswer::kMeanApprox:
      return "approx";
  }
  return "?";
}

Result<TopKAnswer> ParseTopKAnswerName(const std::string& name) {
  for (TopKAnswer answer : {TopKAnswer::kMean, TopKAnswer::kMedian,
                            TopKAnswer::kMeanUnrestricted,
                            TopKAnswer::kMeanApprox}) {
    if (name == TopKAnswerName(answer)) return answer;
  }
  return Status::InvalidArgument(
      "unknown answer '" + name +
      "' (expected mean, median, any-size or approx)");
}

int AdaptiveMcChunkSize(int num_samples, int num_threads) {
  if (num_samples <= 0) return 32;
  if (num_threads < 1) num_threads = 1;
  // Aim for ~4 chunks per thread: enough slack that a slow chunk doesn't
  // serialize the tail, few enough that per-chunk Rng setup stays noise.
  int64_t target_chunks = 4 * static_cast<int64_t>(num_threads);
  int64_t chunk = num_samples / target_chunks;
  if (chunk < 32) chunk = 32;
  if (chunk > 4096) chunk = 4096;
  return static_cast<int>(chunk);
}

Engine::Engine(const EngineOptions& options)
    : options_(options), pool_(options.num_threads) {}

Engine::~Engine() = default;

int Engine::num_threads() const { return pool_.num_threads(); }

RankDistribution Engine::ComputeRankDistribution(
    const AndXorTree& tree, int k, const FlatTree* program) const {
  if (options_.use_fast_bid_path && IsBlockIndependent(tree)) {
    Result<RankDistribution> fast = ComputeRankDistributionFast(tree, k);
    if (fast.ok()) return std::move(fast).ValueOrDie();
    // Fall through to the general path on any fast-path failure.
  }

  // Compile the flat form once (or reuse the caller's shared program); the
  // immutable FlatTree is shared read-only across all parallel leaf tasks,
  // each of which folds over its own thread-local arena scratch.
  std::optional<FlatTree> owned;
  if (program == nullptr) owned.emplace(CompileCounted(tree));
  const FlatTree& flat = program != nullptr ? *program : *owned;
  const int num_leaves = flat.num_leaves();
  std::vector<std::vector<double>> contributions(
      static_cast<size_t>(num_leaves));
  pool_.ParallelFor(num_leaves, [&](int64_t i) {
    contributions[static_cast<size_t>(i)] =
        LeafRankContribution(flat, static_cast<int>(i), k);
    NoteArenaHighWater();
  });

  // Merge in DFS leaf order (== flat leaf-table order) — the exact
  // accumulation order of the sequential ComputeRankDistribution, hence
  // bitwise-identical sums.
  RankDistributionBuilder builder(k);
  for (KeyId key : tree.Keys()) builder.EnsureKey(key);
  for (int l = 0; l < num_leaves; ++l) {
    KeyId key = flat.leaves()[static_cast<size_t>(l)].key;
    for (int i = 1; i <= k; ++i) {
      builder.Add(key, i, contributions[static_cast<size_t>(l)]
                                       [static_cast<size_t>(i)]);
    }
  }
  return std::move(builder).Build();
}

std::vector<std::vector<double>> Engine::PairwiseMatrix(
    size_t n, const std::function<double(size_t, size_t)>& cell) const {
  std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
  // One unit per ordered pair, each writing its own cell: embarrassingly
  // parallel and trivially schedule-deterministic.
  pool_.ParallelFor(static_cast<int64_t>(n * n), [&](int64_t flat) {
    size_t i = static_cast<size_t>(flat) / n;
    size_t j = static_cast<size_t>(flat) % n;
    if (i == j) return;
    m[i][j] = cell(i, j);
    NoteArenaHighWater();
  });
  return m;
}

std::vector<std::vector<double>> Engine::PerKeyColumns(
    const RankDistribution& dist,
    const std::function<std::vector<double>(const RankDistribution&, KeyId)>&
        column) const {
  const std::vector<KeyId>& keys = dist.keys();
  std::vector<std::vector<double>> columns(keys.size());
  pool_.ParallelFor(static_cast<int64_t>(keys.size()), [&](int64_t t) {
    columns[static_cast<size_t>(t)] =
        column(dist, keys[static_cast<size_t>(t)]);
    NoteArenaHighWater();
  });
  return columns;
}

std::vector<double> Engine::LeafMarginals(const AndXorTree& tree,
                                          const FlatTree* program) const {
  // FlatTree::Compile carries the root-to-leaf XOR edge product down its
  // single O(N) walk, multiplying in the exact order tree.LeafMarginal
  // does, so scattering the precomputed leaf-table marginals is bitwise
  // identical to the historical per-leaf pointer walks — and replaces L
  // O(depth) walks with one pass (or zero, with a supplied program).
  std::optional<FlatTree> owned;
  if (program == nullptr) owned.emplace(CompileCounted(tree));
  const FlatTree& flat = program != nullptr ? *program : *owned;
  std::vector<double> marginal(static_cast<size_t>(tree.NumNodes()), 0.0);
  for (const FlatLeaf& leaf : flat.leaves()) {
    marginal[static_cast<size_t>(leaf.node)] = leaf.marginal;
  }
  return marginal;
}

std::vector<double> Engine::ExpectedRanks(const AndXorTree& tree) const {
  // The sequential core ExpectedRanks is an independent per-key outer loop
  // writing disjoint slots; each task below runs one key's body in the
  // exact sequential accumulation order, so the vector is bitwise
  // identical to the core form for any thread count. The shared marginal
  // fold is computed once, up front, read-only across tasks.
  const std::vector<NodeId>& leaves = tree.LeafIds();
  const std::vector<double> marginal = tree.LeafMarginals();
  const std::vector<KeyId> keys = tree.Keys();
  std::vector<double> expected(keys.size(), 0.0);
  pool_.ParallelFor(static_cast<int64_t>(keys.size()), [&](int64_t t) {
    const KeyId key = keys[static_cast<size_t>(t)];
    double e = 0.0;
    double p_present = 0.0;
    // Present case: rank = 1 + #(higher-scoring other-key leaves present).
    for (NodeId a : leaves) {
      const TupleAlternative& alt = tree.node(a).leaf;
      if (alt.key != key) continue;
      double pa = marginal[static_cast<size_t>(a)];
      p_present += pa;
      e += pa;  // the "1 +" part
      for (NodeId l : leaves) {
        const TupleAlternative& other = tree.node(l).leaf;
        if (other.key == key || other.score <= alt.score) continue;
        e += tree.PairPresenceProbability(a, l);
      }
    }
    // Absent case: rank = |pw| + 1, exactly as in the core form.
    e += 1.0 - p_present;
    for (NodeId l : leaves) {
      const TupleAlternative& other = tree.node(l).leaf;
      if (other.key == key) continue;
      double p_l_and_key = 0.0;
      for (NodeId a : leaves) {
        if (tree.node(a).leaf.key != key) continue;
        p_l_and_key += tree.PairPresenceProbability(l, a);
      }
      e += marginal[static_cast<size_t>(l)] - p_l_and_key;
    }
    expected[static_cast<size_t>(t)] = e;
  });
  return expected;
}

std::vector<std::vector<double>> Engine::PairwiseOrderProbabilities(
    const AndXorTree& tree, const std::vector<KeyId>& keys,
    const FlatTree* program) const {
  // One compiled tree shared read-only by all n^2 parallel cells.
  std::optional<FlatTree> owned;
  if (program == nullptr) owned.emplace(CompileCounted(tree));
  const FlatTree& flat = program != nullptr ? *program : *owned;
  return PairwiseMatrix(keys.size(), [&](size_t i, size_t j) {
    return PrRanksBefore(flat, keys[i], keys[j]);
  });
}

namespace {

// Validates a (metric, answer) combination up front, so unsupported pairs
// fail before the O(L^2 k) rank-distribution precompute is paid.
Status ValidateTopKRequest(TopKMetric metric, TopKAnswer answer) {
  switch (metric) {
    case TopKMetric::kSymDiff:
      if (answer == TopKAnswer::kMeanApprox) {
        return Status::NotImplemented(
            "approx answers exist only for the intersection metric");
      }
      return Status::OK();
    case TopKMetric::kIntersection:
      if (answer != TopKAnswer::kMean && answer != TopKAnswer::kMeanApprox) {
        return Status::NotImplemented(
            "only mean/approx answers are implemented for intersection");
      }
      return Status::OK();
    case TopKMetric::kFootrule:
      if (answer != TopKAnswer::kMean) {
        return Status::NotImplemented(
            "only the mean answer is implemented for footrule");
      }
      return Status::OK();
    case TopKMetric::kKendall:
      if (answer != TopKAnswer::kMean) {
        return Status::NotImplemented(
            "only the mean (via-footrule) answer is implemented for kendall");
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown metric");
}

}  // namespace

Status Engine::ValidateConsensusRequest(TopKMetric metric, TopKAnswer answer) {
  return ValidateTopKRequest(metric, answer);
}

Result<TopKResult> Engine::ConsensusTopK(const AndXorTree& tree, int k,
                                         TopKMetric metric, TopKAnswer answer,
                                         const FlatTree* program) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  Status valid = ValidateTopKRequest(metric, answer);
  if (!valid.ok()) return valid;
  return ConsensusTopKWithDist(tree, ComputeRankDistribution(tree, k, program),
                               metric, answer, program);
}

Result<TopKResult> Engine::ConsensusTopKWithDist(const AndXorTree& tree,
                                                 const RankDistribution& dist,
                                                 TopKMetric metric,
                                                 TopKAnswer answer,
                                                 const FlatTree* program) const {
  const int k = dist.k();
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  Status valid = ValidateTopKRequest(metric, answer);
  if (!valid.ok()) return valid;
  // A distribution computed for a different tree would make the metric
  // heads optimize over one key set while the tree-folding tails (kendall
  // q matrix, median strata) use another — a silently wrong answer. The
  // O(n) key compare is noise next to the O(L^2 k) fold being skipped; it
  // cannot catch a stale dist from different *content* over the same keys,
  // which is the caller's contract (see the header).
  if (dist.keys() != tree.Keys()) {
    return Status::InvalidArgument(
        "dist was computed for a different tree (key sets differ)");
  }
  switch (metric) {
    case TopKMetric::kSymDiff:
      switch (answer) {
        case TopKAnswer::kMean:
          return MeanTopKSymDiff(dist);
        case TopKAnswer::kMedian: {
          // One unit per Theorem 4 search stratum (score-threshold DPs plus
          // the small-world DP); the merge replays the sequential scan's
          // first-improvement order, so the winner is schedule-independent.
          if (tree.NumLeaves() == 0) {
            return Status::InvalidArgument("empty tree");
          }
          const MedianSymDiffContext context =
              BuildMedianSymDiffContext(tree, dist);
          const int num_strata = NumMedianSymDiffStrata(context);
          std::vector<std::vector<SymDiffMedianCandidate>> per_stratum(
              static_cast<size_t>(num_strata));
          pool_.ParallelFor(num_strata, [&](int64_t s) {
            per_stratum[static_cast<size_t>(s)] =
                EvalMedianSymDiffStratum(tree, context, static_cast<int>(s));
          });
          return PickMedianSymDiffCandidate(tree, dist, per_stratum);
        }
        case TopKAnswer::kMeanUnrestricted:
          return MeanTopKSymDiffUnrestricted(dist);
        case TopKAnswer::kMeanApprox:
          break;  // rejected by ValidateTopKRequest
      }
      break;
    case TopKMetric::kIntersection:
      switch (answer) {
        case TopKAnswer::kMean:
          // One profit column per candidate tuple across the pool; the
          // Hungarian solve runs on the calling thread.
          return MeanTopKIntersectionExactFromColumns(
              dist, PerKeyColumns(dist, IntersectionProfitColumn));
        case TopKAnswer::kMeanApprox:
          // A single O(n k + n log n) sort: below parallelization grain.
          return MeanTopKIntersectionApprox(dist);
        case TopKAnswer::kMedian:
        case TopKAnswer::kMeanUnrestricted:
          break;  // rejected by ValidateTopKRequest
      }
      break;
    case TopKMetric::kFootrule:
      // One cost column per candidate tuple across the pool; the Hungarian
      // solve runs on the calling thread.
      return MeanTopKFootruleFromColumns(
          dist, PerKeyColumns(dist, FootruleCostColumn));
    case TopKMetric::kKendall: {
      // The evaluator's O(n^2) q-statistics dominate the query; compile the
      // flat tree once and fan one flat fold per ordered pair across the
      // pool (each writes its own cell, so the matrix is
      // schedule-deterministic), then build the footrule answer from
      // parallel cost columns and re-score it under d_K.
      std::vector<KeyId> keys = tree.Keys();
      std::optional<FlatTree> owned;
      if (program == nullptr) owned.emplace(CompileCounted(tree));
      const FlatTree& flat = program != nullptr ? *program : *owned;
      std::vector<std::vector<double>> q =
          PairwiseMatrix(keys.size(), [&](size_t iu, size_t it) {
            return PrInTopKAndBefore(flat, keys[iu], keys[it], k);
          });
      CPDB_ASSIGN_OR_RETURN(KendallEvaluator evaluator,
                            KendallEvaluator::Create(tree, k, std::move(q)));
      CPDB_ASSIGN_OR_RETURN(
          TopKResult footrule,
          MeanTopKFootruleFromColumns(dist,
                                      PerKeyColumns(dist, FootruleCostColumn)));
      return RescoreUnderKendall(evaluator, std::move(footrule));
    }
  }
  return Status::InvalidArgument("unknown metric or answer kind");
}

std::vector<Result<TopKResult>> Engine::EvaluateConsensusBatch(
    const std::vector<ConsensusQuery>& queries) const {
  std::vector<Result<TopKResult>> results(
      queries.size(),
      Result<TopKResult>(Status::Internal("query not evaluated")));
  // Whole queries fan across the pool; each slot is written by exactly one
  // unit and every query is itself schedule-deterministic, so the batch is
  // bitwise-equivalent to a sequential loop of ConsensusTopK calls. Nested
  // ParallelFor inside a query is safe (idle threads drain the shared
  // queue), so inner units of one query fill gaps left by another.
  pool_.ParallelFor(static_cast<int64_t>(queries.size()), [&](int64_t i) {
    const ConsensusQuery& q = queries[static_cast<size_t>(i)];
    if (q.tree == nullptr) {
      results[static_cast<size_t>(i)] =
          Status::InvalidArgument("ConsensusQuery.tree must not be null");
      return;
    }
    if (q.dist != nullptr) {
      // Cache-aware slot: the caller supplied the (tree, k) rank
      // distribution (the serving layer points every query sharing a
      // fingerprint at one cached instance). A k mismatch would silently
      // answer a different query, so it fails the slot instead.
      if (q.dist->k() != q.k) {
        results[static_cast<size_t>(i)] = Status::InvalidArgument(
            "ConsensusQuery.dist was computed for a different k");
        return;
      }
      results[static_cast<size_t>(i)] = ConsensusTopKWithDist(
          *q.tree, *q.dist, q.metric, q.answer, q.program);
      return;
    }
    results[static_cast<size_t>(i)] =
        ConsensusTopK(*q.tree, q.k, q.metric, q.answer, q.program);
  });
  return results;
}

std::vector<NodeId> Engine::MeanWorldSymDiff(const AndXorTree& tree) const {
  return MeanWorldSymDiffFromMarginals(tree, LeafMarginals(tree));
}

std::vector<NodeId> Engine::MedianWorldSymDiff(const AndXorTree& tree) const {
  return MedianWorldSymDiffFromMarginals(tree, LeafMarginals(tree));
}

double Engine::ExpectedSymDiffDistance(
    const AndXorTree& tree, const std::vector<NodeId>& world) const {
  return ExpectedSymDiffDistanceFromMarginals(tree, LeafMarginals(tree),
                                              world);
}

Result<Engine::WorldResult> Engine::ConsensusWorldWithMarginals(
    const AndXorTree& tree, const std::vector<double>& marginals,
    bool median) const {
  // A marginal vector folded from another tree would silently pick a world
  // by the wrong probabilities; the size compare catches shape mismatches
  // for free (content identity stays the caller's contract, see header).
  if (marginals.size() != static_cast<size_t>(tree.NumNodes())) {
    return Status::InvalidArgument(
        "marginals were computed for a different tree (node counts differ)");
  }
  WorldResult result;
  result.leaf_ids = median ? MedianWorldSymDiffFromMarginals(tree, marginals)
                           : MeanWorldSymDiffFromMarginals(tree, marginals);
  result.expected_distance =
      ExpectedSymDiffDistanceFromMarginals(tree, marginals, result.leaf_ids);
  return result;
}

McEstimate Engine::EstimateOverWorlds(
    const AndXorTree& tree, int num_samples, uint64_t seed,
    const std::function<double(const std::vector<NodeId>&)>& f) const {
  if (num_samples <= 0) return McEstimate{};
  // 0 = adaptive (resolved from the workload and the thread count); other
  // non-positive values degrade to 1 as before. Either way the size used is
  // recorded in the result, so the run can be replayed bitwise by pinning
  // EngineOptions::mc_chunk_size.
  int64_t chunk_size =
      options_.mc_chunk_size == 0
          ? AdaptiveMcChunkSize(num_samples, num_threads())
          : (options_.mc_chunk_size < 1 ? 1 : options_.mc_chunk_size);
  int64_t num_chunks = (num_samples + chunk_size - 1) / chunk_size;
  std::vector<Welford> stats(static_cast<size_t>(num_chunks));
  pool_.ParallelFor(num_chunks, [&](int64_t c) {
    Rng rng(ChunkSeed(seed, c));
    int64_t begin = c * chunk_size;
    int64_t end = std::min<int64_t>(begin + chunk_size, num_samples);
    Welford& acc = stats[static_cast<size_t>(c)];
    for (int64_t s = begin; s < end; ++s) {
      acc.Add(f(SampleWorld(tree, &rng)));
    }
  });
  Welford total;
  for (const Welford& chunk : stats) total.Merge(chunk);
  McEstimate estimate = FinishEstimate(total);
  estimate.chunk_size = static_cast<int>(chunk_size);
  return estimate;
}

McEstimate Engine::McExpectedTopKDistance(const AndXorTree& tree,
                                          const std::vector<KeyId>& answer,
                                          int k, TopKMetric metric,
                                          int num_samples,
                                          uint64_t seed) const {
  return EstimateOverWorlds(
      tree, num_samples, seed, [&](const std::vector<NodeId>& world) {
        return TopKListDistance(answer, TopKOfWorld(tree, world, k), k,
                                metric);
      });
}

FlatTree Engine::CompileCounted(const AndXorTree& tree) const {
  fold_compiles_.fetch_add(1, std::memory_order_relaxed);
  return FlatTree::Compile(tree);
}

void Engine::NoteArenaHighWater() const {
  // Reads the *calling thread's* scratch arena — meaningful only from
  // inside fold units, where FlatFoldScratch() is the arena the fold just
  // grew. The CAS-max publishes a fleet-wide peak across all pool threads.
  const int64_t bytes = static_cast<int64_t>(FlatFoldScratch().CapacityBytes());
  int64_t seen = arena_highwater_bytes_.load(std::memory_order_relaxed);
  while (bytes > seen && !arena_highwater_bytes_.compare_exchange_weak(
                             seen, bytes, std::memory_order_relaxed)) {
  }
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "engine/engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/jaccard.h"
#include "core/rank_distribution_fast.h"
#include "core/set_consensus.h"
#include "core/topk_footrule.h"
#include "core/topk_intersection.h"
#include "core/topk_kendall.h"
#include "core/topk_metrics.h"
#include "model/possible_worlds.h"

namespace cpdb {

namespace {

// SplitMix64 over (seed, chunk): decorrelates per-chunk Rng streams while
// staying a pure function of the user seed and the chunk index.
uint64_t ChunkSeed(uint64_t seed, int64_t chunk) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(chunk) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Engine::Engine(const EngineOptions& options)
    : options_(options), pool_(options.num_threads) {}

Engine::~Engine() = default;

int Engine::num_threads() const { return pool_.num_threads(); }

RankDistribution Engine::ComputeRankDistribution(const AndXorTree& tree,
                                                 int k) const {
  if (options_.use_fast_bid_path && IsBlockIndependent(tree)) {
    Result<RankDistribution> fast = ComputeRankDistributionFast(tree, k);
    if (fast.ok()) return std::move(fast).ValueOrDie();
    // Fall through to the general path on any fast-path failure.
  }

  const std::vector<NodeId>& leaves = tree.LeafIds();
  std::vector<std::vector<double>> contributions(leaves.size());
  pool_.ParallelFor(static_cast<int64_t>(leaves.size()), [&](int64_t i) {
    contributions[static_cast<size_t>(i)] =
        LeafRankContribution(tree, leaves[static_cast<size_t>(i)], k);
  });

  // Merge in DFS leaf order — the exact accumulation order of the
  // sequential ComputeRankDistribution, hence bitwise-identical sums.
  RankDistributionBuilder builder(k);
  for (KeyId key : tree.Keys()) builder.EnsureKey(key);
  for (size_t l = 0; l < leaves.size(); ++l) {
    KeyId key = tree.node(leaves[l]).leaf.key;
    for (int i = 1; i <= k; ++i) {
      builder.Add(key, i, contributions[l][static_cast<size_t>(i)]);
    }
  }
  return std::move(builder).Build();
}

std::vector<std::vector<double>> Engine::PairwiseOrderProbabilities(
    const AndXorTree& tree, const std::vector<KeyId>& keys) const {
  size_t n = keys.size();
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  // One unit per ordered pair, each writing its own cell: embarrassingly
  // parallel and trivially schedule-deterministic.
  pool_.ParallelFor(static_cast<int64_t>(n * n), [&](int64_t flat) {
    size_t i = static_cast<size_t>(flat) / n;
    size_t j = static_cast<size_t>(flat) % n;
    if (i == j) return;
    p[i][j] = PrRanksBefore(tree, keys[i], keys[j]);
  });
  return p;
}

namespace {

// Validates a (metric, answer) combination up front, so unsupported pairs
// fail before the O(L^2 k) rank-distribution precompute is paid.
Status ValidateTopKRequest(TopKMetric metric, TopKAnswer answer) {
  switch (metric) {
    case TopKMetric::kSymDiff:
      if (answer == TopKAnswer::kMeanApprox) {
        return Status::NotImplemented(
            "approx answers exist only for the intersection metric");
      }
      return Status::OK();
    case TopKMetric::kIntersection:
      if (answer != TopKAnswer::kMean && answer != TopKAnswer::kMeanApprox) {
        return Status::NotImplemented(
            "only mean/approx answers are implemented for intersection");
      }
      return Status::OK();
    case TopKMetric::kFootrule:
      if (answer != TopKAnswer::kMean) {
        return Status::NotImplemented(
            "only the mean answer is implemented for footrule");
      }
      return Status::OK();
    case TopKMetric::kKendall:
      if (answer != TopKAnswer::kMean) {
        return Status::NotImplemented(
            "only the mean (via-footrule) answer is implemented for kendall");
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown metric");
}

}  // namespace

Result<TopKResult> Engine::ConsensusTopK(const AndXorTree& tree, int k,
                                         TopKMetric metric,
                                         TopKAnswer answer) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  Status valid = ValidateTopKRequest(metric, answer);
  if (!valid.ok()) return valid;
  RankDistribution dist = ComputeRankDistribution(tree, k);
  switch (metric) {
    case TopKMetric::kSymDiff:
      switch (answer) {
        case TopKAnswer::kMean:
          return MeanTopKSymDiff(dist);
        case TopKAnswer::kMedian:
          return MedianTopKSymDiff(tree, dist);
        case TopKAnswer::kMeanUnrestricted:
          return MeanTopKSymDiffUnrestricted(dist);
        case TopKAnswer::kMeanApprox:
          break;  // rejected by ValidateTopKRequest
      }
      break;
    case TopKMetric::kIntersection:
      switch (answer) {
        case TopKAnswer::kMean:
          return MeanTopKIntersectionExact(dist);
        case TopKAnswer::kMeanApprox:
          return MeanTopKIntersectionApprox(dist);
        case TopKAnswer::kMedian:
        case TopKAnswer::kMeanUnrestricted:
          break;  // rejected by ValidateTopKRequest
      }
      break;
    case TopKMetric::kFootrule:
      return MeanTopKFootrule(dist);
    case TopKMetric::kKendall: {
      // The evaluator's O(n^2) q-statistics dominate the query; fan one
      // generating-function fold per ordered pair across the pool (each
      // writes its own cell, so the matrix is schedule-deterministic).
      std::vector<KeyId> keys = tree.Keys();
      size_t n = keys.size();
      std::vector<std::vector<double>> q(n, std::vector<double>(n, 0.0));
      pool_.ParallelFor(static_cast<int64_t>(n * n), [&](int64_t flat) {
        size_t iu = static_cast<size_t>(flat) / n;
        size_t it = static_cast<size_t>(flat) % n;
        if (iu == it) return;
        q[iu][it] = PrInTopKAndBefore(tree, keys[iu], keys[it], k);
      });
      KendallEvaluator evaluator(tree, k, std::move(q));
      return MeanTopKKendallViaFootrule(evaluator, dist);
    }
  }
  return Status::InvalidArgument("unknown metric or answer kind");
}

std::vector<NodeId> Engine::MeanWorldSymDiff(const AndXorTree& tree) const {
  return cpdb::MeanWorldSymDiff(tree);
}

std::vector<NodeId> Engine::MedianWorldSymDiff(const AndXorTree& tree) const {
  return cpdb::MedianWorldSymDiff(tree);
}

McEstimate Engine::EstimateOverWorlds(
    const AndXorTree& tree, int num_samples, uint64_t seed,
    const std::function<double(const std::vector<NodeId>&)>& f) const {
  if (num_samples <= 0) return McEstimate{};
  int64_t chunk_size = options_.mc_chunk_size < 1 ? 1 : options_.mc_chunk_size;
  int64_t num_chunks = (num_samples + chunk_size - 1) / chunk_size;
  std::vector<Welford> stats(static_cast<size_t>(num_chunks));
  pool_.ParallelFor(num_chunks, [&](int64_t c) {
    Rng rng(ChunkSeed(seed, c));
    int64_t begin = c * chunk_size;
    int64_t end = std::min<int64_t>(begin + chunk_size, num_samples);
    Welford& acc = stats[static_cast<size_t>(c)];
    for (int64_t s = begin; s < end; ++s) {
      acc.Add(f(SampleWorld(tree, &rng)));
    }
  });
  Welford total;
  for (const Welford& chunk : stats) total.Merge(chunk);
  return FinishEstimate(total);
}

McEstimate Engine::McExpectedTopKDistance(const AndXorTree& tree,
                                          const std::vector<KeyId>& answer,
                                          int k, TopKMetric metric,
                                          int num_samples,
                                          uint64_t seed) const {
  return EstimateOverWorlds(
      tree, num_samples, seed, [&](const std::vector<NodeId>& world) {
        std::vector<KeyId> topk = TopKOfWorld(tree, world, k);
        switch (metric) {
          case TopKMetric::kSymDiff:
            return TopKSymmetricDifference(answer, topk, k);
          case TopKMetric::kIntersection:
            return TopKIntersectionDistance(answer, topk, k);
          case TopKMetric::kFootrule:
            return TopKFootrule(answer, topk, k);
          case TopKMetric::kKendall:
            return TopKKendall(answer, topk, k);
        }
        return 0.0;
      });
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// cpdb::Engine — the parallel evaluation facade over the Section 4-5
// consensus algorithms. One Engine owns one ThreadPool and routes
// rank-distribution, consensus Top-k, set-consensus, and Monte-Carlo
// queries through it. Every parallel path is *schedule-deterministic*: the
// result is bitwise identical for any thread count (including 1), because
// work is split into fixed units whose partial results are merged in a
// fixed order on the calling thread:
//
//   * rank distributions — one unit per leaf (LeafRankContribution), merged
//     in DFS leaf order, which is exactly the accumulation order of the
//     sequential ComputeRankDistribution;
//   * pairwise matrices (order probabilities, Kendall q statistics) — one
//     unit per ordered key pair, each writing its own matrix cell;
//   * median symdiff — one unit per Theorem 4 search stratum (score
//     threshold DPs plus the small-world DP), merged by replaying the
//     sequential first-improvement scan;
//   * footrule / intersection assignment — one cost (profit) column per
//     candidate tuple, fanned across the pool before the Hungarian solve;
//   * set consensus — one marginal fold per leaf, with the O(N) filter / DP
//     on the calling thread;
//   * Monte-Carlo estimation — samples are drawn in fixed-size chunks, each
//     chunk from its own Rng seeded by (seed, chunk index), and the
//     per-chunk Welford statistics are combined in chunk order. The chunk
//     size is an algorithm parameter (EngineOptions::mc_chunk_size), not a
//     scheduling hint: changing it changes the sample stream.
//
// EvaluateConsensusBatch fans whole queries across the same pool (queries
// nest their own ParallelFor calls; the pool is nest-safe), so callers with
// many (tree, k, metric) combinations pay one submission. Future scaling
// work (sharding trees across engines, caching rank distributions) should
// hang off this facade rather than the core functions, so callers keep a
// single entry point.

#ifndef CPDB_ENGINE_ENGINE_H_
#define CPDB_ENGINE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/evaluation.h"
#include "core/monte_carlo.h"
#include "core/rank_distribution.h"
#include "core/topk_symdiff.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief Which consensus answer a Top-k query asks for (the CLI's
/// --answer flag). Not every (metric, answer) pair is supported — see
/// Engine::ConsensusTopK.
enum class TopKAnswer {
  kMean,               ///< exact mean answer (size exactly k)
  kMedian,             ///< median answer (a realizable world's Top-k)
  kMeanUnrestricted,   ///< size-unrestricted mean (symdiff only)
  kMeanApprox,         ///< H_k-approximate mean (intersection only)
};

/// \brief The answer kind's textual name ("mean", "median", "any-size",
/// "approx") — the single vocabulary shared by the CLI's --answer flag and
/// the serve protocol's answer= field (the companion of TopKMetricName in
/// core/topk_metrics.h). "?" for unknown enum values.
const char* TopKAnswerName(TopKAnswer answer);

/// \brief The inverse of TopKAnswerName; InvalidArgument (naming the
/// accepted values) for anything else. Strict: callers must not default.
Result<TopKAnswer> ParseTopKAnswerName(const std::string& name);

/// \brief Construction-time knobs for an Engine.
struct EngineOptions {
  /// Threads used for query evaluation, counting the calling thread;
  /// values < 1 use the hardware concurrency. 1 means fully sequential.
  int num_threads = 0;

  /// Samples per Monte-Carlo chunk. Part of the sampling algorithm (it
  /// seeds one Rng per chunk): two engines agree bitwise only if their
  /// chunk sizes agree. The default balances scheduling granularity
  /// against per-chunk Rng setup. 0 selects the chunk size adaptively via
  /// AdaptiveMcChunkSize(num_samples, num_threads()); the size actually
  /// used is recorded in McEstimate::chunk_size either way, so any run can
  /// be reproduced bitwise by pinning that value here.
  int mc_chunk_size = 256;

  /// Use the O(n k) block-independent fast path for rank distributions
  /// when the tree qualifies (matches the CLI's historical behavior).
  bool use_fast_bid_path = true;
};

/// \brief The chunk size EngineOptions::mc_chunk_size = 0 resolves to: a
/// pure function of the workload size and the thread count that targets a
/// handful of chunks per thread (enough slack for dynamic load balancing)
/// while clamping to [32, 4096] so tiny workloads keep per-chunk Rng setup
/// amortized and huge ones keep the chunk table small. Because the chunk
/// size defines the sample stream, an adaptive run is reproduced bitwise by
/// pinning the returned value (reported in McEstimate::chunk_size) — which
/// is also why the estimate depends on the thread count *only* through this
/// resolution, never through scheduling.
int AdaptiveMcChunkSize(int num_samples, int num_threads);

/// \brief Monotonic counters describing an engine's fold machinery — the
/// observability surface the serving layer's `op=metrics` scrape re-exports
/// (as cpdb_fold_compiles_total and cpdb_poly_arena_highwater_bytes). Plain
/// counting, no clock reads: maintaining them costs a relaxed atomic add
/// per compile and a CAS-max per fold unit, so they are always on.
struct EngineObsCounters {
  /// FlatTree::Compile calls this engine has paid (each is one O(N) pass
  /// over a tree; the serving caches exist to keep this flat under
  /// repeated traffic).
  int64_t fold_compiles = 0;
  /// High-water mark of any single worker thread's PolyArena scratch
  /// capacity, in bytes — the peak per-thread working set of the flat
  /// fold (see poly/poly_arena.h). A gauge, not a counter: it only rises.
  int64_t arena_highwater_bytes = 0;
};

class FlatTree;

/// \brief Parallel evaluation engine; thread-safe for concurrent queries
/// against distinct trees (the engine itself holds no per-query state).
class Engine {
 public:
  explicit Engine(const EngineOptions& options = EngineOptions());
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// \brief Actual thread count (options().num_threads resolved).
  int num_threads() const;

  const EngineOptions& options() const { return options_; }

  // -- Rank distributions (Section 5 sufficient statistics) ---------------

  /// \brief Parallel ComputeRankDistribution: the tree is compiled to a
  /// FlatTree once, shared read-only across the pool; per-leaf flat folds
  /// (each over its thread's arena scratch) are evaluated in parallel and
  /// merged in DFS leaf order. Bitwise identical for any thread count; on
  /// the general path this also means bitwise identity with the sequential
  /// core function and with the retained pointer-tree fold. When the fast BID
  /// path engages (options().use_fast_bid_path on a block-independent
  /// tree), the result is that of ComputeRankDistributionFast — sequential
  /// and deterministic, but a numerically different (equally correct)
  /// algorithm than the general path, agreeing only to ~1e-9.
  ///
  /// `program`, when non-null, must be FlatTree::Compile(tree) (the
  /// serving catalog holds exactly that, one per distinct shape); the call
  /// then skips its own compile. A compiled program is a pure function of
  /// the tree, so the answer is bitwise identical either way — this and
  /// the other `program` parameters below only move WHERE the one compile
  /// happens (catalog insert vs. first query). Ignored on the fast BID
  /// path, which never compiles.
  RankDistribution ComputeRankDistribution(
      const AndXorTree& tree, int k, const FlatTree* program = nullptr) const;

  /// \brief Parallel PairwiseOrderProbabilities: one task per ordered pair,
  /// all sharing a single compiled FlatTree (the compile — or the supplied
  /// `program` — is shared across cells, never paid per cell).
  /// result[i][j] = Pr(r(keys[i]) < r(keys[j])); diagonal is 0.
  std::vector<std::vector<double>> PairwiseOrderProbabilities(
      const AndXorTree& tree, const std::vector<KeyId>& keys,
      const FlatTree* program = nullptr) const;

  // -- Consensus Top-k (Section 5) ----------------------------------------

  /// \brief Computes the consensus Top-k answer for (metric, answer). Every
  /// metric's heavy precomputation runs through the pool: the rank
  /// distribution always; additionally the Theorem 4 strata (symdiff
  /// median), the per-candidate Hungarian cost/profit columns (footrule,
  /// intersection exact), and the pairwise q matrix plus footrule columns
  /// (kendall). Results are bitwise identical to the sequential core
  /// functions for any thread count. Unsupported combinations (e.g.
  /// footrule median) return NotImplemented; unknown enum values return
  /// InvalidArgument.
  Result<TopKResult> ConsensusTopK(const AndXorTree& tree, int k,
                                   TopKMetric metric,
                                   TopKAnswer answer = TopKAnswer::kMean,
                                   const FlatTree* program = nullptr) const;

  /// \brief Validates a (metric, answer) combination without running a
  /// query — the same check ConsensusTopK performs before paying the
  /// O(L^2 k) precompute (NotImplemented for unsupported pairs,
  /// InvalidArgument for unknown enum values). Exposed so batching layers
  /// (the QueryScheduler) can skip cache population for requests that can
  /// only fail.
  static Status ValidateConsensusRequest(TopKMetric metric, TopKAnswer answer);

  /// \brief ConsensusTopK with the rank-distribution precompute supplied by
  /// the caller: the cache-aware entry point. `dist` must be the engine's
  /// ComputeRankDistribution(tree, dist.k()) — the serving layer's
  /// RankDistCache memoizes exactly that value by (StructKey, k), so
  /// repeated queries against one shape skip the O(L^2 k) fold. Because the
  /// fold is schedule-deterministic, answers are bitwise identical whether
  /// `dist` was computed fresh or served from a cache. The metric-specific
  /// tails (strata, columns, q matrix) still run through the pool. The
  /// guard here is a cheap key-set compare: a `dist` whose key set does not
  /// match tree.Keys() is InvalidArgument, but a stale distribution from a
  /// *different tree over the identical key set* (say, re-built with new
  /// probabilities) passes undetected — content identity is the caller's
  /// contract, which is why the serving layer keys its RankDistCache by the
  /// catalog's structural key rather than by name or pointer.
  Result<TopKResult> ConsensusTopKWithDist(
      const AndXorTree& tree, const RankDistribution& dist, TopKMetric metric,
      TopKAnswer answer = TopKAnswer::kMean,
      const FlatTree* program = nullptr) const;

  /// \brief One query of a consensus Top-k batch; `tree` (and `dist` when
  /// set) must stay alive for the duration of the EvaluateConsensusBatch
  /// call (several queries may share one tree).
  struct ConsensusQuery {
    const AndXorTree* tree = nullptr;
    int k = 1;
    TopKMetric metric = TopKMetric::kSymDiff;
    TopKAnswer answer = TopKAnswer::kMean;
    /// Optional precomputed rank distribution for (tree, k) — see
    /// ConsensusTopKWithDist. When set, its k() must equal `k` (the slot
    /// fails with InvalidArgument otherwise) and the query skips the
    /// rank-distribution fold; the QueryScheduler points several queries
    /// sharing (StructKey, k) at one cached instance.
    const RankDistribution* dist = nullptr;
    /// Optional precompiled fold program for `tree` — see
    /// ComputeRankDistribution. Must be FlatTree::Compile(*tree) when set;
    /// the serving catalog shares one per distinct shape.
    const FlatTree* program = nullptr;
  };

  /// \brief Evaluates many consensus Top-k queries in one submission,
  /// fanning whole queries across the pool (each query may nest its own
  /// ParallelFor; the pool is nest-safe, and idle threads inside one query
  /// steal units of another). results[i] corresponds to queries[i] and
  /// equals what ConsensusTopK(queries[i]...) returns — bitwise, for any
  /// thread count; per-query failures (null tree, bad k, unsupported
  /// combination) land in their slot without affecting other queries.
  std::vector<Result<TopKResult>> EvaluateConsensusBatch(
      const std::vector<ConsensusQuery>& queries) const;

  // -- Set consensus (Section 4.1) ----------------------------------------

  /// \brief The mean world under symmetric difference (Theorem 2). The
  /// per-leaf marginal folds run across the pool (one unit per leaf, like
  /// the rank-distribution path); the O(L) filter runs on the calling
  /// thread. Bitwise identical to the core function for any thread count.
  std::vector<NodeId> MeanWorldSymDiff(const AndXorTree& tree) const;

  /// \brief The median world under symmetric difference (Corollary 1);
  /// parallel marginal folds feeding the sequential O(N) min-cost DP.
  /// Bitwise identical to the core function for any thread count.
  std::vector<NodeId> MedianWorldSymDiff(const AndXorTree& tree) const;

  /// \brief E[d_Delta(world, pw)] for a fixed leaf set, with the marginal
  /// folds run across the pool and the sum accumulated in DFS leaf order —
  /// bitwise identical to the core ExpectedSymDiffDistance.
  double ExpectedSymDiffDistance(const AndXorTree& tree,
                                 const std::vector<NodeId>& world) const;

  /// \brief Leaf marginals (indexed by NodeId), read off one O(N)
  /// FlatTree::Compile pass (which carries the root-to-leaf XOR edge
  /// product in the same multiplication order as the per-leaf pointer
  /// walks); bitwise identical to tree.LeafMarginals(). Callers issuing
  /// several set-consensus operations against one tree (e.g. an answer
  /// plus its expected distance) compute this once and use the core
  /// *FromMarginals functions, paying the compile a single time. With a
  /// non-null `program` (== FlatTree::Compile(tree)) no compile happens at
  /// all: the marginals are read straight off the supplied leaf table.
  std::vector<double> LeafMarginals(const AndXorTree& tree,
                                    const FlatTree* program = nullptr) const;

  /// \brief Parallel expected ranks (core/ranking_baselines.h
  /// ExpectedRanks): one task per key, each accumulating its own expected
  /// value in the sequential form's exact inner order and writing its own
  /// disjoint slot — bitwise identical to the core function for any thread
  /// count. Indexed like tree.Keys(). Serves op=baseline method=erank.
  std::vector<double> ExpectedRanks(const AndXorTree& tree) const;

  /// \brief A set-consensus world answer: the chosen world's leaves and its
  /// expected symmetric-difference distance.
  struct WorldResult {
    std::vector<NodeId> leaf_ids;
    double expected_distance = 0.0;
  };

  /// \brief The mean (or median) world under symmetric difference with the
  /// per-leaf marginal fold supplied by the caller — the set-consensus
  /// sibling of ConsensusTopKWithDist, and the entry point the serving
  /// layer's MarginalsCache feeds. `marginals` must be this engine's
  /// LeafMarginals(tree) (equivalently tree.LeafMarginals(): they agree
  /// bitwise); the guard here is a cheap size compare against the tree's
  /// node count, so a stale vector from a *different tree with the same
  /// node count* passes undetected — content identity is the caller's
  /// contract, which is why the serving layer keys its MarginalsCache by
  /// the catalog's structural key. Everything downstream of the fold
  /// (filter, min-cost DP, distance sum) is sequential O(N), so the result
  /// is bitwise identical to MeanWorldSymDiff / MedianWorldSymDiff plus
  /// ExpectedSymDiffDistance, whether `marginals` was computed fresh or
  /// served from a cache.
  Result<WorldResult> ConsensusWorldWithMarginals(
      const AndXorTree& tree, const std::vector<double>& marginals,
      bool median) const;

  // -- Monte-Carlo estimation ---------------------------------------------

  /// \brief Chunked-parallel E[f(pw)] estimate: deterministic in `seed` and
  /// the resolved chunk size, which is recorded in the returned
  /// McEstimate::chunk_size. With an explicit options().mc_chunk_size the
  /// result is independent of the thread count; with the adaptive setting
  /// (mc_chunk_size = 0) the chunk size — and hence the sample stream — is
  /// a pure function of (num_samples, num_threads()), so runs reproduce
  /// bitwise for a fixed configuration and can be replayed on any
  /// configuration by pinning the recorded value. The sample stream differs
  /// from the sequential core EstimateOverWorlds (which threads one Rng
  /// through all samples) but is an equally valid draw. `f` may be called
  /// concurrently and must be thread-safe.
  McEstimate EstimateOverWorlds(
      const AndXorTree& tree, int num_samples, uint64_t seed,
      const std::function<double(const std::vector<NodeId>&)>& f) const;

  /// \brief Chunked-parallel E[d(answer, topk(pw))] estimate.
  McEstimate McExpectedTopKDistance(const AndXorTree& tree,
                                    const std::vector<KeyId>& answer, int k,
                                    TopKMetric metric, int num_samples,
                                    uint64_t seed) const;

  // -- Observability -------------------------------------------------------

  /// \brief Snapshot of the fold-machinery counters (see EngineObsCounters).
  /// Relaxed reads; exact when the engine is quiescent.
  EngineObsCounters obs_counters() const {
    EngineObsCounters counters;
    counters.fold_compiles = fold_compiles_.load(std::memory_order_relaxed);
    counters.arena_highwater_bytes =
        arena_highwater_bytes_.load(std::memory_order_relaxed);
    return counters;
  }

 private:
  /// n x n matrix with cell(i, j) evaluated across the pool (diagonal left
  /// 0): the shared flat-index pairwise pattern behind
  /// PairwiseOrderProbabilities and the Kendall q precompute.
  std::vector<std::vector<double>> PairwiseMatrix(
      size_t n, const std::function<double(size_t, size_t)>& cell) const;

  /// One `column(dist, key)` evaluation per key of `dist`, fanned across
  /// the pool — the per-candidate unit of the assignment-based metrics.
  std::vector<std::vector<double>> PerKeyColumns(
      const RankDistribution& dist,
      const std::function<std::vector<double>(const RankDistribution&, KeyId)>&
          column) const;

  /// FlatTree::Compile, counted: the single chokepoint every engine path
  /// compiles through, so fold_compiles_ cannot undercount.
  FlatTree CompileCounted(const AndXorTree& tree) const;

  /// Folds the calling thread's arena capacity into the high-water gauge —
  /// called from inside parallel fold units, where the thread-local
  /// scratch the unit just used is this thread's.
  void NoteArenaHighWater() const;

  EngineOptions options_;
  // ParallelFor mutates pool bookkeeping; queries are logically const.
  mutable ThreadPool pool_;
  // Observability counters (see obs_counters()); queries are logically
  // const, so the instruments they bump are mutable atomics.
  mutable std::atomic<int64_t> fold_compiles_{0};
  mutable std::atomic<int64_t> arena_highwater_bytes_{0};
};

}  // namespace cpdb

#endif  // CPDB_ENGINE_ENGINE_H_

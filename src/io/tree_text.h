// Copyright 2026 The ConsensusDB Authors
//
// A human-readable s-expression serialization of and/xor trees, used by the
// examples and round-trip tested. Grammar:
//
//   node  := leaf | and | xor
//   leaf  := "(" "leaf" "key=" INT ["score=" FLOAT] ["label=" INT] ")"
//   and   := "(" "and" node+ ")"
//   xor   := "(" "xor" (FLOAT node)+ ")"
//
// Example:  (and (xor 0.3 (leaf key=1 score=8) 0.5 (leaf key=1 score=2))
//                (xor 0.9 (leaf key=2 score=5)))

#ifndef CPDB_IO_TREE_TEXT_H_
#define CPDB_IO_TREE_TEXT_H_

#include <string>

#include "common/result.h"
#include "model/and_xor_tree.h"

namespace cpdb {

/// \brief Parses the textual tree format; the returned tree is validated.
Result<AndXorTree> ParseTree(const std::string& text);

/// \brief Serializes a tree in the format accepted by ParseTree.
/// `indent` pretty-prints with newlines; otherwise a single line.
std::string FormatTree(const AndXorTree& tree, bool indent = false);

}  // namespace cpdb

#endif  // CPDB_IO_TREE_TEXT_H_

// Copyright 2026 The ConsensusDB Authors
//
// A line-oriented text format for block-independent-disjoint (BID) tables,
// the most common interchange representation of probabilistic relations.
// Each non-empty, non-comment line is one alternative:
//
//   key <ws> prob <ws> score [<ws> label]
//
// Alternatives with the same key form one block (mutually exclusive).
// '#' starts a comment. Example:
//
//   # key prob score
//   1 0.3 8.0
//   1 0.5 2.0
//   2 0.9 5.0

#ifndef CPDB_IO_TABLE_IO_H_
#define CPDB_IO_TABLE_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "model/builders.h"

namespace cpdb {

/// \brief Parses the BID text format into blocks grouped by key, in first-
/// appearance order. Fails on malformed lines, duplicate (key, score) pairs,
/// probabilities outside [0, 1], or block mass exceeding 1.
Result<std::vector<Block>> ParseBidTable(const std::string& text);

/// \brief Formats blocks in the format accepted by ParseBidTable.
std::string FormatBidTable(const std::vector<Block>& blocks);

/// \brief Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief Writes a string to a file (truncating).
Status WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace cpdb

#endif  // CPDB_IO_TABLE_IO_H_

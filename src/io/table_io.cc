// Copyright 2026 The ConsensusDB Authors

#include "io/table_io.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace cpdb {

Result<std::vector<Block>> ParseBidTable(const std::string& text) {
  std::vector<Block> blocks;
  std::map<KeyId, size_t> block_of_key;
  std::set<std::pair<KeyId, double>> seen;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    long long key;
    double prob, score;
    if (!(ls >> key)) continue;  // blank or comment-only line
    if (!(ls >> prob >> score)) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected 'key prob score [label]'");
    }
    long long label = -1;
    ls >> label;  // optional
    std::string rest;
    if (ls >> rest) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": trailing content '" + rest + "'");
    }
    // Explicit finiteness check, not just the range compare below: NaN
    // defeats every comparison, and some standard libraries' stream
    // extraction (libc++) accepts "inf"/"nan" tokens where others reject
    // them — a validated table must hold finite numbers on every
    // platform, like the tree parser guarantees.
    if (!std::isfinite(prob) || !std::isfinite(score)) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected finite numbers");
    }
    if (prob < 0.0 || prob > 1.0) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": probability out of [0,1]");
    }
    if (!seen.insert({static_cast<KeyId>(key), score}).second) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": duplicate (key, score) alternative");
    }
    TupleAlternative alt;
    alt.key = static_cast<KeyId>(key);
    alt.score = score;
    alt.label = static_cast<int32_t>(label);
    auto [it, inserted] = block_of_key.insert({alt.key, blocks.size()});
    if (inserted) blocks.emplace_back();
    blocks[it->second].push_back({alt, prob});
  }
  for (const Block& b : blocks) {
    double mass = 0.0;
    for (const BlockAlternative& a : b) mass += a.prob;
    if (mass > 1.0 + 1e-9) {
      return Status::ParseError("block for key " + std::to_string(b[0].alt.key) +
                                " has total probability " + std::to_string(mass) +
                                " > 1");
    }
  }
  if (blocks.empty()) return Status::ParseError("table has no alternatives");
  return blocks;
}

std::string FormatBidTable(const std::vector<Block>& blocks) {
  std::ostringstream os;
  os << "# key prob score [label]\n";
  for (const Block& b : blocks) {
    for (const BlockAlternative& a : b) {
      os << a.alt.key << " " << a.prob << " " << a.alt.score;
      if (a.alt.label >= 0) os << " " << a.alt.label;
      os << "\n";
    }
  }
  return os.str();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open file: " + path);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::InvalidArgument("cannot open file: " + path);
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace cpdb

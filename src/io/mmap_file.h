// Copyright 2026 The ConsensusDB Authors
//
// MmapFile — a read-only memory-mapped file, the zero-copy input path for
// catalog snapshots (service/catalog_snapshot.h). Modeled on the mmap-backed
// read-only tree files of untangle's basetree.h: a restarted replica maps
// the snapshot instead of streaming it through a read buffer, so the kernel
// pages bytes in on demand and identical bytes are shared across processes
// mapping the same file. The mapping is immutable (PROT_READ, MAP_PRIVATE):
// writers produce a new file; readers never see a torn state.

#ifndef CPDB_IO_MMAP_FILE_H_
#define CPDB_IO_MMAP_FILE_H_

#include <cstddef>
#include <string>

#include "common/result.h"

namespace cpdb {

/// \brief A read-only mapping of an entire file. Move-only RAII: the
/// mapping lives until destruction, so any pointers into data() are valid
/// for the lifetime of the object and no longer.
class MmapFile {
 public:
  /// \brief Maps `path` read-only. A missing or unreadable file is the
  /// same NotFound/InvalidArgument surface ReadFileToString reports — a
  /// caller switching load paths must not change its error handling. An
  /// empty file yields a valid object with size() == 0 (mmap of length 0
  /// is not portable; there are no bytes to map).
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  /// \brief First mapped byte; nullptr iff size() == 0.
  const char* data() const { return static_cast<const char*>(data_); }
  size_t size() const { return size_; }

 private:
  MmapFile(void* data, size_t size) : data_(data), size_(size) {}
  void Reset();

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace cpdb

#endif  // CPDB_IO_MMAP_FILE_H_

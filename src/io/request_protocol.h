// Copyright 2026 The ConsensusDB Authors
//
// The line-oriented request protocol of the serving layer (`cpdb_cli
// serve`). One request per line, one response line per request. Grammar:
//
//   request := field (WS field)*
//   field   := NAME "=" VALUE
//   NAME    := [A-Za-z] [A-Za-z0-9_-]*
//   VALUE   := one or more non-whitespace characters
//
// Blank lines and lines starting with '#' are comments (parsed as a request
// with no fields; callers skip them). Duplicate field names are an error —
// a request that says k twice has no single honest answer. Values carry no
// escaping, so values containing whitespace (e.g. paths with spaces) are
// not representable; this is a deliberate simplicity trade.
//
// Responses are tab-separated `name=value` pairs, led by a literal "ok" or
// "error" token, e.g.
//
//   ok<TAB>op=topk<TAB>tree=movies<TAB>metric=kendall<TAB>k=3<TAB>
//     keys=2,1,5<TAB>expected=0.123456
//   error<TAB>line=4<TAB>msg=Invalid argument: unknown op 'topq'
//
// This module owns the *grammar* only — tokenization, strict integer
// syntax, duplicate detection, response assembly. The mapping of fields to
// typed operations (op/metric/answer enums, catalog lookups) lives in
// src/service/, which keeps io/ below core/ in the layer diagram.

#ifndef CPDB_IO_REQUEST_PROTOCOL_H_
#define CPDB_IO_REQUEST_PROTOCOL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace cpdb {

/// \brief One `name=value` pair of a request or response line.
struct RequestField {
  std::string name;
  std::string value;
};

/// \brief A tokenized request line: fields in input order. Empty for blank
/// and comment lines.
struct RequestLine {
  std::vector<RequestField> fields;

  /// \brief The value of field `name`, or nullptr if absent. Linear scan —
  /// request lines have a handful of fields.
  const std::string* Find(const std::string& name) const;
};

/// \brief Tokenizes one request line. Fails (ParseError) on a token without
/// '=', an empty or malformed field name, an empty value, or a duplicate
/// field name — garbage never parses to a default. Blank lines and '#'
/// comments succeed with no fields.
Result<RequestLine> ParseRequestLine(const std::string& line);

/// \brief Strict base-10 integer parse for a named field or flag: rejects
/// empty strings, trailing garbage, and out-of-range magnitudes instead of
/// silently taking whatever atoi salvages (a typo'd "k=1o" must not become
/// k=1). Shared by the protocol's integer fields and the CLI's --flag
/// values; `name` only labels the error message.
Result<long long> ParseStrictInt(const std::string& name,
                                 const std::string& value);

/// \brief Assembles a success response: "ok" plus tab-separated
/// `name=value` pairs, newline-terminated. Values must not contain tabs or
/// newlines.
std::string FormatResponseLine(const std::vector<RequestField>& fields);

/// \brief Assembles the error response for input line `line_number`
/// (1-based): "error", the line, and the failure message.
std::string FormatErrorLine(size_t line_number, const Status& status);

}  // namespace cpdb

#endif  // CPDB_IO_REQUEST_PROTOCOL_H_

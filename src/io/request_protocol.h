// Copyright 2026 The ConsensusDB Authors
//
// The line-oriented request protocol of the serving layer (`cpdb_cli
// serve`). One request per line, one response line per request. Grammar:
//
//   request := field (WS field)* [comment]
//   field   := NAME "=" VALUE
//   NAME    := [A-Za-z] [A-Za-z0-9_-]*
//   VALUE   := one or more non-whitespace characters
//   comment := "#" <rest of line>
//
// Blank lines parse to a request with no fields (callers skip them). A '#'
// at the *start of a token* begins a comment that runs to end of line —
// whether the line is otherwise empty ("# note") or carries fields before
// it ("op=stats # note"). A '#' inside a value ("file=a#b") is literal:
// comments are recognized only at token boundaries, so values keep the
// full non-whitespace character set. Duplicate field names are an error —
// a request that says k twice has no single honest answer. Request values
// carry no escaping, so values containing whitespace (e.g. paths with
// spaces) are not representable; this is a deliberate simplicity trade.
//
// Responses are tab-separated `name=value` pairs, led by a literal "ok" or
// "error" token, e.g.
//
//   ok<TAB>op=topk<TAB>tree=movies<TAB>metric=kendall<TAB>k=3<TAB>
//     keys=2,1,5<TAB>expected=0.12376237623762376
//   error<TAB>line=4<TAB>msg=Invalid argument: unknown op 'topq'
//
// Unlike request values, response values ARE escaped: a served value may
// echo arbitrary user input (error messages quote the offending token), so
// tabs, newlines, and the other control characters are emitted as
// backslash escapes (\t \n \r \\ \xHH) — one request is one response
// *line*, no matter what bytes the values carry. ParseResponseLine is the
// inverse: clients (and our tests) can round-trip any response through it.
//
// This module owns the *grammar* only — tokenization, strict integer
// syntax, duplicate detection, response assembly and escaping. The mapping
// of fields to typed operations (op/metric/answer enums, catalog lookups)
// lives in src/service/, which keeps io/ below core/ in the layer diagram.

#ifndef CPDB_IO_REQUEST_PROTOCOL_H_
#define CPDB_IO_REQUEST_PROTOCOL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace cpdb {

/// \brief One `name=value` pair of a request or response line.
struct RequestField {
  std::string name;
  std::string value;
};

/// \brief A tokenized request line: fields in input order. Empty for blank
/// and comment lines.
struct RequestLine {
  std::vector<RequestField> fields;

  /// \brief The value of field `name`, or nullptr if absent. Linear scan —
  /// request lines have a handful of fields.
  const std::string* Find(const std::string& name) const;
};

/// \brief Tokenizes one request line. Fails (ParseError) on a token without
/// '=', an empty or malformed field name, an empty value, or a duplicate
/// field name — garbage never parses to a default. Blank lines succeed with
/// no fields; a token-initial '#' ends the line as a comment wherever it
/// appears ("# note" and "op=stats # note" both parse, the latter to one
/// field), while '#' inside a value stays literal.
Result<RequestLine> ParseRequestLine(const std::string& line);

/// \brief Strict base-10 integer parse for a named field or flag: rejects
/// empty strings, trailing garbage, and out-of-range magnitudes instead of
/// silently taking whatever atoi salvages (a typo'd "k=1o" must not become
/// k=1). Shared by the protocol's integer fields and the CLI's --flag
/// values; `name` only labels the error message.
Result<long long> ParseStrictInt(const std::string& name,
                                 const std::string& value);

/// \brief Shortest round-trip decimal rendering of a double: the minimal
/// digit string that strtod parses back to the bit-identical value
/// (std::to_chars with no precision argument). The single formatter behind
/// every double the system emits — serve response `expected=` values and
/// the offline CLI's probabilities/distances alike — so no output layer
/// silently truncates what the engine computed exactly ("%.6f" used to).
std::string FormatRoundTripDouble(double value);

/// \brief Escapes a response value for the tab-separated framing: backslash
/// becomes "\\", tab/newline/CR become "\t"/"\n"/"\r", and every other
/// control character (0x00-0x1F, 0x7F) becomes "\xHH". The identity on
/// values that need no escaping — which is all honest protocol traffic, so
/// escaping costs nothing on the hot path.
std::string EscapeFieldValue(const std::string& value);

/// \brief The inverse of EscapeFieldValue. ParseError on a dangling
/// backslash or an unknown escape — a response that decodes to "probably
/// what was meant" is worse than one that fails loudly.
Result<std::string> UnescapeFieldValue(const std::string& value);

/// \brief Assembles a success response: "ok" plus tab-separated
/// `name=value` pairs, newline-terminated. Values are escaped
/// (EscapeFieldValue), so any byte content yields exactly one well-framed
/// line.
std::string FormatResponseLine(const std::vector<RequestField>& fields);

/// \brief Assembles the error response for input line `line_number`
/// (1-based): "error", the line, and the failure message. The message is
/// escaped — error text routinely echoes user input ("unknown op '...'"),
/// and a tab or newline smuggled through a request value must not corrupt
/// the response framing.
std::string FormatErrorLine(size_t line_number, const Status& status);

/// \brief A parsed response line: the leading token ("ok" or "error") plus
/// the unescaped fields.
struct ResponseLine {
  bool ok = false;
  std::vector<RequestField> fields;

  /// \brief The value of field `name`, or nullptr if absent.
  const std::string* Find(const std::string& name) const;
};

/// \brief Parses one response line (the output of FormatResponseLine /
/// FormatErrorLine, trailing newline optional): splits on tabs, checks the
/// leading ok/error token, and unescapes every value. The round-trip
/// contract — Parse(Format(fields)) == fields for any byte content — is
/// pinned by tests/request_protocol_test.cc; clients scripting against
/// `serve` should read responses through this rather than splitting on
/// whitespace.
Result<ResponseLine> ParseResponseLine(const std::string& line);

}  // namespace cpdb

#endif  // CPDB_IO_REQUEST_PROTOCOL_H_

// Copyright 2026 The ConsensusDB Authors

#include "io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cpdb {

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::NotFound("cannot stat '" + path +
                            "': " + std::strerror(err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument("cannot map '" + path +
                                   "': not a regular file");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MmapFile(nullptr, 0);
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int err = errno;
  // The mapping holds its own reference to the file; the descriptor is no
  // longer needed whether or not mmap succeeded.
  ::close(fd);
  if (data == MAP_FAILED) {
    return Status::Internal("cannot mmap '" + path +
                            "': " + std::strerror(err));
  }
  return MmapFile(data, size);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MmapFile::~MmapFile() { Reset(); }

void MmapFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "io/request_protocol.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace cpdb {

namespace {

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

bool IsNameChar(char c) {
  return IsNameStart(c) || (c >= '0' && c <= '9') || c == '_' || c == '-';
}

// A control character that would break the one-line tab-separated framing
// (or render invisibly) if emitted raw.
bool NeedsEscape(unsigned char c) { return c < 0x20 || c == 0x7F; }

int HexDigitValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const std::string* RequestLine::Find(const std::string& name) const {
  for (const RequestField& f : fields) {
    if (f.name == name) return &f.value;
  }
  return nullptr;
}

Result<RequestLine> ParseRequestLine(const std::string& line) {
  RequestLine parsed;
  size_t pos = 0;
  while (pos < line.size()) {
    if (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r') {
      ++pos;
      continue;
    }
    // A token-initial '#' comments out the rest of the line, whether any
    // fields preceded it or not ("op=stats # note" is a one-field request).
    // '#' inside a token ("file=a#b") is an ordinary value character:
    // comments exist only at token boundaries.
    if (line[pos] == '#') {
      return parsed;
    }
    size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
           line[end] != '\r') {
      ++end;
    }
    std::string token = line.substr(pos, end - pos);
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("request field '" + token +
                                "' is not name=value");
    }
    RequestField field{token.substr(0, eq), token.substr(eq + 1)};
    if (field.name.empty() || !IsNameStart(field.name[0])) {
      return Status::ParseError("bad field name in '" + token + "'");
    }
    for (char c : field.name) {
      if (!IsNameChar(c)) {
        return Status::ParseError("bad field name in '" + token + "'");
      }
    }
    if (field.value.empty()) {
      return Status::ParseError("field '" + field.name + "' has empty value");
    }
    if (parsed.Find(field.name) != nullptr) {
      return Status::ParseError("duplicate field '" + field.name + "'");
    }
    parsed.fields.push_back(std::move(field));
    pos = end;
  }
  return parsed;
}

Result<long long> ParseStrictInt(const std::string& name,
                                 const std::string& value) {
  // strtoll itself skips leading whitespace; strict means we don't.
  bool starts_like_int =
      !value.empty() && (value[0] == '+' || value[0] == '-' ||
                         (value[0] >= '0' && value[0] <= '9'));
  char* end = nullptr;
  errno = 0;
  long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (!starts_like_int || end == nullptr || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument(name + " expects an integer, got '" +
                                   value + "'");
  }
  return parsed;
}

std::string FormatRoundTripDouble(double value) {
  // 32 bytes comfortably hold the longest shortest-representation double
  // ("-2.2250738585072014e-308" is 24 characters).
  char buf[32];
  std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, r.ptr);
}

std::string EscapeFieldValue(const std::string& value) {
  size_t first = 0;
  while (first < value.size() &&
         value[first] != '\\' &&
         !NeedsEscape(static_cast<unsigned char>(value[first]))) {
    ++first;
  }
  if (first == value.size()) return value;  // the hot path: nothing to do
  std::string escaped = value.substr(0, first);
  escaped.reserve(value.size() + 4);
  for (size_t i = first; i < value.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(value[i]);
    switch (c) {
      case '\\':
        escaped += "\\\\";
        break;
      case '\t':
        escaped += "\\t";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      default:
        if (NeedsEscape(c)) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02X", c);
          escaped += buf;
        } else {
          escaped += static_cast<char>(c);
        }
    }
  }
  return escaped;
}

Result<std::string> UnescapeFieldValue(const std::string& value) {
  if (value.find('\\') == std::string::npos) return value;
  std::string raw;
  raw.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\') {
      raw += value[i];
      continue;
    }
    if (i + 1 >= value.size()) {
      return Status::ParseError("dangling backslash in value '" + value + "'");
    }
    char e = value[++i];
    switch (e) {
      case '\\':
        raw += '\\';
        break;
      case 't':
        raw += '\t';
        break;
      case 'n':
        raw += '\n';
        break;
      case 'r':
        raw += '\r';
        break;
      case 'x': {
        if (i + 2 >= value.size()) {
          return Status::ParseError("truncated \\x escape in value '" + value +
                                    "'");
        }
        int hi = HexDigitValue(value[i + 1]);
        int lo = HexDigitValue(value[i + 2]);
        if (hi < 0 || lo < 0) {
          return Status::ParseError("bad \\x escape in value '" + value + "'");
        }
        raw += static_cast<char>(hi * 16 + lo);
        i += 2;
        break;
      }
      default:
        return Status::ParseError(std::string("unknown escape '\\") + e +
                                  "' in value '" + value + "'");
    }
  }
  return raw;
}

std::string FormatResponseLine(const std::vector<RequestField>& fields) {
  std::string line = "ok";
  for (const RequestField& f : fields) {
    line += '\t';
    line += f.name;
    line += '=';
    line += EscapeFieldValue(f.value);
  }
  line += '\n';
  return line;
}

std::string FormatErrorLine(size_t line_number, const Status& status) {
  return "error\tline=" + std::to_string(line_number) +
         "\tmsg=" + EscapeFieldValue(status.ToString()) + "\n";
}

const std::string* ResponseLine::Find(const std::string& name) const {
  for (const RequestField& f : fields) {
    if (f.name == name) return &f.value;
  }
  return nullptr;
}

Result<ResponseLine> ParseResponseLine(const std::string& line) {
  std::string text = line;
  if (!text.empty() && text.back() == '\n') text.pop_back();
  ResponseLine parsed;
  size_t pos = text.find('\t');
  std::string head = text.substr(0, pos);
  if (head == "ok") {
    parsed.ok = true;
  } else if (head == "error") {
    parsed.ok = false;
  } else {
    return Status::ParseError("response line must start with ok or error, "
                              "got '" + head + "'");
  }
  while (pos != std::string::npos) {
    size_t start = pos + 1;
    pos = text.find('\t', start);
    std::string token = text.substr(
        start, pos == std::string::npos ? std::string::npos : pos - start);
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::ParseError("response field '" + token +
                                "' is not name=value");
    }
    RequestField field{token.substr(0, eq), ""};
    CPDB_ASSIGN_OR_RETURN(field.value, UnescapeFieldValue(token.substr(eq + 1)));
    if (parsed.Find(field.name) != nullptr) {
      return Status::ParseError("duplicate response field '" + field.name +
                                "'");
    }
    parsed.fields.push_back(std::move(field));
  }
  return parsed;
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "io/request_protocol.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace cpdb {

namespace {

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

bool IsNameChar(char c) {
  return IsNameStart(c) || (c >= '0' && c <= '9') || c == '_' || c == '-';
}

}  // namespace

const std::string* RequestLine::Find(const std::string& name) const {
  for (const RequestField& f : fields) {
    if (f.name == name) return &f.value;
  }
  return nullptr;
}

Result<RequestLine> ParseRequestLine(const std::string& line) {
  RequestLine parsed;
  size_t pos = 0;
  while (pos < line.size()) {
    if (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r') {
      ++pos;
      continue;
    }
    if (line[pos] == '#' && parsed.fields.empty()) {
      return parsed;  // comment line
    }
    size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
           line[end] != '\r') {
      ++end;
    }
    std::string token = line.substr(pos, end - pos);
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("request field '" + token +
                                "' is not name=value");
    }
    RequestField field{token.substr(0, eq), token.substr(eq + 1)};
    if (field.name.empty() || !IsNameStart(field.name[0])) {
      return Status::ParseError("bad field name in '" + token + "'");
    }
    for (char c : field.name) {
      if (!IsNameChar(c)) {
        return Status::ParseError("bad field name in '" + token + "'");
      }
    }
    if (field.value.empty()) {
      return Status::ParseError("field '" + field.name + "' has empty value");
    }
    if (parsed.Find(field.name) != nullptr) {
      return Status::ParseError("duplicate field '" + field.name + "'");
    }
    parsed.fields.push_back(std::move(field));
    pos = end;
  }
  return parsed;
}

Result<long long> ParseStrictInt(const std::string& name,
                                 const std::string& value) {
  // strtoll itself skips leading whitespace; strict means we don't.
  bool starts_like_int =
      !value.empty() && (value[0] == '+' || value[0] == '-' ||
                         (value[0] >= '0' && value[0] <= '9'));
  char* end = nullptr;
  errno = 0;
  long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (!starts_like_int || end == nullptr || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument(name + " expects an integer, got '" +
                                   value + "'");
  }
  return parsed;
}

std::string FormatResponseLine(const std::vector<RequestField>& fields) {
  std::string line = "ok";
  for (const RequestField& f : fields) {
    line += '\t';
    line += f.name;
    line += '=';
    line += f.value;
  }
  line += '\n';
  return line;
}

std::string FormatErrorLine(size_t line_number, const Status& status) {
  return "error\tline=" + std::to_string(line_number) +
         "\tmsg=" + status.ToString() + "\n";
}

}  // namespace cpdb

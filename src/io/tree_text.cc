// Copyright 2026 The ConsensusDB Authors

#include "io/tree_text.h"

#include <cctype>

#include "io/request_protocol.h"
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace cpdb {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer: parentheses, and whitespace-separated atoms.
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { kLParen, kRParen, kAtom, kEnd } kind;
  std::string text;
  size_t pos;  // byte offset, for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token Next() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return {Token::kEnd, "", pos_};
    size_t start = pos_;
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      return {Token::kLParen, "(", start};
    }
    if (c == ')') {
      ++pos_;
      return {Token::kRParen, ")", start};
    }
    while (pos_ < text_.size() && text_[pos_] != '(' && text_[pos_] != ')' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return {Token::kAtom, text_.substr(start, pos_ - start), start};
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Recursive-descent parser (explicit lookahead of one token).
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) { Advance(); }

  Result<AndXorTree> Parse() {
    AndXorTree tree;
    CPDB_ASSIGN_OR_RETURN(NodeId root, ParseNode(&tree));
    if (cur_.kind != Token::kEnd) {
      return Err("trailing input after tree");
    }
    tree.SetRoot(root);
    CPDB_RETURN_NOT_OK(tree.Validate());
    return tree;
  }

 private:
  void Advance() { cur_ = lexer_.Next(); }

  Status Err(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(cur_.pos));
  }

  Result<double> ParseDouble(const std::string& s) const {
    char* end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == s.c_str()) {
      return Err("expected a number, got '" + s + "'");
    }
    // strtod happily accepts "inf"/"nan" literals and turns overflowing
    // magnitudes like 1e999 into HUGE_VAL — any of which would smuggle a
    // non-finite value into a tree that downstream code treats as
    // validated (probabilities and scores flow into folds where one NaN
    // poisons every answer). Underflow to a denormal/zero is a
    // representable approximation and stays accepted.
    if (!std::isfinite(v)) {
      return Err("expected a finite number, got '" + s + "'");
    }
    return v;
  }

  // The parser recurses on input nesting; cap the depth so adversarial
  // inputs fail with a clean error instead of exhausting the call stack.
  static constexpr int kMaxDepth = 2000;

  Result<NodeId> ParseNode(AndXorTree* tree) {
    if (++depth_ > kMaxDepth) {
      --depth_;
      return Err("tree nesting exceeds the supported depth of " +
                 std::to_string(kMaxDepth));
    }
    Result<NodeId> result = ParseNodeInner(tree);
    --depth_;
    return result;
  }

  Result<NodeId> ParseNodeInner(AndXorTree* tree) {
    if (cur_.kind != Token::kLParen) return Err("expected '('");
    Advance();
    if (cur_.kind != Token::kAtom) return Err("expected node kind");
    std::string kind = cur_.text;
    Advance();
    if (kind == "leaf") return ParseLeaf(tree);
    if (kind == "and") return ParseAnd(tree);
    if (kind == "xor") return ParseXor(tree);
    return Err("unknown node kind '" + kind + "'");
  }

  Result<NodeId> ParseLeaf(AndXorTree* tree) {
    TupleAlternative alt;
    bool have_key = false;
    while (cur_.kind == Token::kAtom) {
      const std::string& a = cur_.text;
      size_t eq = a.find('=');
      if (eq == std::string::npos) return Err("expected attr=value in leaf");
      std::string name = a.substr(0, eq);
      std::string value = a.substr(eq + 1);
      CPDB_ASSIGN_OR_RETURN(double v, ParseDouble(value));
      if (name == "key") {
        alt.key = static_cast<KeyId>(v);
        have_key = true;
      } else if (name == "score") {
        alt.score = v;
      } else if (name == "label") {
        alt.label = static_cast<int32_t>(v);
      } else {
        return Err("unknown leaf attribute '" + name + "'");
      }
      Advance();
    }
    if (!have_key) return Err("leaf missing key attribute");
    if (cur_.kind != Token::kRParen) return Err("expected ')' after leaf");
    Advance();
    return tree->AddLeaf(alt);
  }

  Result<NodeId> ParseAnd(AndXorTree* tree) {
    std::vector<NodeId> children;
    while (cur_.kind == Token::kLParen) {
      CPDB_ASSIGN_OR_RETURN(NodeId child, ParseNode(tree));
      children.push_back(child);
    }
    if (children.empty()) return Err("and node needs at least one child");
    if (cur_.kind != Token::kRParen) return Err("expected ')' after and");
    Advance();
    return tree->AddAnd(std::move(children));
  }

  Result<NodeId> ParseXor(AndXorTree* tree) {
    std::vector<NodeId> children;
    std::vector<double> probs;
    while (cur_.kind == Token::kAtom) {
      CPDB_ASSIGN_OR_RETURN(double p, ParseDouble(cur_.text));
      Advance();
      CPDB_ASSIGN_OR_RETURN(NodeId child, ParseNode(tree));
      probs.push_back(p);
      children.push_back(child);
    }
    if (children.empty()) return Err("xor node needs at least one child");
    if (cur_.kind != Token::kRParen) return Err("expected ')' after xor");
    Advance();
    return tree->AddXor(std::move(children), std::move(probs));
  }

  Lexer lexer_;
  Token cur_{Token::kEnd, "", 0};
  int depth_ = 0;
};

void FormatNode(const AndXorTree& tree, NodeId id, bool indent, int depth,
                std::ostringstream* os) {
  const TreeNode& n = tree.node(id);
  auto newline = [&] {
    if (indent) {
      *os << "\n";
      for (int i = 0; i < depth + 1; ++i) *os << "  ";
    } else {
      *os << " ";
    }
  };
  switch (n.kind) {
    case NodeKind::kLeaf:
      // Doubles render via the shortest-round-trip formatter: the canonical
      // form fingerprints trees and is the snapshot payload, so it must be
      // injective — default ostream precision (6 digits) made two trees
      // whose probabilities differ past the 6th digit share a canonical
      // text (hence a fingerprint), and made a snapshot-restored tree
      // numerically drift from the one that saved it.
      *os << "(leaf key=" << n.leaf.key
          << " score=" << FormatRoundTripDouble(n.leaf.score);
      if (n.leaf.label >= 0) *os << " label=" << n.leaf.label;
      *os << ")";
      break;
    case NodeKind::kAnd:
      *os << "(and";
      for (NodeId c : n.children) {
        newline();
        FormatNode(tree, c, indent, depth + 1, os);
      }
      *os << ")";
      break;
    case NodeKind::kXor:
      *os << "(xor";
      for (size_t i = 0; i < n.children.size(); ++i) {
        newline();
        *os << FormatRoundTripDouble(n.edge_probs[i]) << " ";
        FormatNode(tree, n.children[i], indent, depth + 1, os);
      }
      *os << ")";
      break;
  }
}

}  // namespace

Result<AndXorTree> ParseTree(const std::string& text) {
  Parser parser(text);
  return parser.Parse();
}

std::string FormatTree(const AndXorTree& tree, bool indent) {
  std::ostringstream os;
  FormatNode(tree, tree.root(), indent, 0, &os);
  return os.str();
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Welford's online mean/variance accumulator, shared by the sequential
// Monte-Carlo estimators (core/monte_carlo.cc) and the engine's chunked
// parallel estimation (engine/engine.cc) so the uncertainty math lives in
// exactly one place.

#ifndef CPDB_COMMON_WELFORD_H_
#define CPDB_COMMON_WELFORD_H_

#include <cstdint>

namespace cpdb {

/// \brief Numerically stable running mean and sum of squared deviations.
///
/// Add() is Welford's update; Merge() is Chan's exact pairwise combination,
/// which lets independently accumulated chunks be folded together in a
/// fixed order — the basis of the engine's schedule-deterministic parallel
/// estimates. Variance of the mean is m2 / ((n - 1) n); see
/// McEstimate-producing callers for the std-error conversion.
struct Welford {
  int64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;

  void Add(double x) {
    ++n;
    double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
  }

  void Merge(const Welford& other) {
    if (other.n == 0) return;
    if (n == 0) {
      *this = other;
      return;
    }
    double delta = other.mean - mean;
    int64_t total = n + other.n;
    mean += delta * static_cast<double>(other.n) / static_cast<double>(total);
    m2 += other.m2 + delta * delta * static_cast<double>(n) *
                         static_cast<double>(other.n) /
                         static_cast<double>(total);
    n = total;
  }
};

}  // namespace cpdb

#endif  // CPDB_COMMON_WELFORD_H_

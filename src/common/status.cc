// Copyright 2026 The ConsensusDB Authors

#include "common/status.h"

namespace cpdb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kInfeasible:
      return "Infeasible";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(msg)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) {
    rep_ = std::make_unique<Rep>(*other.rep_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_);
  }
  return *this;
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return rep_ == nullptr ? kEmpty : rep_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "common/rng.h"

#include <cmath>

namespace cpdb {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand a single seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform01(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

bool Rng::Bernoulli(double p) { return Uniform01() < p; }

double Rng::Gaussian(double mean, double stddev) {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return mean + stddev * spare_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * m;
  have_spare_gaussian_ = true;
  return mean + stddev * u * m;
}

int64_t Rng::Zipf(int64_t n, double theta) {
  if (n <= 1) return 0;
  if (zipf_n_ != n || zipf_theta_ != theta) {
    zipf_cdf_.assign(static_cast<size_t>(n), 0.0);
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      zipf_cdf_[static_cast<size_t>(i)] = acc;
    }
    for (auto& c : zipf_cdf_) c /= acc;
    zipf_n_ = n;
    zipf_theta_ = theta;
  }
  double u = Uniform01();
  // Binary search for the first CDF entry >= u.
  int64_t lo = 0, hi = n - 1;
  while (lo < hi) {
    int64_t mid = (lo + hi) / 2;
    if (zipf_cdf_[static_cast<size_t>(mid)] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int64_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return -1;
  double u = Uniform01() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Small numeric helpers shared across modules.

#ifndef CPDB_COMMON_MATH_UTILS_H_
#define CPDB_COMMON_MATH_UTILS_H_

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace cpdb {

/// \brief Negative infinity sentinel used by max-plus dynamic programs.
inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// \brief H_k, the k-th harmonic number (H_0 = 0).
double HarmonicNumber(int k);

/// \brief True iff |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
bool ApproxEqual(double a, double b, double abs_tol = 1e-9,
                 double rel_tol = 1e-9);

/// \brief Clamps a probability into [0, 1], absorbing tiny FP drift.
double ClampProbability(double p);

/// \brief Max-plus convolution of two value vectors truncated to
/// `max_size + 1` entries: out[i] = max_{p+q=i} a[p] + b[q]. Entries equal
/// to kNegInf mark infeasible sizes.
std::vector<double> MaxPlusConvolve(const std::vector<double>& a,
                                    const std::vector<double>& b,
                                    size_t max_size);

/// \brief Kahan-compensated sum, used where many small probabilities
/// accumulate.
double StableSum(const std::vector<double>& values);

}  // namespace cpdb

#endif  // CPDB_COMMON_MATH_UTILS_H_

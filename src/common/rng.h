// Copyright 2026 The ConsensusDB Authors
//
// Deterministic pseudo-random number generation used across the library.
// All randomized algorithms and workload generators take an explicit Rng so
// that tests and benchmarks are reproducible from a single seed.

#ifndef CPDB_COMMON_RNG_H_
#define CPDB_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cpdb {

/// \brief A small, fast, seedable generator (xoshiro256**).
///
/// Not cryptographically secure; statistical quality is more than adequate
/// for Monte-Carlo estimation and synthetic workload generation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// \brief Next raw 64-bit value.
  uint64_t Next();

  /// \brief Uniform double in [0, 1).
  double Uniform01();

  /// \brief Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// \brief Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// \brief Standard normal via Box-Muller.
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// \brief Zipf-like draw over {0,...,n-1} with exponent `theta`
  /// (theta = 0 is uniform). Uses the normalized CDF; O(log n) per draw
  /// after O(n) setup amortized per (n, theta) pair.
  int64_t Zipf(int64_t n, double theta);

  /// \brief Samples an index from an unnormalized non-negative weight vector.
  /// Returns -1 if all weights are zero.
  int64_t Categorical(const std::vector<double>& weights);

  /// \brief In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  // Cache for Zipf CDF, keyed by (n, theta).
  int64_t zipf_n_ = -1;
  double zipf_theta_ = -1.0;
  std::vector<double> zipf_cdf_;
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace cpdb

#endif  // CPDB_COMMON_RNG_H_

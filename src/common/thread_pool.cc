// Copyright 2026 The ConsensusDB Authors

#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace cpdb {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) {
    num_threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  num_threads = std::min(num_threads, kMaxThreads);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // No workers: run inline so submitted work cannot be stranded.
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Shared loop state: workers and the caller claim indices from `next`
  // until exhausted; `pending` counts helper tasks still running so the
  // caller knows when every claimed index has completed.
  struct LoopState {
    std::atomic<int64_t> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    int pending = 0;
  };
  auto state = std::make_shared<LoopState>();
  auto run = [state, n, &body] {
    for (int64_t i = state->next.fetch_add(1); i < n;
         i = state->next.fetch_add(1)) {
      body(i);
    }
  };

  int helpers = static_cast<int>(
      std::min<int64_t>(static_cast<int64_t>(workers_.size()), n - 1));
  state->pending = helpers;
  for (int h = 0; h < helpers; ++h) {
    Submit([state, run] {
      run();
      std::unique_lock<std::mutex> lock(state->mu);
      if (--state->pending == 0) state->done_cv.notify_one();
    });
  }
  run();  // the calling thread participates
  // While helpers are outstanding, the caller executes queued tasks instead
  // of blocking: a helper of this loop (or of a nested one) may still sit in
  // the queue behind us, and sleeping on it would deadlock.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state->mu);
      if (state->pending == 0) return;
    }
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (task) {
      task();
    } else {
      // Queue empty: the remaining helpers are running on other threads.
      std::unique_lock<std::mutex> lock(state->mu);
      state->done_cv.wait(lock, [&] { return state->pending == 0; });
      return;
    }
  }
}

}  // namespace cpdb

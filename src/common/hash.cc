// Copyright 2026 The ConsensusDB Authors

#include "common/hash.h"

#include <cstdio>

namespace cpdb {

uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed) {
  // FNV-1a: xor the byte in, then multiply by the 64-bit FNV prime.
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  uint64_t hash = seed;
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= static_cast<uint64_t>(bytes[i]);
    hash *= kPrime;
  }
  return hash;
}

uint64_t Fnv1a64(const std::string& text) {
  return Fnv1a64(text.data(), text.size());
}

std::string HashToHex(uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "common/math_utils.h"

#include <algorithm>

namespace cpdb {

double HarmonicNumber(int k) {
  double h = 0.0;
  for (int i = 1; i <= k; ++i) h += 1.0 / i;
  return h;
}

bool ApproxEqual(double a, double b, double abs_tol, double rel_tol) {
  double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

double ClampProbability(double p) {
  if (p < 0.0) return 0.0;
  if (p > 1.0) return 1.0;
  return p;
}

std::vector<double> MaxPlusConvolve(const std::vector<double>& a,
                                    const std::vector<double>& b,
                                    size_t max_size) {
  size_t out_size = std::min(max_size + 1, a.size() + b.size() - 1);
  std::vector<double> out(out_size, kNegInf);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == kNegInf) continue;
    size_t j_end = std::min(b.size(), out_size - std::min(out_size, i));
    for (size_t j = 0; j < j_end && i + j < out_size; ++j) {
      if (b[j] == kNegInf) continue;
      out[i + j] = std::max(out[i + j], a[i] + b[j]);
    }
  }
  return out;
}

double StableSum(const std::vector<double>& values) {
  double sum = 0.0, comp = 0.0;
  for (double v : values) {
    double y = v - comp;
    double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum;
}

}  // namespace cpdb

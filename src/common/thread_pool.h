// Copyright 2026 The ConsensusDB Authors
//
// A fixed-size worker pool shared by the parallel evaluation engine
// (engine/engine.h). Work is submitted either as fire-and-forget closures
// or through ParallelFor, a blocking index-space loop in which the calling
// thread participates — so a pool constructed with one thread degrades to
// plain sequential execution with no cross-thread handoff.

#ifndef CPDB_COMMON_THREAD_POOL_H_
#define CPDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cpdb {

/// \brief A fixed pool of worker threads with a shared FIFO task queue.
///
/// Thread-safe: Submit and ParallelFor may be called from any thread,
/// including concurrently. Tasks must not throw — the pool does not
/// propagate exceptions (the library reports errors via Status, not
/// exceptions). Destruction drains the queue before joining the workers.
class ThreadPool {
 public:
  /// \brief Hard ceiling on pool size: requests beyond it are clamped, so
  /// an absurd configuration value degrades to an oversubscribed-but-alive
  /// pool instead of exhausting OS thread resources and terminating.
  static constexpr int kMaxThreads = 256;

  /// \brief Spawns `num_threads` workers; values < 1 use the hardware
  /// concurrency (at least 1), values above kMaxThreads are clamped. A
  /// 1-thread pool spawns no workers at all: ParallelFor then runs
  /// entirely on the calling thread.
  explicit ThreadPool(int num_threads = 0);

  /// Drains outstanding tasks, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Number of threads that execute work, counting the caller of
  /// ParallelFor (so this is `workers + 1` and never less than 1).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// \brief Enqueues a fire-and-forget task. On a pool with no workers
  /// (num_threads() == 1), the task runs synchronously on the calling
  /// thread before Submit returns — tasks must not assume they execute
  /// asynchronously (e.g. must not wait on the submitting thread or
  /// acquire locks it holds).
  void Submit(std::function<void()> task);

  /// \brief Runs `body(i)` for every i in [0, n), distributing indices over
  /// the workers and the calling thread; returns when all n calls finished.
  /// Indices are claimed dynamically, so per-index work may be uneven; any
  /// state shared across indices must be independent per index (the engine
  /// writes results into per-index slots and merges in index order, which
  /// keeps results deterministic regardless of the schedule).
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace cpdb

#endif  // CPDB_COMMON_THREAD_POOL_H_

// Copyright 2026 The ConsensusDB Authors
//
// Status-based error model in the style of Arrow / RocksDB: fallible
// operations return a Status (or a Result<T>, see result.h) instead of
// throwing. The public API of the library never throws across module
// boundaries.

#ifndef CPDB_COMMON_STATUS_H_
#define CPDB_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace cpdb {

/// \brief Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kResourceExhausted = 5,
  kNotImplemented = 6,
  kParseError = 7,
  kInternal = 8,
  kInfeasible = 9,
};

/// \brief Returns a short human-readable name for a StatusCode
/// (e.g. "Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: either OK or a code plus message.
///
/// The OK state carries no allocation; error states carry a heap-allocated
/// message so that Status stays one pointer wide (the RocksDB layout).
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }

  /// \brief True iff this status represents success.
  bool ok() const { return rep_ == nullptr; }

  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }

  /// \brief The error message; empty for OK statuses.
  const std::string& message() const;

  /// \brief "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // nullptr <=> OK
};

}  // namespace cpdb

/// \brief Propagates a non-OK Status out of the enclosing function.
#define CPDB_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::cpdb::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // CPDB_COMMON_STATUS_H_

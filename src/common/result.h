// Copyright 2026 The ConsensusDB Authors
//
// Result<T>: value-or-Status, in the style of arrow::Result. A Result is
// either a T or a non-OK Status; dereferencing an errored Result aborts.

#ifndef CPDB_COMMON_RESULT_H_
#define CPDB_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace cpdb {

/// \brief Holds either a successfully computed T or the Status explaining
/// why the computation failed.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : rep_(std::in_place_index<0>, std::move(value)) {}  // NOLINT

  /// Implicit from a non-OK status (failure). An OK status is a programming
  /// error and is converted to an Internal error.
  Result(Status status) : rep_(std::in_place_index<1>, std::move(status)) {  // NOLINT
    if (std::get<1>(rep_).ok()) {
      rep_.template emplace<1>(
          Status::Internal("Result constructed from OK status"));
    }
  }

  bool ok() const { return rep_.index() == 0; }

  /// \brief The failure status; Status::OK() if this Result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<1>(rep_);
  }

  /// \brief Access to the value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<0>(rep_);
  }
  T& ValueOrDie() & {
    CheckOk();
    return std::get<0>(rep_);
  }
  T&& ValueOrDie() && {
    CheckOk();
    return std::move(std::get<0>(rep_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<0>(rep_) : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   std::get<1>(rep_).ToString().c_str());
      std::abort();
    }
  }
  std::variant<T, Status> rep_;
};

}  // namespace cpdb

/// \brief Assigns the value of a Result expression to `lhs`, or propagates
/// its error Status out of the enclosing function.
#define CPDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie()

#define CPDB_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define CPDB_ASSIGN_OR_RETURN_NAME(a, b) CPDB_ASSIGN_OR_RETURN_CONCAT(a, b)

#define CPDB_ASSIGN_OR_RETURN(lhs, expr) \
  CPDB_ASSIGN_OR_RETURN_IMPL(            \
      CPDB_ASSIGN_OR_RETURN_NAME(_cpdb_result_, __LINE__), lhs, expr)

#endif  // CPDB_COMMON_RESULT_H_

// Copyright 2026 The ConsensusDB Authors
//
// A stable 64-bit content hash (FNV-1a). "Stable" means the value is a pure
// function of the input bytes — independent of platform, pointer layout,
// process, and library version — so it can serve as a persistent
// fingerprint: the service layer's TreeCatalog keys trees by
// Fnv1a64(canonical tree text), and two sessions (or two replicas) agree on
// every fingerprint. Not a cryptographic hash; collisions are astronomically
// unlikely for catalog-sized populations but an adversary could forge them.

#ifndef CPDB_COMMON_HASH_H_
#define CPDB_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace cpdb {

/// \brief FNV-1a offset basis: the hash of the empty byte string.
inline constexpr uint64_t kFnv1a64OffsetBasis = 0xcbf29ce484222325ULL;

/// \brief 64-bit FNV-1a over a byte range, starting from `seed` (the offset
/// basis by default). Passing a previous hash as `seed` chains ranges:
/// Fnv1a64(b, Fnv1a64(a)) == Fnv1a64(a ++ b).
uint64_t Fnv1a64(const void* data, size_t len,
                 uint64_t seed = kFnv1a64OffsetBasis);

/// \brief 64-bit FNV-1a of a string's bytes.
uint64_t Fnv1a64(const std::string& text);

/// \brief Fixed-width lower-case hex rendering of a 64-bit hash, the form
/// fingerprints take in protocol lines and logs.
std::string HashToHex(uint64_t hash);

}  // namespace cpdb

#endif  // CPDB_COMMON_HASH_H_

// Copyright 2026 The ConsensusDB Authors
//
// A stable 64-bit content hash (FNV-1a). "Stable" means the value is a pure
// function of the input bytes — independent of platform, pointer layout,
// process, and library version — so it can serve as a persistent
// fingerprint: the service layer's TreeCatalog keys trees by
// Fnv1a64(canonical tree text), and two sessions (or two replicas) agree on
// every fingerprint. Not a cryptographic hash; collisions are astronomically
// unlikely for catalog-sized populations but an adversary could forge them.

#ifndef CPDB_COMMON_HASH_H_
#define CPDB_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace cpdb {

/// \brief FNV-1a offset basis: the hash of the empty byte string.
inline constexpr uint64_t kFnv1a64OffsetBasis = 0xcbf29ce484222325ULL;

/// \brief 64-bit FNV-1a over a byte range, starting from `seed` (the offset
/// basis by default). Passing a previous hash as `seed` chains ranges:
/// Fnv1a64(b, Fnv1a64(a)) == Fnv1a64(a ++ b).
uint64_t Fnv1a64(const void* data, size_t len,
                 uint64_t seed = kFnv1a64OffsetBasis);

/// \brief 64-bit FNV-1a of a string's bytes.
uint64_t Fnv1a64(const std::string& text);

/// \brief Fixed-width lower-case hex rendering of a 64-bit hash, the form
/// fingerprints take in protocol lines and logs.
std::string HashToHex(uint64_t hash);

// ---------------------------------------------------------------------------
// Strong key types: the two identity spaces of the serving stack.
//
// ContentFp hashes a tree's exact canonical serialization — the wire-visible
// identity (protocol fingerprint= fields, name binding, snapshot records).
// StructKey hashes the serialization of the tree's canonical ORIENTATION
// (commutative and/xor children sorted; see model/canonical.h) — the dedup
// identity that caches, fold compiles, and shard routing key on.
//
// Both wrap a uint64_t but deliberately do not convert to or from it (or each
// other) implicitly: a ContentFp handed to a StructKey consumer is a silent
// cache-poisoning bug, so mixing the spaces must not compile. Construction
// from a raw hash is explicit; `value()` is the escape hatch for encoding.
// For a tree already in canonical orientation the two VALUES coincide
// (same bytes hashed), which is what keeps shard routing and cache keys —
// and therefore wire transcripts — unchanged for canonical inputs.
// ---------------------------------------------------------------------------

/// \brief Wire-visible identity: FNV-1a of the exact canonical serialization.
class ContentFp {
 public:
  ContentFp() = default;
  explicit ContentFp(uint64_t value) : value_(value) {}

  uint64_t value() const { return value_; }

  friend bool operator==(ContentFp a, ContentFp b) {
    return a.value_ == b.value_;
  }
  friend bool operator!=(ContentFp a, ContentFp b) {
    return a.value_ != b.value_;
  }
  friend bool operator<(ContentFp a, ContentFp b) {
    return a.value_ < b.value_;
  }

 private:
  uint64_t value_ = 0;
};

/// \brief Structural identity: FNV-1a of the canonical ORIENTATION's
/// serialization. Two trees equal modulo commutative child order share one
/// StructKey.
class StructKey {
 public:
  StructKey() = default;
  explicit StructKey(uint64_t value) : value_(value) {}

  uint64_t value() const { return value_; }

  friend bool operator==(StructKey a, StructKey b) {
    return a.value_ == b.value_;
  }
  friend bool operator!=(StructKey a, StructKey b) {
    return a.value_ != b.value_;
  }
  friend bool operator<(StructKey a, StructKey b) {
    return a.value_ < b.value_;
  }

 private:
  uint64_t value_ = 0;
};

inline std::string HashToHex(ContentFp fp) { return HashToHex(fp.value()); }
inline std::string HashToHex(StructKey key) { return HashToHex(key.value()); }

}  // namespace cpdb

#endif  // CPDB_COMMON_HASH_H_

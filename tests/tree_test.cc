// Copyright 2026 The ConsensusDB Authors

#include "model/and_xor_tree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/builders.h"
#include "model/possible_worlds.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

TupleAlternative Alt(KeyId key, double score, int32_t label = -1) {
  TupleAlternative a;
  a.key = key;
  a.score = score;
  a.label = label;
  return a;
}

// The example of Figure 1(i): four independent tuples with two alternatives
// each.
AndXorTree Figure1iTree() {
  AndXorTree tree;
  NodeId x1 = tree.AddXor({tree.AddLeaf(Alt(1, 8)), tree.AddLeaf(Alt(1, 2))},
                          {0.1, 0.5});
  NodeId x2 = tree.AddXor({tree.AddLeaf(Alt(2, 3)), tree.AddLeaf(Alt(2, 4))},
                          {0.4, 0.4});
  NodeId x3 = tree.AddXor({tree.AddLeaf(Alt(3, 1)), tree.AddLeaf(Alt(3, 9))},
                          {0.2, 0.8});
  NodeId x4 = tree.AddXor({tree.AddLeaf(Alt(4, 6)), tree.AddLeaf(Alt(4, 5))},
                          {0.5, 0.5});
  tree.SetRoot(tree.AddAnd({x1, x2, x3, x4}));
  EXPECT_TRUE(tree.Validate().ok());
  return tree;
}

TEST(AndXorTreeTest, ValidatesFigure1Example) {
  AndXorTree tree = Figure1iTree();
  EXPECT_EQ(tree.NumLeaves(), 8);
  EXPECT_EQ(tree.Keys().size(), 4u);
}

TEST(AndXorTreeTest, RejectsMissingRoot) {
  AndXorTree tree;
  tree.AddLeaf(Alt(1, 1));
  EXPECT_EQ(tree.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(AndXorTreeTest, RejectsNegativeEdgeProbability) {
  AndXorTree tree;
  NodeId l = tree.AddLeaf(Alt(1, 1));
  tree.SetRoot(tree.AddXor({l}, {-0.2}));
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(AndXorTreeTest, RejectsProbabilityMassAboveOne) {
  AndXorTree tree;
  NodeId a = tree.AddLeaf(Alt(1, 1));
  NodeId b = tree.AddLeaf(Alt(1, 2));
  tree.SetRoot(tree.AddXor({a, b}, {0.7, 0.7}));
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(AndXorTreeTest, RejectsMismatchedProbabilityCount) {
  AndXorTree tree;
  NodeId a = tree.AddLeaf(Alt(1, 1));
  NodeId b = tree.AddLeaf(Alt(2, 2));
  tree.SetRoot(tree.AddXor({a, b}, {0.5}));
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(AndXorTreeTest, RejectsSharedChild) {
  AndXorTree tree;
  NodeId l = tree.AddLeaf(Alt(1, 1));
  NodeId x1 = tree.AddXor({l}, {0.5});
  NodeId x2 = tree.AddXor({l}, {0.5});  // same leaf under two parents
  tree.SetRoot(tree.AddAnd({x1, x2}));
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(AndXorTreeTest, RejectsEmptyInnerNode) {
  AndXorTree tree;
  tree.SetRoot(tree.AddAnd({}));
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(AndXorTreeTest, RejectsKeyConstraintViolation) {
  // Two alternatives of key 1 under an AND node: their LCA is not a XOR.
  AndXorTree tree;
  NodeId a = tree.AddLeaf(Alt(1, 1));
  NodeId b = tree.AddLeaf(Alt(1, 2));
  tree.SetRoot(tree.AddAnd({a, b}));
  Status st = tree.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("key constraint"), std::string::npos);
}

TEST(AndXorTreeTest, AcceptsSameKeyUnderXor) {
  AndXorTree tree;
  NodeId a = tree.AddLeaf(Alt(1, 1));
  NodeId b = tree.AddLeaf(Alt(1, 2));
  tree.SetRoot(tree.AddXor({a, b}, {0.4, 0.4}));
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(AndXorTreeTest, AcceptsSameKeyAcrossXorBranchesOfAndSubtrees) {
  // Key 1 appears in both children of a XOR whose children are AND nodes;
  // the LCA is the XOR, which is legal.
  AndXorTree tree;
  NodeId a1 = tree.AddLeaf(Alt(1, 1));
  NodeId a2 = tree.AddLeaf(Alt(2, 2));
  NodeId b1 = tree.AddLeaf(Alt(1, 3));
  NodeId b2 = tree.AddLeaf(Alt(2, 4));
  NodeId and_a = tree.AddAnd({a1, a2});
  NodeId and_b = tree.AddAnd({b1, b2});
  tree.SetRoot(tree.AddXor({and_a, and_b}, {0.3, 0.3}));
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(AndXorTreeTest, LeafMarginalsMultiplyAlongPath) {
  AndXorTree tree;
  NodeId leaf = tree.AddLeaf(Alt(1, 1));
  NodeId inner = tree.AddXor({leaf}, {0.5});
  NodeId outer = tree.AddXor({inner}, {0.4});
  tree.SetRoot(outer);
  ASSERT_TRUE(tree.Validate().ok());
  std::vector<double> m = tree.LeafMarginals();
  EXPECT_NEAR(m[static_cast<size_t>(leaf)], 0.2, 1e-12);
  EXPECT_NEAR(tree.KeyMarginal(1), 0.2, 1e-12);
}

TEST(AndXorTreeTest, KeyMarginalSumsAlternatives) {
  AndXorTree tree = Figure1iTree();
  EXPECT_NEAR(tree.KeyMarginal(1), 0.6, 1e-12);
  EXPECT_NEAR(tree.KeyMarginal(2), 0.8, 1e-12);
  EXPECT_NEAR(tree.KeyMarginal(3), 1.0, 1e-12);
}

TEST(AndXorTreeTest, PairPresenceIndependentTuples) {
  AndXorTree tree = Figure1iTree();
  // Alternatives of independent tuples: joint = product of marginals.
  std::vector<NodeId> leaves = tree.LeafIds();
  std::vector<double> m = tree.LeafMarginals();
  // leaf 0 is (1, 8) with marginal 0.1; leaf 2 is (2, 3) with marginal 0.4.
  EXPECT_NEAR(tree.PairPresenceProbability(leaves[0], leaves[2]),
              m[static_cast<size_t>(leaves[0])] * m[static_cast<size_t>(leaves[2])],
              1e-12);
}

TEST(AndXorTreeTest, PairPresenceMutuallyExclusiveIsZero) {
  AndXorTree tree = Figure1iTree();
  std::vector<NodeId> leaves = tree.LeafIds();
  // Two alternatives of tuple 1 can never coexist.
  EXPECT_EQ(tree.PairPresenceProbability(leaves[0], leaves[1]), 0.0);
}

TEST(AndXorTreeTest, PairPresenceSelfIsMarginal) {
  AndXorTree tree = Figure1iTree();
  std::vector<NodeId> leaves = tree.LeafIds();
  EXPECT_NEAR(tree.PairPresenceProbability(leaves[0], leaves[0]), 0.1, 1e-12);
}

// Property test: pairwise presence probabilities match exhaustive
// enumeration on random and/xor trees.
class PairPresenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(PairPresenceProperty, MatchesEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  RandomTreeOptions opts;
  opts.num_keys = 5;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree_or = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree_or.ok());
  const AndXorTree& tree = *tree_or;
  auto worlds_or = EnumerateWorlds(tree);
  ASSERT_TRUE(worlds_or.ok());
  const std::vector<World>& worlds = *worlds_or;

  const std::vector<NodeId>& leaves = tree.LeafIds();
  for (size_t i = 0; i < leaves.size(); ++i) {
    for (size_t j = i; j < leaves.size(); ++j) {
      double expected = 0.0;
      for (const World& w : worlds) {
        bool has_i = std::binary_search(w.leaf_ids.begin(), w.leaf_ids.end(),
                                        leaves[i]);
        bool has_j = std::binary_search(w.leaf_ids.begin(), w.leaf_ids.end(),
                                        leaves[j]);
        if (has_i && has_j) expected += w.prob;
      }
      EXPECT_NEAR(tree.PairPresenceProbability(leaves[i], leaves[j]), expected,
                  1e-9)
          << "leaves " << leaves[i] << ", " << leaves[j];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairPresenceProperty,
                         ::testing::Range(0, 12));

TEST(BuildersTest, TupleIndependentShape) {
  std::vector<IndependentTuple> tuples;
  for (int i = 0; i < 3; ++i) {
    IndependentTuple t;
    t.alt = Alt(i, i + 1.0);
    t.prob = 0.5;
    tuples.push_back(t);
  }
  auto tree = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->NumLeaves(), 3);
  EXPECT_NEAR(tree->KeyMarginal(0), 0.5, 1e-12);
}

TEST(BuildersTest, EmptyInputRejected) {
  EXPECT_FALSE(MakeTupleIndependent({}).ok());
  EXPECT_FALSE(MakeBlockIndependent({}).ok());
  EXPECT_FALSE(MakeBlockIndependent({Block{}}).ok());
}

TEST(BuildersTest, AttributeUncertainTable) {
  auto tree = MakeAttributeUncertain({{0.5, 0.3}, {0.0, 0.9}});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Keys().size(), 2u);
  EXPECT_NEAR(tree->KeyMarginal(0), 0.8, 1e-12);
  EXPECT_NEAR(tree->KeyMarginal(1), 0.9, 1e-12);
}

TEST(BuildersTest, AttributeUncertainRejectsEmptyRow) {
  EXPECT_FALSE(MakeAttributeUncertain({{0.0, 0.0}}).ok());
}

TEST(AndXorTreeTest, ToStringMentionsStructure) {
  AndXorTree tree = Figure1iTree();
  std::string s = tree.ToString();
  EXPECT_NE(s.find("and"), std::string::npos);
  EXPECT_NE(s.find("xor"), std::string::npos);
  EXPECT_NE(s.find("leaf key=1"), std::string::npos);
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "matching/hungarian.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/rng.h"

namespace cpdb {
namespace {

// Brute force over all row->column injections.
double BruteForceMin(const std::vector<std::vector<double>>& cost) {
  size_t n = cost.size(), m = cost[0].size();
  std::vector<int> cols(m);
  std::iota(cols.begin(), cols.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  // Permute columns; use the first n as the assignment.
  std::sort(cols.begin(), cols.end());
  do {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) total += cost[i][static_cast<size_t>(cols[i])];
    best = std::min(best, total);
  } while (std::next_permutation(cols.begin(), cols.end()));
  return best;
}

TEST(HungarianTest, SquareKnownInstance) {
  std::vector<std::vector<double>> cost = {
      {4, 1, 3},
      {2, 0, 5},
      {3, 2, 2},
  };
  auto a = SolveAssignmentMin(cost);
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(a->total, 5.0);  // 1 + 2 + 2
  EXPECT_EQ(a->row_to_col[0], 1);
  EXPECT_EQ(a->row_to_col[1], 0);
  EXPECT_EQ(a->row_to_col[2], 2);
}

TEST(HungarianTest, RectangularUsesBestColumns) {
  std::vector<std::vector<double>> cost = {
      {10, 10, 1, 10},
      {10, 2, 10, 10},
  };
  auto a = SolveAssignmentMin(cost);
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(a->total, 3.0);
  EXPECT_EQ(a->row_to_col[0], 2);
  EXPECT_EQ(a->row_to_col[1], 1);
}

TEST(HungarianTest, RejectsBadShapes) {
  EXPECT_FALSE(SolveAssignmentMin({}).ok());
  EXPECT_FALSE(SolveAssignmentMin({{1.0, 2.0}, {1.0}}).ok());  // ragged
  EXPECT_FALSE(SolveAssignmentMin({{1.0}, {2.0}}).ok());  // rows > cols
}

TEST(HungarianTest, MaxIsNegatedMin) {
  std::vector<std::vector<double>> profit = {
      {4, 1, 3},
      {2, 0, 5},
  };
  auto a = SolveAssignmentMax(profit);
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(a->total, 9.0);  // 4 + 5
}

TEST(HungarianTest, HandlesNegativeCosts) {
  std::vector<std::vector<double>> cost = {
      {-5, 0},
      {0, -3},
  };
  auto a = SolveAssignmentMin(cost);
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(a->total, -8.0);
}

class HungarianRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(HungarianRandomProperty, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 17);
  int rows = static_cast<int>(rng.UniformInt(1, 5));
  int cols = rows + static_cast<int>(rng.UniformInt(0, 3));
  std::vector<std::vector<double>> cost(
      static_cast<size_t>(rows), std::vector<double>(static_cast<size_t>(cols)));
  for (auto& row : cost) {
    for (double& c : row) c = rng.Uniform(-10.0, 10.0);
  }
  auto a = SolveAssignmentMin(cost);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(a->total, BruteForceMin(cost), 1e-9);
  // The assignment must be a valid injection.
  std::vector<bool> used(static_cast<size_t>(cols), false);
  for (int col : a->row_to_col) {
    ASSERT_GE(col, 0);
    ASSERT_LT(col, cols);
    EXPECT_FALSE(used[static_cast<size_t>(col)]);
    used[static_cast<size_t>(col)] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianRandomProperty,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace cpdb

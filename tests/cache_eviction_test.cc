// Copyright 2026 The ConsensusDB Authors
//
// The eviction + single-flight regression suite for the serving layer's
// byte-budgeted caches (service/lru_cache.h via RankDistCache and
// MarginalsCache). The load-bearing claims, each run with real threads so
// the TSan CI job watches the lock discipline:
//
//   * the charged byte total never exceeds the budget, in any stats()
//     snapshot, even while GetOrCompute calls race evictions;
//   * concurrent misses for one key compute once (single-flight), and
//     every caller — computing, coalescing, or hitting — receives
//     bitwise-identical values;
//   * answers are bitwise independent of the budget: a cache squeezed to a
//     couple of entries (or to nothing) serves exactly the bytes an
//     unbounded cache or no cache serves, because eviction only ever costs
//     recomputation of a deterministic value.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "io/tree_text.h"
#include "service/marginals_cache.h"
#include "service/query_scheduler.h"
#include "service/rank_dist_cache.h"
#include "service/tree_catalog.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

constexpr char kTreeText[] =
    "(and (xor 0.6 (leaf key=1 score=8) 0.3 (leaf key=1 score=5))"
    " (xor 0.7 (leaf key=2 score=9))"
    " (xor 0.5 (leaf key=3 score=7) 0.5 (leaf key=3 score=6)))";

AndXorTree RandomTree(uint64_t seed, int num_keys = 6) {
  Rng rng(seed);
  RandomTreeOptions opts;
  opts.num_keys = num_keys;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  EXPECT_TRUE(tree.ok());
  return *std::move(tree);
}

// The charge of one n-element marginal vector, measured (not assumed) by
// feeding a probe entry through an unbounded cache.
int64_t MeasuredMarginalCost(size_t n) {
  MarginalsCache probe;
  probe.GetOrCompute(StructKey(1), [n] { return std::vector<double>(n, 0.5); });
  return probe.stats().bytes;
}

// Bitwise comparison of two rank distributions over their full support.
void ExpectSameDist(const RankDistribution& a, const RankDistribution& b) {
  ASSERT_EQ(a.k(), b.k());
  ASSERT_EQ(a.keys(), b.keys());
  for (KeyId key : a.keys()) {
    for (int i = 1; i <= a.k(); ++i) {
      ASSERT_EQ(a.PrRankEq(key, i), b.PrRankEq(key, i))
          << "key " << key << " rank " << i;
      ASSERT_EQ(a.PrRankLe(key, i), b.PrRankLe(key, i));
    }
  }
}

// ---------------------------------------------------------------------------
// Deterministic LRU mechanics (single-threaded)
// ---------------------------------------------------------------------------

TEST(CacheEvictionTest, EvictsLeastRecentlyUsedFirst) {
  const int64_t cost = MeasuredMarginalCost(8);
  MarginalsCache cache(2 * cost);  // room for exactly two entries
  auto vec = [](double fill) { return std::vector<double>(8, fill); };
  cache.GetOrCompute(StructKey(1), [&] { return vec(0.1); });
  cache.GetOrCompute(StructKey(2), [&] { return vec(0.2); });
  // Touch 1: now 2 is the least recently used.
  EXPECT_NE(cache.GetOrCompute(StructKey(1), [&] { return vec(9.9); }), nullptr);
  cache.GetOrCompute(StructKey(3), [&] { return vec(0.3); });  // evicts 2, not 1
  EXPECT_NE(cache.Peek(StructKey(1)), nullptr);
  EXPECT_EQ(cache.Peek(StructKey(2)), nullptr);
  EXPECT_NE(cache.Peek(StructKey(3)), nullptr);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.bytes, 2 * cost);
  EXPECT_LE(stats.bytes, cache.byte_budget());
}

TEST(CacheEvictionTest, OversizedEntryIsServedButNeverRetained) {
  const int64_t cost = MeasuredMarginalCost(64);
  MarginalsCache cache(cost - 1);  // no single entry fits
  auto handle =
      cache.GetOrCompute(StructKey(7), [] { return std::vector<double>(64, 0.25); });
  ASSERT_NE(handle, nullptr);  // the caller still gets its value...
  EXPECT_EQ((*handle)[0], 0.25);
  EXPECT_EQ(cache.Peek(StructKey(7)), nullptr);  // ...but nothing was retained
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes, 0);
  EXPECT_EQ(stats.evictions, 0);  // never retained, so never "evicted"
  // The next call recomputes: a miss, not a hit.
  cache.GetOrCompute(StructKey(7), [] { return std::vector<double>(64, 0.25); });
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(CacheEvictionTest, HandlesSurviveEvictionAndClear) {
  AndXorTree tree = *ParseTree(kTreeText);
  RankDistCache probe;  // measure one entry's charge
  auto first =
      probe.GetOrCompute(StructKey(1), 2,
                         [&] { return ComputeRankDistribution(tree, 2); });
  const int64_t cost = probe.stats().bytes;

  RankDistCache cache(cost);  // exactly one entry fits
  auto a =
      cache.GetOrCompute(StructKey(1), 2,
                         [&] { return ComputeRankDistribution(tree, 2); });
  auto b =
      cache.GetOrCompute(StructKey(2), 2,
                         [&] { return ComputeRankDistribution(tree, 2); });
  EXPECT_EQ(cache.stats().evictions, 1);  // a's entry was pushed out
  EXPECT_EQ(cache.Peek(StructKey(1), 2), nullptr);
  // The evicted handle still works and still carries the right bits.
  ExpectSameDist(*a, *first);
  cache.Clear();
  ExpectSameDist(*b, *first);
  EXPECT_EQ(cache.stats().bytes, 0);
}

// ---------------------------------------------------------------------------
// Concurrency: the TSan targets
// ---------------------------------------------------------------------------

// Single-flight under contention: one compute, everyone shares its bits.
// With the budget at 0 the cache retains nothing, reducing it to a pure
// in-flight gate — computes must then equal misses exactly (no entry ever
// answers), and hits stay 0.
TEST(CacheEvictionTest, ZeroBudgetStillCoalescesConcurrentComputes) {
  AndXorTree tree = *ParseTree(kTreeText);
  RankDistCache cache(0);
  constexpr int kThreads = 8;
  std::atomic<int> computes{0};
  std::vector<std::shared_ptr<const RankDistribution>> handles(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      handles[t] = cache.GetOrCompute(StructKey(5), 2, [&] {
        ++computes;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return ComputeRankDistribution(tree, 2);
      });
    });
  }
  for (std::thread& w : workers) w.join();
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes, 0);
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(computes.load(), stats.misses);  // every miss computed...
  EXPECT_LT(stats.misses, kThreads);  // ...but the sleeps force coalescing
  EXPECT_EQ(stats.misses + stats.coalesced, kThreads);
  RankDistribution reference = ComputeRankDistribution(tree, 2);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(handles[t], nullptr);
    ExpectSameDist(*handles[t], reference);
  }
}

// A compute that throws must not wedge its key: the exception propagates
// to the computing caller, coalesced waiters wake and retry instead of
// blocking forever on a flight that will never land, and the key stays
// fully usable afterward.
TEST(CacheEvictionTest, ThrowingComputeWakesWaitersAndLeavesKeyUsable) {
  MarginalsCache cache;
  EXPECT_THROW(cache.GetOrCompute(
                   StructKey(3),
                   []() -> std::vector<double> {
                     throw std::runtime_error("transient");
                   }),
               std::runtime_error);
  // The key recovered: the next call is an ordinary miss that computes.
  auto handle =
      cache.GetOrCompute(StructKey(3), [] { return std::vector<double>(4, 0.5); });
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ((*handle)[0], 0.5);
  EXPECT_EQ(cache.stats().misses, 2);

  // Concurrently: the first attempt fails after waiters have coalesced on
  // it; every thread must still end up with the (identical) value, via
  // retry, not a hang.
  std::atomic<int> attempts{0};
  auto flaky = [&]() -> std::vector<double> {
    int attempt = ++attempts;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (attempt == 1) throw std::runtime_error("transient");
    return std::vector<double>(4, 0.25);
  };
  constexpr int kThreads = 6;
  std::vector<std::shared_ptr<const std::vector<double>>> handles(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (;;) {
        try {
          handles[t] = cache.GetOrCompute(StructKey(9), flaky);
          return;
        } catch (const std::runtime_error&) {
          // The transient failure surfaced in this caller; try again.
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_GE(attempts.load(), 2);  // one failure, at least one success
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(handles[t], nullptr) << "thread " << t;
    EXPECT_EQ((*handles[t])[0], 0.25);
  }
}

// The churn race: many threads, more keys than the budget holds, evictions
// racing GetOrCompute calls. Three invariants, checked continuously from
// every thread: the budget is never exceeded in any stats() snapshot,
// every handle is valid, and every answer is bitwise the reference for its
// key.
TEST(CacheEvictionTest, BudgetHoldsAndAnswersStayBitwiseUnderChurnRaces) {
  constexpr int kKeys = 12;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 40;
  std::vector<AndXorTree> trees;
  std::vector<RankDistribution> references;
  for (int i = 0; i < kKeys; ++i) {
    trees.push_back(RandomTree(1000 + static_cast<uint64_t>(i)));
    references.push_back(ComputeRankDistribution(trees.back(), 2 + i % 3));
  }

  // Budget: measured charge of the two largest entries — guaranteed churn.
  int64_t largest = 0;
  int64_t second = 0;
  for (int i = 0; i < kKeys; ++i) {
    RankDistCache one;
    one.GetOrCompute(StructKey(1), 2, [&] { return references[i]; });
    int64_t cost = one.stats().bytes;
    if (cost >= largest) {
      second = largest;
      largest = cost;
    } else if (cost > second) {
      second = cost;
    }
  }
  const int64_t budget = largest + second;
  RankDistCache cache(budget);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(77 + static_cast<uint64_t>(t));
      for (int op = 0; op < kOpsPerThread; ++op) {
        const int i = static_cast<int>(rng.Next() % kKeys);
        const int k = 2 + i % 3;
        auto handle = cache.GetOrCompute(
            StructKey(static_cast<uint64_t>(i)), k,
            [&] { return ComputeRankDistribution(trees[i], k); });
        ASSERT_NE(handle, nullptr);
        ExpectSameDist(*handle, references[i]);
        CacheStats stats = cache.stats();
        ASSERT_LE(stats.bytes, budget) << "budget exceeded mid-churn";
        ASSERT_GE(stats.bytes, 0);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  CacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0) << "the workload was meant to churn";
  EXPECT_LE(stats.bytes, budget);
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
            static_cast<int64_t>(kThreads) * kOpsPerThread);
}

// The same churn through the MarginalsCache.
TEST(CacheEvictionTest, MarginalsCacheChurnKeepsBudgetAndBits) {
  constexpr int kKeys = 8;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 50;
  std::vector<AndXorTree> trees;
  std::vector<std::vector<double>> references;
  for (int i = 0; i < kKeys; ++i) {
    trees.push_back(RandomTree(2000 + static_cast<uint64_t>(i)));
    references.push_back(trees.back().LeafMarginals());
  }
  const int64_t budget = 3 * MeasuredMarginalCost(references[0].size());
  MarginalsCache cache(budget);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(5 + static_cast<uint64_t>(t));
      for (int op = 0; op < kOpsPerThread; ++op) {
        const int i = static_cast<int>(rng.Next() % kKeys);
        auto handle = cache.GetOrCompute(
            StructKey(static_cast<uint64_t>(i)),
            [&] { return trees[i].LeafMarginals(); });
        ASSERT_NE(handle, nullptr);
        ASSERT_EQ(*handle, references[i]);  // vector == is bitwise here
        ASSERT_LE(cache.stats().bytes, budget);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_LE(cache.stats().bytes, budget);
}

// ---------------------------------------------------------------------------
// End to end: budget-independence of served answers
// ---------------------------------------------------------------------------

// The acceptance scenario, at the scheduler level: a churn workload (many
// distinct (tree, k) keys) against a tiny budget answers bitwise exactly
// what an unbounded cache and no cache answer, while the tiny cache
// actually evicts and never exceeds its budget.
TEST(CacheEvictionTest, TinyAndInfiniteBudgetsServeIdenticalAnswers) {
  constexpr int kTrees = 6;
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.use_fast_bid_path = false;
  Engine engine(engine_options);
  TreeCatalog catalog;
  for (int i = 0; i < kTrees; ++i) {
    ASSERT_TRUE(
        catalog.Insert("tree" + std::to_string(i), RandomTree(3000 + i)).ok());
  }

  std::vector<ServiceRequest> churn;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kTrees; ++i) {
      ServiceRequest topk;
      topk.op = ServiceRequest::Op::kTopK;
      topk.tree_name = "tree" + std::to_string(i);
      topk.k = 2 + (i + round) % 3;
      topk.metric =
          i % 2 == 0 ? TopKMetric::kSymDiff : TopKMetric::kFootrule;
      churn.push_back(topk);
      ServiceRequest world;
      world.op = ServiceRequest::Op::kWorld;
      world.tree_name = topk.tree_name;
      world.median_world = i % 2 == 1;
      churn.push_back(world);
    }
  }

  SchedulerOptions tiny_options;
  tiny_options.cache_budget_bytes = 4096;  // a couple of entries at most
  QueryScheduler tiny(&engine, &catalog, tiny_options);
  QueryScheduler unbounded(&engine, &catalog);
  SchedulerOptions no_cache;
  no_cache.use_cache = false;
  QueryScheduler uncached(&engine, &catalog, no_cache);

  auto tiny_results = tiny.ExecuteBatch(churn);
  auto warm_tiny_results = tiny.ExecuteBatch(churn);  // evicted + re-folded
  auto unbounded_results = unbounded.ExecuteBatch(churn);
  auto uncached_results = uncached.ExecuteBatch(churn);
  for (size_t i = 0; i < churn.size(); ++i) {
    ASSERT_TRUE(tiny_results[i].ok()) << tiny_results[i].status().ToString();
    ASSERT_TRUE(unbounded_results[i].ok());
    ASSERT_TRUE(uncached_results[i].ok());
    EXPECT_EQ(tiny_results[i]->keys, uncached_results[i]->keys) << i;
    EXPECT_EQ(tiny_results[i]->expected_distance,
              uncached_results[i]->expected_distance);
    EXPECT_EQ(warm_tiny_results[i]->keys, uncached_results[i]->keys);
    EXPECT_EQ(warm_tiny_results[i]->expected_distance,
              uncached_results[i]->expected_distance);
    EXPECT_EQ(unbounded_results[i]->keys, uncached_results[i]->keys);
    EXPECT_EQ(unbounded_results[i]->expected_distance,
              uncached_results[i]->expected_distance);
  }
  // The tiny cache worked for its living: it evicted, stayed in budget,
  // and the unbounded sibling kept every distinct (fingerprint, k) entry.
  CacheStats tiny_stats = tiny.cache_stats();
  EXPECT_GT(tiny_stats.evictions, 0);
  EXPECT_LE(tiny_stats.bytes, tiny_options.cache_budget_bytes);
  EXPECT_LE(tiny.marginals_stats().bytes, tiny_options.cache_budget_bytes);
  CacheStats unbounded_stats = unbounded.cache_stats();
  EXPECT_EQ(unbounded_stats.evictions, 0);
  // 6 trees x 3 distinct k values each over the rounds.
  EXPECT_EQ(unbounded_stats.entries, kTrees * 3);
  EXPECT_EQ(unbounded.marginals_stats().entries, kTrees);
}

}  // namespace
}  // namespace cpdb

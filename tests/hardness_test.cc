// Copyright 2026 The ConsensusDB Authors
//
// Exercises the Section 4.1 MAX-2-SAT reduction end to end: the key-level
// median of the projected query result recovers the MAX-2-SAT optimum, and
// the tractable leaf-level and/xor median is a *different* (easier) problem.

#include "core/hardness.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/set_consensus.h"
#include "model/possible_worlds.h"

namespace cpdb {
namespace {

Max2SatInstance PaperStyleInstance() {
  // (x0 or !x1), (x1 or x2), (!x0 or !x2), (x0 or x2)
  Max2SatInstance instance;
  instance.num_vars = 3;
  instance.clauses = {
      {0, true, 1, false},
      {1, true, 2, true},
      {0, false, 2, false},
      {0, true, 2, true},
  };
  return instance;
}

TEST(HardnessTest, ClauseSatisfaction) {
  TwoSatClause c{0, true, 1, false};
  EXPECT_TRUE(ClauseSatisfied(c, {true, true}));
  EXPECT_TRUE(ClauseSatisfied(c, {false, false}));
  EXPECT_FALSE(ClauseSatisfied(c, {false, true}));
}

TEST(HardnessTest, BruteForceOnSatisfiableInstance) {
  auto best = BruteForceMax2Sat(PaperStyleInstance());
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, 4);  // x0=1, x1=1, x2=0 satisfies all four
}

TEST(HardnessTest, BruteForceOnContradiction) {
  // (x0)(x0) vs (!x0)(!x0): at most 2 of 4 "clauses" hold (unit clauses
  // encoded by repeating the literal).
  Max2SatInstance instance;
  instance.num_vars = 1;
  instance.clauses = {
      {0, true, 0, true},
      {0, true, 0, true},
      {0, false, 0, false},
      {0, false, 0, false},
  };
  auto best = BruteForceMax2Sat(instance);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, 2);
}

TEST(HardnessTest, ResultWorldsFormADistribution) {
  auto worlds = EnumerateQueryResultWorlds(PaperStyleInstance());
  ASSERT_TRUE(worlds.ok());
  double total = 0.0;
  for (const ResultWorld& w : *worlds) total += w.prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Every 2-clause holds with marginal 3/4 over uniform assignments.
  std::vector<double> marginal(4, 0.0);
  for (const ResultWorld& w : *worlds) {
    for (int c : w.satisfied_clauses) marginal[static_cast<size_t>(c)] += w.prob;
  }
  for (double m : marginal) EXPECT_NEAR(m, 0.75, 1e-12);
}

TEST(HardnessTest, MedianRecoversMax2SatOptimum) {
  // The paper's reduction: median answer = maximum satisfiable clause set.
  for (const Max2SatInstance& instance :
       {PaperStyleInstance(), [] {
          Max2SatInstance hard;
          hard.num_vars = 4;
          hard.clauses = {
              {0, true, 1, true},   {0, false, 1, false},
              {2, true, 3, false},  {2, false, 3, true},
              {0, true, 3, true},   {1, false, 2, true},
          };
          return hard;
        }()}) {
    auto median = MedianQueryResult(instance);
    auto best = BruteForceMax2Sat(instance);
    ASSERT_TRUE(median.ok());
    ASSERT_TRUE(best.ok());
    EXPECT_EQ(static_cast<int>(median->size()), *best);
  }
}

TEST(HardnessTest, RandomInstancesAgree) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    Max2SatInstance instance;
    instance.num_vars = 3 + static_cast<int>(rng.UniformInt(0, 2));
    int num_clauses = 3 + static_cast<int>(rng.UniformInt(0, 4));
    for (int c = 0; c < num_clauses; ++c) {
      TwoSatClause clause;
      clause.var1 = static_cast<int>(rng.UniformInt(0, instance.num_vars - 1));
      // Distinct variables keep every clause marginal at exactly 3/4, which
      // the reduction's counting argument relies on.
      do {
        clause.var2 =
            static_cast<int>(rng.UniformInt(0, instance.num_vars - 1));
      } while (clause.var2 == clause.var1);
      clause.positive1 = rng.Bernoulli(0.5);
      clause.positive2 = rng.Bernoulli(0.5);
      instance.clauses.push_back(clause);
    }
    auto median = MedianQueryResult(instance);
    auto best = BruteForceMax2Sat(instance);
    ASSERT_TRUE(median.ok());
    ASSERT_TRUE(best.ok());
    EXPECT_EQ(static_cast<int>(median->size()), *best) << "trial " << trial;
  }
}

TEST(HardnessTest, QueryResultTreeMatchesDistribution) {
  Max2SatInstance instance = PaperStyleInstance();
  auto tree = BuildQueryResultTree(instance);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto tree_worlds = EnumerateWorlds(*tree);
  ASSERT_TRUE(tree_worlds.ok());
  auto result_worlds = EnumerateQueryResultWorlds(instance);
  ASSERT_TRUE(result_worlds.ok());

  // Key marginals of the tree equal the clause marginals (0.75 each).
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(tree->KeyMarginal(c), 0.75, 1e-12);
  }
}

TEST(HardnessTest, LeafLevelMedianIsADifferentProblem) {
  // The tree's leaf-level median DP is tractable, but each duplicated leaf
  // has a small marginal (below 1/2), so the leaf-level objective is
  // minimized by small worlds — unlike the key-level median that recovers
  // MAX-2-SAT. This documents why Corollary 1 does not contradict the
  // NP-hardness of the reduction.
  Max2SatInstance instance = PaperStyleInstance();
  auto tree = BuildQueryResultTree(instance);
  ASSERT_TRUE(tree.ok());
  std::vector<NodeId> leaf_median = MedianWorldSymDiff(*tree);
  auto key_median = MedianQueryResult(instance);
  ASSERT_TRUE(key_median.ok());
  EXPECT_LT(leaf_median.size(), key_median->size());
}

TEST(HardnessTest, RejectsOversizedInstances) {
  Max2SatInstance instance;
  instance.num_vars = 25;
  EXPECT_FALSE(BruteForceMax2Sat(instance).ok());
  instance.num_vars = 2;
  instance.clauses = {{0, true, 5, true}};
  EXPECT_FALSE(BruteForceMax2Sat(instance).ok());
}

}  // namespace
}  // namespace cpdb

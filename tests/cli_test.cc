// Copyright 2026 The ConsensusDB Authors
//
// Drives the cpdb_cli command surface in-process: every command, both input
// formats, and the error paths.

#include "tools/cli_lib.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/set_consensus.h"
#include "engine/engine.h"
#include "io/request_protocol.h"
#include "io/table_io.h"
#include "io/tree_text.h"
#include "model/builders.h"
#include "model/flat_tree.h"
#include "model/possible_worlds.h"

namespace cpdb {
namespace {

// Runs the CLI capturing stdout/stderr through temp files.
struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult RunCliArgs(const std::vector<std::string>& args) {
  std::string out_path = ::testing::TempDir() + "/cli_out.txt";
  std::string err_path = ::testing::TempDir() + "/cli_err.txt";
  std::FILE* out = std::fopen(out_path.c_str(), "w+");
  std::FILE* err = std::fopen(err_path.c_str(), "w+");
  std::vector<std::string> full = {"cpdb_cli"};
  full.insert(full.end(), args.begin(), args.end());
  int code = RunCli(full, out, err);
  std::fclose(out);
  std::fclose(err);
  return {code, *ReadFileToString(out_path), *ReadFileToString(err_path)};
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tree_path_ = ::testing::TempDir() + "/cli_tree.sexp";
    bid_path_ = ::testing::TempDir() + "/cli_table.bid";
    ASSERT_TRUE(WriteStringToFile(
                    tree_path_,
                    "(and (xor 0.6 (leaf key=1 score=8 label=0)"
                    "          0.3 (leaf key=1 score=5 label=1))"
                    " (xor 0.7 (leaf key=2 score=9 label=0))"
                    " (xor 0.5 (leaf key=3 score=7 label=1)"
                    "          0.5 (leaf key=3 score=6 label=0)))")
                    .ok());
    ASSERT_TRUE(WriteStringToFile(bid_path_,
                                  "# key prob score label\n"
                                  "1 0.6 8 0\n"
                                  "1 0.3 5 1\n"
                                  "2 0.7 9 0\n"
                                  "3 0.5 7 1\n"
                                  "3 0.5 6 0\n")
                    .ok());
  }
  std::string tree_path_;
  std::string bid_path_;
};

TEST_F(CliTest, HelpPrintsUsage) {
  CliResult r = RunCliArgs({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("consensus-world"), std::string::npos);
}

TEST_F(CliTest, ValidateBothFormats) {
  EXPECT_EQ(RunCliArgs({"validate", tree_path_}).code, 0);
  CliResult r = RunCliArgs({"validate", bid_path_, "--format=bid"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("5 leaves"), std::string::npos);
}

TEST_F(CliTest, ValidateRejectsBrokenInput) {
  std::string bad = ::testing::TempDir() + "/cli_bad.sexp";
  ASSERT_TRUE(WriteStringToFile(
                  bad, "(xor 0.9 (leaf key=1 score=1) 0.9 (leaf key=1 score=2))")
                  .ok());
  CliResult r = RunCliArgs({"validate", bad});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("INVALID"), std::string::npos);
}

TEST_F(CliTest, MarginalsRoundTripTheComputedDoublesExactly) {
  // The satellite regression: offline output now uses the same shortest
  // round-trip formatting as the serve wire, so strtod of every printed
  // probability reproduces the computed double bitwise ("%.6f" used to
  // truncate — and to round 0.8999999999999999 up to a tidy-looking
  // 0.900000 that was not the answer).
  CliResult r = RunCliArgs({"marginals", tree_path_});
  EXPECT_EQ(r.code, 0);
  auto tree = ParseTree(*ReadFileToString(tree_path_));
  ASSERT_TRUE(tree.ok());
  int matched = 0;
  for (KeyId key : tree->Keys()) {
    const std::string prefix = std::to_string(key) + " ";
    size_t pos = r.out.find(prefix);
    ASSERT_NE(pos, std::string::npos) << "key " << key << " in:\n" << r.out;
    const char* printed = r.out.c_str() + pos + prefix.size();
    EXPECT_EQ(std::strtod(printed, nullptr), tree->KeyMarginal(key))
        << "key " << key << ": printed '" << printed
        << "' does not round-trip the computed marginal";
    ++matched;
  }
  EXPECT_EQ(matched, 3);
}

TEST_F(CliTest, DumpFlatPrintsTheCompiledRecordTable) {
  // Both input formats produce a record-table dump whose contents agree
  // with an in-process compile of the same tree.
  CliResult r = RunCliArgs({"dump-flat", tree_path_});
  EXPECT_EQ(r.code, 0) << r.err;
  auto tree = ParseTree(*ReadFileToString(tree_path_));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(r.out, FlatTree::Compile(*tree).ToString());
  // The dump names every op kind the compiler can emit for this tree.
  EXPECT_NE(r.out.find("leaf"), std::string::npos);
  EXPECT_NE(r.out.find("xor_init"), std::string::npos);
  EXPECT_NE(r.out.find("mul"), std::string::npos);

  CliResult bid = RunCliArgs({"dump-flat", bid_path_, "--format=bid"});
  EXPECT_EQ(bid.code, 0) << bid.err;
  EXPECT_NE(bid.out.find("flat_tree ops="), std::string::npos);

  // Invalid input fails loudly like every other command.
  EXPECT_EQ(RunCliArgs({"dump-flat", "/does/not/exist"}).code, 1);
}

TEST_F(CliTest, DumpCanonPrintsTheTwoLevelIdentity) {
  // A second file holding the fixture tree with its commutative AND
  // children rotated: a different wire identity, the same shape.
  std::string permuted_path = ::testing::TempDir() + "/cli_tree_perm.sexp";
  ASSERT_TRUE(WriteStringToFile(
                  permuted_path,
                  "(and (xor 0.5 (leaf key=3 score=7 label=1)"
                  "          0.5 (leaf key=3 score=6 label=0))"
                  " (xor 0.7 (leaf key=2 score=9 label=0))"
                  " (xor 0.6 (leaf key=1 score=8 label=0)"
                  "          0.3 (leaf key=1 score=5 label=1)))")
                  .ok());

  CliResult original = RunCliArgs({"dump-canon", tree_path_});
  ASSERT_EQ(original.code, 0) << original.err;
  CliResult permuted = RunCliArgs({"dump-canon", permuted_path});
  ASSERT_EQ(permuted.code, 0) << permuted.err;

  auto field = [](const CliResult& r, const std::string& name) {
    const std::string prefix = name + " ";
    size_t start = r.out.find(prefix);
    EXPECT_NE(start, std::string::npos) << name << " in:\n" << r.out;
    if (start == std::string::npos) return std::string();
    start += prefix.size();
    return r.out.substr(start, r.out.find('\n', start) - start);
  };

  // Different wire identities, one structural identity.
  EXPECT_NE(field(original, "content_fp"), field(permuted, "content_fp"));
  EXPECT_EQ(field(original, "struct_key"), field(permuted, "struct_key"));
  EXPECT_EQ(field(original, "canonical"), field(permuted, "canonical"));

  // The printed canonical line is a valid tree whose one-line form is
  // itself (canonicalization is idempotent through the printer).
  auto canonical = ParseTree(field(original, "canonical"));
  ASSERT_TRUE(canonical.ok());
  EXPECT_EQ(FormatTree(*canonical, /*indent=*/false),
            field(original, "canonical"));
  // The content line round-trips the input's wire-normalized form.
  auto tree = ParseTree(*ReadFileToString(tree_path_));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(field(original, "content"), FormatTree(*tree, /*indent=*/false));

  EXPECT_EQ(RunCliArgs({"dump-canon", "/does/not/exist"}).code, 1);
}

TEST_F(CliTest, WorldsSumToOne) {
  CliResult r = RunCliArgs({"worlds", tree_path_});
  EXPECT_EQ(r.code, 0);
  double total = 0.0;
  size_t pos = 0;
  int lines = 0;
  while (pos < r.out.size()) {
    total += std::atof(r.out.c_str() + pos);
    pos = r.out.find('\n', pos);
    if (pos == std::string::npos) break;
    ++pos;
    ++lines;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_EQ(lines, 3 * 2 * 2);  // (2 alts + absent) x (1 + absent) x 2 alts
}

TEST_F(CliTest, WorldsRespectsLimit) {
  CliResult r = RunCliArgs({"worlds", tree_path_, "--max-worlds=2"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("Resource exhausted"), std::string::npos);
}

TEST_F(CliTest, SampleIsDeterministicGivenSeed) {
  CliResult a = RunCliArgs({"sample", tree_path_, "--count=4", "--seed=9"});
  CliResult b = RunCliArgs({"sample", tree_path_, "--count=4", "--seed=9"});
  CliResult c = RunCliArgs({"sample", tree_path_, "--count=4", "--seed=10"});
  EXPECT_EQ(a.code, 0);
  EXPECT_EQ(a.out, b.out);
  EXPECT_NE(a.out, c.out);
}

TEST_F(CliTest, ConsensusWorldSymDiff) {
  CliResult mean = RunCliArgs({"consensus-world", tree_path_, "--answer=mean"});
  EXPECT_EQ(mean.code, 0);
  EXPECT_NE(mean.out.find("(1:8)"), std::string::npos);  // marginal 0.6
  EXPECT_NE(mean.out.find("(2:9)"), std::string::npos);  // marginal 0.7
  CliResult median = RunCliArgs({"consensus-world", tree_path_, "--answer=median"});
  EXPECT_EQ(median.code, 0);
}

TEST_F(CliTest, TopKAcrossMetrics) {
  for (const char* metric :
       {"symdiff", "intersection", "footrule", "kendall"}) {
    CliResult r = RunCliArgs({"topk", bid_path_, "--format=bid", "--k=2",
                       std::string("--metric=") + metric});
    EXPECT_EQ(r.code, 0) << metric << ": " << r.err;
    EXPECT_NE(r.out.find("top-2"), std::string::npos);
  }
  CliResult median = RunCliArgs({"topk", bid_path_, "--format=bid", "--k=2",
                          "--metric=symdiff", "--answer=median"});
  EXPECT_EQ(median.code, 0);
  CliResult any_size = RunCliArgs({"topk", bid_path_, "--format=bid", "--k=2",
                                   "--metric=symdiff", "--answer=any-size"});
  EXPECT_EQ(any_size.code, 0);
}

TEST_F(CliTest, TopKAllMetricsBatchesEveryMetric) {
  CliResult r = RunCliArgs({"topk", bid_path_, "--format=bid", "--k=2",
                            "--metric=all", "--threads=2"});
  EXPECT_EQ(r.code, 0) << r.err;
  for (const char* metric :
       {"symdiff", "intersection", "footrule", "kendall"}) {
    EXPECT_NE(r.out.find(std::string("top-2 (") + metric), std::string::npos)
        << metric << " missing from batch output:\n"
        << r.out;
    // Each line must agree with the corresponding single-metric query.
    CliResult single = RunCliArgs({"topk", bid_path_, "--format=bid", "--k=2",
                                   std::string("--metric=") + metric});
    EXPECT_EQ(single.code, 0);
    std::string line = single.out.substr(0, single.out.find('\n'));
    // The batch prints "(metric, mean)" where the single path echoes the
    // --answer flag value; compare the key list + distance tail.
    std::string tail = line.substr(line.find('['));
    EXPECT_NE(r.out.find(tail), std::string::npos)
        << metric << ": " << tail << " not in:\n"
        << r.out;
  }
}

// Offline command outputs round-trip the computed doubles exactly — the
// satellite fix that finished what PR 4 started on the serve wire. topk and
// consensus-world are pinned against engine/core bits; worlds and aggregate
// against the shortest-round-trip property itself (a truncated "%.6f" value
// re-formats differently after strtod; a shortest form is a fixed point).
TEST_F(CliTest, OfflineDistancesRoundTripEngineBitsExactly) {
  // topk: the printed E[distance] must strtod back to the engine's bits.
  auto blocks = ParseBidTable(*ReadFileToString(bid_path_));
  ASSERT_TRUE(blocks.ok());
  auto tree = MakeBlockIndependent(*blocks);
  ASSERT_TRUE(tree.ok());
  Engine engine;
  for (const char* metric :
       {"symdiff", "intersection", "footrule", "kendall"}) {
    CliResult r = RunCliArgs({"topk", bid_path_, "--format=bid", "--k=2",
                              std::string("--metric=") + metric});
    ASSERT_EQ(r.code, 0) << r.err;
    size_t pos = r.out.find("E[distance] = ");
    ASSERT_NE(pos, std::string::npos);
    double printed =
        std::strtod(r.out.c_str() + pos + strlen("E[distance] = "), nullptr);
    auto direct = engine.ConsensusTopK(*tree, 2, *ParseTopKMetricName(metric));
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(printed, direct->expected_distance) << metric;
  }

  // consensus-world: same property against the marginals-fold path the
  // command runs.
  CliResult world = RunCliArgs({"consensus-world", tree_path_});
  ASSERT_EQ(world.code, 0) << world.err;
  auto sexp_tree = ParseTree(*ReadFileToString(tree_path_));
  ASSERT_TRUE(sexp_tree.ok());
  std::vector<double> marginal = engine.LeafMarginals(*sexp_tree);
  double expected = ExpectedSymDiffDistanceFromMarginals(
      *sexp_tree, marginal, MeanWorldSymDiffFromMarginals(*sexp_tree, marginal));
  size_t pos = world.out.find("E[distance] = ");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(
      std::strtod(world.out.c_str() + pos + strlen("E[distance] = "), nullptr),
      expected);

  // worlds: every printed probability is in shortest round-trip form, and
  // the multiset agrees bitwise with the enumerated distribution.
  CliResult worlds = RunCliArgs({"worlds", tree_path_});
  ASSERT_EQ(worlds.code, 0);
  std::vector<double> printed_probs;
  size_t cursor = 0;
  while (cursor < worlds.out.size()) {
    size_t space = worlds.out.find(' ', cursor);
    size_t newline = worlds.out.find('\n', cursor);
    std::string token = worlds.out.substr(cursor, space - cursor);
    printed_probs.push_back(std::strtod(token.c_str(), nullptr));
    EXPECT_EQ(FormatRoundTripDouble(printed_probs.back()), token)
        << "'" << token << "' is not the shortest round-trip form";
    cursor = newline == std::string::npos ? worlds.out.size() : newline + 1;
  }
  auto enumerated = EnumerateWorlds(*sexp_tree, 4096);
  ASSERT_TRUE(enumerated.ok());
  std::vector<double> computed_probs;
  for (const World& w : *enumerated) computed_probs.push_back(w.prob);
  std::sort(printed_probs.begin(), printed_probs.end());
  std::sort(computed_probs.begin(), computed_probs.end());
  EXPECT_EQ(printed_probs, computed_probs);

  // aggregate: the group means are in shortest round-trip form.
  CliResult agg = RunCliArgs({"aggregate", bid_path_, "--format=bid"});
  ASSERT_EQ(agg.code, 0) << agg.err;
  int mean_columns = 0;
  for (size_t line = agg.out.find('\n') + 1; line < agg.out.size();) {
    size_t first_space = agg.out.find(' ', line);
    size_t second_space = agg.out.find(' ', first_space + 1);
    ASSERT_NE(second_space, std::string::npos);
    std::string token =
        agg.out.substr(first_space + 1, second_space - first_space - 1);
    EXPECT_EQ(FormatRoundTripDouble(std::strtod(token.c_str(), nullptr)),
              token);
    ++mean_columns;
    size_t newline = agg.out.find('\n', line);
    line = newline == std::string::npos ? agg.out.size() : newline + 1;
  }
  EXPECT_GT(mean_columns, 0);
}

TEST_F(CliTest, IntegerFlagsParseStrictly) {
  // Rejects: trailing garbage, empty values, non-numeric strings — for every
  // integer flag, at argument-parse time (exit 2, before any file I/O).
  for (const char* flag :
       {"--k=1o", "--k=", "--k=abc", "--count=5x", "--count=",
        "--max-worlds=many", "--max-worlds=12.5", "--seed=0x9",
        "--seed=", "--threads=two"}) {
    CliResult r = RunCliArgs({"sample", tree_path_, flag});
    EXPECT_EQ(r.code, 2) << flag << " was accepted";
    EXPECT_NE(r.err.find("expects an integer"), std::string::npos) << flag;
  }
  // Syntactically valid integers outside the flag's range are rejected too,
  // never silently clamped.
  CliResult neg = RunCliArgs({"worlds", tree_path_, "--max-worlds=-1"});
  EXPECT_EQ(neg.code, 2);
  EXPECT_NE(neg.err.find("must be >= 0"), std::string::npos);
  for (const char* flag : {"--k=-2", "--k=9999999", "--count=-5"}) {
    CliResult r = RunCliArgs({"sample", tree_path_, flag});
    EXPECT_EQ(r.code, 2) << flag << " was accepted";
    EXPECT_NE(r.err.find("out of range"), std::string::npos) << flag;
  }
  // consensus-world validates --threads like topk does.
  CliResult bad_threads = RunCliArgs(
      {"consensus-world", tree_path_, "--threads=-1"});
  EXPECT_EQ(bad_threads.code, 1);
  EXPECT_NE(bad_threads.err.find("--threads must be >= 0"), std::string::npos);

  // Accepts: plain decimal integers, including signs and leading zeros.
  EXPECT_EQ(RunCliArgs({"sample", tree_path_, "--count=3", "--seed=09"}).code,
            0);
  EXPECT_EQ(RunCliArgs({"sample", tree_path_, "--seed=+7"}).code, 0);
  EXPECT_EQ(
      RunCliArgs({"topk", bid_path_, "--format=bid", "--k=2", "--threads=1"})
          .code,
      0);
  EXPECT_EQ(RunCliArgs({"worlds", tree_path_, "--max-worlds=100"}).code, 0);
}

// Splits CLI output into lines (without trailing newlines).
std::vector<std::string> OutputLines(const std::string& out) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < out.size()) {
    size_t end = out.find('\n', pos);
    if (end == std::string::npos) end = out.size();
    lines.push_back(out.substr(pos, end - pos));
    pos = end + 1;
  }
  return lines;
}

// The serve response line whose fields include name=value for every given
// pair, parsed through the protocol's own reader.
ResponseLine FindResponse(const std::string& out,
                          const std::vector<RequestField>& matching) {
  for (const std::string& text : OutputLines(out)) {
    auto line = ParseResponseLine(text);
    if (!line.ok()) continue;
    bool all = true;
    for (const RequestField& want : matching) {
      const std::string* got = line->Find(want.name);
      all = all && got != nullptr && *got == want.value;
    }
    if (all) return *line;
  }
  ADD_FAILURE() << "no response line matching in:\n" << out;
  return ResponseLine{};
}

// End-to-end serve mode: a batch mixing loads (both formats), all four
// Top-k metrics against one (tree, k) — whose answers must be *bitwise*
// the engine's (the satellite fix: distances are emitted as shortest
// round-trip doubles, so parsing the wire value back reproduces the exact
// bits "%.6f" used to truncate) — a world query, a stats probe showing the
// cache sharing, and in-band per-request errors.
TEST_F(CliTest, ServeAnswersBatchedRequests) {
  std::string requests_path = ::testing::TempDir() + "/cli_serve_req.txt";
  ASSERT_TRUE(WriteStringToFile(
                  requests_path,
                  "# serve batch\n"
                  "op=load name=t file=" + tree_path_ + "\n"
                  "op=load name=b file=" + bid_path_ + " format=bid\n"
                  "\n"
                  "op=topk tree=t k=2 metric=symdiff\n"
                  "op=topk tree=t k=2 metric=intersection\n"
                  "op=topk tree=t k=2 metric=footrule\n"
                  "op=topk tree=t k=2 metric=kendall\n"
                  "op=world tree=b answer=median\n"
                  "op=stats # trailing comments are legal anywhere\n")
                  .ok());
  CliResult r = RunCliArgs({"serve", requests_path, "--threads=2"});
  EXPECT_EQ(r.code, 0) << r.err << r.out;

  // Cross-check each metric's response against a direct engine call: same
  // keys, and the wire distance must strtod back to the identical double.
  auto tree = ParseTree(*ReadFileToString(tree_path_));
  ASSERT_TRUE(tree.ok());
  Engine engine;  // thread count is irrelevant: answers are invariant
  for (const char* metric :
       {"symdiff", "intersection", "footrule", "kendall"}) {
    auto direct = engine.ConsensusTopK(*tree, 2,
                                       *ParseTopKMetricName(metric));
    ASSERT_TRUE(direct.ok());
    std::string keys;
    for (KeyId key : direct->keys) {
      if (!keys.empty()) keys += ',';
      keys += std::to_string(key);
    }
    ResponseLine response = FindResponse(
        r.out, {{"op", "topk"}, {"tree", "t"}, {"metric", metric}});
    ASSERT_NE(response.Find("keys"), nullptr);
    EXPECT_EQ(*response.Find("keys"), keys) << metric;
    ASSERT_NE(response.Find("expected"), nullptr);
    EXPECT_EQ(std::strtod(response.Find("expected")->c_str(), nullptr),
              direct->expected_distance)
        << metric << ": wire value '" << *response.Find("expected")
        << "' does not round-trip the engine's bits";
  }

  // Four queries shared one (tree, k): one fold, three cache hits; the
  // world query paid the single marginal fold.
  ResponseLine stats = FindResponse(r.out, {{"op", "stats"}});
  EXPECT_EQ(*stats.Find("hits"), "3");
  EXPECT_EQ(*stats.Find("misses"), "1");
  EXPECT_EQ(*stats.Find("coalesced"), "0");
  EXPECT_EQ(*stats.Find("entries"), "1");
  EXPECT_EQ(*stats.Find("evictions"), "0");
  EXPECT_NE(std::stoll(*stats.Find("bytes")), 0);
  EXPECT_EQ(*stats.Find("marg_misses"), "1");
  EXPECT_EQ(*stats.Find("marg_entries"), "1");
  EXPECT_NE(r.out.find("ok\top=world\ttree=b\tmetric=symdiff\tanswer=median"),
            std::string::npos);

  // The caches must be invisible in the answers: --cache=off yields the
  // same response lines except for the stats counters.
  CliResult uncached =
      RunCliArgs({"serve", requests_path, "--threads=2", "--cache=off"});
  EXPECT_EQ(uncached.code, 0) << uncached.err;
  std::string cached_lines = r.out.substr(0, r.out.find("ok\top=stats"));
  std::string uncached_lines =
      uncached.out.substr(0, uncached.out.find("ok\top=stats"));
  EXPECT_EQ(cached_lines, uncached_lines);
  ResponseLine off = FindResponse(uncached.out, {{"op", "stats"}});
  EXPECT_EQ(*off.Find("hits"), "0");
  EXPECT_EQ(*off.Find("misses"), "0");
  EXPECT_EQ(*off.Find("marg_misses"), "0");

  // So must the byte budget: a budget too small to retain anything changes
  // counters (everything misses, nothing is kept), never answers.
  CliResult squeezed = RunCliArgs(
      {"serve", requests_path, "--threads=2", "--cache-budget=1"});
  EXPECT_EQ(squeezed.code, 0) << squeezed.err;
  std::string squeezed_lines =
      squeezed.out.substr(0, squeezed.out.find("ok\top=stats"));
  EXPECT_EQ(cached_lines, squeezed_lines);
  ResponseLine tiny = FindResponse(squeezed.out, {{"op", "stats"}});
  EXPECT_EQ(*tiny.Find("entries"), "0");
  EXPECT_EQ(*tiny.Find("bytes"), "0");
  EXPECT_EQ(*tiny.Find("misses"), "4");
}

// Streaming serve: identical answers to batch mode for an in-order input,
// with the two order sensitivities streaming implies — a query sees only
// trees loaded earlier (batch mode resolves loads first), and op=stats
// reports its point in the stream rather than the post-input state.
TEST_F(CliTest, ServeStreamingAnswersInInputOrder) {
  std::string ordered_path = ::testing::TempDir() + "/cli_stream_ok.txt";
  ASSERT_TRUE(WriteStringToFile(
                  ordered_path,
                  "op=load name=t file=" + tree_path_ + "\n"
                  "op=topk tree=t k=2 metric=symdiff\n"
                  "op=topk tree=t k=2 metric=kendall\n"
                  "op=world tree=t\n"
                  "op=stats\n")
                  .ok());
  CliResult batch = RunCliArgs({"serve", ordered_path});
  CliResult stream = RunCliArgs({"serve", ordered_path, "--stream"});
  EXPECT_EQ(batch.code, 0) << batch.err;
  EXPECT_EQ(stream.code, 0) << stream.err;
  // For an input whose loads precede its queries, streaming emits the
  // byte-identical transcript (stats included: by the time the trailing
  // stats line executes, the same work has happened).
  EXPECT_EQ(stream.out, batch.out);

  std::string disordered_path = ::testing::TempDir() + "/cli_stream_bad.txt";
  ASSERT_TRUE(WriteStringToFile(
                  disordered_path,
                  "op=stats\n"
                  "op=topk tree=late k=2 metric=symdiff\n"
                  "op=load name=late file=" + tree_path_ + "\n"
                  "op=topk tree=late k=2 metric=symdiff\n")
                  .ok());
  // Batch mode: the load applies first, both queries answer.
  CliResult batch2 = RunCliArgs({"serve", disordered_path});
  EXPECT_EQ(batch2.code, 0) << batch2.out;
  // Streaming: the leading stats line reports pristine counters, the query
  // preceding its load fails in-band, the one after it succeeds.
  CliResult stream2 = RunCliArgs({"serve", disordered_path, "--stream"});
  EXPECT_EQ(stream2.code, 1);
  std::vector<std::string> lines = OutputLines(stream2.out);
  ASSERT_EQ(lines.size(), 4u);
  ResponseLine pristine = *ParseResponseLine(lines[0]);
  EXPECT_EQ(*pristine.Find("misses"), "0");
  EXPECT_NE(lines[1].find("error\tline=2"), std::string::npos) << stream2.out;
  EXPECT_NE(lines[1].find("no catalog tree named 'late'"), std::string::npos);
  EXPECT_NE(lines[2].find("ok\top=load"), std::string::npos);
  EXPECT_NE(lines[3].find("ok\top=topk\ttree=late"), std::string::npos);
  // The answered slot agrees with batch mode bitwise (same response line).
  std::vector<std::string> batch_lines = OutputLines(batch2.out);
  EXPECT_EQ(lines[3], batch_lines[3]);
}

// serve --shards=N: answers bitwise identical to --shards=1 and to the
// default single scheduler for every op, in both execution modes; op=stats
// keeps identical aggregate totals and adds the per-shard breakdown.
TEST_F(CliTest, ServeShardedAnswersMatchUnshardedBitwise) {
  std::string requests_path = ::testing::TempDir() + "/cli_shard_req.txt";
  ASSERT_TRUE(WriteStringToFile(
                  requests_path,
                  "op=load name=t file=" + tree_path_ + "\n"
                  "op=load name=b file=" + bid_path_ + " format=bid\n"
                  "op=topk tree=t k=2 metric=symdiff\n"
                  "op=topk tree=t k=2 metric=intersection\n"
                  "op=topk tree=b k=2 metric=footrule\n"
                  "op=topk tree=b k=2 metric=kendall\n"
                  "op=topk tree=t k=2 metric=symdiff answer=median\n"
                  "op=world tree=t\n"
                  "op=world tree=b answer=median\n"
                  "op=topk tree=nope k=2\n"
                  "op=stats\n")
                  .ok());
  CliResult plain = RunCliArgs({"serve", requests_path, "--threads=2"});
  ASSERT_EQ(plain.code, 1);  // the op=topk tree=nope slot fails in-band

  // Everything except the trailing stats line must be byte-identical
  // across the default scheduler and every shard count, in batch and
  // streaming modes alike.
  auto lines_before_stats = [](const std::string& out) {
    return out.substr(0, out.find("ok\top=stats"));
  };
  for (int shards : {1, 2, 4}) {
    std::string flag = "--shards=" + std::to_string(shards);
    CliResult sharded =
        RunCliArgs({"serve", requests_path, "--threads=2", flag});
    ASSERT_EQ(sharded.code, 1) << sharded.err;
    EXPECT_EQ(lines_before_stats(sharded.out), lines_before_stats(plain.out))
        << flag;
    CliResult streamed =
        RunCliArgs({"serve", requests_path, "--threads=2", flag, "--stream"});
    ASSERT_EQ(streamed.code, 1) << flag << " --stream: " << streamed.err;
    EXPECT_EQ(lines_before_stats(streamed.out), lines_before_stats(plain.out))
        << flag << " --stream";

    // Aggregate stats totals equal the unsharded scheduler's counters;
    // the breakdown names the shard layout and sums to the totals.
    ResponseLine plain_stats = FindResponse(plain.out, {{"op", "stats"}});
    ResponseLine shard_stats = FindResponse(sharded.out, {{"op", "stats"}});
    for (const char* field : {"hits", "misses", "coalesced", "entries",
                              "bytes", "evictions", "marg_hits",
                              "marg_misses", "marg_entries", "marg_bytes"}) {
      ASSERT_NE(shard_stats.Find(field), nullptr) << field;
      EXPECT_EQ(*shard_stats.Find(field), *plain_stats.Find(field))
          << flag << " " << field;
    }
    ASSERT_NE(shard_stats.Find("shards"), nullptr);
    EXPECT_EQ(*shard_stats.Find("shards"), std::to_string(shards));
    long long breakdown_misses = 0;
    for (int s = 0; s < shards; ++s) {
      const std::string* part =
          shard_stats.Find("s" + std::to_string(s) + "_misses");
      ASSERT_NE(part, nullptr) << flag << " shard " << s;
      breakdown_misses += std::stoll(*part);
    }
    EXPECT_EQ(std::to_string(breakdown_misses), *shard_stats.Find("misses"));
    // The default scheduler's line carries no shard fields at all.
    EXPECT_EQ(plain_stats.Find("shards"), nullptr);
  }

  // Flag hygiene, matching every other serve flag: strict value, strict
  // range, serve-only scope.
  EXPECT_EQ(RunCliArgs({"serve", requests_path, "--shards=0"}).code, 2);
  EXPECT_EQ(RunCliArgs({"serve", requests_path, "--shards=2o"}).code, 2);
  EXPECT_EQ(RunCliArgs({"serve", requests_path, "--shards=4096"}).code, 2);
  CliResult scoped = RunCliArgs({"topk", tree_path_, "--k=2", "--shards=2"});
  EXPECT_EQ(scoped.code, 2);
  EXPECT_NE(scoped.err.find("applies only to serve"), std::string::npos);
}

TEST_F(CliTest, ServeReportsRequestErrorsInBand) {
  std::string requests_path = ::testing::TempDir() + "/cli_serve_err.txt";
  ASSERT_TRUE(WriteStringToFile(
                  requests_path,
                  "op=load name=t file=" + tree_path_ + "\n"
                  "op=topk tree=t k=1o metric=symdiff\n"   // garbage int
                  "op=topk tree=nope k=2\n"                // unknown tree
                  "op=topk tree=t k=2 metric=symdiff\n"    // still served
                  "not_a_field\n")                         // grammar error
                  .ok());
  CliResult r = RunCliArgs({"serve", requests_path});
  EXPECT_EQ(r.code, 1);  // some requests failed (reported in-band)
  EXPECT_NE(r.out.find("error\tline=2\tmsg="), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("expects an integer"), std::string::npos);
  EXPECT_NE(r.out.find("error\tline=3\tmsg="), std::string::npos);
  EXPECT_NE(r.out.find("no catalog tree named 'nope'"), std::string::npos);
  EXPECT_NE(r.out.find("error\tline=5\tmsg="), std::string::npos);
  // The healthy request between the failures was answered.
  EXPECT_NE(r.out.find("ok\top=topk\ttree=t"), std::string::npos);
  // Flag-level garbage is a usage error (exit 2), before any serving.
  EXPECT_EQ(RunCliArgs({"serve", requests_path, "--cache=maybe"}).code, 2);
  EXPECT_EQ(RunCliArgs({"serve", requests_path, "--threads=two"}).code, 2);
  EXPECT_EQ(RunCliArgs({"serve", requests_path, "--cache-budget=1x"}).code, 2);
  EXPECT_EQ(RunCliArgs({"serve", requests_path, "--cache-budget=-5"}).code, 2);
  CliResult valued = RunCliArgs({"serve", requests_path, "--stream=on"});
  EXPECT_EQ(valued.code, 2);
  EXPECT_NE(valued.err.find("takes no value"), std::string::npos);
  // The serve-only flags belong to serve; other commands reject them
  // rather than silently ignoring them.
  for (const char* flag : {"--cache=off", "--cache-budget=9", "--stream"}) {
    CliResult scoped = RunCliArgs({"topk", tree_path_, "--k=2", flag});
    EXPECT_EQ(scoped.code, 2) << flag;
    EXPECT_NE(scoped.err.find("applies only to serve"), std::string::npos)
        << flag;
  }
  // A missing requests file is an I/O error, not a silent empty batch —
  // in both execution modes.
  EXPECT_EQ(RunCliArgs({"serve", "/does/not/exist.req"}).code, 1);
  EXPECT_EQ(RunCliArgs({"serve", "/does/not/exist.req", "--stream"}).code, 1);
}

// serve --save-catalog / --catalog: a replica restored from a snapshot
// answers the same requests with byte-identical stdout, on both load paths,
// and the snapshot round-trips through a serve process byte-identically.
TEST_F(CliTest, ServeSnapshotRoundTripServesIdenticalBytes) {
  const std::string cold_path = ::testing::TempDir() + "/cli_snap_cold.txt";
  const std::string warm_path = ::testing::TempDir() + "/cli_snap_warm.txt";
  const std::string snap_path = ::testing::TempDir() + "/cli_snap.snap";
  const std::string queries =
      "op=topk tree=t k=2 metric=symdiff\n"
      "op=topk tree=t k=2 metric=kendall\n"
      "op=topk tree=b k=2 metric=intersection\n"
      "op=world tree=b answer=median\n";
  ASSERT_TRUE(WriteStringToFile(
                  cold_path,
                  "op=load name=t file=" + tree_path_ + "\n" +
                      "op=load name=b file=" + bid_path_ + " format=bid\n" +
                      queries)
                  .ok());
  ASSERT_TRUE(WriteStringToFile(warm_path, queries).ok());

  // Cold replica: line-by-line loads, then save the live catalog.
  CliResult cold = RunCliArgs(
      {"serve", cold_path, "--threads=2", "--save-catalog=" + snap_path});
  EXPECT_EQ(cold.code, 0) << cold.err;
  // The cold transcript minus its two load-response lines is the expected
  // warm transcript.
  size_t queries_start = cold.out.find("\n");          // after load t
  queries_start = cold.out.find("\n", queries_start + 1);  // after load b
  const std::string want = cold.out.substr(queries_start + 1);

  for (const char* extra : {"", "--mmap"}) {
    std::vector<std::string> args = {"serve", warm_path, "--threads=2",
                                     "--catalog=" + snap_path};
    if (*extra != '\0') args.push_back(extra);
    CliResult warm = RunCliArgs(args);
    EXPECT_EQ(warm.code, 0) << warm.err;
    EXPECT_EQ(warm.out, want) << "load path: " << (*extra ? extra : "read");
  }

  // The snapshot carried the distributions the cold run computed: a warm
  // replica's first (and only) batch never misses the rank-dist cache.
  const std::string stats_path = ::testing::TempDir() + "/cli_snap_stats.txt";
  ASSERT_TRUE(WriteStringToFile(stats_path, queries + "op=stats\n").ok());
  CliResult stats = RunCliArgs(
      {"serve", stats_path, "--catalog=" + snap_path});
  EXPECT_EQ(stats.code, 0) << stats.err;
  EXPECT_NE(stats.out.find("\tmisses=0\t"), std::string::npos) << stats.out;

  // Load-then-save through an otherwise idle serve process reproduces the
  // snapshot byte-for-byte.
  const std::string empty_path = ::testing::TempDir() + "/cli_snap_none.txt";
  const std::string snap2_path = ::testing::TempDir() + "/cli_snap2.snap";
  ASSERT_TRUE(WriteStringToFile(empty_path, "# no requests\n").ok());
  CliResult resave = RunCliArgs({"serve", empty_path,
                                 "--catalog=" + snap_path,
                                 "--save-catalog=" + snap2_path});
  EXPECT_EQ(resave.code, 0) << resave.err;
  EXPECT_EQ(*ReadFileToString(snap2_path), *ReadFileToString(snap_path));
}

TEST_F(CliTest, ServeSnapshotFlagHygiene) {
  const std::string requests_path =
      ::testing::TempDir() + "/cli_snap_req.txt";
  ASSERT_TRUE(WriteStringToFile(requests_path, "# empty\n").ok());

  // Value hygiene at parse time: exit 2 plus usage, before any serving.
  for (const std::vector<std::string>& args :
       {std::vector<std::string>{"serve", requests_path, "--catalog="},
        std::vector<std::string>{"serve", requests_path, "--save-catalog="},
        std::vector<std::string>{"serve", requests_path, "--mmap=on"},
        std::vector<std::string>{"serve", requests_path, "--mmap"}}) {
    CliResult r = RunCliArgs(args);
    EXPECT_EQ(r.code, 2) << args.back();
    EXPECT_NE(r.err.find("usage"), std::string::npos) << args.back();
  }
  // --mmap without --catalog is a contradiction, not a no-op.
  CliResult orphan = RunCliArgs({"serve", requests_path, "--mmap"});
  EXPECT_NE(orphan.err.find("--mmap requires --catalog"), std::string::npos);

  // Serve-only scope, like every other serve flag.
  for (const char* flag : {"--catalog=/tmp/x", "--save-catalog=/tmp/x",
                           "--mmap"}) {
    CliResult scoped = RunCliArgs({"topk", tree_path_, "--k=2", flag});
    EXPECT_EQ(scoped.code, 2) << flag;
    EXPECT_NE(scoped.err.find("applies only to serve"), std::string::npos)
        << flag;
  }

  // A missing snapshot is a startup error — never a silent cold start
  // masquerading as a warm one — on both load paths.
  for (const char* extra : {"", "--mmap"}) {
    std::vector<std::string> args = {"serve", requests_path,
                                     "--catalog=/does/not/exist.snap"};
    if (*extra != '\0') args.push_back(extra);
    CliResult r = RunCliArgs(args);
    EXPECT_EQ(r.code, 1) << (*extra ? extra : "read");
    EXPECT_NE(r.err.find("catalog error: cannot load"), std::string::npos)
        << r.err;
  }

  // A corrupt snapshot is rejected the same way.
  const std::string bad_path = ::testing::TempDir() + "/cli_snap_bad.snap";
  ASSERT_TRUE(WriteStringToFile(bad_path, "BASETREEgarbage").ok());
  CliResult corrupt = RunCliArgs(
      {"serve", requests_path, "--catalog=" + bad_path});
  EXPECT_EQ(corrupt.code, 1);
  EXPECT_NE(corrupt.err.find("catalog error: cannot load"),
            std::string::npos);

  // An unwritable --save-catalog target fails loudly after serving.
  CliResult unwritable = RunCliArgs(
      {"serve", requests_path, "--save-catalog=/does/not/exist/dir.snap"});
  EXPECT_EQ(unwritable.code, 1);
  EXPECT_NE(unwritable.err.find("catalog error: cannot save"),
            std::string::npos);
}

TEST_F(CliTest, AggregateUsesLabels) {
  CliResult r = RunCliArgs({"aggregate", bid_path_, "--format=bid"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("group mean_count median_count"), std::string::npos);
}

TEST_F(CliTest, ErrorsOnBadUsage) {
  EXPECT_EQ(RunCliArgs({}).code, 2);
  EXPECT_EQ(RunCliArgs({"frobnicate", tree_path_}).code, 2);
  EXPECT_EQ(RunCliArgs({"validate"}).code, 1);  // missing input file
  EXPECT_EQ(RunCliArgs({"validate", tree_path_, "--wat=1"}).code, 2);
  EXPECT_EQ(RunCliArgs({"topk", tree_path_, "--metric=nope"}).code, 1);
  EXPECT_EQ(RunCliArgs({"validate", "/does/not/exist"}).code, 1);
}

// serve op=metrics end to end: the kv scrape answers in-band with the
// request counters this very batch produced, and the prom scrape travels
// as one escaped body= field that unescapes to a valid exposition.
TEST_F(CliTest, ServeAnswersMetricsRequests) {
  std::string requests_path = ::testing::TempDir() + "/cli_serve_metrics.txt";
  ASSERT_TRUE(WriteStringToFile(
                  requests_path,
                  "op=load name=t file=" + tree_path_ + "\n"
                  "op=topk tree=t k=2 metric=symdiff\n"
                  "op=world tree=t\n"
                  "op=metrics\n"
                  "op=metrics format=prom\n")
                  .ok());
  CliResult r = RunCliArgs({"serve", requests_path});
  EXPECT_EQ(r.code, 0) << r.err << r.out;

  ResponseLine kv = FindResponse(r.out, {{"op", "metrics"}, {"format", "kv"}});
  // Request counters describe the whole batch (counted before the scrape).
  ASSERT_NE(kv.Find("cpdb_requests_total"), nullptr);
  EXPECT_EQ(*kv.Find("cpdb_requests_total"), "5");
  EXPECT_EQ(*kv.Find("cpdb_load_requests_total"), "1");
  EXPECT_EQ(*kv.Find("cpdb_topk_requests_total"), "1");
  EXPECT_EQ(*kv.Find("cpdb_world_requests_total"), "1");
  EXPECT_EQ(*kv.Find("cpdb_metrics_requests_total"), "2");
  EXPECT_EQ(*kv.Find("cpdb_request_errors_total"), "0");
  EXPECT_EQ(*kv.Find("cpdb_topk_latency_nanoseconds_count"), "1");
  // The queries paid real folds through the engine.
  EXPECT_GT(std::stoll(*kv.Find("cpdb_fold_compiles_total")), 0);
  ASSERT_NE(kv.Find("cpdb_poly_arena_highwater_bytes"), nullptr);
  // The transport recorded its own stages.
  EXPECT_EQ(*kv.Find("cpdb_stage_parse_latency_nanoseconds_count"), "6");

  ResponseLine prom =
      FindResponse(r.out, {{"op", "metrics"}, {"format", "prom"}});
  ASSERT_NE(prom.Find("body"), nullptr);
  const std::string& body = *prom.Find("body");
  EXPECT_EQ(body.rfind("# HELP ", 0), 0u);
  EXPECT_NE(body.find("# TYPE cpdb_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(body.find("cpdb_requests_total 5\n"), std::string::npos);
  EXPECT_NE(body.find("cpdb_topk_latency_nanoseconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);

  // trace=on surfaces side-band trace_* fields on that request's line.
  std::string traced_path = ::testing::TempDir() + "/cli_serve_traced.txt";
  ASSERT_TRUE(WriteStringToFile(
                  traced_path,
                  "op=load name=t file=" + tree_path_ + "\n"
                  "op=topk tree=t k=2 metric=symdiff trace=on\n")
                  .ok());
  CliResult traced = RunCliArgs({"serve", traced_path});
  EXPECT_EQ(traced.code, 0) << traced.err;
  ResponseLine traced_topk = FindResponse(traced.out, {{"op", "topk"}});
  EXPECT_NE(traced_topk.Find("trace_total_ns"), nullptr);
  EXPECT_NE(traced_topk.Find("trace_fold_ns"), nullptr);
}

// --metrics=off and --slow-query-ms: answers never change (stdout parity
// is byte-exact), the slow-query log goes to stderr only, and op=metrics
// under --metrics=off is an in-band request error.
TEST_F(CliTest, ServeMetricsOffParityAndSlowQueryLog) {
  std::string requests_path = ::testing::TempDir() + "/cli_serve_sq.txt";
  // Deterministic output only (no metrics scrape: its latency values
  // differ run to run with the real clock).
  ASSERT_TRUE(WriteStringToFile(
                  requests_path,
                  "op=load name=t file=" + tree_path_ + "\n"
                  "op=topk tree=t k=2 metric=kendall\n"
                  "op=world tree=t\n"
                  "op=stats\n")
                  .ok());
  CliResult plain = RunCliArgs({"serve", requests_path});
  EXPECT_EQ(plain.code, 0) << plain.err;
  EXPECT_TRUE(plain.err.empty()) << plain.err;

  CliResult off = RunCliArgs({"serve", requests_path, "--metrics=off"});
  EXPECT_EQ(off.code, 0) << off.err;
  EXPECT_EQ(off.out, plain.out);

  // --slow-query-ms=0 logs every answered request to stderr; stdout bytes
  // are untouched.
  CliResult logged =
      RunCliArgs({"serve", requests_path, "--slow-query-ms=0"});
  EXPECT_EQ(logged.code, 0) << logged.err;
  EXPECT_EQ(logged.out, plain.out);
  EXPECT_NE(logged.err.find("slow-query\tline=2\t"), std::string::npos)
      << logged.err;
  EXPECT_NE(logged.err.find("total_ms="), std::string::npos);
  EXPECT_NE(logged.err.find("fold_ns="), std::string::npos);
  // The raw request rides escaped in a request= field.
  EXPECT_NE(logged.err.find("request=op=topk tree=t k=2 metric=kendall"),
            std::string::npos);
  // Same in streaming mode.
  CliResult streamed = RunCliArgs(
      {"serve", requests_path, "--slow-query-ms=0", "--stream"});
  EXPECT_EQ(streamed.code, 0) << streamed.err;
  EXPECT_NE(streamed.err.find("slow-query\tline=2\t"), std::string::npos);
  // A generous threshold logs nothing.
  CliResult quiet =
      RunCliArgs({"serve", requests_path, "--slow-query-ms=3600000"});
  EXPECT_EQ(quiet.code, 0);
  EXPECT_TRUE(quiet.err.empty()) << quiet.err;

  // op=metrics with metrics disabled is an in-band request error.
  std::string refused_path = ::testing::TempDir() + "/cli_serve_refused.txt";
  ASSERT_TRUE(WriteStringToFile(refused_path, "op=metrics\n").ok());
  CliResult refused =
      RunCliArgs({"serve", refused_path, "--metrics=off"});
  EXPECT_EQ(refused.code, 1);
  EXPECT_NE(refused.out.find("error\tline=1\tmsg="), std::string::npos)
      << refused.out;
  EXPECT_NE(refused.out.find("op=metrics requires metrics enabled"),
            std::string::npos);

  // Flag hygiene, matching every other serve flag: strict values, strict
  // range, serve-only scope, and the log's dependence on the instruments.
  EXPECT_EQ(RunCliArgs({"serve", requests_path, "--metrics=maybe"}).code, 2);
  EXPECT_EQ(RunCliArgs({"serve", requests_path, "--slow-query-ms=1x"}).code,
            2);
  EXPECT_EQ(RunCliArgs({"serve", requests_path, "--slow-query-ms=-1"}).code,
            2);
  CliResult scoped = RunCliArgs({"topk", tree_path_, "--k=2", "--metrics=off"});
  EXPECT_EQ(scoped.code, 2);
  EXPECT_NE(scoped.err.find("applies only to serve"), std::string::npos);
  EXPECT_EQ(
      RunCliArgs({"topk", tree_path_, "--k=2", "--slow-query-ms=5"}).code, 2);
  CliResult needs_metrics = RunCliArgs(
      {"serve", requests_path, "--metrics=off", "--slow-query-ms=5"});
  EXPECT_EQ(needs_metrics.code, 2);
  EXPECT_NE(needs_metrics.err.find("requires --metrics=on"),
            std::string::npos);
}

}  // namespace
}  // namespace cpdb

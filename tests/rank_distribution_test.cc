// Copyright 2026 The ConsensusDB Authors
//
// Cross-validates the generating-function rank distributions (Example 3 /
// Section 5) against exhaustive possible-world enumeration.

#include "core/rank_distribution.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "model/builders.h"
#include "model/possible_worlds.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

// Rank distribution by brute force: Pr(r(key) = i) over enumerated worlds.
std::map<KeyId, std::vector<double>> EnumRankDist(const AndXorTree& tree,
                                                  int k) {
  auto worlds = EnumerateWorlds(tree);
  EXPECT_TRUE(worlds.ok());
  std::map<KeyId, std::vector<double>> dist;
  for (KeyId key : tree.Keys()) {
    dist[key].assign(static_cast<size_t>(k) + 1, 0.0);
  }
  for (const World& w : *worlds) {
    std::vector<TupleAlternative> tuples = WorldTuples(tree, w.leaf_ids);
    for (size_t pos = 0; pos < tuples.size() && pos < static_cast<size_t>(k);
         ++pos) {
      dist[tuples[pos].key][pos + 1] += w.prob;
    }
  }
  return dist;
}

class RankDistProperty : public ::testing::TestWithParam<int> {};

TEST_P(RankDistProperty, MatchesEnumerationOnRandomBid) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 7);
  RandomTreeOptions opts;
  opts.num_keys = 6;
  opts.max_alternatives = 3;
  auto tree = RandomBid(opts, &rng);
  ASSERT_TRUE(tree.ok());
  const int k = 4;
  RankDistribution dist = ComputeRankDistribution(*tree, k);
  auto expected = EnumRankDist(*tree, k);
  for (KeyId key : tree->Keys()) {
    for (int i = 1; i <= k; ++i) {
      EXPECT_NEAR(dist.PrRankEq(key, i), expected[key][static_cast<size_t>(i)],
                  1e-9)
          << "key " << key << " rank " << i;
    }
  }
}

TEST_P(RankDistProperty, MatchesEnumerationOnRandomAndXor) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 733 + 11);
  RandomTreeOptions opts;
  opts.num_keys = 5;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  const int k = 3;
  RankDistribution dist = ComputeRankDistribution(*tree, k);
  auto expected = EnumRankDist(*tree, k);
  for (KeyId key : tree->Keys()) {
    for (int i = 1; i <= k; ++i) {
      EXPECT_NEAR(dist.PrRankEq(key, i), expected[key][static_cast<size_t>(i)],
                  1e-9);
    }
  }
}

TEST_P(RankDistProperty, PairwiseOrderMatchesEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 389 + 23);
  RandomTreeOptions opts;
  opts.num_keys = 4;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  auto worlds = EnumerateWorlds(*tree);
  ASSERT_TRUE(worlds.ok());

  std::vector<KeyId> keys = tree->Keys();
  for (KeyId u : keys) {
    for (KeyId v : keys) {
      if (u == v) continue;
      double expected = 0.0;
      for (const World& w : *worlds) {
        // r(u) < r(v): u present and (v absent or v's score lower).
        double su = -1.0, sv = -1.0;
        for (NodeId l : w.leaf_ids) {
          const TupleAlternative& alt = tree->node(l).leaf;
          if (alt.key == u) su = alt.score;
          if (alt.key == v) sv = alt.score;
        }
        if (su >= 0.0 && (sv < 0.0 || su > sv)) expected += w.prob;
      }
      EXPECT_NEAR(PrRanksBefore(*tree, u, v), expected, 1e-9)
          << "u=" << u << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankDistProperty, ::testing::Range(0, 12));

TEST(RankDistributionTest, RowMassAccounting) {
  // Pr(r(t) <= k) + Pr(r(t) > k) = 1 by construction of the accessors.
  Rng rng(3);
  RandomTreeOptions opts;
  opts.num_keys = 10;
  auto tree = RandomBid(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, 5);
  for (KeyId key : dist.keys()) {
    double mass = dist.PrTopK(key) + dist.PrBeyondK(key);
    EXPECT_NEAR(mass, 1.0, 1e-12);
    EXPECT_GE(dist.PrTopK(key), -1e-12);
    EXPECT_LE(dist.PrTopK(key), 1.0 + 1e-12);
    // Monotone CDF.
    for (int i = 2; i <= 5; ++i) {
      EXPECT_GE(dist.PrRankLe(key, i), dist.PrRankLe(key, i - 1) - 1e-12);
    }
  }
}

TEST(RankDistributionTest, CertainDatabaseHasDeterministicRanks) {
  // All tuples present with probability 1: rank = position by score.
  std::vector<IndependentTuple> tuples;
  for (int i = 0; i < 5; ++i) {
    IndependentTuple t;
    t.alt.key = i;
    t.alt.score = 100.0 - i;  // key 0 is the highest scorer
    t.prob = 1.0;
    tuples.push_back(t);
  }
  auto tree = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, 5);
  for (int i = 0; i < 5; ++i) {
    for (int r = 1; r <= 5; ++r) {
      EXPECT_NEAR(dist.PrRankEq(i, r), r == i + 1 ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(RankDistributionTest, ApproxBytesCoversHandComputedLowerBound) {
  // Regression test for the --cache-budget undercharge: ApproxBytes must
  // cover, for n keys at truncation k, at least
  //   * the 2 n (k+1) doubles of payload (pr_eq_ + pr_le_ inner elements),
  //   * the n KeyIds of the keys_ element array,
  //   * the 2 n inner vector headers the pr_eq_/pr_le_ outer arrays hold,
  //   * and the top-level object itself (which embeds the keys_/pr_eq_/
  //     pr_le_ headers).
  // The historical formula omitted the outer-array headers and the keys_
  // element storage, undercharging every cached entry.
  const int k = 5;
  const int n = 10;
  Rng rng(3);
  RandomTreeOptions opts;
  opts.num_keys = n;
  auto tree = RandomBid(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, k);
  ASSERT_EQ(static_cast<int>(dist.keys().size()), n);

  const int64_t payload =
      2 * static_cast<int64_t>(n) * (k + 1) * sizeof(double);
  const int64_t key_array = static_cast<int64_t>(n) * sizeof(KeyId);
  const int64_t inner_headers =
      2 * static_cast<int64_t>(n) * sizeof(std::vector<double>);
  const int64_t lower_bound = payload + key_array + inner_headers +
                              static_cast<int64_t>(sizeof(RankDistribution));
  EXPECT_GE(dist.ApproxBytes(), lower_bound);

  // Deterministic function of (n, k): a same-shaped distribution from a
  // different tree costs the same — budget eviction replays identically.
  Rng rng2(4);
  auto tree2 = RandomBid(opts, &rng2);
  ASSERT_TRUE(tree2.ok());
  RankDistribution dist2 = ComputeRankDistribution(*tree2, k);
  ASSERT_EQ(dist2.keys().size(), dist.keys().size());
  EXPECT_EQ(dist2.ApproxBytes(), dist.ApproxBytes());
}

TEST(RankDistributionTest, UnknownKeyYieldsZero) {
  Rng rng(5);
  auto tree = RandomTupleIndependent(3, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, 2);
  EXPECT_EQ(dist.PrRankEq(999, 1), 0.0);
  EXPECT_EQ(dist.PrRankLe(999, 2), 0.0);
  EXPECT_EQ(dist.PrRankEq(0, 0), 0.0);
  EXPECT_EQ(dist.PrRankEq(0, 3), 0.0);  // beyond k
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Section 6.1: group-by COUNT consensus — mean vector, closed-form expected
// squared distance, the min-cost-flow closest possible vector (Lemma 3 /
// Theorem 5), and the 4-approximation bound (Corollary 2).

#include "core/aggregates.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

// Brute-force closest possible vector (enumeration of all assignments).
std::vector<int64_t> BruteForceClosest(const GroupByInstance& instance) {
  const int n = instance.num_tuples();
  const int m = instance.num_groups();
  std::vector<double> mean = MeanAggregate(instance);
  std::vector<int> choice(static_cast<size_t>(n), 0);
  std::vector<int64_t> best;
  double best_dist = std::numeric_limits<double>::infinity();
  // Mixed-radix enumeration over (m+1)^n choices; choice m = absent.
  while (true) {
    bool feasible = true;
    double prob_ok = 1.0;
    std::vector<int64_t> counts(static_cast<size_t>(m), 0);
    for (int i = 0; i < n && feasible; ++i) {
      int c = choice[static_cast<size_t>(i)];
      if (c < m) {
        double p = instance.probs[static_cast<size_t>(i)][static_cast<size_t>(c)];
        if (p <= 0.0) feasible = false;
        ++counts[static_cast<size_t>(c)];
      } else {
        double row = 0.0;
        for (double p : instance.probs[static_cast<size_t>(i)]) row += p;
        if (row >= 1.0 - 1e-12) feasible = false;
      }
      (void)prob_ok;
    }
    if (feasible) {
      double d = 0.0;
      for (int j = 0; j < m; ++j) {
        double diff = static_cast<double>(counts[static_cast<size_t>(j)]) -
                      mean[static_cast<size_t>(j)];
        d += diff * diff;
      }
      if (d < best_dist) {
        best_dist = d;
        best = counts;
      }
    }
    int i = 0;
    for (; i < n; ++i) {
      if (++choice[static_cast<size_t>(i)] <= m) break;
      choice[static_cast<size_t>(i)] = 0;
    }
    if (i == n) break;
  }
  return best;
}

double SquaredDistance(const std::vector<int64_t>& a,
                       const std::vector<double>& b) {
  double d = 0.0;
  for (size_t j = 0; j < a.size(); ++j) {
    double diff = static_cast<double>(a[j]) - b[j];
    d += diff * diff;
  }
  return d;
}

TEST(AggregatesTest, ValidateRejectsBadInstances) {
  EXPECT_FALSE(ValidateGroupBy({{}}).ok());
  EXPECT_FALSE(ValidateGroupBy({{{}}}).ok());
  EXPECT_FALSE(ValidateGroupBy({{{0.5, 0.7}}}).ok());   // row sum > 1
  EXPECT_FALSE(ValidateGroupBy({{{-0.1, 0.5}}}).ok());  // negative
  EXPECT_FALSE(ValidateGroupBy({{{0.5, 0.2}, {0.5}}}).ok());  // ragged
  EXPECT_TRUE(ValidateGroupBy({{{0.5, 0.5}, {0.2, 0.3}}}).ok());
}

TEST(AggregatesTest, MeanIsColumnSum) {
  GroupByInstance instance{{{0.5, 0.3}, {0.1, 0.9}, {0.0, 0.2}}};
  std::vector<double> mean = MeanAggregate(instance);
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_NEAR(mean[0], 0.6, 1e-12);
  EXPECT_NEAR(mean[1], 1.4, 1e-12);
}

TEST(AggregatesTest, ExpectedSquaredDistanceClosedFormMatchesEnumeration) {
  Rng rng(5);
  GroupByInstance instance{RandomGroupByMatrix(5, 3, 0.8, 0.2, &rng)};
  ASSERT_TRUE(ValidateGroupBy(instance).ok());

  // Enumerate assignments to compute E[||r - x||^2] exactly.
  std::vector<double> x = {1.0, 0.5, 2.0};
  const int n = instance.num_tuples(), m = instance.num_groups();
  std::vector<int> choice(static_cast<size_t>(n), 0);
  double expected = 0.0;
  while (true) {
    double prob = 1.0;
    std::vector<double> counts(static_cast<size_t>(m), 0.0);
    for (int i = 0; i < n; ++i) {
      int c = choice[static_cast<size_t>(i)];
      if (c < m) {
        prob *= instance.probs[static_cast<size_t>(i)][static_cast<size_t>(c)];
        counts[static_cast<size_t>(c)] += 1.0;
      } else {
        double row = 0.0;
        for (double p : instance.probs[static_cast<size_t>(i)]) row += p;
        prob *= (1.0 - row);
      }
      if (prob == 0.0) break;
    }
    if (prob > 0.0) {
      double d = 0.0;
      for (int j = 0; j < m; ++j) {
        double diff = counts[static_cast<size_t>(j)] - x[static_cast<size_t>(j)];
        d += diff * diff;
      }
      expected += prob * d;
    }
    int i = 0;
    for (; i < n; ++i) {
      if (++choice[static_cast<size_t>(i)] <= m) break;
      choice[static_cast<size_t>(i)] = 0;
    }
    if (i == n) break;
  }
  EXPECT_NEAR(ExpectedSquaredDistance(instance, x), expected, 1e-9);
}

TEST(AggregatesTest, MeanMinimizesExpectedSquaredDistance) {
  Rng rng(7);
  GroupByInstance instance{RandomGroupByMatrix(6, 3, 0.5, 0.2, &rng)};
  std::vector<double> mean = MeanAggregate(instance);
  double mean_cost = ExpectedSquaredDistance(instance, mean);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x = mean;
    for (double& v : x) v += rng.Uniform(-1.0, 1.0);
    EXPECT_GE(ExpectedSquaredDistance(instance, x), mean_cost - 1e-12);
  }
}

class AggregateMedianProperty : public ::testing::TestWithParam<int> {};

TEST_P(AggregateMedianProperty, FlowFindsClosestPossibleVector) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 271 + 3);
  int n = 3 + GetParam() % 4;   // 3..6 tuples
  int m = 2 + GetParam() % 3;   // 2..4 groups
  GroupByInstance instance{RandomGroupByMatrix(n, m, 0.7, 0.25, &rng)};
  ASSERT_TRUE(ValidateGroupBy(instance).ok());

  auto flow_answer = ClosestPossibleAggregate(instance);
  ASSERT_TRUE(flow_answer.ok()) << flow_answer.status().ToString();
  std::vector<int64_t> brute = BruteForceClosest(instance);
  std::vector<double> mean = MeanAggregate(instance);
  EXPECT_NEAR(SquaredDistance(*flow_answer, mean), SquaredDistance(brute, mean),
              1e-9)
      << "flow did not find the closest possible vector";
}

TEST_P(AggregateMedianProperty, FourApproximationHolds) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 433 + 11);
  int n = 3 + GetParam() % 3;
  int m = 2 + GetParam() % 2;
  GroupByInstance instance{RandomGroupByMatrix(n, m, 0.7, 0.25, &rng)};

  auto approx = ClosestPossibleAggregate(instance);
  ASSERT_TRUE(approx.ok());
  auto exact = ExactMedianAggregate(instance);
  ASSERT_TRUE(exact.ok());

  std::vector<double> approx_d(approx->begin(), approx->end());
  std::vector<double> exact_d(exact->begin(), exact->end());
  double e_approx = ExpectedSquaredDistance(instance, approx_d);
  double e_exact = ExpectedSquaredDistance(instance, exact_d);
  EXPECT_LE(e_approx, 4.0 * e_exact + 1e-9)
      << "Corollary 2's 4-approximation violated";
  EXPECT_GE(e_approx, e_exact - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateMedianProperty,
                         ::testing::Range(0, 15));

TEST(AggregatesTest, Lemma3FloorCeilForm) {
  // The flow answer must round each coordinate of the mean up or down when
  // the bipartite structure is complete (every tuple can take every group).
  Rng rng(21);
  int n = 6, m = 3;
  std::vector<std::vector<double>> probs(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(m)));
  for (auto& row : probs) {
    double total = 0.0;
    for (double& p : row) {
      p = rng.Uniform(0.1, 1.0);
      total += p;
    }
    for (double& p : row) p /= total;  // rows sum to exactly 1
  }
  GroupByInstance instance{probs};
  auto answer = ClosestPossibleAggregate(instance);
  ASSERT_TRUE(answer.ok());
  std::vector<double> mean = MeanAggregate(instance);
  for (int j = 0; j < m; ++j) {
    double r = static_cast<double>((*answer)[static_cast<size_t>(j)]);
    EXPECT_TRUE(r == std::floor(mean[static_cast<size_t>(j)]) ||
                r == std::ceil(mean[static_cast<size_t>(j)]))
        << "coordinate " << j << " is " << r << " for mean "
        << mean[static_cast<size_t>(j)];
  }
}

TEST(AggregatesTest, ExactMedianRespectsEnumerationBudget) {
  Rng rng(23);
  GroupByInstance instance{RandomGroupByMatrix(12, 4, 0.5, 0.2, &rng)};
  EXPECT_EQ(ExactMedianAggregate(instance, /*max_assignments=*/100)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Section 4.1: mean world (Theorem 2) and median world (Corollary 1) under
// symmetric difference, validated against brute force over all subsets /
// all possible worlds.

#include "core/set_consensus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "core/evaluation.h"
#include "model/builders.h"
#include "model/possible_worlds.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

TupleAlternative Alt(KeyId key, double score) {
  TupleAlternative a;
  a.key = key;
  a.score = score;
  return a;
}

TEST(SetConsensusTest, ExpectedDistanceMatchesEnumeration) {
  Rng rng(11);
  RandomTreeOptions opts;
  opts.num_keys = 5;
  opts.max_depth = 3;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  // Try a few candidate worlds, including the mean world.
  std::vector<std::vector<NodeId>> candidates = {
      {}, tree->LeafIds(), MeanWorldSymDiff(*tree)};
  for (const auto& candidate : candidates) {
    std::vector<NodeId> sorted = candidate;
    std::sort(sorted.begin(), sorted.end());
    auto expected =
        EnumExpectedSetDistance(*tree, sorted, SetMetric::kSymDiff);
    ASSERT_TRUE(expected.ok());
    EXPECT_NEAR(ExpectedSymDiffDistance(*tree, sorted), *expected, 1e-9);
  }
}

TEST(SetConsensusTest, MeanWorldIsMajorityLeaves) {
  std::vector<IndependentTuple> tuples;
  double probs[] = {0.9, 0.4, 0.500001, 0.1};
  for (int i = 0; i < 4; ++i) {
    IndependentTuple t;
    t.alt = Alt(i, i + 1.0);
    t.prob = probs[i];
    tuples.push_back(t);
  }
  auto tree = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree.ok());
  std::vector<NodeId> mean = MeanWorldSymDiff(*tree);
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_EQ(tree->node(mean[0]).leaf.key, 0);
  EXPECT_EQ(tree->node(mean[1]).leaf.key, 2);
}

// Theorem 2 optimality: the mean world beats every subset of leaves.
class MeanWorldProperty : public ::testing::TestWithParam<int> {};

TEST_P(MeanWorldProperty, BeatsAllSubsets) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 53 + 1);
  RandomTreeOptions opts;
  opts.num_keys = 4;
  opts.max_depth = 2;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  int n = tree->NumLeaves();
  if (n > 14) GTEST_SKIP() << "instance too large for subset brute force";

  double mean_cost = ExpectedSymDiffDistance(*tree, MeanWorldSymDiff(*tree));
  const std::vector<NodeId>& leaves = tree->LeafIds();
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<NodeId> subset;
    for (int b = 0; b < n; ++b) {
      if (mask & (1u << b)) subset.push_back(leaves[static_cast<size_t>(b)]);
    }
    std::sort(subset.begin(), subset.end());
    EXPECT_GE(ExpectedSymDiffDistance(*tree, subset), mean_cost - 1e-9);
  }
}

// Median optimality: the DP answer matches argmin over enumerated worlds.
TEST_P(MeanWorldProperty, MedianMatchesWorldArgmin) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 2);
  RandomTreeOptions opts;
  opts.num_keys = 5;
  opts.max_depth = 3;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  auto worlds = EnumerateWorlds(*tree);
  ASSERT_TRUE(worlds.ok());

  double best = std::numeric_limits<double>::infinity();
  for (const World& w : *worlds) {
    best = std::min(best, ExpectedSymDiffDistance(*tree, w.leaf_ids));
  }
  std::vector<NodeId> median = MedianWorldSymDiff(*tree);
  EXPECT_NEAR(ExpectedSymDiffDistance(*tree, median), best, 1e-9);

  // The median must itself be a possible world.
  bool found = false;
  for (const World& w : *worlds) found |= (w.leaf_ids == median);
  EXPECT_TRUE(found) << "median is not a possible world";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeanWorldProperty, ::testing::Range(0, 15));

TEST(SetConsensusTest, Corollary1HoldsAwayFromTies) {
  // With no marginal at exactly 0.5, the median world equals the mean world
  // {p > 1/2} on block-independent trees (Corollary 1).
  Rng rng(31);
  RandomTreeOptions opts;
  opts.num_keys = 12;
  auto tree = RandomBid(opts, &rng);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(MedianWorldSymDiff(*tree), MeanWorldSymDiff(*tree));
}

TEST(SetConsensusTest, TieAtOneHalfIsResolvedToAPossibleWorld) {
  // XOR with two 0.5 children: the {p > 1/2} set is empty, but the empty
  // world has probability zero. The median DP must pick one alternative.
  AndXorTree tree;
  NodeId a = tree.AddLeaf(Alt(1, 1));
  NodeId b = tree.AddLeaf(Alt(1, 2));
  tree.SetRoot(tree.AddXor({a, b}, {0.5, 0.5}));
  ASSERT_TRUE(tree.Validate().ok());

  EXPECT_TRUE(MeanWorldSymDiff(tree).empty());
  std::vector<NodeId> median = MedianWorldSymDiff(tree);
  ASSERT_EQ(median.size(), 1u);
  // Both choices cost 1; either is an optimal possible world.
  EXPECT_NEAR(ExpectedSymDiffDistance(tree, median), 1.0, 1e-12);
}

TEST(SetConsensusTest, CoexistenceForcesPairs) {
  // AND(t1, t2) under a 0.6 XOR edge: both leaves have marginal 0.6 and the
  // median must contain both or neither.
  AndXorTree tree;
  NodeId pair = tree.AddAnd({tree.AddLeaf(Alt(1, 1)), tree.AddLeaf(Alt(2, 2))});
  tree.SetRoot(tree.AddXor({pair}, {0.6}));
  ASSERT_TRUE(tree.Validate().ok());
  std::vector<NodeId> median = MedianWorldSymDiff(tree);
  EXPECT_EQ(median.size(), 2u);
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// End-to-end integration test: reproduces the paper's Figure 1 worked
// examples exactly and runs the complete consensus pipeline (worlds ->
// rank distributions -> every consensus answer) on one instance, checking
// all the cross-module identities the paper states.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/evaluation.h"
#include "core/monte_carlo.h"
#include "core/rank_distribution_fast.h"
#include "core/ranking_baselines.h"
#include "core/set_consensus.h"
#include "core/topk_footrule.h"
#include "core/topk_intersection.h"
#include "core/topk_symdiff.h"
#include "io/tree_text.h"
#include "model/possible_worlds.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

// Figure 1(iii): the correlated database with exactly three worlds.
const char* kFigure1Text =
    "(xor"
    " 0.3 (and (leaf key=3 score=6) (leaf key=2 score=5) (leaf key=1 score=1))"
    " 0.3 (and (leaf key=3 score=9) (leaf key=1 score=7) (leaf key=4 score=0))"
    " 0.4 (and (leaf key=2 score=8) (leaf key=4 score=4) (leaf key=5 score=3)))";

TEST(IntegrationTest, Figure1WorldsAndRanks) {
  auto tree = ParseTree(kFigure1Text);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();

  auto worlds = EnumerateWorlds(*tree);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 3u);

  // The figure's annotation: Pr(r(t3 via score 6) = 1) = 0.3. With k = 1,
  // key 3's rank-1 probability also includes world pw2 where (3, 9) tops.
  RankDistribution dist = ComputeRankDistribution(*tree, 3);
  EXPECT_NEAR(dist.PrRankEq(3, 1), 0.6, 1e-12);  // pw1 (score 6) + pw2 (score 9)
  EXPECT_NEAR(dist.PrRankEq(2, 1), 0.4, 1e-12);  // pw3's (2, 8)
  EXPECT_NEAR(dist.PrRankEq(2, 2), 0.3, 1e-12);  // pw1's (2, 5)
  EXPECT_NEAR(dist.PrRankEq(1, 3), 0.3, 1e-12);  // bottom of pw1
  EXPECT_NEAR(dist.PrRankEq(1, 2), 0.3, 1e-12);  // middle of pw2 (score 7)
  EXPECT_NEAR(dist.PrRankEq(4, 3), 0.3, 1e-12);  // bottom of pw2 (score 0)
  EXPECT_NEAR(dist.PrTopK(5), 0.4, 1e-12);

  // Mean Top-2 under d_Delta: the two keys with largest Pr(r <= 2):
  // key 3: 0.6, key 2: 0.7, key 1: 0.3, key 4: 0.4, key 5: 0.4.
  RankDistribution dist2 = ComputeRankDistribution(*tree, 2);
  TopKResult mean2 = MeanTopKSymDiff(dist2);
  std::set<KeyId> mean2_set(mean2.keys.begin(), mean2.keys.end());
  EXPECT_EQ(mean2_set, (std::set<KeyId>{2, 3}));

  // The median Top-2 must be the Top-2 of one of the three worlds.
  auto median = MedianTopKSymDiff(*tree, dist2);
  ASSERT_TRUE(median.ok());
  std::set<std::vector<KeyId>> realizable;
  for (const World& w : *worlds) {
    realizable.insert(TopKOfWorld(*tree, w.leaf_ids, 2));
  }
  EXPECT_TRUE(realizable.count(median->keys) > 0);
}

TEST(IntegrationTest, FullPipelineConsistency) {
  Rng rng(20260613);
  // A moderate BID instance: every closed form must agree with Monte Carlo,
  // the fast and generic rank engines must agree, and the stated identities
  // between answers must hold.
  RandomTreeOptions opts;
  opts.num_keys = 18;
  opts.max_alternatives = 3;
  auto tree_text = [&] {
    auto tree = RandomBid(opts, &rng);
    return FormatTree(*tree, true);
  }();
  // Round-trip through the text format first (io integration).
  auto tree = ParseTree(tree_text);
  ASSERT_TRUE(tree.ok());

  const int k = 5;
  RankDistribution dist = ComputeRankDistribution(*tree, k);
  auto fast = ComputeRankDistributionFast(*tree, k);
  ASSERT_TRUE(fast.ok());
  for (KeyId key : dist.keys()) {
    EXPECT_NEAR(fast->PrTopK(key), dist.PrTopK(key), 1e-9);
  }

  // Identity (Theorem 3): Global Top-k == mean answer under d_Delta.
  TopKResult mean = MeanTopKSymDiff(dist);
  std::set<KeyId> global_set;
  for (KeyId key : GlobalTopK(dist)) global_set.insert(key);
  std::set<KeyId> mean_set(mean.keys.begin(), mean.keys.end());
  EXPECT_EQ(global_set, mean_set);

  // Every closed-form expectation within 4 sigma of Monte Carlo.
  auto inter = MeanTopKIntersectionExact(dist);
  auto foot = MeanTopKFootrule(dist);
  ASSERT_TRUE(inter.ok());
  ASSERT_TRUE(foot.ok());
  struct Case {
    std::vector<KeyId> answer;
    TopKMetric metric;
    double closed_form;
  };
  std::vector<Case> cases = {
      {mean.keys, TopKMetric::kSymDiff, mean.expected_distance},
      {inter->keys, TopKMetric::kIntersection, inter->expected_distance},
      {foot->keys, TopKMetric::kFootrule, foot->expected_distance},
  };
  for (const Case& c : cases) {
    McEstimate estimate =
        McExpectedTopKDistance(*tree, c.answer, k, c.metric, 40000, &rng);
    EXPECT_TRUE(estimate.Covers(c.closed_form, 4.5))
        << "metric " << static_cast<int>(c.metric) << ": closed form "
        << c.closed_form << " vs MC " << estimate.mean << " +- "
        << estimate.std_error;
  }

  // Consensus world identities: the DP median never beats the mean bound,
  // and both expected distances match the Monte-Carlo estimates.
  std::vector<NodeId> mean_world = MeanWorldSymDiff(*tree);
  std::vector<NodeId> median_world = MedianWorldSymDiff(*tree);
  double mean_cost = ExpectedSymDiffDistance(*tree, mean_world);
  double median_cost = ExpectedSymDiffDistance(*tree, median_world);
  EXPECT_GE(median_cost, mean_cost - 1e-9);
  McEstimate world_estimate = McExpectedSetDistance(
      *tree, median_world, SetMetric::kSymDiff, 40000, &rng);
  EXPECT_TRUE(world_estimate.Covers(median_cost, 4.5));
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Section 6.2: consensus clustering — co-clustering probabilities w_ij via
// generating functions, the expected-distance evaluator, and the pivot /
// local-search / exact algorithms.

#include "core/clustering.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/evaluation.h"
#include "model/builders.h"
#include "model/possible_worlds.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

// A random attribute-uncertain table as an and/xor tree with labels.
Result<AndXorTree> RandomLabeledTree(int num_keys, int num_labels, Rng* rng,
                                     bool correlated) {
  if (!correlated) {
    std::vector<std::vector<double>> probs(
        static_cast<size_t>(num_keys),
        std::vector<double>(static_cast<size_t>(num_labels), 0.0));
    for (auto& row : probs) {
      double mass = rng->Uniform(0.5, 1.0);
      int support = static_cast<int>(rng->UniformInt(1, num_labels));
      for (int s = 0; s < support; ++s) {
        row[static_cast<size_t>(rng->UniformInt(0, num_labels - 1))] +=
            mass / support;
      }
    }
    return MakeAttributeUncertain(probs);
  }
  RandomTreeOptions opts;
  opts.num_keys = num_keys;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  return RandomAndXorTree(opts, rng);
}

class ClusteringProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClusteringProperty, CoClusterProbabilitiesMatchEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 311 + 5);
  bool correlated = GetParam() % 2 == 1;
  auto tree = RandomLabeledTree(5, 3, &rng, correlated);
  ASSERT_TRUE(tree.ok());
  auto problem = ClusteringProblem::FromTree(*tree);
  ASSERT_TRUE(problem.ok());
  auto worlds = EnumerateWorlds(*tree);
  ASSERT_TRUE(worlds.ok());

  const std::vector<KeyId>& keys = problem->keys();
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      double expected = 0.0;
      for (const World& w : *worlds) {
        int32_t label_i = -1, label_j = -1;
        for (NodeId l : w.leaf_ids) {
          const TupleAlternative& alt = tree->node(l).leaf;
          if (alt.key == keys[i]) label_i = alt.label;
          if (alt.key == keys[j]) label_j = alt.label;
        }
        bool together = (label_i >= 0 && label_i == label_j) ||
                        (label_i < 0 && label_j < 0);
        if (together) expected += w.prob;
      }
      EXPECT_NEAR(problem->W(static_cast<int>(i), static_cast<int>(j)),
                  expected, 1e-9)
          << "pair (" << keys[i] << ", " << keys[j] << ") correlated="
          << correlated;
    }
  }
}

TEST_P(ClusteringProperty, ExpectedDistanceMatchesEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 331 + 7);
  auto tree = RandomLabeledTree(5, 3, &rng, GetParam() % 2 == 1);
  ASSERT_TRUE(tree.ok());
  auto problem = ClusteringProblem::FromTree(*tree);
  ASSERT_TRUE(problem.ok());

  for (int trial = 0; trial < 4; ++trial) {
    ClusteringAnswer answer;
    for (int i = 0; i < problem->num_keys(); ++i) {
      answer.cluster_of.push_back(static_cast<int>(rng.UniformInt(0, 2)));
    }
    auto expected = EnumExpectedClusteringDistance(*tree, answer);
    ASSERT_TRUE(expected.ok());
    EXPECT_NEAR(problem->Expected(answer), *expected, 1e-9);
  }
}

TEST_P(ClusteringProperty, LocalSearchAndPivotRespectExactOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 353 + 11);
  auto tree = RandomLabeledTree(6, 3, &rng, GetParam() % 2 == 1);
  ASSERT_TRUE(tree.ok());
  auto problem = ClusteringProblem::FromTree(*tree);
  ASSERT_TRUE(problem.ok());

  auto exact = ExactClustering(*problem);
  ASSERT_TRUE(exact.ok());
  double opt = problem->Expected(*exact);

  ClusteringAnswer pivot = PivotClustering(*problem, &rng);
  EXPECT_GE(problem->Expected(pivot), opt - 1e-9);

  ClusteringAnswer improved = LocalSearchClustering(*problem, pivot);
  EXPECT_LE(problem->Expected(improved), problem->Expected(pivot) + 1e-9);
  EXPECT_GE(problem->Expected(improved), opt - 1e-9);

  ClusteringAnswer best_world =
      BestOfWorldsClustering(*tree, *problem, 64, &rng);
  EXPECT_GE(problem->Expected(best_world), opt - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteringProperty, ::testing::Range(0, 10));

TEST(ClusteringTest, RequiresLabels) {
  Rng rng(3);
  std::vector<IndependentTuple> tuples(2);
  tuples[0].alt.key = 0;
  tuples[0].alt.score = 1.0;
  tuples[0].prob = 0.5;
  tuples[1].alt.key = 1;
  tuples[1].alt.score = 2.0;
  tuples[1].prob = 0.5;
  auto tree = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(ClusteringProblem::FromTree(*tree).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ClusteringTest, DeterministicLabelsYieldZeroDistanceOptimum) {
  // Certain table: tuples 0,1 share label 0; tuple 2 has label 1.
  std::vector<std::vector<double>> probs = {
      {1.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  auto tree = MakeAttributeUncertain(probs);
  ASSERT_TRUE(tree.ok());
  auto problem = ClusteringProblem::FromTree(*tree);
  ASSERT_TRUE(problem.ok());
  auto exact = ExactClustering(*problem);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(problem->Expected(*exact), 0.0, 1e-12);
  EXPECT_EQ(exact->cluster_of[0], exact->cluster_of[1]);
  EXPECT_NE(exact->cluster_of[0], exact->cluster_of[2]);
}

TEST(ClusteringTest, ExactRefusesLargeInstances) {
  Rng rng(5);
  auto tree = RandomLabeledTree(12, 3, &rng, false);
  ASSERT_TRUE(tree.ok());
  auto problem = ClusteringProblem::FromTree(*tree);
  ASSERT_TRUE(problem.ok());
  EXPECT_EQ(ExactClustering(*problem, /*max_keys=*/8).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ClusteringTest, ClusteringOfWorldGroupsAbsentKeys) {
  std::vector<std::vector<double>> probs = {{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}};
  auto tree = MakeAttributeUncertain(probs);
  ASSERT_TRUE(tree.ok());
  // Empty world: all keys absent -> one shared cluster.
  ClusteringAnswer all_absent = ClusteringOfWorld(*tree, tree->Keys(), {});
  EXPECT_EQ(all_absent.cluster_of[0], all_absent.cluster_of[1]);
  EXPECT_EQ(all_absent.cluster_of[1], all_absent.cluster_of[2]);
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// The Fagin et al. Top-k list distances used throughout Section 5.

#include "core/topk_metrics.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace cpdb {
namespace {

TEST(SymmetricDifferenceTest, IdenticalAndDisjoint) {
  std::vector<KeyId> a = {1, 2, 3};
  std::vector<KeyId> b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(TopKSymmetricDifference(a, a, 3), 0.0);
  EXPECT_DOUBLE_EQ(TopKSymmetricDifference(a, b, 3), 1.0);
}

TEST(SymmetricDifferenceTest, IgnoresOrder) {
  std::vector<KeyId> a = {1, 2, 3};
  std::vector<KeyId> b = {3, 2, 1};
  EXPECT_DOUBLE_EQ(TopKSymmetricDifference(a, b, 3), 0.0);
}

TEST(SymmetricDifferenceTest, PartialOverlap) {
  std::vector<KeyId> a = {1, 2, 3};
  std::vector<KeyId> b = {3, 4, 5};
  // |Δ| = 4 -> 4/(2*3).
  EXPECT_DOUBLE_EQ(TopKSymmetricDifference(a, b, 3), 4.0 / 6.0);
}

TEST(SymmetricDifferenceTest, DifferentLengths) {
  std::vector<KeyId> a = {1, 2, 3};
  std::vector<KeyId> b = {1};
  EXPECT_DOUBLE_EQ(TopKSymmetricDifference(a, b, 3), 2.0 / 6.0);
}

TEST(IntersectionMetricTest, SensitiveToOrder) {
  std::vector<KeyId> a = {1, 2, 3};
  std::vector<KeyId> b = {3, 2, 1};
  // Prefix 1: {1} vs {3}: 2/(2*1)=1. Prefix 2: {1,2} vs {3,2}: 2/4=0.5.
  // Prefix 3: 0. dI = (1 + 0.5 + 0) / 3 = 0.5.
  EXPECT_DOUBLE_EQ(TopKIntersectionDistance(a, b, 3), 0.5);
  EXPECT_DOUBLE_EQ(TopKIntersectionDistance(a, a, 3), 0.0);
}

TEST(IntersectionMetricTest, BoundedByOne) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<KeyId> a, b;
    for (KeyId i = 0; i < 5; ++i) a.push_back(i);
    for (KeyId i = 5; i < 10; ++i) b.push_back(i);
    rng.Shuffle(&a);
    rng.Shuffle(&b);
    double d = TopKIntersectionDistance(a, b, 5);
    EXPECT_DOUBLE_EQ(d, 1.0);  // disjoint lists are at distance exactly 1
  }
}

TEST(FootruleTest, HandComputedCases) {
  std::vector<KeyId> a = {1, 2};
  std::vector<KeyId> b = {2, 1};
  // |1: 1 vs 2| + |2: 2 vs 1| = 2.
  EXPECT_DOUBLE_EQ(TopKFootrule(a, b, 2), 2.0);

  std::vector<KeyId> c = {1, 2};
  std::vector<KeyId> d = {1, 3};
  // 1: 0 ; 2: |2 - 3| = 1 ; 3: |3 - 2| = 1.
  EXPECT_DOUBLE_EQ(TopKFootrule(c, d, 2), 2.0);

  // Completely disjoint k=2 lists: each of 4 keys contributes k+1-pos.
  std::vector<KeyId> e = {1, 2};
  std::vector<KeyId> f = {3, 4};
  EXPECT_DOUBLE_EQ(TopKFootrule(e, f, 2), 2.0 + 1.0 + 2.0 + 1.0);
}

TEST(FootruleTest, IsAMetricOnRandomLists) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    auto random_list = [&]() {
      std::vector<KeyId> pool(6);
      std::iota(pool.begin(), pool.end(), 0);
      rng.Shuffle(&pool);
      pool.resize(3);
      return pool;
    };
    std::vector<KeyId> a = random_list(), b = random_list(), c = random_list();
    EXPECT_DOUBLE_EQ(TopKFootrule(a, a, 3), 0.0);
    EXPECT_DOUBLE_EQ(TopKFootrule(a, b, 3), TopKFootrule(b, a, 3));
    EXPECT_LE(TopKFootrule(a, c, 3),
              TopKFootrule(a, b, 3) + TopKFootrule(b, c, 3) + 1e-12);
  }
}

TEST(KendallTest, HandComputedCases) {
  // Swap of two adjacent elements: one provable disagreement.
  EXPECT_DOUBLE_EQ(TopKKendall({1, 2}, {2, 1}, 2), 1.0);
  EXPECT_DOUBLE_EQ(TopKKendall({1, 2}, {1, 2}, 2), 0.0);
  // Disjoint lists: pairs across lists provably disagree (2*2 = 4 pairs);
  // within-list pairs are unknowable in the other list's extensions -> 0.
  EXPECT_DOUBLE_EQ(TopKKendall({1, 2}, {3, 4}, 2), 4.0);
  // One shared element, shared-first vs shared-absent patterns.
  // a = {1,2}, b = {1,3}: pair(2,3) provably disagrees; pair(1,2): 1 before
  // 2 in a, and in b's extensions 1 (present) precedes 2 (absent) -> agree.
  // pair(1,3): agree symmetrically.
  EXPECT_DOUBLE_EQ(TopKKendall({1, 2}, {1, 3}, 2), 1.0);
  // a = {1,2}, b = {3,1}: pair(1,2): agree (1 first in both extensions)?
  // In b, 1 is present at position 2, 2 is absent -> 1 before 2: agree.
  // pair(1,3): a has 1 present, 3 absent -> 1 before 3; b ranks 3 before 1
  // -> provable disagreement. pair(2,3): a says 2 first, b says 3 first ->
  // disagreement. Total 2.
  EXPECT_DOUBLE_EQ(TopKKendall({1, 2}, {3, 1}, 2), 2.0);
}

TEST(KendallTest, SymmetricAndBoundedByAllPairs) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<KeyId> pool(7);
    std::iota(pool.begin(), pool.end(), 0);
    rng.Shuffle(&pool);
    std::vector<KeyId> a(pool.begin(), pool.begin() + 3);
    rng.Shuffle(&pool);
    std::vector<KeyId> b(pool.begin(), pool.begin() + 3);
    double dab = TopKKendall(a, b, 3);
    EXPECT_DOUBLE_EQ(dab, TopKKendall(b, a, 3));
    // At most C(|a ∪ b|, 2) pairs.
    EXPECT_LE(dab, 6.0 * 5.0 / 2.0);
    EXPECT_GE(dab, 0.0);
  }
}

TEST(MetricEquivalenceTest, FootruleDominatesKendall) {
  // Fagin et al.: d_K <= d_F for top-k lists (they form an equivalence
  // class; this direction holds pairwise).
  Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<KeyId> pool(8);
    std::iota(pool.begin(), pool.end(), 0);
    rng.Shuffle(&pool);
    std::vector<KeyId> a(pool.begin(), pool.begin() + 4);
    rng.Shuffle(&pool);
    std::vector<KeyId> b(pool.begin(), pool.begin() + 4);
    EXPECT_LE(TopKKendall(a, b, 4), TopKFootrule(a, b, 4) + 1e-12);
  }
}

}  // namespace
}  // namespace cpdb
